//! Pipeline-level tests of the non-blocking memory subsystem: MSHR
//! back-pressure, write-buffer back-pressure, wedge diagnosability under
//! pathological memory configurations, and fault-replay determinism with
//! finite memory resources.

use smt_core::{
    DeadlockMode, DispatchPolicy, FaultClass, FaultConfig, RunOutcome, SimConfig, Simulator,
    StallReason,
};
use smt_isa::{ArchReg, TraceInst};
use smt_mem::{MemModel, NonBlockingConfig};
use smt_workload::{InstGenerator, ProgramTrace};

fn nb(cfg: &mut SimConfig, f: impl FnOnce(&mut NonBlockingConfig)) {
    let mut c = NonBlockingConfig::default();
    f(&mut c);
    cfg.hierarchy.model = MemModel::NonBlocking(c);
}

fn sim_for(programs: Vec<Vec<TraceInst>>, cfg: SimConfig) -> Simulator {
    let streams: Vec<Box<dyn InstGenerator>> = programs
        .into_iter()
        .map(|p| Box::new(ProgramTrace::once(p)) as Box<dyn InstGenerator>)
        .collect();
    Simulator::new(cfg, streams)
}

/// `n` loads, each to a distinct L2 line (0x1000 apart), padded with
/// dependent ALU work so the thread is never drained mid-test.
fn miss_storm(n: usize, base: u64) -> Vec<TraceInst> {
    let mut prog = Vec::new();
    for i in 0..n {
        let dest = ArchReg::int(1 + (i % 8) as u8);
        prog.push(TraceInst::load((i as u64 % 512) * 4, dest, None, base + (i as u64) * 0x1000));
        prog.push(TraceInst::alu(((i as u64) % 512) * 4, dest, Some(dest), None));
    }
    prog
}

/// `n` stores, each to a distinct L2 line.
fn store_storm(n: usize, base: u64) -> Vec<TraceInst> {
    (0..n)
        .map(|i| {
            TraceInst::store(
                (i as u64 % 512) * 4,
                None,
                Some(ArchReg::int(1)),
                base + (i as u64) * 0x1000,
            )
        })
        .collect()
}

#[test]
fn single_mshr_serialises_misses_but_completes() {
    let mut cfg = SimConfig::paper(32, DispatchPolicy::TwoOpBlockOoo);
    cfg.deadlock = DeadlockMode::Dab { size: 4 };
    cfg.max_cycles = 2_000_000;
    nb(&mut cfg, |c| c.l1d_mshrs = 1);
    let mut sim = sim_for(vec![miss_storm(64, 0x40_0000)], cfg);
    let outcome = sim.run(u64::MAX);
    assert!(matches!(outcome, RunOutcome::AllFinished), "run did not finish: {outcome:?}");
    let t = &sim.counters().threads[0];
    assert!(t.mshr_full_defers > 0, "a 1-entry MSHR file must defer overlapping misses");
    assert!(t.l1d_misses >= 64, "every distinct line must miss");
    assert!(sim.counters().mem.l1d_mshr_allocs >= 64);
}

#[test]
fn unlimited_mshrs_overlap_misses_and_raise_mlp() {
    let run = |mshrs: u32| {
        let mut cfg = SimConfig::paper(32, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = DeadlockMode::Dab { size: 4 };
        cfg.max_cycles = 2_000_000;
        nb(&mut cfg, |c| c.l1d_mshrs = mshrs);
        let mut sim = sim_for(vec![miss_storm(64, 0x40_0000)], cfg);
        assert!(matches!(sim.run(u64::MAX), RunOutcome::AllFinished));
        let t = &sim.counters().threads[0];
        (sim.counters().cycles, t.mlp())
    };
    let (cycles_1, mlp_1) = run(1);
    let (cycles_inf, mlp_inf) = run(0);
    assert!(
        cycles_inf < cycles_1,
        "overlapping misses must be faster: unlimited {cycles_inf} vs single {cycles_1}"
    );
    assert!(mlp_inf > mlp_1, "unlimited MSHRs must raise MLP: {mlp_inf} vs {mlp_1}");
}

#[test]
fn mshr_starvation_is_diagnosed_not_hung() {
    // A pathological bus (200k cycles per transfer) with a single L1D MSHR:
    // the first miss parks the machine long past the forward-progress
    // window. The run must come back as a diagnosable wedge whose report
    // names the memory subsystem, not hang or report garbage.
    let mut cfg = SimConfig::paper(32, DispatchPolicy::Traditional);
    cfg.progress_check_cycles = 2_000;
    cfg.max_cycles = 0;
    nb(&mut cfg, |c| {
        c.l1d_mshrs = 1;
        c.bus_cycles_per_transfer = 200_000;
    });
    let mut sim = sim_for(vec![miss_storm(8, 0x40_0000), miss_storm(8, 0x80_0000)], cfg);
    let outcome = sim.run(u64::MAX);
    let RunOutcome::Wedged(report) = outcome else {
        panic!("expected a diagnosed wedge, got {outcome:?}");
    };
    let mem = report.mem.as_ref().expect("non-blocking wedge must snapshot the memory state");
    assert_eq!(mem.l1d_mshrs_in_flight, 1, "the single MSHR must be occupied");
    assert_eq!(mem.l1d_mshr_capacity, 1);
    assert_eq!(mem.bus_cycles_per_transfer, 200_000);
    let reasons: Vec<StallReason> = report.threads.iter().map(|t| t.blocked_on).collect();
    assert!(
        reasons.contains(&StallReason::WaitingMemory),
        "the MSHR holder waits on memory: {reasons:?}"
    );
    assert!(
        reasons.contains(&StallReason::MshrFull),
        "the locked-out thread must be classified MshrFull: {reasons:?}"
    );
    assert!(report.summary().contains("mem: mshrs"), "summary must render the memory state");
}

#[test]
fn tiny_write_buffer_backpressures_commit_but_completes() {
    let mut cfg = SimConfig::paper(32, DispatchPolicy::TwoOpBlockOoo);
    cfg.deadlock = DeadlockMode::Dab { size: 4 };
    cfg.max_cycles = 2_000_000;
    nb(&mut cfg, |c| {
        c.write_buffer_entries = 1;
        c.write_buffer_drain_per_cycle = 1;
    });
    let mut sim = sim_for(vec![store_storm(64, 0x40_0000)], cfg);
    let outcome = sim.run(u64::MAX);
    assert!(matches!(outcome, RunOutcome::AllFinished), "run did not finish: {outcome:?}");
    let c = sim.counters();
    assert!(c.threads[0].wb_full_stall_cycles > 0, "a 1-entry buffer must stall commit");
    assert_eq!(c.mem.wb_enqueued, 64, "every store must pass through the buffer");
    // The run loop exits as soon as the pipeline drains; the last store may
    // still sit in the (1-entry) buffer.
    assert!(c.mem.wb_drained >= 63, "buffered stores must drain, got {}", c.mem.wb_drained);
    assert!(c.threads[0].l1d_hits + c.threads[0].l1d_misses >= 63, "drains must be attributed");
}

#[test]
fn cache_faults_replay_bit_for_bit_under_finite_memory() {
    // The determinism contract must survive the MSHR path: a run with
    // injected cache-miss faults under finite MSHRs/bus replays exactly
    // from its fault log.
    let mut cfg = SimConfig::paper(32, DispatchPolicy::TwoOpBlockOoo);
    cfg.deadlock = DeadlockMode::Dab { size: 4 };
    cfg.max_cycles = 2_000_000;
    nb(&mut cfg, |c| {
        c.l1d_mshrs = 2;
        c.l2_mshrs = 4;
        c.bus_cycles_per_transfer = 8;
        c.write_buffer_entries = 4;
        c.write_buffer_drain_per_cycle = 1;
    });
    let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 0xC0FFEE);
    faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 300_000;
    faults.class_mut(FaultClass::CacheMissExtra).budget = 32;
    cfg.faults = faults;

    let mut prog = miss_storm(48, 0x40_0000);
    prog.extend(store_storm(16, 0x100_0000));
    let mut sim = sim_for(vec![prog.clone()], cfg.clone());
    let outcome = sim.run(u64::MAX);
    assert!(matches!(outcome, RunOutcome::AllFinished), "faulted run wedged: {outcome:?}");
    assert!(sim.counters().faults.cache_extra_injected > 0, "faults must fire through MSHRs");

    let log = sim.fault_log().to_vec();
    let mut replay = sim_for(vec![prog], cfg);
    replay.set_fault_replay(log.clone());
    let outcome = replay.run(u64::MAX);
    assert!(matches!(outcome, RunOutcome::AllFinished), "replay wedged: {outcome:?}");
    assert_eq!(replay.fault_log(), log.as_slice(), "replay fault log diverged");
    assert_eq!(replay.counters(), sim.counters(), "replay counters diverged");
}

#[test]
fn ifetch_misses_go_through_the_l1i_mshrs() {
    // A program whose PCs walk far apart so instruction fetch itself
    // misses; the L1I MSHR file must see the traffic.
    let prog: Vec<TraceInst> = (0..128)
        .map(|i| TraceInst::alu((i as u64) * 0x1000, ArchReg::int(1), None, None))
        .collect();
    let mut cfg = SimConfig::paper(32, DispatchPolicy::Traditional);
    cfg.max_cycles = 2_000_000;
    nb(&mut cfg, |c| c.l1i_mshrs = 1);
    let mut sim = sim_for(vec![prog], cfg);
    assert!(matches!(sim.run(u64::MAX), RunOutcome::AllFinished));
    assert!(sim.counters().mem.l1i_mshr_allocs > 0, "I-fetch misses must allocate L1I MSHRs");
}
