//! Property tests on the physical register file and rename table:
//! conservation and aliasing invariants under random alloc/free/rename
//! sequences, including squash-style rollback.

use proptest::prelude::*;
use smt_core::regfile::PhysRegFile;
use smt_core::rename::RenameTable;
use smt_isa::{ArchReg, RegClass};

#[derive(Debug, Clone)]
enum Op {
    /// Rename architectural register `r` to a fresh physical register.
    Rename { r: u8 },
    /// Commit the oldest outstanding rename (free its old mapping).
    CommitOldest,
    /// Squash the youngest outstanding rename (restore + free new mapping).
    SquashYoungest,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..30).prop_map(|r| Op::Rename { r }),
        2 => Just(Op::CommitOldest),
        2 => Just(Op::SquashYoungest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn conservation_under_random_rename_commit_squash(
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        let total = 96usize;
        let mut regs = PhysRegFile::new(total, 64);
        let mut rat = RenameTable::new(&mut regs);
        // Outstanding renames, oldest first: (areg, old_mapping, new_mapping).
        let mut outstanding = std::collections::VecDeque::new();

        for op in &ops {
            match op {
                Op::Rename { r } => {
                    let areg = ArchReg::int(*r);
                    if let Some(new) = regs.alloc(RegClass::Int) {
                        let old = rat.rename(areg, new);
                        outstanding.push_back((areg, old, new));
                    }
                }
                Op::CommitOldest => {
                    if let Some((_, old, new)) = outstanding.pop_front() {
                        regs.set_ready(new); // the value was produced
                        regs.free(old);
                    }
                }
                Op::SquashYoungest => {
                    if let Some((areg, old, new)) = outstanding.pop_back() {
                        rat.restore(areg, old);
                        regs.free(new);
                    }
                }
            }
            // Invariant: free + RAT-mapped + (outstanding old mappings that
            // are shadowed, i.e. not currently in the RAT) == total.
            let mapped: std::collections::HashSet<_> =
                rat.mappings().iter().copied().filter(|p| p.class == RegClass::Int).collect();
            let shadowed = outstanding
                .iter()
                .filter(|(_, old, _)| !mapped.contains(old))
                .count();
            prop_assert_eq!(
                regs.free_count(RegClass::Int) + mapped.len() + shadowed,
                total,
                "integer register conservation violated"
            );
        }

        // Unwind everything; the initial state must be fully restored.
        while let Some((areg, old, new)) = outstanding.pop_back() {
            rat.restore(areg, old);
            regs.free(new);
        }
        let mut seen = std::collections::HashSet::new();
        for &p in rat.mappings() {
            prop_assert!(seen.insert(p), "rename table aliases {:?} after unwind", p);
            prop_assert!(regs.is_ready(p), "architectural state must be ready");
        }
        prop_assert_eq!(regs.free_count(RegClass::Int), total - 32);
    }

    #[test]
    fn rat_mappings_never_alias(ops in proptest::collection::vec(0u8..30, 1..200)) {
        let mut regs = PhysRegFile::new(256, 64);
        let mut rat = RenameTable::new(&mut regs);
        let mut live_old = Vec::new();
        for r in ops {
            if let Some(new) = regs.alloc(RegClass::Int) {
                let old = rat.rename(ArchReg::int(r), new);
                live_old.push(old);
            }
            let mut seen = std::collections::HashSet::new();
            for &p in rat.mappings() {
                prop_assert!(seen.insert(p), "two architectural registers map to {:?}", p);
            }
        }
    }
}
