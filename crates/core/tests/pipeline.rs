//! Pipeline-level tests driving the simulator with hand-written programs.

use smt_core::{
    DeadlockMode, DispatchPolicy, RunOutcome, SimConfig, Simulator, StallReason, Tracer,
};
use smt_isa::{ArchReg, TraceInst};
use smt_workload::{InstGenerator, ProgramTrace};

fn cfg(iq: usize, policy: DispatchPolicy) -> SimConfig {
    let mut c = SimConfig::paper(iq, policy);
    c.max_cycles = 500_000;
    c
}

fn sim_of(programs: Vec<Vec<TraceInst>>, c: SimConfig) -> Simulator {
    let streams: Vec<Box<dyn InstGenerator>> = programs
        .into_iter()
        .map(|p| Box::new(ProgramTrace::once(p)) as Box<dyn InstGenerator>)
        .collect();
    Simulator::new(c, streams)
}

/// PC helper: hand programs loop over a small (I-cache-resident) footprint
/// so instruction-fetch behaves like real loop code rather than a cold
/// straight-line sweep.
fn pc_of(i: usize) -> u64 {
    (i as u64 % 1024) * 4
}

/// A straight-line chain of dependent ALU ops.
fn alu_chain(n: usize) -> Vec<TraceInst> {
    (0..n)
        .map(|i| {
            TraceInst::alu(
                pc_of(i),
                ArchReg::int(1 + (i % 8) as u8),
                Some(ArchReg::int(1 + ((i + 7) % 8) as u8)),
                None,
            )
        })
        .collect()
}

/// Independent ALU ops (maximal ILP).
fn alu_independent(n: usize) -> Vec<TraceInst> {
    (0..n).map(|i| TraceInst::alu(pc_of(i), ArchReg::int(1 + (i % 20) as u8), None, None)).collect()
}

#[test]
fn single_thread_program_commits_everything() {
    let n = 500;
    let mut sim = sim_of(vec![alu_independent(n)], cfg(64, DispatchPolicy::Traditional));
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n as u64);
}

#[test]
fn all_policies_commit_identical_work() {
    for policy in [
        DispatchPolicy::Traditional,
        DispatchPolicy::TwoOpBlock,
        DispatchPolicy::TwoOpBlockOoo,
        DispatchPolicy::TwoOpBlockOooFiltered,
    ] {
        let n = 400;
        let mut sim = sim_of(vec![alu_chain(n), alu_independent(n)], cfg(32, policy));
        let outcome = sim.run(u64::MAX);
        assert_eq!(outcome, RunOutcome::AllFinished, "{policy:?}");
        assert_eq!(sim.counters().threads[0].committed, n as u64, "{policy:?} thread 0");
        assert_eq!(sim.counters().threads[1].committed, n as u64, "{policy:?} thread 1");
    }
}

#[test]
fn independent_ops_run_faster_than_a_chain() {
    // Long enough to amortize cold-start I-cache misses.
    let n = 20_000;
    let mut chain = sim_of(vec![alu_chain(n)], cfg(64, DispatchPolicy::Traditional));
    chain.run(u64::MAX);
    let mut indep = sim_of(vec![alu_independent(n)], cfg(64, DispatchPolicy::Traditional));
    indep.run(u64::MAX);
    let chain_ipc = chain.counters().throughput_ipc();
    let indep_ipc = indep.counters().throughput_ipc();
    assert!(
        indep_ipc > 2.0 * chain_ipc,
        "independent ILP {indep_ipc} should far exceed serial chain {chain_ipc}"
    );
    assert!(chain_ipc <= 1.05, "a dependent chain cannot exceed 1 IPC, got {chain_ipc}");
}

#[test]
fn ipc_never_exceeds_machine_width() {
    let mut sim = sim_of(vec![alu_independent(5_000)], cfg(128, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    assert!(sim.counters().throughput_ipc() <= 8.0);
}

#[test]
fn cache_miss_slows_down_dependent_load() {
    // Two programs: one whose loads hit a single hot line, one whose loads
    // chase distinct lines (always cold).
    // Both versions chase pointers (each load's address register is the
    // previous load's destination), so load latencies serialize and the
    // cache behaviour is what differentiates them.
    let hot: Vec<TraceInst> = (0..400)
        .map(|i| TraceInst::load(pc_of(i as usize), ArchReg::int(1), Some(ArchReg::int(1)), 0x1000))
        .collect();
    let cold: Vec<TraceInst> = (0..400)
        .map(|i| {
            TraceInst::load(
                pc_of(i as usize),
                ArchReg::int(1),
                Some(ArchReg::int(1)),
                0x10_0000 + i * 4096,
            )
        })
        .collect();
    let mut h = sim_of(vec![hot], cfg(64, DispatchPolicy::Traditional));
    h.run(u64::MAX);
    let mut c = sim_of(vec![cold], cfg(64, DispatchPolicy::Traditional));
    c.run(u64::MAX);
    assert!(
        c.counters().cycles > h.counters().cycles * 2,
        "cold loads ({}) must be much slower than hot loads ({})",
        c.counters().cycles,
        h.counters().cycles
    );
}

/// The Figure 2 scenario, end to end: a long-latency producer pair makes I2
/// an NDI; under 2OP_BLOCK the thread stalls behind it, under OOO dispatch
/// the machine keeps going and finishes sooner.
fn figure2_program(n_repeats: usize) -> Vec<TraceInst> {
    let mut prog = Vec::new();
    let mut pc = 0u64;
    for rep in 0..n_repeats {
        let base = 0x100_0000 + (rep as u64) * 64 * 1024;
        // I0: load r1 <- [cold] (long latency)
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(20)), base));
        pc += 4;
        // I1: load r2 <- [cold] (long latency)
        prog.push(TraceInst::load(pc, ArchReg::int(2), Some(ArchReg::int(21)), base + 4096));
        pc += 4;
        // I2: r3 <- r1 + r2   (two non-ready sources: the NDI)
        prog.push(TraceInst::alu(
            pc,
            ArchReg::int(3),
            Some(ArchReg::int(1)),
            Some(ArchReg::int(2)),
        ));
        pc += 4;
        // I3..: a pile of independent work (the HDIs)
        for k in 0..20 {
            prog.push(TraceInst::alu(pc, ArchReg::int(4 + (k % 16)), Some(ArchReg::int(22)), None));
            pc += 4;
        }
    }
    prog
}

#[test]
fn figure2_ooo_dispatch_beats_two_op_block() {
    let prog = figure2_program(60);
    let mut blocked = sim_of(vec![prog.clone()], cfg(32, DispatchPolicy::TwoOpBlock));
    blocked.run(u64::MAX);
    let mut ooo = sim_of(vec![prog], cfg(32, DispatchPolicy::TwoOpBlockOoo));
    ooo.run(u64::MAX);
    let b = blocked.counters().cycles;
    let o = ooo.counters().cycles;
    assert!(
        o * 3 < b * 2,
        "OOO dispatch ({o} cycles) should clearly beat 2OP_BLOCK ({b} cycles) on NDI-heavy code"
    );
    let hdis: u64 = ooo.counters().threads.iter().map(|t| t.hdis_dispatched).sum();
    assert!(hdis > 0, "the HDIs must actually have been dispatched out of order");
}

#[test]
fn two_op_block_never_dispatches_two_nonready() {
    let prog = figure2_program(40);
    let mut sim = sim_of(vec![prog], cfg(32, DispatchPolicy::TwoOpBlock));
    sim.run(u64::MAX);
    let t = &sim.counters().threads[0];
    assert_eq!(
        t.dispatched_by_nonready[2], 0,
        "a 1-comparator IQ must never receive an instruction with 2 non-ready sources"
    );
    assert!(t.ndi_blocked_cycles > 0, "the NDIs must actually have blocked dispatch");
}

#[test]
fn traditional_dispatches_two_nonready_instructions() {
    let prog = figure2_program(40);
    let mut sim = sim_of(vec![prog], cfg(32, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    assert!(
        sim.counters().threads[0].dispatched_by_nonready[2] > 0,
        "the traditional 2-comparator IQ should accept 2-non-ready instructions"
    );
}

#[test]
fn dab_prevents_deadlock_with_tiny_iq() {
    // A tiny IQ plus OOO dispatch: younger dependent instructions can fill
    // the IQ while the oldest is still undispatched — exactly the paper's
    // deadlock scenario. The DAB must guarantee forward progress.
    let mut prog = Vec::new();
    let mut pc = 0;
    for rep in 0..50u64 {
        let base = 0x200_0000 + rep * 64 * 1024;
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(20)), base));
        pc += 4;
        // Long chain of instructions dependent on the load.
        for _ in 0..12 {
            prog.push(TraceInst::alu(pc, ArchReg::int(1), Some(ArchReg::int(1)), None));
            pc += 4;
        }
    }
    let n = prog.len() as u64;
    let mut c = cfg(4, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::Dab { size: 2 };
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    sim.assert_quiescent_invariants();
}

#[test]
fn arbitrated_dab_also_prevents_deadlock() {
    let prog = figure2_program(40);
    let n = prog.len() as u64;
    let mut c = cfg(4, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::DabArbitrated { size: 2 };
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    sim.assert_quiescent_invariants();
}

#[test]
fn watchdog_mode_also_makes_progress() {
    let prog = figure2_program(30);
    let n = prog.len() as u64;
    let mut c = cfg(4, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::Watchdog { timeout: 400 };
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    sim.assert_quiescent_invariants();
}

#[test]
fn tag_eliminated_scheduler_completes_all_work() {
    let n = 400;
    let mut sim =
        sim_of(vec![figure2_program(20), alu_chain(n)], cfg(32, DispatchPolicy::TagEliminated));
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[1].committed, n as u64);
    sim.assert_quiescent_invariants();
}

#[test]
fn tag_eliminated_dispatches_two_nonready_into_two_comp_entries() {
    let prog = figure2_program(40);
    let mut c = cfg(32, DispatchPolicy::TagEliminated);
    c.iq_layout = Some([8, 16, 8]);
    let mut sim = sim_of(vec![prog], c);
    sim.run(u64::MAX);
    let t = &sim.counters().threads[0];
    assert!(
        t.dispatched_by_nonready[2] > 0,
        "2-non-ready instructions must reach the 2-comparator entries"
    );
}

#[test]
fn tag_eliminated_sits_between_two_op_block_and_traditional() {
    // Same comparator budget as 2OP_BLOCK (64 per 64-entry queue), but the
    // heterogeneous layout can hold some 2-non-ready instructions: on
    // NDI-heavy code it should not do worse than 2OP_BLOCK.
    let prog = figure2_program(80);
    let run = |policy: DispatchPolicy| {
        let mut sim = sim_of(vec![prog.clone()], cfg(32, policy));
        sim.run(u64::MAX);
        sim.counters().cycles
    };
    let blocked = run(DispatchPolicy::TwoOpBlock);
    let tag_elim = run(DispatchPolicy::TagEliminated);
    assert!(
        tag_elim <= blocked,
        "tag-eliminated ({tag_elim}) should not trail 2OP_BLOCK ({blocked}) on NDI-heavy code"
    );
}

#[test]
fn wrong_path_mode_completes_and_squashes() {
    let mut c = cfg(48, DispatchPolicy::TwoOpBlockOoo);
    c.wrong_path = true;
    // A branchy program with an unlearnable pattern forces mispredicts.
    let prog: Vec<TraceInst> = (0..4_000)
        .map(|i| {
            if i % 4 == 3 {
                let x = (i * 2654435761u64) >> 13 & 1;
                TraceInst::branch(pc_of(i as usize), Some(ArchReg::int(20)), x == 1, 64)
            } else {
                TraceInst::alu(pc_of(i as usize), ArchReg::int(1 + (i % 8) as u8), None, None)
            }
        })
        .collect();
    let n = prog.len() as u64;
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n, "wrong-path work never commits");
    assert!(
        sim.counters().threads[0].wrong_path_fetched > 0,
        "mispredicts must have fetched down the wrong path"
    );
    assert!(
        sim.counters().threads[0].fetched > n,
        "wrong-path instructions inflate the fetch count"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn wrong_path_costs_cycles_but_preserves_results() {
    let prog = figure2_program(50);
    let n = prog.len() as u64;
    let run = |wrong_path: bool| {
        let mut c = cfg(32, DispatchPolicy::Traditional);
        c.wrong_path = wrong_path;
        let mut sim = sim_of(vec![prog.clone()], c);
        assert_eq!(sim.run(u64::MAX), RunOutcome::AllFinished);
        assert_eq!(sim.counters().threads[0].committed, n);
        sim.assert_quiescent_invariants();
        sim.counters().cycles
    };
    // figure2_program has no branches, so both modes behave identically.
    assert_eq!(run(false), run(true));
}

#[test]
fn half_price_scheduler_completes_with_mild_slowdown() {
    // The slow second tag can only add cycles, never change results.
    let prog = figure2_program(60);
    let n = prog.len() as u64;
    let mut trad = sim_of(vec![prog.clone()], cfg(32, DispatchPolicy::Traditional));
    trad.run(u64::MAX);
    let mut hp = sim_of(vec![prog], cfg(32, DispatchPolicy::HalfPrice));
    let outcome = hp.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(hp.counters().threads[0].committed, n);
    hp.assert_quiescent_invariants();
    let (t, h) = (trad.counters().cycles, hp.counters().cycles);
    assert!(h >= t, "the slow bus cannot make things faster: {h} vs {t}");
    assert!(h <= t + t / 5, "Half-Price should cost only a few percent: {h} vs {t}");
}

#[test]
fn packed_scheduler_completes_and_packs() {
    let n = 600;
    // Mostly single-source work: the packing queue should behave like a
    // double-capacity 2OP_BLOCK queue.
    let mut sim = sim_of(
        vec![alu_chain(n), alu_independent(n)],
        cfg(16, DispatchPolicy::Packed), // 8 physical entries, 16 logical
    );
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().total_committed(), 2 * n as u64);
    sim.assert_quiescent_invariants();
}

#[test]
fn packed_scheduler_handles_two_nonready_instructions() {
    let prog = figure2_program(40);
    let n = prog.len() as u64;
    let mut sim = sim_of(vec![prog], cfg(32, DispatchPolicy::Packed));
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    assert!(
        sim.counters().threads[0].dispatched_by_nonready[2] > 0,
        "wide occupants must pass through the packed queue"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn flush_fetch_policy_completes_and_flushes() {
    use smt_core::config::FetchPolicy;
    // Memory-missing loads followed by dependent work: FLUSH should squash
    // and refetch the dependents while the miss is outstanding.
    let prog = figure2_program(60);
    let n = prog.len() as u64;
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.fetch_policy = FetchPolicy::Flush;
    let mut sim = sim_of(vec![prog.clone(), alu_independent(800)], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    assert!(
        sim.counters().fetch_policy_flushes > 0,
        "memory misses must have triggered FLUSH squashes"
    );
    assert!(
        sim.counters().threads[0].fetched > n,
        "flushed instructions are fetched more than once"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn stall_fetch_policy_completes() {
    use smt_core::config::FetchPolicy;
    let prog = figure2_program(40);
    let n = prog.len() as u64;
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.fetch_policy = FetchPolicy::Stall;
    let mut sim = sim_of(vec![prog, alu_independent(600)], c);
    assert_eq!(sim.run(u64::MAX), RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    assert_eq!(sim.counters().fetch_policy_flushes, 0, "STALL never squashes");
    sim.assert_quiescent_invariants();
}

#[test]
fn round_robin_fetch_policy_completes() {
    use smt_core::config::FetchPolicy;
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.fetch_policy = FetchPolicy::RoundRobin;
    let mut sim = sim_of(vec![alu_chain(500), alu_independent(500)], c);
    assert_eq!(sim.run(u64::MAX), RunOutcome::AllFinished);
    assert_eq!(sim.counters().total_committed(), 1000);
    sim.assert_quiescent_invariants();
}

#[test]
fn flush_protects_coscheduled_thread_from_memory_hog() {
    use smt_core::config::FetchPolicy;
    // Thread 0 misses to memory constantly; thread 1 is pure compute.
    // While the hog's misses are outstanding, FLUSH frees the shared IQ,
    // so the compute thread should reach its commit target at least as
    // fast as under plain ICOUNT (the effect reported by Tullsen & Brown
    // [15] — FLUSH trades the hog's memory-level parallelism for
    // co-runner throughput).
    let hog = figure2_program(2_000);
    let compute = alu_independent(30_000);
    let run = |policy: FetchPolicy| {
        let mut c = cfg(32, DispatchPolicy::Traditional);
        c.fetch_policy = policy;
        let mut sim = sim_of(vec![hog.clone(), compute.clone()], c);
        // Stop when the compute thread commits 10k (the hog is far slower).
        sim.run(10_000);
        sim.counters().cycles
    };
    let icount = run(FetchPolicy::ICount);
    let flush = run(FetchPolicy::Flush);
    assert!(
        flush <= icount + icount / 10,
        "compute thread under FLUSH ({flush} cycles) should be at least as fast as          under ICOUNT ({icount} cycles)"
    );
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = sim_of(
            vec![figure2_program(30), alu_chain(300)],
            cfg(48, DispatchPolicy::TwoOpBlockOoo),
        );
        sim.run(u64::MAX);
        (sim.counters().cycles, sim.counters().total_committed())
    };
    assert_eq!(run(), run());
}

#[test]
fn store_load_forwarding_is_fast() {
    // Store then immediately load the same address, repeatedly, at cold
    // addresses: with forwarding the load never pays the memory latency.
    let mut prog = Vec::new();
    let mut pc = 0;
    for rep in 0..200u64 {
        let addr = 0x300_0000 + rep * 8;
        prog.push(TraceInst::store(pc, Some(ArchReg::int(20)), Some(ArchReg::int(21)), addr));
        pc += 4;
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(22)), addr));
        pc += 4;
    }
    let mut sim = sim_of(vec![prog], cfg(64, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    // 400 instructions; without forwarding each load would cost ~160 cycles
    // (cold lines, one per iteration: 200 * 160 = 32000 cycles minimum).
    assert!(
        sim.counters().cycles < 8_000,
        "forwarded loads should avoid memory latency, took {} cycles",
        sim.counters().cycles
    );
}

#[test]
fn stop_rule_matches_paper_semantics() {
    // "we stopped the simulations after N instructions from any thread had
    // committed" — the faster thread triggers the stop.
    let mut sim = sim_of(
        vec![alu_independent(100_000), alu_chain(100_000)],
        cfg(64, DispatchPolicy::Traditional),
    );
    let outcome = sim.run(1_000);
    assert_eq!(outcome, RunOutcome::TargetReached);
    let c = &sim.counters().threads;
    assert!(c[0].committed >= 1_000 || c[1].committed >= 1_000);
    assert!(c[0].committed.max(c[1].committed) < 1_200, "stop should be prompt");
}

#[test]
fn mispredicted_branches_cost_cycles() {
    // All-taken branches train perfectly; alternating-with-noise ones hurt.
    let well_predicted: Vec<TraceInst> = (0..6_000)
        .map(|i| {
            if i % 3 == 2 {
                TraceInst::branch(pc_of(i as usize), Some(ArchReg::int(20)), false, 0)
            } else {
                TraceInst::alu(pc_of(i as usize), ArchReg::int(1 + (i % 8) as u8), None, None)
            }
        })
        .collect();
    // Branch outcome flips based on a pattern gShare cannot learn (period
    // longer than the history register: pseudo-random via bit mixing).
    let poorly_predicted: Vec<TraceInst> = (0..6_000)
        .map(|i| {
            if i % 3 == 2 {
                let x = (i * 2654435761u64) >> 13 & 1;
                TraceInst::branch(
                    pc_of(i as usize),
                    Some(ArchReg::int(20)),
                    x == 1,
                    8 * ((i % 7) + 2),
                )
            } else {
                TraceInst::alu(pc_of(i as usize), ArchReg::int(1 + (i % 8) as u8), None, None)
            }
        })
        .collect();
    let mut good = sim_of(vec![well_predicted], cfg(64, DispatchPolicy::Traditional));
    good.run(u64::MAX);
    let mut bad = sim_of(vec![poorly_predicted], cfg(64, DispatchPolicy::Traditional));
    bad.run(u64::MAX);
    assert!(
        bad.counters().cycles > good.counters().cycles * 3 / 2,
        "mispredictions should cost cycles: good={} bad={}",
        good.counters().cycles,
        bad.counters().cycles
    );
    assert!(bad.counters().threads[0].mispredicts > good.counters().threads[0].mispredicts);
}

#[test]
fn two_threads_share_the_machine_productively() {
    let n = 3_000;
    let mut solo = sim_of(vec![alu_chain(n)], cfg(64, DispatchPolicy::Traditional));
    solo.run(u64::MAX);
    let mut duo = sim_of(vec![alu_chain(n), alu_chain(n)], cfg(64, DispatchPolicy::Traditional));
    duo.run(u64::MAX);
    // Two serial chains interleave almost perfectly on an SMT core: the
    // pair should take far less than twice the solo time.
    assert!(
        duo.counters().cycles < solo.counters().cycles * 3 / 2,
        "SMT should overlap two serial chains: solo={} duo={}",
        solo.counters().cycles,
        duo.counters().cycles
    );
}

#[test]
fn empty_program_finishes_immediately() {
    let mut sim = sim_of(vec![vec![]], cfg(32, DispatchPolicy::Traditional));
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().total_committed(), 0);
}

#[test]
fn cycle_limit_reports_wedge_with_diagnosis() {
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.max_cycles = 10;
    let mut sim = sim_of(vec![alu_chain(10_000)], c);
    match sim.run(u64::MAX) {
        RunOutcome::Wedged(report) => {
            assert_eq!(report.threads.len(), 1);
            assert!(report.cycle >= 10);
            assert!(!report.summary().is_empty());
        }
        o => panic!("expected Wedged, got {o:?}"),
    }
}

#[test]
fn forced_wedge_names_the_blocked_resource_per_thread() {
    // Thread 0 is a cold load whose two dependents hold the 2-entry IQ for
    // the full 150-cycle memory latency; thread 1 has plenty of independent
    // work that can no longer reach the IQ. Aborting before the miss
    // returns must diagnose t0 as waiting on memory and t1 as blocked on
    // the shared IQ. (The cycle budget allows for t0's initial cold I-fetch
    // of line 0, which itself costs one memory round trip, but lands well
    // inside the data miss that follows it.)
    let t0 = vec![
        TraceInst::load(0, ArchReg::int(1), Some(ArchReg::int(20)), 0x40_0000),
        TraceInst::alu(4, ArchReg::int(2), Some(ArchReg::int(1)), None),
        TraceInst::alu(8, ArchReg::int(3), Some(ArchReg::int(1)), None),
    ];
    let mut c = cfg(2, DispatchPolicy::Traditional);
    c.max_cycles = 250;
    let mut sim = sim_of(vec![t0, alu_independent(2_000)], c);
    let report = match sim.run(u64::MAX) {
        RunOutcome::Wedged(r) => r,
        o => panic!("expected Wedged, got {o:?}"),
    };
    assert_eq!(report.threads[0].blocked_on, StallReason::WaitingMemory);
    assert_eq!(report.threads[1].blocked_on, StallReason::IqFull);
    let head = report.threads[0].rob_head.as_ref().expect("t0 must have a ROB head");
    assert!(head.long_miss, "t0's ROB head must be the outstanding miss");
    assert_eq!(report.iq.occupancy, report.iq.capacity, "the IQ must really be full");
    let s = report.summary();
    assert!(s.contains("WaitingMemory") && s.contains("IqFull"), "summary:\n{s}");
}

/// The paper's OOO-dispatch deadlock, distilled: two cold loads leave
/// `r3 = r1 + r2` with two non-ready operands (an NDI), so OOO dispatch
/// bypasses it; its two single-source dependents are dispatchable and
/// occupy the whole 2-entry IQ waiting on `r3`. Once the loads return the
/// NDI is ready to dispatch but the IQ never drains — a true wedge.
fn two_ndi_pileup_program() -> Vec<TraceInst> {
    vec![
        TraceInst::load(0, ArchReg::int(1), Some(ArchReg::int(20)), 0x40_0000),
        TraceInst::load(4, ArchReg::int(2), Some(ArchReg::int(21)), 0x80_0000),
        TraceInst::alu(8, ArchReg::int(3), Some(ArchReg::int(1)), Some(ArchReg::int(2))),
        TraceInst::alu(12, ArchReg::int(4), Some(ArchReg::int(3)), None),
        TraceInst::alu(16, ArchReg::int(5), Some(ArchReg::int(3)), None),
    ]
}

#[test]
fn two_ndi_pileup_wedges_without_a_recovery_mechanism() {
    let mut c = cfg(2, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::None;
    c.progress_check_cycles = 2_000;
    let mut sim = sim_of(vec![two_ndi_pileup_program()], c);
    match sim.run(u64::MAX) {
        RunOutcome::Wedged(report) => {
            assert_eq!(report.threads.len(), 1);
            assert!(!report.summary().is_empty());
        }
        o => panic!("expected Wedged under DeadlockMode::None, got {o:?}"),
    }
}

#[test]
fn dab_recovers_the_two_ndi_pileup() {
    let mut c = cfg(2, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::Dab { size: 2 };
    c.progress_check_cycles = 2_000;
    let mut sim = sim_of(vec![two_ndi_pileup_program()], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished, "the DAB must un-wedge the pileup");
    assert_eq!(sim.counters().threads[0].committed, 5);
    assert!(
        sim.counters().threads[0].dab_dispatches > 0,
        "recovery must route the ready NDI through the DAB"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn watchdog_recovers_the_two_ndi_pileup() {
    let mut c = cfg(2, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::Watchdog { timeout: 250 };
    c.progress_check_cycles = 2_000;
    let mut sim = sim_of(vec![two_ndi_pileup_program()], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished, "watchdog must un-wedge the pileup");
    assert_eq!(sim.counters().threads[0].committed, 5, "commits must resume after the flush");
    assert!(
        sim.counters().watchdog_flushes > 0,
        "recovery must be attributable to the watchdog, not luck"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn reset_measurement_keeps_machine_warm() {
    let mut sim = sim_of(vec![alu_independent(4_000)], cfg(64, DispatchPolicy::Traditional));
    sim.run(1_000);
    let warm_cycles_first = sim.counters().cycles;
    sim.reset_measurement();
    assert_eq!(sim.counters().cycles, 0);
    assert_eq!(sim.counters().total_committed(), 0);
    sim.run(1_000);
    assert!(sim.counters().threads[0].committed >= 1_000);
    assert!(sim.counters().cycles > 0);
    let _ = warm_cycles_first;
}

#[test]
fn stall_attribution_counters_stay_within_bounds() {
    // NDI-heavy code on a tiny shared IQ: dispatch stalls are charged to
    // the NDI condition and to the full IQ; each counter is bumped at most
    // once per thread per cycle.
    let mut sim = sim_of(
        vec![figure2_program(40), alu_independent(2_000)],
        cfg(4, DispatchPolicy::TwoOpBlock),
    );
    sim.run(u64::MAX);
    let cycles = sim.counters().cycles;
    for t in &sim.counters().threads {
        assert!(t.ndi_blocked_cycles <= cycles);
        assert!(t.iq_full_cycles <= cycles);
        assert!(t.rob_full_cycles + t.lsq_full_cycles <= cycles);
        assert_eq!(
            t.dispatch_stall_cycles(),
            t.ndi_blocked_cycles + t.iq_full_cycles + t.rob_full_cycles + t.lsq_full_cycles
        );
    }
    assert!(
        sim.counters().threads[0].ndi_blocked_cycles > 0,
        "the figure-2 NDIs must have blocked dispatch"
    );
    assert!(
        sim.counters().threads[1].iq_full_cycles > 0,
        "the 4-entry IQ must have turned thread 1 away"
    );
}

#[test]
fn rename_stalls_attribute_to_the_full_rob() {
    // A cold pointer-chase load followed by a flood of independent ALU
    // work: the in-flight window grows to the 96-entry ROB while the
    // 150-cycle miss is outstanding, so rename charges stalls to the ROB.
    let mut prog = vec![TraceInst::load(0, ArchReg::int(1), Some(ArchReg::int(1)), 0x50_0000)];
    for i in 1..400usize {
        prog.push(TraceInst::alu(pc_of(i), ArchReg::int(2 + (i % 8) as u8), None, None));
    }
    let mut sim = sim_of(vec![prog], cfg(64, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    let t = &sim.counters().threads[0];
    assert!(t.rob_full_cycles > 0, "the miss must back the window up into the ROB");
}

#[test]
fn rename_stalls_attribute_to_the_full_lsq() {
    // The same blocking miss followed by 60 stores: 61 memory ops exceed
    // the 48-entry LSQ but not the 96-entry ROB, so the stall lands on the
    // LSQ and never on the ROB.
    let mut prog = vec![TraceInst::load(0, ArchReg::int(1), Some(ArchReg::int(2)), 0x60_0000)];
    for i in 1..61usize {
        prog.push(TraceInst::store(
            pc_of(i),
            Some(ArchReg::int(3)),
            Some(ArchReg::int(4)),
            0x7000 + i as u64 * 8,
        ));
    }
    let mut sim = sim_of(vec![prog], cfg(64, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    let t = &sim.counters().threads[0];
    assert!(t.lsq_full_cycles > 0, "the store window must fill the LSQ behind the miss");
    assert_eq!(t.rob_full_cycles, 0, "a 61-entry window cannot fill the 96-entry ROB");
}

/// Frozen counterexamples: programs found by the deadlock fuzzing campaign,
/// replayed deterministically on the configurations they were recorded
/// against. A [`Tracer`] cross-checks the pipeline against an in-order
/// dataflow oracle: every thread commits its trace exactly once in program
/// order, and every register consumer issues strictly after the in-thread
/// last writer of that register.
mod frozen_cases {
    use super::*;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    /// Compact instruction encoding: ('A', dest, src1, src2) ALU,
    /// ('L', dest, base, addr) load, ('S', data, base, addr) store,
    /// ('B', cond, taken, target) branch. Register 0 means "none".
    type Enc = (char, u64, u64, u64);

    fn reg(n: u64) -> Option<ArchReg> {
        if n == 0 {
            None
        } else {
            Some(ArchReg::int(n as u8))
        }
    }

    fn decode(prog: &[Enc]) -> Vec<TraceInst> {
        prog.iter()
            .enumerate()
            .map(|(i, &(op, a, b, c))| {
                let pc = i as u64 * 4;
                match op {
                    'A' => TraceInst::alu(pc, ArchReg::int(a as u8), reg(b), reg(c)),
                    'L' => TraceInst::load(pc, ArchReg::int(a as u8), reg(b), c),
                    'S' => TraceInst::store(pc, reg(a), reg(b), c),
                    'B' => TraceInst::branch(pc, reg(a), b == 1, c),
                    _ => unreachable!("bad opcode {op:?}"),
                }
            })
            .collect()
    }

    /// In-thread register dataflow edges: (producer index, consumer index)
    /// pairs where the consumer reads the register last written by the
    /// producer.
    fn dataflow_edges(prog: &[Enc]) -> Vec<(u64, u64)> {
        let mut last_writer: HashMap<u64, u64> = HashMap::new();
        let mut edges = Vec::new();
        for (i, &(op, a, b, c)) in prog.iter().enumerate() {
            let i = i as u64;
            let srcs = match op {
                'A' => [b, c],
                'L' => [b, 0],
                'S' => [a, b],
                'B' => [a, 0],
                _ => unreachable!(),
            };
            for s in srcs {
                if s != 0 {
                    if let Some(&p) = last_writer.get(&s) {
                        edges.push((p, i));
                    }
                }
            }
            let dest = match op {
                'A' | 'L' => a,
                _ => 0,
            };
            if dest != 0 {
                last_writer.insert(dest, i);
            }
        }
        edges
    }

    #[derive(Default)]
    struct Observed {
        /// Per-thread trace indices in commit order.
        commits: Vec<Vec<u64>>,
        /// Last issue cycle per (thread, trace index); re-issues overwrite.
        issues: HashMap<(usize, u64), u64>,
    }

    struct OracleTracer(Arc<Mutex<Observed>>);

    impl Tracer for OracleTracer {
        fn on_issue(&mut self, cycle: u64, thread: usize, trace_idx: u64) {
            self.0.lock().unwrap().issues.insert((thread, trace_idx), cycle);
        }

        fn on_commit(&mut self, _cycle: u64, thread: usize, trace_idx: u64) {
            let mut o = self.0.lock().unwrap();
            if o.commits.len() <= thread {
                o.commits.resize_with(thread + 1, Vec::new);
            }
            o.commits[thread].push(trace_idx);
        }
    }

    fn run_and_check(programs: &[&[Enc]], c: SimConfig) {
        let observed = Arc::new(Mutex::new(Observed::default()));
        let mut sim = sim_of(programs.iter().map(|p| decode(p)).collect(), c);
        sim.set_tracer(Box::new(OracleTracer(observed.clone())));
        let outcome = sim.run(u64::MAX);
        assert!(matches!(outcome, RunOutcome::AllFinished), "frozen case wedged: {outcome:?}");
        sim.assert_quiescent_invariants();
        let o = observed.lock().unwrap();
        for (t, prog) in programs.iter().enumerate() {
            let expected: Vec<u64> = (0..prog.len() as u64).collect();
            assert_eq!(o.commits[t], expected, "thread {t} must commit in program order");
            for (p, consumer) in dataflow_edges(prog) {
                let pi = o.issues[&(t, p)];
                let ci = o.issues[&(t, consumer)];
                assert!(
                    ci > pi,
                    "t{t}: inst {consumer} issued at cycle {ci}, not after its \
                     producer {p} at cycle {pi}"
                );
            }
        }
    }

    #[rustfmt::skip]
    const CASE_34B15342: &[Enc] = &[
        ('S',0,0,0), ('A',1,0,0), ('A',1,0,0), ('L',3,25,2674347), ('A',8,24,28), ('A',12,0,0),
        ('B',27,1,5664), ('B',4,0,7648), ('A',21,0,0), ('L',10,1,3852626), ('L',7,13,3124748),
        ('B',0,0,8056), ('L',19,5,1267206), ('S',0,3,1151766), ('B',0,1,7256), ('B',0,0,7400),
        ('B',0,1,2524), ('S',19,28,3221959), ('B',0,1,4760), ('S',0,7,1011005), ('S',0,3,2891603),
        ('A',20,0,7), ('B',11,1,6220), ('A',18,29,10), ('L',20,0,663114), ('A',12,0,0),
        ('B',0,1,3616), ('L',15,0,1154960), ('S',0,6,3406825), ('L',21,0,753584), ('B',0,1,7244),
        ('A',10,26,3), ('S',0,15,2839755), ('L',28,1,3998511), ('S',26,0,3900917),
        ('L',16,0,4124511), ('A',18,11,12), ('B',0,1,24), ('A',15,0,0), ('B',14,1,4524),
        ('L',29,27,1281929), ('L',21,0,1932369), ('A',19,25,0), ('B',24,0,1792), ('B',0,1,2804),
        ('S',10,26,1817317), ('L',25,10,3175793), ('B',22,0,6748), ('A',27,6,0), ('A',12,21,29),
        ('L',22,0,129495), ('A',7,11,13), ('B',8,1,4348), ('S',6,3,4130057), ('L',11,8,1899144),
        ('L',26,24,1450275), ('L',26,18,4146750), ('S',0,0,1287238), ('A',27,0,7), ('A',11,0,0),
        ('B',0,0,6780), ('A',9,0,23), ('S',4,3,1376302), ('S',1,5,938844), ('A',27,15,0),
        ('A',11,25,8), ('B',0,0,5004), ('A',27,1,17), ('S',19,0,1230540), ('L',29,0,314345),
        ('B',6,1,1272), ('S',0,0,2303103), ('A',19,0,0), ('A',2,5,5), ('B',19,1,7812), ('A',8,23,11),
        ('B',0,0,4264), ('A',20,19,0), ('A',19,8,7), ('S',0,28,3387285), ('B',0,1,5036),
        ('S',19,0,1140214), ('A',1,0,12), ('A',19,0,0), ('L',12,0,3977926), ('B',26,1,4060),
        ('S',3,1,94085),
    ];

    #[rustfmt::skip]
    const CASE_6945E32E_P1: &[Enc] = &[
        ('A',1,0,0), ('L',9,0,3600246), ('L',3,0,1019643), ('L',3,0,3401), ('B',0,1,1764),
        ('S',13,0,3910487), ('L',6,0,2876409), ('B',0,0,5892), ('B',15,0,6028), ('B',0,0,2988),
        ('S',0,29,1590091), ('L',11,0,1399853), ('S',0,0,1573568), ('A',14,0,24), ('A',28,0,0),
        ('S',18,0,725817), ('L',14,0,3036830), ('S',0,9,2614466), ('B',0,1,4916), ('B',8,1,5940),
        ('B',15,1,3148), ('A',13,26,27), ('L',14,18,1276393), ('B',0,1,1860), ('S',0,0,1601754),
        ('S',9,5,1978364), ('S',0,25,2935547), ('L',1,0,394996), ('A',16,13,0), ('B',7,1,4728),
        ('L',4,0,15442), ('A',25,15,7), ('L',4,0,2528494), ('S',28,0,1969367), ('S',26,0,3319162),
        ('A',23,25,5), ('A',9,8,0), ('B',24,0,6080), ('L',2,0,2274701), ('S',20,16,856978),
        ('L',21,0,2007373), ('B',0,0,3496), ('A',7,10,0), ('B',0,1,6016), ('B',14,1,3052),
        ('S',21,27,2259063), ('B',0,0,404), ('S',0,25,1228517), ('S',14,0,3145227), ('B',3,1,4776),
        ('A',13,0,0), ('A',6,0,23), ('L',13,0,2193990), ('B',25,1,5420), ('S',0,0,200398),
        ('S',26,0,2153911), ('B',3,1,5108), ('S',0,28,3254620), ('L',7,0,3214563), ('A',14,24,17),
        ('A',3,13,15), ('L',5,11,1924266), ('L',10,29,141203), ('S',0,17,1597593),
        ('S',27,1,3916346), ('A',22,0,0), ('B',0,1,7940), ('A',9,0,0), ('S',7,0,2729392),
        ('B',0,1,6944), ('B',23,1,7684), ('L',7,0,2304423), ('S',12,25,3267377), ('B',5,0,6132),
        ('B',0,0,2088), ('L',25,25,882488), ('A',1,0,0), ('L',27,0,45020), ('A',5,17,1),
        ('B',0,1,3132), ('B',3,0,1768), ('L',14,0,3829188), ('L',9,0,794366), ('S',0,0,2374078),
        ('A',18,13,0), ('L',16,0,289264), ('S',0,14,539807), ('L',3,0,2218600), ('B',17,0,3028),
        ('L',12,15,2590319), ('S',0,0,1676047), ('S',0,0,1449664), ('B',0,1,5656), ('S',0,8,2865388),
        ('S',0,0,3137833), ('S',21,0,370431),
    ];

    #[rustfmt::skip]
    const CASE_6945E32E_P2: &[Enc] = &[
        ('S',22,4,664222), ('A',16,3,20), ('S',0,0,2215008), ('S',10,2,3133403), ('S',0,0,162617),
        ('A',19,3,28), ('S',0,13,1609773), ('S',11,1,1247787), ('L',19,0,2917471), ('S',0,3,1938430),
        ('B',0,1,6000), ('L',6,0,2233685), ('L',22,14,4014862), ('L',18,1,803148), ('S',0,1,2245423),
        ('A',13,0,8), ('A',12,17,0), ('B',0,0,2848), ('S',0,29,3115174),
    ];

    #[test]
    fn frozen_case_34b15342_commits_in_order() {
        let mut c = cfg(8, DispatchPolicy::TwoOpBlockOooFiltered);
        c.deadlock = DeadlockMode::Dab { size: 2 };
        run_and_check(&[CASE_34B15342], c);
    }

    #[test]
    fn frozen_case_6945e32e_commits_in_order_on_every_recorded_config() {
        let ooo_dab = {
            let mut c = cfg(8, DispatchPolicy::TwoOpBlockOoo);
            c.deadlock = DeadlockMode::Dab { size: 2 };
            c
        };
        let ooo_wdog = {
            let mut c = cfg(8, DispatchPolicy::TwoOpBlockOoo);
            c.deadlock = DeadlockMode::Watchdog { timeout: 500 };
            c
        };
        let traditional = cfg(16, DispatchPolicy::Traditional);
        for c in [ooo_dab, ooo_wdog, traditional] {
            run_and_check(&[CASE_6945E32E_P1, CASE_6945E32E_P2], c);
        }
    }
}
