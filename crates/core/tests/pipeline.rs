//! Pipeline-level tests driving the simulator with hand-written programs.

use smt_core::{DeadlockMode, DispatchPolicy, RunOutcome, SimConfig, Simulator};
use smt_isa::{ArchReg, TraceInst};
use smt_workload::{InstGenerator, ProgramTrace};

fn cfg(iq: usize, policy: DispatchPolicy) -> SimConfig {
    let mut c = SimConfig::paper(iq, policy);
    c.max_cycles = 500_000;
    c
}

fn sim_of(programs: Vec<Vec<TraceInst>>, c: SimConfig) -> Simulator {
    let streams: Vec<Box<dyn InstGenerator>> = programs
        .into_iter()
        .map(|p| Box::new(ProgramTrace::once(p)) as Box<dyn InstGenerator>)
        .collect();
    Simulator::new(c, streams)
}

/// PC helper: hand programs loop over a small (I-cache-resident) footprint
/// so instruction-fetch behaves like real loop code rather than a cold
/// straight-line sweep.
fn pc_of(i: usize) -> u64 {
    (i as u64 % 1024) * 4
}

/// A straight-line chain of dependent ALU ops.
fn alu_chain(n: usize) -> Vec<TraceInst> {
    (0..n)
        .map(|i| {
            TraceInst::alu(
                pc_of(i),
                ArchReg::int(1 + (i % 8) as u8),
                Some(ArchReg::int(1 + ((i + 7) % 8) as u8)),
                None,
            )
        })
        .collect()
}

/// Independent ALU ops (maximal ILP).
fn alu_independent(n: usize) -> Vec<TraceInst> {
    (0..n)
        .map(|i| TraceInst::alu(pc_of(i), ArchReg::int(1 + (i % 20) as u8), None, None))
        .collect()
}

#[test]
fn single_thread_program_commits_everything() {
    let n = 500;
    let mut sim = sim_of(vec![alu_independent(n)], cfg(64, DispatchPolicy::Traditional));
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n as u64);
}

#[test]
fn all_policies_commit_identical_work() {
    for policy in [
        DispatchPolicy::Traditional,
        DispatchPolicy::TwoOpBlock,
        DispatchPolicy::TwoOpBlockOoo,
        DispatchPolicy::TwoOpBlockOooFiltered,
    ] {
        let n = 400;
        let mut sim =
            sim_of(vec![alu_chain(n), alu_independent(n)], cfg(32, policy));
        let outcome = sim.run(u64::MAX);
        assert_eq!(outcome, RunOutcome::AllFinished, "{policy:?}");
        assert_eq!(sim.counters().threads[0].committed, n as u64, "{policy:?} thread 0");
        assert_eq!(sim.counters().threads[1].committed, n as u64, "{policy:?} thread 1");
    }
}

#[test]
fn independent_ops_run_faster_than_a_chain() {
    // Long enough to amortize cold-start I-cache misses.
    let n = 20_000;
    let mut chain = sim_of(vec![alu_chain(n)], cfg(64, DispatchPolicy::Traditional));
    chain.run(u64::MAX);
    let mut indep = sim_of(vec![alu_independent(n)], cfg(64, DispatchPolicy::Traditional));
    indep.run(u64::MAX);
    let chain_ipc = chain.counters().throughput_ipc();
    let indep_ipc = indep.counters().throughput_ipc();
    assert!(
        indep_ipc > 2.0 * chain_ipc,
        "independent ILP {indep_ipc} should far exceed serial chain {chain_ipc}"
    );
    assert!(chain_ipc <= 1.05, "a dependent chain cannot exceed 1 IPC, got {chain_ipc}");
}

#[test]
fn ipc_never_exceeds_machine_width() {
    let mut sim = sim_of(vec![alu_independent(5_000)], cfg(128, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    assert!(sim.counters().throughput_ipc() <= 8.0);
}

#[test]
fn cache_miss_slows_down_dependent_load() {
    // Two programs: one whose loads hit a single hot line, one whose loads
    // chase distinct lines (always cold).
    // Both versions chase pointers (each load's address register is the
    // previous load's destination), so load latencies serialize and the
    // cache behaviour is what differentiates them.
    let hot: Vec<TraceInst> = (0..400)
        .map(|i| TraceInst::load(pc_of(i as usize), ArchReg::int(1), Some(ArchReg::int(1)), 0x1000))
        .collect();
    let cold: Vec<TraceInst> = (0..400)
        .map(|i| {
            TraceInst::load(pc_of(i as usize), ArchReg::int(1), Some(ArchReg::int(1)), 0x10_0000 + i * 4096)
        })
        .collect();
    let mut h = sim_of(vec![hot], cfg(64, DispatchPolicy::Traditional));
    h.run(u64::MAX);
    let mut c = sim_of(vec![cold], cfg(64, DispatchPolicy::Traditional));
    c.run(u64::MAX);
    assert!(
        c.counters().cycles > h.counters().cycles * 2,
        "cold loads ({}) must be much slower than hot loads ({})",
        c.counters().cycles,
        h.counters().cycles
    );
}

/// The Figure 2 scenario, end to end: a long-latency producer pair makes I2
/// an NDI; under 2OP_BLOCK the thread stalls behind it, under OOO dispatch
/// the machine keeps going and finishes sooner.
fn figure2_program(n_repeats: usize) -> Vec<TraceInst> {
    let mut prog = Vec::new();
    let mut pc = 0u64;
    for rep in 0..n_repeats {
        let base = 0x100_0000 + (rep as u64) * 64 * 1024;
        // I0: load r1 <- [cold] (long latency)
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(20)), base));
        pc += 4;
        // I1: load r2 <- [cold] (long latency)
        prog.push(TraceInst::load(pc, ArchReg::int(2), Some(ArchReg::int(21)), base + 4096));
        pc += 4;
        // I2: r3 <- r1 + r2   (two non-ready sources: the NDI)
        prog.push(TraceInst::alu(pc, ArchReg::int(3), Some(ArchReg::int(1)), Some(ArchReg::int(2))));
        pc += 4;
        // I3..: a pile of independent work (the HDIs)
        for k in 0..20 {
            prog.push(TraceInst::alu(pc, ArchReg::int(4 + (k % 16)), Some(ArchReg::int(22)), None));
            pc += 4;
        }
    }
    prog
}

#[test]
fn figure2_ooo_dispatch_beats_two_op_block() {
    let prog = figure2_program(60);
    let mut blocked = sim_of(vec![prog.clone()], cfg(32, DispatchPolicy::TwoOpBlock));
    blocked.run(u64::MAX);
    let mut ooo = sim_of(vec![prog], cfg(32, DispatchPolicy::TwoOpBlockOoo));
    ooo.run(u64::MAX);
    let b = blocked.counters().cycles;
    let o = ooo.counters().cycles;
    assert!(
        o * 3 < b * 2,
        "OOO dispatch ({o} cycles) should clearly beat 2OP_BLOCK ({b} cycles) on NDI-heavy code"
    );
    let hdis: u64 = ooo.counters().threads.iter().map(|t| t.hdis_dispatched).sum();
    assert!(hdis > 0, "the HDIs must actually have been dispatched out of order");
}

#[test]
fn two_op_block_never_dispatches_two_nonready() {
    let prog = figure2_program(40);
    let mut sim = sim_of(vec![prog], cfg(32, DispatchPolicy::TwoOpBlock));
    sim.run(u64::MAX);
    let t = &sim.counters().threads[0];
    assert_eq!(
        t.dispatched_by_nonready[2], 0,
        "a 1-comparator IQ must never receive an instruction with 2 non-ready sources"
    );
    assert!(t.ndi_blocked_cycles > 0, "the NDIs must actually have blocked dispatch");
}

#[test]
fn traditional_dispatches_two_nonready_instructions() {
    let prog = figure2_program(40);
    let mut sim = sim_of(vec![prog], cfg(32, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    assert!(
        sim.counters().threads[0].dispatched_by_nonready[2] > 0,
        "the traditional 2-comparator IQ should accept 2-non-ready instructions"
    );
}

#[test]
fn dab_prevents_deadlock_with_tiny_iq() {
    // A tiny IQ plus OOO dispatch: younger dependent instructions can fill
    // the IQ while the oldest is still undispatched — exactly the paper's
    // deadlock scenario. The DAB must guarantee forward progress.
    let mut prog = Vec::new();
    let mut pc = 0;
    for rep in 0..50u64 {
        let base = 0x200_0000 + rep * 64 * 1024;
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(20)), base));
        pc += 4;
        // Long chain of instructions dependent on the load.
        for _ in 0..12 {
            prog.push(TraceInst::alu(pc, ArchReg::int(1), Some(ArchReg::int(1)), None));
            pc += 4;
        }
    }
    let n = prog.len() as u64;
    let mut c = cfg(4, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::Dab { size: 2 };
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    sim.assert_quiescent_invariants();
}

#[test]
fn arbitrated_dab_also_prevents_deadlock() {
    let prog = figure2_program(40);
    let n = prog.len() as u64;
    let mut c = cfg(4, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::DabArbitrated { size: 2 };
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    sim.assert_quiescent_invariants();
}

#[test]
fn watchdog_mode_also_makes_progress() {
    let prog = figure2_program(30);
    let n = prog.len() as u64;
    let mut c = cfg(4, DispatchPolicy::TwoOpBlockOoo);
    c.deadlock = DeadlockMode::Watchdog { timeout: 400 };
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    sim.assert_quiescent_invariants();
}

#[test]
fn tag_eliminated_scheduler_completes_all_work() {
    let n = 400;
    let mut sim = sim_of(
        vec![figure2_program(20), alu_chain(n)],
        cfg(32, DispatchPolicy::TagEliminated),
    );
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[1].committed, n as u64);
    sim.assert_quiescent_invariants();
}

#[test]
fn tag_eliminated_dispatches_two_nonready_into_two_comp_entries() {
    let prog = figure2_program(40);
    let mut c = cfg(32, DispatchPolicy::TagEliminated);
    c.iq_layout = Some([8, 16, 8]);
    let mut sim = sim_of(vec![prog], c);
    sim.run(u64::MAX);
    let t = &sim.counters().threads[0];
    assert!(
        t.dispatched_by_nonready[2] > 0,
        "2-non-ready instructions must reach the 2-comparator entries"
    );
}

#[test]
fn tag_eliminated_sits_between_two_op_block_and_traditional() {
    // Same comparator budget as 2OP_BLOCK (64 per 64-entry queue), but the
    // heterogeneous layout can hold some 2-non-ready instructions: on
    // NDI-heavy code it should not do worse than 2OP_BLOCK.
    let prog = figure2_program(80);
    let run = |policy: DispatchPolicy| {
        let mut sim = sim_of(vec![prog.clone()], cfg(32, policy));
        sim.run(u64::MAX);
        sim.counters().cycles
    };
    let blocked = run(DispatchPolicy::TwoOpBlock);
    let tag_elim = run(DispatchPolicy::TagEliminated);
    assert!(
        tag_elim <= blocked,
        "tag-eliminated ({tag_elim}) should not trail 2OP_BLOCK ({blocked}) on NDI-heavy code"
    );
}

#[test]
fn wrong_path_mode_completes_and_squashes() {
    let mut c = cfg(48, DispatchPolicy::TwoOpBlockOoo);
    c.wrong_path = true;
    // A branchy program with an unlearnable pattern forces mispredicts.
    let prog: Vec<TraceInst> = (0..4_000)
        .map(|i| {
            if i % 4 == 3 {
                let x = (i * 2654435761u64) >> 13 & 1;
                TraceInst::branch(pc_of(i as usize), Some(ArchReg::int(20)), x == 1, 64)
            } else {
                TraceInst::alu(pc_of(i as usize), ArchReg::int(1 + (i % 8) as u8), None, None)
            }
        })
        .collect();
    let n = prog.len() as u64;
    let mut sim = sim_of(vec![prog], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n, "wrong-path work never commits");
    assert!(
        sim.counters().threads[0].wrong_path_fetched > 0,
        "mispredicts must have fetched down the wrong path"
    );
    assert!(
        sim.counters().threads[0].fetched > n,
        "wrong-path instructions inflate the fetch count"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn wrong_path_costs_cycles_but_preserves_results() {
    let prog = figure2_program(50);
    let n = prog.len() as u64;
    let run = |wrong_path: bool| {
        let mut c = cfg(32, DispatchPolicy::Traditional);
        c.wrong_path = wrong_path;
        let mut sim = sim_of(vec![prog.clone()], c);
        assert_eq!(sim.run(u64::MAX), RunOutcome::AllFinished);
        assert_eq!(sim.counters().threads[0].committed, n);
        sim.assert_quiescent_invariants();
        sim.counters().cycles
    };
    // figure2_program has no branches, so both modes behave identically.
    assert_eq!(run(false), run(true));
}

#[test]
fn half_price_scheduler_completes_with_mild_slowdown() {
    // The slow second tag can only add cycles, never change results.
    let prog = figure2_program(60);
    let n = prog.len() as u64;
    let mut trad = sim_of(vec![prog.clone()], cfg(32, DispatchPolicy::Traditional));
    trad.run(u64::MAX);
    let mut hp = sim_of(vec![prog], cfg(32, DispatchPolicy::HalfPrice));
    let outcome = hp.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(hp.counters().threads[0].committed, n);
    hp.assert_quiescent_invariants();
    let (t, h) = (trad.counters().cycles, hp.counters().cycles);
    assert!(h >= t, "the slow bus cannot make things faster: {h} vs {t}");
    assert!(h <= t + t / 5, "Half-Price should cost only a few percent: {h} vs {t}");
}

#[test]
fn packed_scheduler_completes_and_packs() {
    let n = 600;
    // Mostly single-source work: the packing queue should behave like a
    // double-capacity 2OP_BLOCK queue.
    let mut sim = sim_of(
        vec![alu_chain(n), alu_independent(n)],
        cfg(16, DispatchPolicy::Packed), // 8 physical entries, 16 logical
    );
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().total_committed(), 2 * n as u64);
    sim.assert_quiescent_invariants();
}

#[test]
fn packed_scheduler_handles_two_nonready_instructions() {
    let prog = figure2_program(40);
    let n = prog.len() as u64;
    let mut sim = sim_of(vec![prog], cfg(32, DispatchPolicy::Packed));
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    assert!(
        sim.counters().threads[0].dispatched_by_nonready[2] > 0,
        "wide occupants must pass through the packed queue"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn flush_fetch_policy_completes_and_flushes() {
    use smt_core::config::FetchPolicy;
    // Memory-missing loads followed by dependent work: FLUSH should squash
    // and refetch the dependents while the miss is outstanding.
    let prog = figure2_program(60);
    let n = prog.len() as u64;
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.fetch_policy = FetchPolicy::Flush;
    let mut sim = sim_of(vec![prog.clone(), alu_independent(800)], c);
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    assert!(
        sim.counters().fetch_policy_flushes > 0,
        "memory misses must have triggered FLUSH squashes"
    );
    assert!(
        sim.counters().threads[0].fetched > n,
        "flushed instructions are fetched more than once"
    );
    sim.assert_quiescent_invariants();
}

#[test]
fn stall_fetch_policy_completes() {
    use smt_core::config::FetchPolicy;
    let prog = figure2_program(40);
    let n = prog.len() as u64;
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.fetch_policy = FetchPolicy::Stall;
    let mut sim = sim_of(vec![prog, alu_independent(600)], c);
    assert_eq!(sim.run(u64::MAX), RunOutcome::AllFinished);
    assert_eq!(sim.counters().threads[0].committed, n);
    assert_eq!(sim.counters().fetch_policy_flushes, 0, "STALL never squashes");
    sim.assert_quiescent_invariants();
}

#[test]
fn round_robin_fetch_policy_completes() {
    use smt_core::config::FetchPolicy;
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.fetch_policy = FetchPolicy::RoundRobin;
    let mut sim = sim_of(vec![alu_chain(500), alu_independent(500)], c);
    assert_eq!(sim.run(u64::MAX), RunOutcome::AllFinished);
    assert_eq!(sim.counters().total_committed(), 1000);
    sim.assert_quiescent_invariants();
}

#[test]
fn flush_protects_coscheduled_thread_from_memory_hog() {
    use smt_core::config::FetchPolicy;
    // Thread 0 misses to memory constantly; thread 1 is pure compute.
    // While the hog's misses are outstanding, FLUSH frees the shared IQ,
    // so the compute thread should reach its commit target at least as
    // fast as under plain ICOUNT (the effect reported by Tullsen & Brown
    // [15] — FLUSH trades the hog's memory-level parallelism for
    // co-runner throughput).
    let hog = figure2_program(2_000);
    let compute = alu_independent(30_000);
    let run = |policy: FetchPolicy| {
        let mut c = cfg(32, DispatchPolicy::Traditional);
        c.fetch_policy = policy;
        let mut sim = sim_of(vec![hog.clone(), compute.clone()], c);
        // Stop when the compute thread commits 10k (the hog is far slower).
        sim.run(10_000);
        sim.counters().cycles
    };
    let icount = run(FetchPolicy::ICount);
    let flush = run(FetchPolicy::Flush);
    assert!(
        flush <= icount + icount / 10,
        "compute thread under FLUSH ({flush} cycles) should be at least as fast as          under ICOUNT ({icount} cycles)"
    );
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = sim_of(
            vec![figure2_program(30), alu_chain(300)],
            cfg(48, DispatchPolicy::TwoOpBlockOoo),
        );
        sim.run(u64::MAX);
        (sim.counters().cycles, sim.counters().total_committed())
    };
    assert_eq!(run(), run());
}

#[test]
fn store_load_forwarding_is_fast() {
    // Store then immediately load the same address, repeatedly, at cold
    // addresses: with forwarding the load never pays the memory latency.
    let mut prog = Vec::new();
    let mut pc = 0;
    for rep in 0..200u64 {
        let addr = 0x300_0000 + rep * 8;
        prog.push(TraceInst::store(pc, Some(ArchReg::int(20)), Some(ArchReg::int(21)), addr));
        pc += 4;
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(22)), addr));
        pc += 4;
    }
    let mut sim = sim_of(vec![prog], cfg(64, DispatchPolicy::Traditional));
    sim.run(u64::MAX);
    // 400 instructions; without forwarding each load would cost ~160 cycles
    // (cold lines, one per iteration: 200 * 160 = 32000 cycles minimum).
    assert!(
        sim.counters().cycles < 8_000,
        "forwarded loads should avoid memory latency, took {} cycles",
        sim.counters().cycles
    );
}

#[test]
fn stop_rule_matches_paper_semantics() {
    // "we stopped the simulations after N instructions from any thread had
    // committed" — the faster thread triggers the stop.
    let mut sim = sim_of(
        vec![alu_independent(100_000), alu_chain(100_000)],
        cfg(64, DispatchPolicy::Traditional),
    );
    let outcome = sim.run(1_000);
    assert_eq!(outcome, RunOutcome::TargetReached);
    let c = &sim.counters().threads;
    assert!(c[0].committed >= 1_000 || c[1].committed >= 1_000);
    assert!(c[0].committed.max(c[1].committed) < 1_200, "stop should be prompt");
}

#[test]
fn mispredicted_branches_cost_cycles() {
    // All-taken branches train perfectly; alternating-with-noise ones hurt.
    let well_predicted: Vec<TraceInst> = (0..6_000)
        .map(|i| {
            if i % 3 == 2 {
                TraceInst::branch(pc_of(i as usize), Some(ArchReg::int(20)), false, 0)
            } else {
                TraceInst::alu(pc_of(i as usize), ArchReg::int(1 + (i % 8) as u8), None, None)
            }
        })
        .collect();
    // Branch outcome flips based on a pattern gShare cannot learn (period
    // longer than the history register: pseudo-random via bit mixing).
    let poorly_predicted: Vec<TraceInst> = (0..6_000)
        .map(|i| {
            if i % 3 == 2 {
                let x = (i * 2654435761u64) >> 13 & 1;
                TraceInst::branch(pc_of(i as usize), Some(ArchReg::int(20)), x == 1, 8 * ((i % 7) + 2))
            } else {
                TraceInst::alu(pc_of(i as usize), ArchReg::int(1 + (i % 8) as u8), None, None)
            }
        })
        .collect();
    let mut good = sim_of(vec![well_predicted], cfg(64, DispatchPolicy::Traditional));
    good.run(u64::MAX);
    let mut bad = sim_of(vec![poorly_predicted], cfg(64, DispatchPolicy::Traditional));
    bad.run(u64::MAX);
    assert!(
        bad.counters().cycles > good.counters().cycles * 3 / 2,
        "mispredictions should cost cycles: good={} bad={}",
        good.counters().cycles,
        bad.counters().cycles
    );
    assert!(bad.counters().threads[0].mispredicts > good.counters().threads[0].mispredicts);
}

#[test]
fn two_threads_share_the_machine_productively() {
    let n = 3_000;
    let mut solo = sim_of(vec![alu_chain(n)], cfg(64, DispatchPolicy::Traditional));
    solo.run(u64::MAX);
    let mut duo =
        sim_of(vec![alu_chain(n), alu_chain(n)], cfg(64, DispatchPolicy::Traditional));
    duo.run(u64::MAX);
    // Two serial chains interleave almost perfectly on an SMT core: the
    // pair should take far less than twice the solo time.
    assert!(
        duo.counters().cycles < solo.counters().cycles * 3 / 2,
        "SMT should overlap two serial chains: solo={} duo={}",
        solo.counters().cycles,
        duo.counters().cycles
    );
}

#[test]
fn empty_program_finishes_immediately() {
    let mut sim = sim_of(vec![vec![]], cfg(32, DispatchPolicy::Traditional));
    let outcome = sim.run(u64::MAX);
    assert_eq!(outcome, RunOutcome::AllFinished);
    assert_eq!(sim.counters().total_committed(), 0);
}

#[test]
fn cycle_limit_reported() {
    let mut c = cfg(32, DispatchPolicy::Traditional);
    c.max_cycles = 10;
    let mut sim = sim_of(vec![alu_chain(10_000)], c);
    assert_eq!(sim.run(u64::MAX), RunOutcome::CycleLimit);
}

#[test]
fn reset_measurement_keeps_machine_warm() {
    let mut sim = sim_of(vec![alu_independent(4_000)], cfg(64, DispatchPolicy::Traditional));
    sim.run(1_000);
    let warm_cycles_first = sim.counters().cycles;
    sim.reset_measurement();
    assert_eq!(sim.counters().cycles, 0);
    assert_eq!(sim.counters().total_committed(), 0);
    sim.run(1_000);
    assert!(sim.counters().threads[0].committed >= 1_000);
    assert!(sim.counters().cycles > 0);
    let _ = warm_cycles_first;
}
