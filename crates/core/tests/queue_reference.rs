//! Property tests: the optimized issue queue (waiter lists + lazy ready
//! heap) must behave exactly like a naive reference scheduler, for both the
//! uniform and the packing organizations.

use proptest::prelude::*;
use smt_core::issue_queue::{IqEntry, IssueQueue};
use smt_core::scheduler::SchedulerQueue;
use smt_core::{PackedIssueQueue, PhysReg};
use smt_isa::{FuKind, RegClass};

fn preg(i: u16) -> PhysReg {
    PhysReg { class: RegClass::Int, index: i }
}

/// The obviously-correct scheduler: a flat list scanned on every operation.
#[derive(Default)]
struct RefSched {
    entries: Vec<(u64 /* age */, Vec<PhysReg> /* pending */, bool /* resident */)>,
}

impl RefSched {
    fn insert(&mut self, age: u64, pending: Vec<PhysReg>) {
        self.entries.push((age, pending, true));
    }

    fn wakeup(&mut self, reg: PhysReg) {
        for (_, pending, resident) in self.entries.iter_mut() {
            if *resident {
                pending.retain(|&p| p != reg);
            }
        }
    }

    /// Oldest resident entry with no pending tags.
    fn pop_ready(&mut self) -> Option<u64> {
        let best = self
            .entries
            .iter_mut()
            .filter(|(_, pending, resident)| *resident && pending.is_empty())
            .min_by_key(|(age, _, _)| *age)?;
        best.2 = false;
        Some(best.0)
    }

    fn resident(&self) -> usize {
        self.entries.iter().filter(|(_, _, r)| *r).count()
    }
}

/// One random operation against both implementations.
#[derive(Debug, Clone)]
enum Op {
    Insert { tags: Vec<u16> },
    Wakeup { tag: u16 },
    PopReady,
}

fn arb_op(max_pending: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec(0u16..24, 0..=max_pending).prop_map(|tags| Op::Insert { tags }),
        3 => (0u16..24).prop_map(|tag| Op::Wakeup { tag }),
        2 => Just(Op::PopReady),
    ]
}

fn check_against_reference(
    queue: &mut dyn SchedulerQueue,
    ops: &[Op],
    capacity_insts: usize,
) -> Result<(), TestCaseError> {
    let mut reference = RefSched::default();
    let mut age = 0u64;
    let mut slots = std::collections::HashMap::new(); // age -> slot
    for op in ops {
        match op {
            Op::Insert { tags } => {
                if reference.resident() >= capacity_insts {
                    continue;
                }
                let nr = tags.len() as u8;
                if !queue.has_free_for(nr) {
                    // Fragmentation (packed queue) may reject although
                    // aggregate capacity remains; the reference cannot model
                    // that, so just skip the insert for both.
                    continue;
                }
                age += 1;
                let mut waiting = [None, None];
                for (i, t) in tags.iter().enumerate() {
                    waiting[i] = Some(preg(*t));
                }
                let slot = queue.insert(IqEntry {
                    thread: 0,
                    trace_idx: age,
                    age,
                    fu: FuKind::IntAlu,
                    waiting,
                });
                slots.insert(age, slot);
                reference.insert(age, tags.iter().map(|&t| preg(t)).collect());
            }
            Op::Wakeup { tag } => {
                queue.wakeup(preg(*tag));
                reference.wakeup(preg(*tag));
            }
            Op::PopReady => {
                let got = queue.pop_ready();
                let want = reference.pop_ready();
                match (got, want) {
                    (None, None) => {}
                    (Some((slot, entry)), Some(want_age)) => {
                        prop_assert_eq!(entry.age, want_age, "ready-selection order diverged");
                        queue.remove(slot);
                    }
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "readiness diverged: impl={:?} ref={:?}",
                            got.map(|(_, e)| e.age),
                            want
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn uniform_queue_matches_reference(ops in proptest::collection::vec(arb_op(2), 1..200)) {
        let mut q = IssueQueue::new(16, 2, 1, 512).with_phys_int(256);
        check_against_reference(&mut q, &ops, 16)?;
    }

    #[test]
    fn one_comparator_queue_matches_reference(
        ops in proptest::collection::vec(arb_op(1), 1..200),
    ) {
        let mut q = IssueQueue::new(12, 1, 1, 512).with_phys_int(256);
        check_against_reference(&mut q, &ops, 12)?;
    }

    #[test]
    fn packed_queue_matches_reference(ops in proptest::collection::vec(arb_op(2), 1..200)) {
        // 6 physical entries, up to 12 packable instructions.
        let mut q = PackedIssueQueue::new(6, 1, 512).with_phys_int(256);
        check_against_reference(&mut q, &ops, 12)?;
    }
}
