//! Frozen fault-injection counterexamples: one deterministic pipeline test
//! per fault class (the PR-1 frozen-fuzz pattern, extended to the fault
//! model). Each case runs a fixed program with a fixed fault seed, checks
//! the in-order-commit + dataflow oracle still holds while faults fire, that
//! the intended class actually injected, and that replaying the recorded
//! `(seed, cycle, site)` log reproduces the run bit-for-bit.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use smt_core::{
    DeadlockMode, DispatchPolicy, FaultClass, FaultConfig, RunOutcome, SimConfig, Simulator, Tracer,
};
use smt_isa::{ArchReg, TraceInst};
use smt_workload::{InstGenerator, ProgramTrace};

/// Fault seed shared by the frozen cases; chosen once, never changed — the
/// whole point is that every run of these tests sees the same injections.
const FAULT_SEED: u64 = 0x00FA_017E_57ED_0001;

/// High enough to fire many times over a few hundred eligible sites,
/// bounded by a per-class budget so latency-adding classes cannot blow the
/// cycle ceiling.
const FROZEN_RATE_PPM: u32 = 300_000;
const FROZEN_BUDGET: u64 = 48;

fn cfg(iq: usize, policy: DispatchPolicy, deadlock: DeadlockMode) -> SimConfig {
    let mut c = SimConfig::paper(iq, policy);
    c.max_cycles = 500_000;
    c.deadlock = deadlock;
    c
}

fn fault_cfg(class: FaultClass) -> FaultConfig {
    let mut f = FaultConfig::single(class, FAULT_SEED);
    f.class_mut(class).rate_ppm = FROZEN_RATE_PPM;
    f.class_mut(class).budget = FROZEN_BUDGET;
    f
}

/// A deterministic mixed workload: dependent ALU chains threaded through
/// periodic loads (alternating hot/cold lines) and biased branches. Rich in
/// wakeups, issues, memory accesses, and predictions — every fault class
/// has hundreds of eligible sites.
fn mixed_program(n: usize) -> Vec<TraceInst> {
    (0..n)
        .map(|i| {
            let pc = (i as u64 % 512) * 4;
            let dest = ArchReg::int(1 + (i % 8) as u8);
            let src = ArchReg::int(1 + ((i + 5) % 8) as u8);
            if i % 11 == 3 {
                let addr = if i % 22 == 3 {
                    0x1000 + (i as u64 % 16) * 8
                } else {
                    0x40_0000 + (i as u64) * 4096
                };
                TraceInst::load(pc, dest, Some(src), addr)
            } else if i % 7 == 5 {
                TraceInst::branch(pc, Some(src), i % 3 != 0, ((i as u64 + 9) % 512) * 4)
            } else if i % 13 == 8 {
                TraceInst::store(pc, Some(dest), Some(src), 0x2000 + (i as u64 % 64) * 8)
            } else {
                let src2 =
                    if i % 2 == 0 { Some(ArchReg::int(1 + ((i + 2) % 8) as u8)) } else { None };
                TraceInst::alu(pc, dest, Some(src), src2)
            }
        })
        .collect()
}

/// In-thread register dataflow edges of `mixed_program`: (producer index,
/// consumer index) pairs where the consumer reads the register last written
/// by the producer.
fn dataflow_edges(prog: &[TraceInst]) -> Vec<(u64, u64)> {
    let mut last_writer: HashMap<ArchReg, u64> = HashMap::new();
    let mut edges = Vec::new();
    for (i, inst) in prog.iter().enumerate() {
        let i = i as u64;
        for s in inst.srcs.into_iter().flatten() {
            if let Some(&p) = last_writer.get(&s) {
                edges.push((p, i));
            }
        }
        if let Some(d) = inst.dest {
            last_writer.insert(d, i);
        }
    }
    edges
}

#[derive(Default)]
struct Observed {
    commits: Vec<u64>,
    /// Last issue cycle per trace index; re-issues (squash recovery)
    /// overwrite, so the dataflow check sees each instruction's final issue.
    issues: HashMap<u64, u64>,
}

struct OracleTracer(Arc<Mutex<Observed>>);

impl Tracer for OracleTracer {
    fn on_issue(&mut self, cycle: u64, _thread: usize, trace_idx: u64) {
        self.0.lock().unwrap().issues.insert(trace_idx, cycle);
    }

    fn on_commit(&mut self, _cycle: u64, _thread: usize, trace_idx: u64) {
        self.0.lock().unwrap().commits.push(trace_idx);
    }
}

/// Run `prog` under `c`, assert the oracle, and return the simulator for
/// further (fault-counter, replay) inspection.
fn run_with_oracle(prog: &[TraceInst], c: SimConfig) -> Simulator {
    let observed = Arc::new(Mutex::new(Observed::default()));
    let streams: Vec<Box<dyn InstGenerator>> =
        vec![Box::new(ProgramTrace::once(prog.to_vec())) as Box<dyn InstGenerator>];
    let mut sim = Simulator::new(c, streams);
    sim.set_tracer(Box::new(OracleTracer(observed.clone())));
    let outcome = sim.run(u64::MAX);
    assert!(matches!(outcome, RunOutcome::AllFinished), "faulted run wedged: {outcome:?}");
    sim.assert_quiescent_invariants();
    let o = observed.lock().unwrap();
    let expected: Vec<u64> = (0..prog.len() as u64).collect();
    assert_eq!(o.commits, expected, "must commit in program order despite injected faults");
    for (p, consumer) in dataflow_edges(prog) {
        let pi = o.issues[&p];
        let ci = o.issues[&consumer];
        assert!(
            ci > pi,
            "inst {consumer} issued at cycle {ci}, not after its producer {p} at cycle {pi}"
        );
    }
    sim
}

/// The frozen case for one class: run, oracle, injection count, replay.
fn frozen_case(class: FaultClass, deadlock: DeadlockMode) {
    let prog = mixed_program(400);
    let mut c = cfg(8, DispatchPolicy::TwoOpBlockOoo, deadlock);
    c.faults = fault_cfg(class);
    let sim = run_with_oracle(&prog, c.clone());

    let injected = match class {
        FaultClass::WakeupDrop => sim.counters().faults.wakeup_drops,
        FaultClass::IssueDefer => sim.counters().faults.issue_defers,
        FaultClass::CacheMissExtra => sim.counters().faults.cache_extra_injected,
        FaultClass::PredictorFlush => sim.counters().faults.predictor_flushes_injected,
    };
    assert!(injected > 0, "{}: the frozen seed must actually inject", class.name());
    assert_eq!(
        injected,
        sim.counters().faults.total_injected(),
        "{}: only the enabled class may fire",
        class.name()
    );
    let log = sim.fault_log().to_vec();
    assert_eq!(log.len() as u64, injected, "every injection must be logged");
    assert!(log.iter().all(|r| r.class == class));

    // Determinism contract: replaying the log reproduces the run exactly.
    let streams: Vec<Box<dyn InstGenerator>> =
        vec![Box::new(ProgramTrace::once(prog.clone())) as Box<dyn InstGenerator>];
    let mut replay = Simulator::new(c, streams);
    replay.set_fault_replay(log.clone());
    let outcome = replay.run(u64::MAX);
    assert!(matches!(outcome, RunOutcome::AllFinished), "replay wedged: {outcome:?}");
    assert_eq!(replay.fault_log(), log.as_slice(), "{}: replay log diverged", class.name());
    assert_eq!(replay.counters(), sim.counters(), "{}: replay counters diverged", class.name());
}

#[test]
fn frozen_wakeup_drop_recovers_under_dab() {
    frozen_case(FaultClass::WakeupDrop, DeadlockMode::Dab { size: 2 });
}

#[test]
fn frozen_issue_defer_recovers_under_dab() {
    frozen_case(FaultClass::IssueDefer, DeadlockMode::Dab { size: 2 });
}

#[test]
fn frozen_cache_miss_extra_recovers_under_dab() {
    frozen_case(FaultClass::CacheMissExtra, DeadlockMode::Dab { size: 2 });
}

#[test]
fn frozen_predictor_flush_recovers_under_dab() {
    frozen_case(FaultClass::PredictorFlush, DeadlockMode::Dab { size: 2 });
}

#[test]
fn frozen_all_classes_recover_under_watchdog() {
    let prog = mixed_program(400);
    let mut c = cfg(8, DispatchPolicy::TwoOpBlockOoo, DeadlockMode::Watchdog { timeout: 500 });
    c.faults = FaultConfig::all_classes(FAULT_SEED);
    for class in FaultClass::ALL {
        c.faults.class_mut(class).rate_ppm = FROZEN_RATE_PPM / 4;
        c.faults.class_mut(class).budget = FROZEN_BUDGET / 2;
    }
    let sim = run_with_oracle(&prog, c);
    assert!(
        sim.counters().faults.total_injected() > 0,
        "the combined frozen seed must inject at least once"
    );
}

#[test]
fn wakeup_drops_are_redelivered() {
    let prog = mixed_program(400);
    let mut c = cfg(8, DispatchPolicy::TwoOpBlockOoo, DeadlockMode::Dab { size: 2 });
    c.faults = fault_cfg(FaultClass::WakeupDrop);
    let sim = run_with_oracle(&prog, c);
    let f = &sim.counters().faults;
    assert!(f.wakeup_drops > 0);
    // A rebroadcast is suppressed if the register was reallocated (its
    // ready bit cleared) in the redelivery window, and one scheduled within
    // the final `wakeup_redeliver_delay` cycles of the run never fires — so
    // redeliveries trail drops, but the slow path must demonstrably work.
    assert!(f.wakeup_redeliveries > 0, "the redelivery slow path never fired");
    assert!(f.wakeup_redeliveries <= f.wakeup_drops);
}
