//! Lightweight pipeline-event hooks.
//!
//! A [`Tracer`] installed via `Simulator::set_tracer` observes the four
//! commit-visible pipeline events. Every method has a no-op default body and
//! the simulator holds `Option<Box<dyn Tracer>>` (default `None`), so runs
//! without a tracer pay only an `Option` check per event. Tests use tracers
//! to cross-check the committed stream against an in-order oracle; tools can
//! use them to emit pipeline traces without touching the cycle loop.

/// Observer for per-instruction pipeline events. All methods default to
/// no-ops; implement only what you need.
pub trait Tracer: Send {
    /// An instruction left the dispatch buffer for the issue queue
    /// (`to_dab == false`) or the deadlock-avoidance buffer
    /// (`to_dab == true`). `ooo` marks a dispatch that bypassed an older
    /// non-dispatchable instruction (out-of-order dispatch).
    fn on_dispatch(
        &mut self,
        _cycle: u64,
        _thread: usize,
        _trace_idx: u64,
        _to_dab: bool,
        _ooo: bool,
    ) {
    }

    /// An instruction was selected for execution (left the IQ or DAB).
    /// An instruction squashed after issue may issue again later; the last
    /// call wins.
    fn on_issue(&mut self, _cycle: u64, _thread: usize, _trace_idx: u64) {}

    /// An instruction finished execution and wrote back its result.
    fn on_writeback(&mut self, _cycle: u64, _thread: usize, _trace_idx: u64) {}

    /// An instruction retired from the head of its thread's ROB.
    fn on_commit(&mut self, _cycle: u64, _thread: usize, _trace_idx: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingTracer {
        events: usize,
    }

    impl Tracer for CountingTracer {
        fn on_commit(&mut self, _cycle: u64, _thread: usize, _trace_idx: u64) {
            self.events += 1;
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut t = CountingTracer { events: 0 };
        t.on_dispatch(1, 0, 0, false, false);
        t.on_issue(2, 0, 0);
        t.on_writeback(3, 0, 0);
        assert_eq!(t.events, 0);
        t.on_commit(4, 0, 0);
        assert_eq!(t.events, 1);
    }
}
