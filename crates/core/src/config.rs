//! Simulator configuration (Table 1 of the paper).

use crate::faults::FaultConfig;
use serde::{Deserialize, Serialize};
use smt_isa::MachineDesc;
use smt_mem::HierarchyConfig;
use smt_predictor::{BtbConfig, GShareConfig};

/// Instruction dispatch policy — the subject of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Conventional scheduler: 2 tag comparators per IQ entry, strictly
    /// in-order dispatch within each thread.
    Traditional,
    /// 2OP_BLOCK (Sharkey & Ponomarev, HPCA'06): 1 comparator per IQ entry;
    /// an instruction with two non-ready sources blocks its thread's
    /// dispatch until one source becomes ready.
    TwoOpBlock,
    /// This paper's contribution: 2OP_BLOCK issue queue plus out-of-order
    /// dispatch within each thread — hidden dispatchable instructions (HDIs)
    /// bypass blocked NDIs into the IQ.
    TwoOpBlockOoo,
    /// Idealized variant of [`DispatchPolicy::TwoOpBlockOoo`] that filters
    /// out (refuses to dispatch) HDIs that depend, directly or transitively,
    /// on a bypassed NDI. The paper evaluates this with zero-overhead
    /// filtering and finds only ~1.2% additional gain (§4).
    TwoOpBlockOooFiltered,
    /// The statically partitioned tag-eliminated scheduler of Ernst &
    /// Austin [5] (paper §6): the IQ mixes entries with two, one, and zero
    /// comparators ([`SimConfig::iq_layout`]); dispatch is in order and an
    /// instruction waits until an entry with enough comparators for its
    /// non-ready sources is free.
    TagEliminated,
    /// The Half-Price scheduler of Kim & Lipasti [7] (paper §6): every
    /// entry keeps both comparators, but the second sits on a *slow* tag
    /// bus whose broadcasts arrive one cycle late. Capacity is never lost;
    /// 2-non-ready instructions whose last operand arrives on the slow bus
    /// issue one cycle later.
    HalfPrice,
    /// Instruction packing (Sharkey et al., ISLPED'05 [11], paper §6): two
    /// instructions with ≤1 non-ready source share one physical entry,
    /// splitting its comparators. `iq_size` is the *logical* capacity
    /// (packable instructions); the queue has `iq_size / 2` physical
    /// entries and the same comparator budget as 2OP_BLOCK.
    Packed,
}

impl DispatchPolicy {
    /// Tag comparators per IQ entry under this policy.
    pub fn iq_comparators(self) -> u8 {
        match self {
            DispatchPolicy::Traditional
            | DispatchPolicy::TagEliminated
            | DispatchPolicy::HalfPrice
            | DispatchPolicy::Packed => 2,
            _ => 1,
        }
    }

    /// Does this policy dispatch out of program order within a thread?
    pub fn is_out_of_order(self) -> bool {
        matches!(self, DispatchPolicy::TwoOpBlockOoo | DispatchPolicy::TwoOpBlockOooFiltered)
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::Traditional => "traditional",
            DispatchPolicy::TwoOpBlock => "2OP_BLOCK",
            DispatchPolicy::TwoOpBlockOoo => "2OP_BLOCK+OOO",
            DispatchPolicy::TwoOpBlockOooFiltered => "2OP_BLOCK+OOO(filtered)",
            DispatchPolicy::TagEliminated => "tag-eliminated",
            DispatchPolicy::HalfPrice => "half-price",
            DispatchPolicy::Packed => "packed",
        }
    }
}

/// Instruction-fetch policy (paper §2 baseline and §6 related work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchPolicy {
    /// I-Count (Tullsen et al. [16]): priority to the threads with the
    /// fewest instructions in the front end and issue queue. The paper's
    /// baseline (ICOUNT.2.8).
    ICount,
    /// Simple round-robin rotation among eligible threads.
    RoundRobin,
    /// STALL (Tullsen & Brown [15]): I-Count, but a thread with an
    /// outstanding main-memory (L2-miss) load fetches nothing until the
    /// miss returns.
    Stall,
    /// FLUSH (Tullsen & Brown [15]): STALL plus squashing the already
    /// fetched/dispatched instructions younger than the missing load, so
    /// the shared IQ/ROB resources are freed for other threads while the
    /// miss is outstanding.
    Flush,
    /// MLP-aware gating (Durbhakula's MLP-aware scheduling line): I-Count,
    /// but a thread with a long-latency L2/memory miss in flight is gated
    /// until the scheduled fill time of its *last* such miss. Unlike STALL
    /// (which probes `outstanding_mem_misses` each cycle) the gate is a
    /// timestamp armed when the miss starts executing, so its release
    /// cycle is a first-class `Calendar` wake source and event-driven
    /// jumps stay bit-for-bit.
    MlpGate,
    /// ILP-aware yield ranking (Durbhakula's ILP-aware scheduling line):
    /// fetch priority goes to the threads with the highest issue-slot
    /// yield over the previous sliding window, replacing the raw icount
    /// key; icount remains only as a tie-break within equal yields.
    IlpYield,
}

impl FetchPolicy {
    /// Every variant, for exhaustive sweeps and round-trip tests.
    pub const ALL: [FetchPolicy; 6] = [
        FetchPolicy::ICount,
        FetchPolicy::RoundRobin,
        FetchPolicy::Stall,
        FetchPolicy::Flush,
        FetchPolicy::MlpGate,
        FetchPolicy::IlpYield,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FetchPolicy::ICount => "ICOUNT",
            FetchPolicy::RoundRobin => "round-robin",
            FetchPolicy::Stall => "STALL",
            FetchPolicy::Flush => "FLUSH",
            FetchPolicy::MlpGate => "MLP-GATE",
            FetchPolicy::IlpYield => "ILP-YIELD",
        }
    }
}

/// Deadlock handling for out-of-order dispatch (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlockMode {
    /// No mechanism (only safe for in-order dispatch policies).
    None,
    /// The paper's preferred mechanism: a small deadlock-avoidance buffer
    /// that accepts a thread's ROB-oldest instruction when the IQ is full.
    /// §4 describes two issue disciplines; this is the one the paper picks:
    /// DAB instructions "take precedence over the instructions in the IQ"
    /// (IQ selection is disabled while the buffer is occupied).
    Dab {
        /// Number of buffer entries (shared across threads).
        size: usize,
    },
    /// The other §4 issue discipline: DAB instructions "arbitrate for
    /// selection with the instructions in the IQ", merged oldest-first.
    DabArbitrated {
        /// Number of buffer entries (shared across threads).
        size: usize,
    },
    /// The watchdog-timer alternative: if no instruction dispatches for
    /// `timeout` cycles, flush the pipeline and restart all threads from
    /// their ROB-oldest instructions.
    Watchdog {
        /// Cycles without a dispatch before the flush triggers. The paper
        /// suggests 2–3× the memory latency.
        timeout: u32,
    },
}

/// Full machine configuration. Defaults mirror Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Machine width: fetch, dispatch, issue and commit per cycle.
    pub width: u32,
    /// Maximum threads fetched from per cycle (I-Count policy, "fetching
    /// was limited to two threads per cycle").
    pub fetch_threads_per_cycle: u32,
    /// Issue-queue capacity ("as specified" per experiment).
    pub iq_size: usize,
    /// Dispatch policy under study.
    pub policy: DispatchPolicy,
    /// Instruction-fetch policy (the paper's baseline is I-Count).
    pub fetch_policy: FetchPolicy,
    /// Entry mix for the [`DispatchPolicy::TagEliminated`] scheduler:
    /// `[zero, one, two]`-comparator entry counts (must sum to `iq_size`).
    /// `None` uses a quarter/half/quarter split, which matches the
    /// half-total-comparator budget of the 2OP_BLOCK queue.
    pub iq_layout: Option<[usize; 3]>,
    /// Deadlock avoidance mechanism for OOO dispatch.
    pub deadlock: DeadlockMode,
    /// Reorder-buffer entries per thread (Table 1: 96).
    pub rob_per_thread: usize,
    /// Load/store-queue entries per thread (Table 1: 48).
    pub lsq_per_thread: usize,
    /// Integer physical registers shared by all threads (Table 1: 256).
    pub phys_int: usize,
    /// Floating-point physical registers shared by all threads (256).
    pub phys_fp: usize,
    /// Front-end depth in stages from fetch to dispatch (Table 1: 5-stage
    /// front end).
    pub frontend_depth: u32,
    /// Capacity of the post-rename dispatch buffer per thread — the window
    /// the out-of-order dispatch mechanism scans for HDIs.
    pub dispatch_buffer_cap: usize,
    /// Pipeline stages between issue and the completed result being
    /// commit-visible (2 register-file stages + writeback, Table 1).
    pub exec_tail: u32,
    /// Function-unit inventory.
    pub machine: MachineDesc,
    /// Cache hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// Per-thread gShare geometry.
    pub gshare: GShareConfig,
    /// Shared BTB geometry.
    pub btb: BtbConfig,
    /// Extra fetch-redirect penalty cycles after a mispredicted branch
    /// resolves (front-end restart).
    pub redirect_penalty: u32,
    /// Execute down the wrong path after a branch misprediction: the thread
    /// keeps fetching (synthetic) wrong-path instructions that are renamed,
    /// dispatched and issued — occupying physical registers, IQ/ROB/LSQ
    /// entries and function units — until the branch resolves and squashes
    /// them, as in execution-driven simulators like M-Sim. When false (the
    /// default), the thread simply stops fetching until the branch resolves
    /// (trace-driven fetch gating). The synthetic wrong path is *generic*
    /// code rather than the program's actual mispredicted path, so it
    /// over-weights queue pollution relative to M-Sim; see the `wrongpath`
    /// experiment for its effect on the paper's figures.
    pub wrong_path: bool,
    /// Safety limit: abort `run` after this many cycles without the commit
    /// target being reached (deadlock detection in tests). 0 = unlimited.
    pub max_cycles: u64,
    /// Forward-progress watchdog: if no thread commits for this many
    /// consecutive cycles, `run` stops and returns
    /// `RunOutcome::Wedged` with a diagnosis of what each thread is
    /// blocked on. Must exceed the longest legitimate commit gap (a
    /// memory-latency round trip plus queueing — hundreds of cycles on
    /// the Table 1 machine). 0 = disabled.
    pub progress_check_cycles: u64,
    /// Deterministic fault injection (disabled by default; see
    /// [`crate::faults`]).
    #[serde(default)]
    pub faults: FaultConfig,
    /// Idle-cycle fast-forward: when the whole machine is provably waiting
    /// on scheduled events (memory fills, slow-bus wakeups, redelivered
    /// faults), jump the clock to the earliest pending one instead of
    /// ticking empty cycles. Bit-for-bit counter-identical to unskipped
    /// runs (pinned by `tests/fast_forward_differential.rs`); disable only
    /// to cross-check that equivalence.
    #[serde(default = "default_fast_forward")]
    pub fast_forward: bool,
}

fn default_fast_forward() -> bool {
    true
}

impl SimConfig {
    /// The Ernst–Austin-style default entry mix for the tag-eliminated
    /// scheduler: a quarter of the entries have no comparators, half have
    /// one, a quarter have two — the same total comparator budget as a
    /// 2OP_BLOCK queue of equal size.
    pub fn default_tag_eliminated_layout(iq_size: usize) -> [usize; 3] {
        let zero = iq_size / 4;
        let two = iq_size / 4;
        [zero, iq_size - zero - two, two]
    }

    /// The paper's baseline machine (Table 1) with a given IQ size and
    /// dispatch policy. OOO policies get a 4-entry DAB by default.
    pub fn paper(iq_size: usize, policy: DispatchPolicy) -> Self {
        let deadlock = if policy.is_out_of_order() {
            DeadlockMode::Dab { size: 4 }
        } else {
            DeadlockMode::None
        };
        SimConfig {
            width: 8,
            fetch_threads_per_cycle: 2,
            iq_size,
            policy,
            fetch_policy: FetchPolicy::ICount,
            iq_layout: None,
            deadlock,
            rob_per_thread: 96,
            lsq_per_thread: 48,
            phys_int: 256,
            phys_fp: 256,
            frontend_depth: 5,
            dispatch_buffer_cap: 24,
            exec_tail: 3,
            machine: MachineDesc::paper(),
            hierarchy: HierarchyConfig::paper(),
            gshare: GShareConfig::paper(),
            btb: BtbConfig::paper(),
            redirect_penalty: 1,
            wrong_path: false,
            max_cycles: 0,
            progress_check_cycles: 50_000,
            faults: FaultConfig::default(),
            fast_forward: true,
        }
    }

    /// Validate configuration consistency.
    pub fn validate(&self, num_threads: usize) -> Result<(), String> {
        if self.width == 0 || self.iq_size == 0 || self.rob_per_thread == 0 {
            return Err("width, IQ size and ROB size must be positive".into());
        }
        if num_threads == 0 {
            return Err("at least one thread required".into());
        }
        if self.phys_int < num_threads * smt_isa::NUM_ARCH_INT as usize {
            return Err(format!(
                "{} integer physical registers cannot map {} threads' architectural state",
                self.phys_int, num_threads
            ));
        }
        if self.phys_fp < num_threads * smt_isa::NUM_ARCH_FP as usize {
            return Err("insufficient FP physical registers".into());
        }
        if self.policy.is_out_of_order()
            && self.deadlock == DeadlockMode::None
            && self.progress_check_cycles == 0
            && self.max_cycles == 0
        {
            return Err("out-of-order dispatch requires a deadlock mechanism or an armed \
                        wedge detector (progress_check_cycles / max_cycles)"
                .into());
        }
        if let DeadlockMode::Dab { size } | DeadlockMode::DabArbitrated { size } = self.deadlock {
            if size == 0 {
                return Err("DAB size must be positive".into());
            }
        }
        if self.dispatch_buffer_cap < self.width as usize {
            return Err("dispatch buffer must hold at least one dispatch group".into());
        }
        if let Some(layout) = self.iq_layout {
            if layout.iter().sum::<usize>() != self.iq_size {
                return Err(format!(
                    "IQ layout {:?} does not sum to the IQ size {}",
                    layout, self.iq_size
                ));
            }
            if layout[1] + layout[2] == 0 {
                return Err("IQ layout needs at least one entry with comparators".into());
            }
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper(64, DispatchPolicy::Traditional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = SimConfig::paper(64, DispatchPolicy::Traditional);
        assert_eq!(c.width, 8);
        assert_eq!(c.fetch_threads_per_cycle, 2);
        assert_eq!(c.rob_per_thread, 96);
        assert_eq!(c.lsq_per_thread, 48);
        assert_eq!(c.phys_int, 256);
        assert_eq!(c.phys_fp, 256);
        assert_eq!(c.frontend_depth, 5);
        assert_eq!(c.hierarchy.memory_latency, 150);
        assert_eq!(c.hierarchy.l2_hit_latency, 10);
        assert_eq!(c.gshare.table_entries, 2048);
        assert_eq!(c.btb.entries, 2048);
    }

    #[test]
    fn comparator_counts() {
        assert_eq!(DispatchPolicy::Traditional.iq_comparators(), 2);
        assert_eq!(DispatchPolicy::TwoOpBlock.iq_comparators(), 1);
        assert_eq!(DispatchPolicy::TwoOpBlockOoo.iq_comparators(), 1);
        assert_eq!(DispatchPolicy::TwoOpBlockOooFiltered.iq_comparators(), 1);
    }

    #[test]
    fn ooo_policies_get_dab() {
        let c = SimConfig::paper(64, DispatchPolicy::TwoOpBlockOoo);
        assert_eq!(c.deadlock, DeadlockMode::Dab { size: 4 });
        let c = SimConfig::paper(64, DispatchPolicy::TwoOpBlock);
        assert_eq!(c.deadlock, DeadlockMode::None);
    }

    #[test]
    fn validation_rejects_ooo_without_deadlock_mechanism_or_detector() {
        let mut c = SimConfig::paper(64, DispatchPolicy::TwoOpBlockOoo);
        c.deadlock = DeadlockMode::None;
        // An armed wedge detector is enough: the run ends in a diagnosed
        // `Wedged` rather than hanging (used to *demonstrate* the deadlock
        // the DAB/watchdog mechanisms prevent).
        assert!(c.validate(2).is_ok());
        c.progress_check_cycles = 0;
        c.max_cycles = 10_000;
        assert!(c.validate(2).is_ok(), "max_cycles still armed");
        c.max_cycles = 0;
        assert!(c.validate(2).is_err(), "no mechanism and no detector");
    }

    #[test]
    fn validation_checks_phys_reg_budget() {
        let c = SimConfig::paper(64, DispatchPolicy::Traditional);
        assert!(c.validate(4).is_ok());
        assert!(c.validate(9).is_err(), "9 threads x 32 arch regs > 256 phys");
    }

    #[test]
    fn validation_rejects_zero_sizes() {
        let c = SimConfig { iq_size: 0, ..SimConfig::default() };
        assert!(c.validate(1).is_err());
    }

    #[test]
    fn fetch_policy_names_are_distinct_and_round_trip_through_serde() {
        // Exhaustive over `ALL` (itself pinned exhaustive by the length of
        // the match in `name()`): a future variant added without a name or
        // serde coverage fails here rather than falling through silently.
        let mut names = std::collections::HashSet::new();
        for p in FetchPolicy::ALL {
            assert!(names.insert(p.name()), "duplicate name {}", p.name());
            let json = serde_json::to_string(&p).expect("serialize");
            let back: FetchPolicy = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(p, back, "serde round-trip changed the policy");
        }
        assert_eq!(names.len(), FetchPolicy::ALL.len());
    }

    #[test]
    fn sim_config_round_trips_with_new_fetch_policies() {
        for p in [FetchPolicy::MlpGate, FetchPolicy::IlpYield] {
            let mut c = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
            c.fetch_policy = p;
            let json = serde_json::to_string(&c).expect("serialize");
            let back: SimConfig = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(c, back);
        }
    }

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            DispatchPolicy::Traditional,
            DispatchPolicy::TwoOpBlock,
            DispatchPolicy::TwoOpBlockOoo,
            DispatchPolicy::TwoOpBlockOooFiltered,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        assert_eq!(names.len(), 4);
    }
}
