//! The top-level cycle-accurate SMT pipeline model.
//!
//! Pipeline structure (Table 1): a 5-stage front end (fetch … dispatch),
//! scheduling (wakeup/select), two register-file stages, execution,
//! writeback and commit. Stages are evaluated in reverse order each cycle
//! so a stage observes the *previous* cycle's downstream state, while
//! wakeup events processed at cycle start keep 1-cycle operations
//! back-to-back.

use crate::calendar::Calendar;
use crate::config::{DeadlockMode, FetchPolicy, SimConfig};
use crate::dispatch::{is_ndi, plan_thread, plan_thread_into, BufView, Candidate};
use crate::events::{Event, EventQueue};
use crate::faults::{FaultClass, FaultInjector, FaultRecord};
use crate::fetch::{pick_fetch_threads_into, pick_fetch_threads_rotating_into};
use crate::fu::FuPools;
use crate::issue_queue::{IqEntry, IssueQueue};
use crate::lsq::{LoadCheck, Lsq};
use crate::packed::PackedIssueQueue;
use crate::progress::{
    DabSnapshot, DeadlockReport, DispatchHeadView, IqSnapshot, LsqHeadView, RobHeadView, SrcState,
    StallReason, ThreadDiagnosis,
};
use crate::regfile::{PhysReg, PhysRegFile};
use crate::rename::RenameTable;
use crate::rob::{InFlight, InstState, Rob};
use crate::scheduler::SchedulerQueue;
use crate::tracer::Tracer;
use smt_isa::{MachineDesc, OpClass, TraceInst};
use smt_mem::{AccessKind, Hierarchy, HitLevel, MemModel, Waiter};
use smt_predictor::{Btb, GShare};
use smt_stats::{SimCounters, ThreadCounters};
use smt_workload::{InstGenerator, ProgramTrace, TraceSource};
use std::collections::VecDeque;

/// How often (in run-loop iterations) the run loops poll their external
/// abort hook. Iterations, not cycle numbers: a calendar jump can step the
/// clock over any particular alignment forever, while iterations always
/// keep happening. This bounds the reaction latency of everything built on
/// the hook — sweep wall-clock budgets and the serve layer's cooperative
/// cancellation both fire within one poll interval of their flag rising.
pub const ABORT_POLL_ITERS: u64 = 0x2000;

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Some thread reached the commit target (the paper's stop rule).
    TargetReached,
    /// Every thread's program ended and drained.
    AllFinished,
    /// The machine stopped making progress: either no thread committed for
    /// [`SimConfig::progress_check_cycles`] consecutive cycles, or the
    /// safety cycle limit ([`SimConfig::max_cycles`]) was reached. The
    /// report names the resource each thread is blocked on.
    Wedged(Box<DeadlockReport>),
    /// The caller's abort callback fired (see [`Simulator::run_with_abort`])
    /// — typically a wall-clock budget in a sweep harness. The machine
    /// state is intact; the run can in principle be resumed.
    Aborted,
}

impl RunOutcome {
    /// Did the run end without reaching its target or draining?
    pub fn is_wedged(&self) -> bool {
        matches!(self, RunOutcome::Wedged(_))
    }
}

/// An instruction in the front end (fetched, not yet renamed).
#[derive(Debug, Clone, Copy)]
struct FrontEntry {
    trace_idx: u64,
    /// The fetched instruction (for wrong-path entries this is synthetic
    /// and does not exist in the thread's trace).
    inst: TraceInst,
    /// First cycle the instruction may rename.
    ready_at: u64,
    mispredicted: bool,
}

/// One entry of the deadlock-avoidance buffer.
#[derive(Debug, Clone, Copy)]
struct DabEntry {
    thread: usize,
    trace_idx: u64,
    age: u64,
}

/// Everything one machine cycle can change, summarised for equality.
///
/// The idle-cycle fast-forward runs one *representative* cycle and
/// compares this signature before/after: equality proves the cycle moved
/// no instruction and delivered no event, so every following cycle up to
/// the next scheduled wake source is an exact replica of it. Per-cycle
/// stall counters are deliberately absent — they advance by a constant
/// delta during an idle stretch and are replayed arithmetically
/// ([`SimCounters::replicate_idle_deltas`]).
#[derive(PartialEq, Eq)]
pub(crate) struct FfActivitySig {
    committed: u64,
    fetched: u64,
    dispatched: u64,
    issued: u64,
    wrong_path_fetched: u64,
    frontend: usize,
    dispatch_buf: usize,
    rob: usize,
    lsq: usize,
    outstanding_misses: u32,
    iq_occ: usize,
    dab: usize,
    events_len: usize,
    /// Monotonic pop count: catches a pop-and-reschedule (e.g. a dropped
    /// wakeup scheduling its re-broadcast) that leaves `events_len`
    /// unchanged.
    events_pops: u64,
    mshr_in_flight: usize,
    wb_len: usize,
    watchdog_flushes: u64,
    fetch_policy_flushes: u64,
}

/// Why `try_rename_one` could not rename a thread's next instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenameBlock {
    /// Nothing fetched (fetch supply, not a rename stall).
    FrontendEmpty,
    /// The front-end pipeline has not delivered the instruction yet.
    FrontendNotReady,
    /// The thread's reorder buffer is full.
    RobFull,
    /// The post-rename dispatch buffer is full (dispatch back-pressure).
    BufFull,
    /// The thread's load/store queue is full.
    LsqFull,
    /// No physical register of the destination's class is free.
    NoFreeRegs,
}

/// Sliding-window length in cycles for the ILP-YIELD fetch policy: each
/// thread's fetch priority is its issue-slot yield over the previous
/// absolute-aligned window of this many cycles.
const YIELD_WINDOW: u64 = 64;

/// Per-thread pipeline context.
struct ThreadCtx {
    trace: TraceSource,
    fetch_cursor: u64,
    /// Trace index of an unresolved mispredicted branch gating fetch.
    fetch_gated_by: Option<u64>,
    /// Fetch blocked until this cycle (I-cache miss or redirect penalty).
    fetch_blocked_until: u64,
    frontend: VecDeque<FrontEntry>,
    /// Renamed instructions awaiting dispatch, in program order.
    dispatch_buf: VecDeque<u64>,
    /// I-cache line whose miss this thread is currently waiting on; when
    /// the wait ends the group is delivered without re-probing (critical-
    /// word delivery — otherwise SMT threads aliasing in the L1I could
    /// evict each other's lines faster than the miss latency forever).
    pending_ifetch_line: Option<u64>,
    rob: Rob,
    lsq: Lsq,
    rat: RenameTable,
    gshare: GShare,
    /// Trace exhausted at the fetch cursor.
    finished_fetch: bool,
    /// Loads of this thread currently outstanding to main memory (drives
    /// the STALL/FLUSH fetch policies).
    outstanding_mem_misses: u32,
    /// Wrong-path mode: the trace index of the unresolved mispredicted
    /// branch whose (synthetic) wrong path is being fetched.
    wrongpath_of: Option<u64>,
    /// Deterministic xorshift state for wrong-path instruction synthesis.
    wp_rng: u64,
    /// Recently observed data addresses (wrong-path loads revisit the
    /// thread's real data structures, polluting the same cache sets).
    recent_addrs: [u64; 4],
    recent_addrs_at: usize,
    /// MLP-GATE fetch policy: the thread is gated while `now` is below this
    /// timestamp — the scheduled fill time of its last long-latency miss.
    /// Always 0 under every other policy, so it never perturbs them.
    mlp_gate_until: u64,
    /// ILP-YIELD fetch policy: index of the sliding window the yield score
    /// was last rolled up to (`now / YIELD_WINDOW`).
    yield_win: u64,
    /// Thread's `issued` counter value at the start of window `yield_win`.
    yield_issued_at_win: u64,
    /// Issue-slot yield observed over the window *before* `yield_win` —
    /// the ILP-YIELD priority input (zero after an idle window gap).
    yield_score: u64,
}

impl ThreadCtx {
    /// Thread has no in-flight work and no more instructions to fetch.
    fn drained(&self) -> bool {
        self.finished_fetch
            && self.rob.is_empty()
            && self.frontend.is_empty()
            && self.dispatch_buf.is_empty()
    }
}

/// The portable state of a software thread in transit between cores
/// (drain-and-restart migration, see [`Core::extract_thread`]): the trace
/// position, the trained branch predictor, the wrong-path synthesis state,
/// and the thread's statistics row. Everything else — in-flight
/// instructions, rename mappings, cache residency — is rebuilt on the
/// destination core, which is exactly the cost migration policies trade
/// against better placement.
pub(crate) struct MigratedThread {
    trace: TraceSource,
    gshare: GShare,
    /// Trace index of the oldest uncommitted instruction at extraction —
    /// the ROB restart point and fetch cursor on the destination core.
    restart_at: u64,
    wp_rng: u64,
    recent_addrs: [u64; 4],
    recent_addrs_at: usize,
    counters: ThreadCounters,
}

/// Reusable per-cycle scratch buffers for the pipeline stages. Everything
/// here is logically dead between cycles; parking the buffers on the
/// simulator keeps the hot loop allocation-free. A stage `std::mem::take`s
/// the buffers it needs for its duration (satisfying the borrow checker
/// across `&mut self` calls) and puts them back before returning.
#[derive(Default)]
struct CycleScratch {
    /// Readiness-annotated views of the thread currently being planned.
    views: Vec<BufView>,
    /// Per-thread dispatch plans, program order, read via `plan_pos`.
    plans: Vec<Vec<Candidate>>,
    /// Per-thread read cursor into `plans` (avoids pop-front shuffling).
    plan_pos: Vec<usize>,
    /// Taint scratch for [`plan_thread_into`].
    taint: Vec<PhysReg>,
    /// Per-thread cached `ndi_blocked` planner verdict (valid while the
    /// thread's `plan_valid` bit holds).
    plan_blocked: Vec<bool>,
    /// Per-thread cached pile-up sample (same validity).
    plan_pileup: Vec<Option<(u32, u32)>>,
    /// IQ slots whose issue grant was revoked this cycle.
    deferred: Vec<usize>,
    /// Per-thread fetch eligibility / I-Count priority input.
    icounts: Vec<Option<usize>>,
    /// Sort scratch for [`pick_fetch_threads_into`].
    fetch_rank: Vec<(usize, usize)>,
    /// Threads picked to fetch this cycle.
    picks: Vec<usize>,
}

/// One SMT core: the complete pipeline (fetch … commit) plus every private
/// structure (IQ, ROB/LSQ, rename tables, physical registers, predictors,
/// function units, fault injector) — everything except the memory
/// hierarchy, which is owned by the wrapper ([`Simulator`] for one core,
/// [`crate::Machine`] for several sharing an L2/bus) and passed into each
/// method that touches memory. `core_id` routes the core's cache traffic
/// to its private L1 slice of a multi-requestor [`Hierarchy`].
pub struct Core {
    core_id: usize,
    cfg: SimConfig,
    threads: Vec<ThreadCtx>,
    regs: PhysRegFile,
    iq: Box<dyn SchedulerQueue + Send>,
    dab: Vec<DabEntry>,
    dab_size: usize,
    /// True: DAB entries take precedence over the IQ at issue (paper's
    /// chosen variant); false: they arbitrate oldest-first with the IQ.
    dab_precedence: bool,
    fu: FuPools,
    events: EventQueue,
    btb: Btb,
    now: u64,
    age_counter: u64,
    rr: usize,
    frontend_cap: usize,
    watchdog_remaining: u64,
    counters: SimCounters,
    /// Cycle at which the current measurement window began (see
    /// [`Simulator::reset_measurement`]).
    measure_start: u64,
    /// Direction prediction of the most recently fetched branch, so the
    /// fetch loop can break groups on predicted-taken branches without
    /// re-querying (and re-training) the predictor.
    last_pred_taken: (usize, u64, bool),
    /// FLUSH fetch policy: (thread, load index) pairs whose younger
    /// instructions must be squashed after the current issue sweep.
    pending_flushes: Vec<(usize, u64)>,
    /// Optional pipeline-event observer (`None` in normal runs).
    tracer: Option<Box<dyn Tracer>>,
    /// Deterministic fault injector (inert when all rates are zero).
    faults: FaultInjector,
    /// Cached `cfg.hierarchy.model` discriminant: does the hierarchy run
    /// the non-blocking (MSHR/bus/write-buffer) model?
    nonblocking_mem: bool,
    /// Cached enable for the idle-cycle fast-forward. Round-robin fetch is
    /// no longer excluded: provably idle cycles fetch nothing regardless of
    /// pick priority, and the rotation itself is replayed analytically
    /// (`rr += k mod n`) when the clock jumps — see DESIGN.md §6.3.
    fast_forward: bool,
    /// Number of calendar jumps taken (each one compresses a stretch of
    /// idle cycles into one representative cycle). Lifetime total; survives
    /// [`Simulator::reset_measurement`] like the fault log. Deliberately
    /// *not* part of [`SimCounters`]: the counters must stay bit-for-bit
    /// identical between fast-forwarded and reference runs.
    ff_jumps: u64,
    /// Total cycles the calendar jumps skipped (excluding the representative
    /// cycles, which execute for real). Same lifetime and exclusion rules
    /// as [`Simulator::ff_jumps`].
    ff_skipped_cycles: u64,
    /// Running total of committed instructions in the current measurement
    /// window, kept equal to the sum of the per-thread `committed`
    /// counters so the run loops need not re-sum the vector every cycle.
    committed_total: u64,
    /// Reusable counter snapshot for the fast-forward's representative
    /// cycle (avoids reallocating the per-thread vector on the hot path).
    ff_scratch: Option<SimCounters>,
    /// Per-cycle stage scratch buffers (see [`CycleScratch`]).
    scratch: CycleScratch,
    /// Bitmask of threads whose cached dispatch plan (in
    /// [`CycleScratch::plans`] / `plan_blocked` / `plan_pileup`) is still
    /// exact: nothing the planner reads has changed since it was computed.
    /// Cleared by every mutation of the inputs — a dispatch-buffer push or
    /// take, a squash, a commit (ROB base and fullness feed the plan), or a
    /// wakeup whose register hits `plan_bloom`.
    plan_valid: u64,
    /// Per-thread Bloom filter (bit `index & 63`) over the non-ready source
    /// registers the cached plan observed. A `set_ready` on a matching bit
    /// conservatively invalidates; sources it missed cannot have changed
    /// readiness (ready registers never revert while a consumer is in
    /// flight).
    plan_bloom: Vec<u64>,
}

impl Core {
    /// Build one core for `cfg` running one instruction stream per thread
    /// context. The caller owns the [`Hierarchy`] and passes `core_id` so
    /// the core's traffic lands on its private L1 slice.
    pub fn new(cfg: SimConfig, streams: Vec<Box<dyn InstGenerator>>, core_id: usize) -> Self {
        let n = streams.len();
        cfg.validate(n).expect("invalid configuration");
        // The stage loops track per-thread one-shot flags in u64 bitmasks.
        assert!(n <= 64, "at most 64 hardware thread contexts are supported");
        let mut regs = PhysRegFile::new(cfg.phys_int, cfg.phys_fp);
        let threads = streams
            .into_iter()
            .map(|s| ThreadCtx {
                trace: TraceSource::new(s),
                fetch_cursor: 0,
                fetch_gated_by: None,
                fetch_blocked_until: 0,
                frontend: VecDeque::new(),
                dispatch_buf: VecDeque::new(),
                pending_ifetch_line: None,
                rob: Rob::new(cfg.rob_per_thread),
                lsq: Lsq::new(cfg.lsq_per_thread),
                rat: RenameTable::new(&mut regs),
                gshare: GShare::new(cfg.gshare),
                finished_fetch: false,
                outstanding_mem_misses: 0,
                wrongpath_of: None,
                wp_rng: 0x9E37_79B9_7F4A_7C15,
                recent_addrs: [0x1000_0000; 4],
                recent_addrs_at: 0,
                mlp_gate_until: 0,
                yield_win: 0,
                yield_issued_at_win: 0,
                yield_score: 0,
            })
            .collect();
        let (dab_size, dab_precedence) = match cfg.deadlock {
            DeadlockMode::Dab { size } => (size, true),
            DeadlockMode::DabArbitrated { size } => (size, false),
            _ => (0, true),
        };
        let watchdog_remaining = match cfg.deadlock {
            DeadlockMode::Watchdog { timeout } => timeout as u64,
            _ => 0,
        };
        use crate::config::DispatchPolicy as Dp;
        let total_phys = cfg.phys_int + cfg.phys_fp;
        let iq: Box<dyn SchedulerQueue + Send> = match cfg.policy {
            Dp::TagEliminated => {
                let [zero, one, two] = cfg
                    .iq_layout
                    .unwrap_or_else(|| SimConfig::default_tag_eliminated_layout(cfg.iq_size));
                let mut caps = Vec::with_capacity(cfg.iq_size);
                caps.extend(std::iter::repeat_n(0u8, zero));
                caps.extend(std::iter::repeat_n(1u8, one));
                caps.extend(std::iter::repeat_n(2u8, two));
                Box::new(
                    IssueQueue::new_heterogeneous(caps, n, total_phys).with_phys_int(cfg.phys_int),
                )
            }
            Dp::HalfPrice => Box::new(
                IssueQueue::new(cfg.iq_size, 2, n, total_phys)
                    .with_phys_int(cfg.phys_int)
                    .with_slow_second_tag(),
            ),
            Dp::Packed => Box::new(
                PackedIssueQueue::new((cfg.iq_size / 2).max(1), n, total_phys)
                    .with_phys_int(cfg.phys_int),
            ),
            _ => Box::new(
                IssueQueue::new(cfg.iq_size, cfg.policy.iq_comparators(), n, total_phys)
                    .with_phys_int(cfg.phys_int),
            ),
        };
        Core {
            core_id,
            iq,
            dab: Vec::new(),
            dab_size,
            dab_precedence,
            fu: FuPools::new(&cfg.machine),
            events: EventQueue::new(),
            btb: Btb::new(cfg.btb),
            now: 0,
            age_counter: 0,
            rr: 0,
            frontend_cap: (cfg.frontend_depth as usize) * (cfg.width as usize),
            watchdog_remaining,
            counters: SimCounters::new(n),
            measure_start: 0,
            last_pred_taken: (usize::MAX, 0, false),
            pending_flushes: Vec::new(),
            tracer: None,
            faults: FaultInjector::new(cfg.faults),
            nonblocking_mem: matches!(cfg.hierarchy.model, MemModel::NonBlocking(_)),
            fast_forward: cfg.fast_forward,
            ff_jumps: 0,
            ff_skipped_cycles: 0,
            committed_total: 0,
            ff_scratch: None,
            scratch: CycleScratch::default(),
            plan_valid: 0,
            plan_bloom: vec![0; n],
            threads,
            regs,
            cfg,
        }
    }

    /// Every fault injected so far, in firing order — the `(seed, cycle,
    /// site)` log the determinism contract promises (see [`crate::faults`]).
    /// Unlike the counters, this log survives
    /// [`Simulator::reset_measurement`].
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.faults.log()
    }

    /// Replace the injector with a replay-mode one that fires exactly at
    /// `records` (rates and budgets ignored). Call before running; replaying
    /// a log into the middle of a run makes no sense.
    pub fn set_fault_replay(&mut self, records: Vec<FaultRecord>) {
        assert_eq!(self.now, 0, "install fault replay before the first cycle");
        self.faults = FaultInjector::replay(self.cfg.faults, records);
    }

    /// Install a pipeline-event observer, replacing any existing one.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Remove and return the installed tracer, if any.
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Event-driven-loop effectiveness: `(jumps, skipped_cycles)` — how
    /// many calendar jumps the run took and how many cycles they skipped
    /// in total. Lifetime values (not reset by
    /// [`Simulator::reset_measurement`]), and deliberately outside
    /// [`SimCounters`] so fast-forwarded and reference runs stay
    /// bit-for-bit counter-identical.
    pub fn ff_stats(&self) -> (u64, u64) {
        (self.ff_jumps, self.ff_skipped_cycles)
    }

    /// Accumulated statistics.
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of hardware thread contexts.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Reset measurement state (counters, cache/predictor hit statistics)
    /// while keeping all microarchitectural state warm: caches stay filled,
    /// predictors stay trained, in-flight instructions keep flowing. Call
    /// after a warm-up phase so cold-start effects do not pollute the
    /// measured region — the moral equivalent of the paper's SimPoint
    /// fast-forwarding.
    pub fn reset_measurement(&mut self, hier: &mut Hierarchy) {
        self.reset_measurement_local();
        hier.reset_stats();
    }

    /// The core-private half of [`Core::reset_measurement`]: reset the
    /// counters and predictor statistics but leave the (possibly shared)
    /// hierarchy alone — a multi-core wrapper resets that exactly once.
    pub(crate) fn reset_measurement_local(&mut self) {
        self.counters = SimCounters::new(self.threads.len());
        self.committed_total = 0;
        self.measure_start = self.now;
        let win = self.now / YIELD_WINDOW;
        for t in &mut self.threads {
            t.gshare.reset_stats();
            // Re-base the ILP-YIELD window on the zeroed `issued` counter;
            // the current score stays warm like the rest of the pipeline.
            t.yield_win = win;
            t.yield_issued_at_win = 0;
        }
    }

    /// Check the structural invariants that must hold when the machine is
    /// quiescent (all threads drained): every physical register is either
    /// free or mapped by exactly one rename-table entry, and every pipeline
    /// structure is empty. Panics with a description on violation — used by
    /// the test suite to detect resource leaks (e.g. registers lost across
    /// watchdog flushes).
    pub fn assert_quiescent_invariants(&self) {
        assert!(
            self.threads.iter().all(|t| t.drained()),
            "assert_quiescent_invariants requires drained threads"
        );
        assert_eq!(self.iq.occupancy(), 0, "IQ must be empty when drained");
        assert!(self.dab.is_empty(), "DAB must be empty when drained");
        // Stale events from squashed incarnations may still sit in the
        // queue; with every ROB empty they can never match a live
        // instruction, so they are harmless by construction (validated by
        // the age check at delivery).
        for (i, ctx) in self.threads.iter().enumerate() {
            assert!(ctx.lsq.is_empty(), "thread {i} LSQ must be empty when drained");
        }
        // Register conservation: free + architecturally mapped == total,
        // and no two rename-table entries alias.
        let mut seen = std::collections::HashSet::new();
        let mut mapped_int = 0usize;
        let mut mapped_fp = 0usize;
        for ctx in &self.threads {
            for &p in ctx.rat.mappings() {
                assert!(seen.insert(p), "physical register {p:?} mapped twice");
                match p.class {
                    smt_isa::RegClass::Int => mapped_int += 1,
                    smt_isa::RegClass::Fp => mapped_fp += 1,
                }
                assert!(self.regs.is_ready(p), "mapped register {p:?} must hold a ready value");
            }
        }
        assert_eq!(
            self.regs.free_count(smt_isa::RegClass::Int) + mapped_int,
            self.cfg.phys_int,
            "integer physical registers leaked"
        );
        assert_eq!(
            self.regs.free_count(smt_isa::RegClass::Fp) + mapped_fp,
            self.cfg.phys_fp,
            "floating-point physical registers leaked"
        );
    }

    /// One-line-per-thread summary of pipeline state, for debugging hangs.
    pub fn dump_state(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cycle={} iq_occ={}/{} dab={} events={} free_int={} free_fp={}",
            self.now,
            self.iq.occupancy(),
            self.cfg.iq_size,
            self.dab.len(),
            self.events.len(),
            self.regs.free_count(smt_isa::RegClass::Int),
            self.regs.free_count(smt_isa::RegClass::Fp),
        );
        for (t, ctx) in self.threads.iter().enumerate() {
            let head = ctx.rob.front().map(|e| {
                let fmt_src = |src: Option<PhysReg>| match src {
                    None => "-".to_string(),
                    Some(p) => {
                        let ready = self.regs.is_ready(p);
                        // Does any in-flight instruction produce p?
                        let producer = self
                            .threads
                            .iter()
                            .enumerate()
                            .flat_map(|(ti, th)| th.rob.iter().map(move |x| (ti, x)))
                            .find(|(_, x)| x.dest == Some(p))
                            .map(|(ti, x)| format!("t{}#{}:{:?}", ti, x.trace_idx, x.state));
                        format!(
                            "{:?}{}(ready={ready},prod={})",
                            p.class,
                            p.index,
                            producer.unwrap_or_else(|| "NONE".into())
                        )
                    }
                };
                format!(
                    "{}@{} {:?} srcs=[{}, {}]",
                    e.inst.op,
                    e.trace_idx,
                    e.state,
                    fmt_src(e.srcs[0]),
                    fmt_src(e.srcs[1]),
                )
            });
            let _ = writeln!(
                s,
                "t{t}: rob={}/{} buf={} fe={} lsq={} gated={:?} blocked_until={} cursor={} head={}",
                ctx.rob.len(),
                self.cfg.rob_per_thread,
                ctx.dispatch_buf.len(),
                ctx.frontend.len(),
                ctx.lsq.len(),
                ctx.fetch_gated_by,
                ctx.fetch_blocked_until,
                ctx.fetch_cursor,
                head.unwrap_or_else(|| "-".into()),
            );
        }
        s
    }

    /// Run until any thread commits `commit_target` instructions (the
    /// paper's stop rule), every thread drains, or the configured cycle
    /// limit is reached.
    pub fn run(&mut self, hier: &mut Hierarchy, commit_target: u64) -> RunOutcome {
        self.run_with_abort(hier, commit_target, || false)
    }

    /// [`Simulator::run`] with an external abort hook: `should_abort` is
    /// polled every few thousand cycles (cheap enough for an `Instant`
    /// comparison) and a `true` return stops the run with
    /// [`RunOutcome::Aborted`]. Sweep harnesses use this for per-run
    /// wall-clock budgets.
    pub fn run_with_abort(
        &mut self,
        hier: &mut Hierarchy,
        commit_target: u64,
        mut should_abort: impl FnMut() -> bool,
    ) -> RunOutcome {
        let mut last_total: u64 = self.committed_total;
        let mut last_commit_cycle = self.now;
        // Poll the abort hook on loop iterations, not cycle numbers: a
        // calendar jump can step `now` over any particular alignment
        // forever, while iterations are guaranteed to keep happening.
        // Iteration 0 polls immediately so an already-expired budget
        // aborts before any work.
        let mut iters: u64 = 0;
        loop {
            if self.counters.threads.iter().any(|t| t.committed >= commit_target) {
                return RunOutcome::TargetReached;
            }
            if self.threads.iter().all(|t| t.drained()) {
                return RunOutcome::AllFinished;
            }
            if self.committed_total != last_total {
                last_total = self.committed_total;
                last_commit_cycle = self.now;
            }
            if let Some(report) = self.check_progress(hier, last_commit_cycle) {
                return RunOutcome::Wedged(report);
            }
            if iters & (ABORT_POLL_ITERS - 1) == 0 && should_abort() {
                return RunOutcome::Aborted;
            }
            iters += 1;
            self.cycle_with_fast_forward(hier, last_commit_cycle);
        }
    }

    /// Run until *every* live thread has committed at least `commit_target`
    /// instructions. Used for warm-up: each thread's caches and predictors
    /// must reach steady state, including threads that run far slower than
    /// their co-runners (the stand-in for per-benchmark SimPoint
    /// fast-forwarding).
    pub fn run_until_all_committed(
        &mut self,
        hier: &mut Hierarchy,
        commit_target: u64,
    ) -> RunOutcome {
        self.run_until_all_committed_with_abort(hier, commit_target, || false)
    }

    /// [`Simulator::run_until_all_committed`] with an external abort hook
    /// (see [`Simulator::run_with_abort`]).
    pub fn run_until_all_committed_with_abort(
        &mut self,
        hier: &mut Hierarchy,
        commit_target: u64,
        mut should_abort: impl FnMut() -> bool,
    ) -> RunOutcome {
        let mut last_total: u64 = self.committed_total;
        let mut last_commit_cycle = self.now;
        // Iteration-based abort polling; see `run_with_abort`.
        let mut iters: u64 = 0;
        loop {
            let all_done = self
                .counters
                .threads
                .iter()
                .zip(&self.threads)
                .all(|(c, t)| c.committed >= commit_target || t.drained());
            if all_done {
                return if self.threads.iter().all(|t| t.drained()) {
                    RunOutcome::AllFinished
                } else {
                    RunOutcome::TargetReached
                };
            }
            if self.committed_total != last_total {
                last_total = self.committed_total;
                last_commit_cycle = self.now;
            }
            if let Some(report) = self.check_progress(hier, last_commit_cycle) {
                return RunOutcome::Wedged(report);
            }
            if iters & (ABORT_POLL_ITERS - 1) == 0 && should_abort() {
                return RunOutcome::Aborted;
            }
            iters += 1;
            self.cycle_with_fast_forward(hier, last_commit_cycle);
        }
    }

    /// Shared wedge check of the run loops: trip on the forward-progress
    /// watchdog (no commit for `progress_check_cycles` cycles) or the
    /// safety cycle limit, and diagnose the machine state.
    fn check_progress(
        &self,
        hier: &Hierarchy,
        last_commit_cycle: u64,
    ) -> Option<Box<DeadlockReport>> {
        let stuck = self.now - last_commit_cycle;
        let k = self.cfg.progress_check_cycles;
        if (k > 0 && stuck >= k) || (self.cfg.max_cycles > 0 && self.now >= self.cfg.max_cycles) {
            Some(Box::new(self.diagnose(hier, stuck)))
        } else {
            None
        }
    }

    /// Advance the core by one cycle against its hierarchy. Multi-core
    /// wrappers split the same sequence into [`Core::begin_cycle`], one
    /// shared memory step, and [`Core::finish_cycle`] so the shared
    /// hierarchy advances exactly once per machine cycle.
    pub fn cycle(&mut self, hier: &mut Hierarchy) {
        self.begin_cycle();
        self.step_memory(hier);
        self.finish_cycle(hier);
    }

    /// Cycle prologue: advance the clock and deliver slow-bus broadcasts
    /// staged last cycle (Half-Price mode) before this cycle's wakeups and
    /// select.
    pub(crate) fn begin_cycle(&mut self) {
        self.now += 1;
        self.iq.tick();
    }

    /// Everything after the memory step: events, the reverse-order stage
    /// sweep, per-cycle statistics, the watchdog, and the round-robin
    /// rotation.
    pub(crate) fn finish_cycle(&mut self, hier: &mut Hierarchy) {
        self.process_events();
        self.commit_stage(hier);
        self.issue_stage(hier);
        self.apply_pending_flushes();
        let dispatched = self.dispatch_stage();
        self.rename_stage();
        self.fetch_stage(hier);
        self.counters.cycles = self.now - self.measure_start;
        self.counters.iq_occupancy_sum += self.iq.occupancy() as u64;
        for t in 0..self.threads.len() {
            self.counters.threads[t].iq_occupancy_sum += self.iq.thread_occupancy(t) as u64;
            // Per-thread MLP sampling: identical under both memory models
            // (outstanding_mem_misses is maintained by each).
            let om = self.threads[t].outstanding_mem_misses;
            if om > 0 {
                let tc = &mut self.counters.threads[t];
                tc.mem_busy_cycles += 1;
                tc.mlp_sum += om as u64;
            }
            // MLP-GATE stall attribution: one count per cycle the gate
            // holds the thread. The gate state is constant across a
            // fast-forwarded stretch (its release is a calendar stop), so
            // the per-cycle delta replays exactly.
            if self.cfg.fetch_policy == FetchPolicy::MlpGate
                && self.threads[t].mlp_gate_until > self.now
            {
                self.counters.threads[t].mlp_gate_cycles += 1;
            }
        }
        self.sync_mem_counters(hier);
        self.watchdog_tick(dispatched);
        if !self.threads.is_empty() {
            self.rr = (self.rr + 1) % self.threads.len();
        }
    }

    /// Advance one cycle and, when that cycle proves the machine idle,
    /// jump the clock to the next calendar entry.
    ///
    /// Strategy (DESIGN.md, "The event-driven loop"): a cheap precheck
    /// rejects cycles that could plausibly do work; otherwise the counters
    /// are snapshotted, one *representative* cycle runs for real, and an
    /// activity signature decides whether it did anything. If it did not,
    /// every subsequent cycle up to the next calendar entry is an exact
    /// replica, so the representative cycle's counter deltas are replayed
    /// `k` more times arithmetically and the clock jumps by `k` — directly
    /// to one cycle before the nearest wake source, however far that is.
    /// Counters stay bit-for-bit identical to the unskipped run
    /// (`tests/fast_forward_differential.rs` pins this).
    fn cycle_with_fast_forward(&mut self, hier: &mut Hierarchy, last_commit_cycle: u64) {
        if !self.fast_forward || !self.ff_idle_precheck(hier) {
            self.cycle(hier);
            return;
        }
        let mut scratch =
            self.ff_scratch.take().unwrap_or_else(|| SimCounters::new(self.threads.len()));
        scratch.clone_from(&self.counters);
        let sig = self.ff_activity_sig(hier);
        self.cycle(hier);
        let sig_match = self.ff_activity_sig(hier) == sig;
        if sig_match
            && self.ff_idle_precheck(hier)
            // A drain transition must surface to the run loop at its true
            // cycle, not after an overshoot.
            && !self.all_drained()
        {
            let k = self.ff_skip_len(hier, last_commit_cycle);
            if k > 0 {
                self.ff_apply_jump(&scratch, k);
                if self.nonblocking_mem {
                    hier.account_idle_cycles(k);
                    self.sync_mem_counters(hier);
                }
            }
        }
        self.ff_scratch = Some(scratch);
    }

    /// Apply a proven-idle jump of `k` cycles to the core-private state:
    /// replay the representative cycle's counter deltas arithmetically,
    /// advance the clock, rotate the round-robin priority (k idle cycles
    /// rotate it k times), and run down the watchdog. The hierarchy's share
    /// of the jump (`account_idle_cycles`) is the caller's, so a multi-core
    /// wrapper accounts the shared structures exactly once.
    pub(crate) fn ff_apply_jump(&mut self, scratch: &SimCounters, k: u64) {
        self.counters.replicate_idle_deltas(scratch, k);
        self.now += k;
        self.ff_jumps += 1;
        self.ff_skipped_cycles += k;
        let n = self.threads.len();
        if n > 0 {
            self.rr = (self.rr + (k as usize % n)) % n;
        }
        if matches!(self.cfg.deadlock, DeadlockMode::Watchdog { .. }) {
            // ff_skip_len stopped short of the next flush, so the
            // countdown cannot underflow.
            self.watchdog_remaining -= k;
        }
    }

    /// Is every thread context drained (trace done, pipeline empty)?
    pub(crate) fn all_drained(&self) -> bool {
        self.threads.iter().all(|t| t.drained())
    }

    /// Reusable counter snapshot for a wrapper-driven fast-forward: clone
    /// the live counters into the retained scratch buffer and lend it out.
    /// Return it via [`Core::ff_put_scratch`] after the jump decision.
    pub(crate) fn ff_take_scratch(&mut self) -> SimCounters {
        let mut scratch =
            self.ff_scratch.take().unwrap_or_else(|| SimCounters::new(self.threads.len()));
        scratch.clone_from(&self.counters);
        scratch
    }

    pub(crate) fn ff_put_scratch(&mut self, scratch: SimCounters) {
        self.ff_scratch = Some(scratch);
    }

    /// Cheap rejection filter for the fast-forward: could the next cycle
    /// plausibly do work that is not driven by a bounded wake source?
    /// Issue candidates (ready or staged IQ entries, DAB entries),
    /// pending FLUSH squashes, a drainable buffered store, and any
    /// fetch-eligible thread all do per-cycle work that is not a pure
    /// replica, so any of them vetoes skipping. The remaining arms are
    /// pure attempt-avoidance: an imminent event delivery, commit, or
    /// rename would fail the activity signature anyway, so vetoing here
    /// just skips the cost of finding that out (a counter snapshot plus a
    /// wasted signature pair per active cycle).
    pub(crate) fn ff_idle_precheck(&self, hier: &Hierarchy) -> bool {
        self.dab.is_empty()
            && self.pending_flushes.is_empty()
            && !self.iq.has_ready()
            && !self.iq.has_staged()
            && self.events.next_due_cycle().is_none_or(|c| c > self.now + 1)
            && (!self.nonblocking_mem
                || hier.next_event_at(self.now).is_none_or(|c| c > self.now + 1))
            && !self.ff_commit_imminent(hier)
            && self.ff_fetch_quiescent()
            && !self.ff_rename_imminent()
    }

    /// Will the next cycle's commit stage retire something? True when any
    /// thread's ROB head is completed and not parked behind a full write
    /// buffer — mirrors the gate in `commit_stage`. A head that *is*
    /// parked (completed store, full buffer, stuck head) retires nothing
    /// for as long as the buffer stays stuck, which the hierarchy's
    /// calendar entry bounds.
    fn ff_commit_imminent(&self, hier: &Hierarchy) -> bool {
        let wb_blocked = self.nonblocking_mem && !hier.wb_can_push();
        self.threads.iter().any(|ctx| {
            ctx.rob.front().is_some_and(|e| {
                e.state == InstState::Completed
                    && !(wb_blocked && e.inst.op.is_store() && e.inst.mem.is_some())
            })
        })
    }

    /// Will the next cycle's rename stage move an instruction out of some
    /// front end? Mirrors the gate order of `try_rename_one` one cycle
    /// ahead. Over-approximation is harmless (a lost skip opportunity);
    /// under-approximation is too (the activity signature still catches
    /// the rename) — the point is to avoid paying for a doomed signature
    /// attempt while a gated thread's already-fetched tail drains.
    fn ff_rename_imminent(&self) -> bool {
        let cap = self.cfg.dispatch_buffer_cap;
        self.threads.iter().any(|ctx| {
            let Some(front) = ctx.frontend.front() else { return false };
            front.ready_at <= self.now + 1
                && !ctx.rob.is_full()
                && ctx.dispatch_buf.len() < cap
                && !(front.inst.op.is_mem() && ctx.lsq.is_full())
                && front.inst.real_dest().is_none_or(|d| self.regs.free_count(d.class) > 0)
        })
    }

    /// The single fetch-eligibility predicate, probed at cycle `at`: may
    /// thread `ctx` be offered a fetch slot on that cycle? Shared verbatim
    /// by the per-cycle pick loop in `fetch_stage` (`at = now`) and the
    /// fast-forward's [`Core::ff_fetch_quiescent`] (`at = now + 1`) — the
    /// two used to hand-copy each other's arms and had already begun to
    /// drift policy clauses; any future arm added here covers both
    /// automatically, pinned by `tests/fast_forward_differential.rs`.
    /// Every arm is monotone over an idle stretch and expires through a
    /// wake source `ff_skip_len` bounds: gating and outstanding misses
    /// clear on scheduled events, blocking on `fetch_blocked_until`, the
    /// MLP gate on its own calendar entry, and a full front end drains
    /// only through rename activity the activity signature does see.
    fn fetch_eligible_at(&self, ctx: &ThreadCtx, at: u64) -> bool {
        if ctx.fetch_gated_by.is_some()
            || ctx.fetch_blocked_until > at
            || ctx.frontend.len() >= self.frontend_cap
            || (ctx.finished_fetch && ctx.wrongpath_of.is_none())
        {
            return false;
        }
        match self.cfg.fetch_policy {
            // STALL/FLUSH: a thread with an outstanding memory miss does
            // not fetch until the miss returns.
            FetchPolicy::Stall | FetchPolicy::Flush => ctx.outstanding_mem_misses == 0,
            // MLP-GATE: gated until the scheduled fill time of the
            // thread's last long-latency miss.
            FetchPolicy::MlpGate => ctx.mlp_gate_until <= at,
            _ => true,
        }
    }

    /// Is every thread ineligible to fetch, this cycle *and* the next? The
    /// activity signature cannot see a fetch attempt that misses the
    /// I-cache (it delivers zero instructions yet re-blocks the thread and
    /// touches cache state), and the fetch-port limit means a thread left
    /// unpicked this cycle may be picked a few cycles later with no other
    /// state change — so skipping is only sound when *no* thread could be
    /// picked at all. Probing [`Core::fetch_eligible_at`] one cycle ahead
    /// (`now + 1`) covers both cycles: every arm is monotone, so a thread
    /// ineligible next cycle was ineligible this cycle too, and a thread
    /// unblocking next cycle makes the representative cycle a doomed
    /// candidate — the calendar would bound the skip at zero anyway.
    fn ff_fetch_quiescent(&self) -> bool {
        self.threads.iter().all(|ctx| !self.fetch_eligible_at(ctx, self.now + 1))
    }

    pub(crate) fn ff_activity_sig(&self, hier: &Hierarchy) -> FfActivitySig {
        let mut fetched = 0u64;
        let mut dispatched = 0u64;
        let mut issued = 0u64;
        let mut wrong_path_fetched = 0u64;
        for tc in &self.counters.threads {
            fetched += tc.fetched;
            dispatched += tc.dispatched;
            issued += tc.issued;
            wrong_path_fetched += tc.wrong_path_fetched;
        }
        let mut frontend = 0usize;
        let mut dispatch_buf = 0usize;
        let mut rob = 0usize;
        let mut lsq = 0usize;
        let mut outstanding_misses = 0u32;
        for t in &self.threads {
            frontend += t.frontend.len();
            dispatch_buf += t.dispatch_buf.len();
            rob += t.rob.len();
            lsq += t.lsq.len();
            outstanding_misses += t.outstanding_mem_misses;
        }
        FfActivitySig {
            committed: self.committed_total,
            fetched,
            dispatched,
            issued,
            wrong_path_fetched,
            frontend,
            dispatch_buf,
            rob,
            lsq,
            outstanding_misses,
            iq_occ: self.iq.occupancy(),
            dab: self.dab.len(),
            events_len: self.events.len(),
            events_pops: self.events.pops(),
            mshr_in_flight: if self.nonblocking_mem { hier.mshr_in_flight_total() } else { 0 },
            wb_len: if self.nonblocking_mem { hier.wb_len() } else { 0 },
            watchdog_flushes: self.counters.watchdog_flushes,
            fetch_policy_flushes: self.counters.fetch_policy_flushes,
        }
    }

    /// How many cycles after the representative idle cycle are guaranteed
    /// replicas of it: build the calendar of every next-activity time —
    /// scheduled events (wakeups, completions, fault redeliveries), the
    /// memory hierarchy's next fill or drainable store, fetch unblock
    /// times, front-end delivery times, the watchdog's next flush — and
    /// jump to one cycle before the nearest ([`Calendar::stop_before`]),
    /// landing exactly on the run loop's own trip points (forward-progress
    /// check, cycle limit — [`Calendar::land_on`]) so the loop observes
    /// them on the same cycle it would have cycle-by-cycle. The jump is
    /// unbounded: one calendar hop covers an arbitrarily long idle
    /// stretch.
    pub(crate) fn ff_skip_len(&self, hier: &Hierarchy, last_commit_cycle: u64) -> u64 {
        // A machine with work in flight but *no* calendar entry at all can
        // never change state again (nothing is scheduled and nothing can
        // become schedulable) — it is wedged, and with the progress check
        // and cycle limit both disabled no boundary will trip either.
        // Advance in finite strides so `now` keeps moving for an eventual
        // external observer instead of leaping toward u64::MAX.
        const WEDGE_STRIDE: u64 = 65_536;
        let mut cal = Calendar::new();
        // process_events / step_memory drained everything due at `now`, so
        // both wake sources are strictly in the future here.
        cal.stop_before_opt(self.events.next_due_cycle());
        if self.nonblocking_mem {
            cal.stop_before_opt(hier.next_event_at(self.now));
        }
        for ctx in &self.threads {
            if ctx.fetch_blocked_until > self.now {
                cal.stop_before(ctx.fetch_blocked_until);
            }
            // MLP-GATE release: the gate timestamp is a wake source in its
            // own right — the fill event that armed it may deliver to a
            // destination-less load or be squashed, so the gate's expiry
            // is registered unconditionally (the field is 0 under every
            // other policy, so this arm never fires for them).
            if ctx.mlp_gate_until > self.now {
                cal.stop_before(ctx.mlp_gate_until);
            }
            if let Some(fe) = ctx.frontend.front() {
                if fe.ready_at > self.now {
                    cal.stop_before(fe.ready_at);
                }
            }
        }
        if matches!(self.cfg.deadlock, DeadlockMode::Watchdog { .. }) {
            // The postcheck left work in flight with nothing dispatching,
            // so the watchdog decrements every cycle of the window: stop
            // before it reaches zero and flushes.
            cal.stop_before(self.now + self.watchdog_remaining);
        }
        if self.cfg.progress_check_cycles > 0 {
            cal.land_on(last_commit_cycle + self.cfg.progress_check_cycles);
        }
        if self.cfg.max_cycles > 0 {
            cal.land_on(self.cfg.max_cycles);
        }
        if cal.is_bounded() {
            cal.skip_from(self.now)
        } else {
            WEDGE_STRIDE
        }
    }

    /// Advance the non-blocking memory machinery: release completed MSHR
    /// fills, drain the store write buffer (attributing the cache traffic
    /// to the committing threads), and mirror the hierarchy's memory
    /// counters into the stats. No-op under the flat model.
    fn step_memory(&mut self, hier: &mut Hierarchy) {
        if !self.nonblocking_mem {
            return;
        }
        // Fast path: no fill is due yet and the write buffer has nothing it
        // could drain, so a full `step` would release nothing and drain
        // nothing — only the occupancy samples change, and those are exactly
        // what one accounted idle cycle adds.
        if hier.next_fill_at().is_none_or(|c| c > self.now)
            && (hier.wb_len() == 0 || hier.wb_head_stuck())
        {
            hier.account_idle_cycles(1);
            return;
        }
        for d in hier.step(self.now) {
            self.note_data_access(d.thread, d.level);
        }
    }

    /// Mirror the hierarchy's cumulative memory counters into the stats —
    /// the core's own attribution slice plus the shared-structure samples.
    /// Runs in the cycle tail so same-cycle commit-stage traffic is
    /// captured even on the run's final cycle.
    pub(crate) fn sync_mem_counters(&mut self, hier: &Hierarchy) {
        if !self.nonblocking_mem {
            return;
        }
        self.counters.mem = mem_counters_from(&hier.mem_stats_for(self.core_id));
    }

    /// Attribute one data-side (load or drained-store) cache access to a
    /// thread's hit/miss counters.
    pub(crate) fn note_data_access(&mut self, t: usize, level: HitLevel) {
        let tc = &mut self.counters.threads[t];
        match level {
            HitLevel::L1 => tc.l1d_hits += 1,
            HitLevel::L2 => {
                tc.l1d_misses += 1;
                tc.l2_hits += 1;
            }
            HitLevel::Memory => {
                tc.l1d_misses += 1;
                tc.l2_misses += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Events: wakeups and completions.
    // ------------------------------------------------------------------

    fn process_events(&mut self) {
        while let Some(ev) = self.events.pop_due(self.now) {
            match ev {
                Event::Wakeup { thread, trace_idx, age, reg } => {
                    // Validate the producing *incarnation* is still in
                    // flight: a squashed-and-refetched instruction reuses
                    // its trace index but gets a fresh age, so stale events
                    // from the squashed incarnation never match.
                    let valid = self.threads[thread]
                        .rob
                        .get(trace_idx)
                        .map(|e| {
                            e.age == age && e.state == InstState::Issued && e.dest == Some(reg)
                        })
                        .unwrap_or(false);
                    if valid {
                        self.regs.set_ready(reg);
                        // A newly-ready register changes any dispatch plan
                        // that observed it as a non-ready source.
                        let bit = 1u64 << (reg.index as u64 & 63);
                        for t in 0..self.plan_bloom.len() {
                            if self.plan_bloom[t] & bit != 0 {
                                self.plan_valid &= !(1 << t);
                            }
                        }
                        if self.faults.roll(FaultClass::WakeupDrop, self.now, thread, trace_idx) {
                            // The value lands in the register file, but the
                            // IQ tag-bus broadcast is lost. Without the DAB
                            // or watchdog the waiters would sleep forever;
                            // a delayed re-broadcast models the scheduler's
                            // eventual replay path.
                            self.counters.faults.wakeup_drops += 1;
                            let delay = self.faults.config().wakeup_redeliver_delay.max(1);
                            self.events.schedule(self.now + delay, Event::IqRebroadcast { reg });
                        } else {
                            self.iq.wakeup(reg);
                        }
                    }
                }
                Event::IqRebroadcast { reg } => {
                    // Allocation clears the ready bit, so a register freed
                    // and handed to a new producer since the drop cannot
                    // receive a spurious early wakeup here.
                    if self.regs.is_ready(reg) {
                        self.counters.faults.wakeup_redeliveries += 1;
                        self.iq.wakeup(reg);
                    }
                }
                Event::Complete { thread, trace_idx, age } => {
                    let redirect = self.cfg.redirect_penalty as u64;
                    let now = self.now;
                    let branch_info = {
                        let t = &mut self.threads[thread];
                        let Some(e) = t.rob.get_mut(trace_idx) else { continue };
                        if e.age != age || e.state != InstState::Issued {
                            continue;
                        }
                        e.state = InstState::Completed;
                        if e.long_miss {
                            t.outstanding_mem_misses = t.outstanding_mem_misses.saturating_sub(1);
                        }
                        if e.inst.op.is_branch() {
                            Some((e.inst.pc, e.inst.branch.expect("branch info"), e.mispredicted))
                        } else {
                            None
                        }
                    };
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.on_writeback(now, thread, trace_idx);
                    }
                    if let Some((pc, b, mispredicted)) = branch_info {
                        if b.taken {
                            self.btb.update(pc, b.target);
                        }
                        if mispredicted {
                            let t = &mut self.threads[thread];
                            if t.fetch_gated_by == Some(trace_idx) {
                                // Fetch-gated mode: simply resume on the
                                // correct path after the redirect penalty.
                                t.fetch_gated_by = None;
                                t.fetch_blocked_until = now + redirect;
                            } else if t.wrongpath_of == Some(trace_idx) {
                                // Wrong-path mode: squash the wrong-path
                                // instructions, then restart fetch on the
                                // correct path after the redirect penalty.
                                self.squash_thread_after(thread, trace_idx);
                                self.threads[thread].wrongpath_of = None;
                                self.threads[thread].fetch_blocked_until = now + redirect;
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    fn commit_stage(&mut self, hier: &mut Hierarchy) {
        let n = self.threads.len();
        let mut budget = self.cfg.width;
        let mut progress = true;
        let mut wb_noted: u64 = 0;
        while budget > 0 && progress {
            progress = false;
            for i in 0..n {
                if budget == 0 {
                    break;
                }
                let t = (self.rr + i) % n;
                let committable = self.threads[t]
                    .rob
                    .front()
                    .map(|e| e.state == InstState::Completed)
                    .unwrap_or(false);
                if !committable {
                    continue;
                }
                // A completed store cannot retire while the write buffer
                // is full; the commit slot is lost to back-pressure.
                if self.nonblocking_mem && !hier.wb_can_push() {
                    let head_is_store = self.threads[t]
                        .rob
                        .front()
                        .map(|e| e.inst.op.is_store() && e.inst.mem.is_some())
                        .unwrap_or(false);
                    if head_is_store {
                        if wb_noted & (1 << t) == 0 {
                            self.counters.threads[t].wb_full_stall_cycles += 1;
                            wb_noted |= 1 << t;
                        }
                        continue;
                    }
                }
                self.commit_one(hier, t);
                budget -= 1;
                progress = true;
            }
        }
    }

    fn commit_one(&mut self, hier: &mut Hierarchy, t: usize) {
        // The ROB base and fullness feed the dispatch plan (`is_rob_oldest`,
        // stall attribution), so a commit invalidates the cached plan.
        self.plan_valid &= !(1 << t);
        let entry = self.threads[t].rob.pop_front().expect("commit from empty ROB");
        if let Some(mem) = entry.inst.mem {
            self.threads[t].lsq.pop_front(entry.trace_idx);
            if entry.inst.op.is_store() {
                // Stores write the data cache at commit (write-allocate);
                // the latency is off the critical path, but the traffic is
                // real: attribute it to the thread and, under the
                // non-blocking model, route it through the write buffer.
                if self.nonblocking_mem {
                    if let Some(d) = hier.push_store_for(self.core_id, t, mem.addr, self.now) {
                        self.note_data_access(d.thread, d.level);
                    }
                } else {
                    let extra = hier.access_for(self.core_id, AccessKind::Store, mem.addr);
                    let level = HitLevel::from_flat_extra(extra, self.cfg.hierarchy.l2_hit_latency);
                    self.note_data_access(t, level);
                }
            }
        }
        if let Some((_, old)) = entry.old_dest {
            self.regs.free(old);
        }
        self.committed_total += 1;
        let tc = &mut self.counters.threads[t];
        tc.committed += 1;
        if entry.inst.op.is_branch() {
            tc.branches += 1;
            if entry.mispredicted {
                tc.mispredicts += 1;
            }
        }
        self.threads[t].trace.retire_up_to(entry.trace_idx + 1);
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_commit(self.now, t, entry.trace_idx);
        }
    }

    // ------------------------------------------------------------------
    // Issue: DAB precedence, then oldest-first IQ select.
    // ------------------------------------------------------------------

    fn issue_stage(&mut self, hier: &mut Hierarchy) {
        // Nothing selectable: `has_ready() == false` means the ready heap is
        // empty, so the pop loop below could only return `None`.
        if self.dab.is_empty() && !self.iq.has_ready() {
            return;
        }
        let mut budget = self.cfg.width;

        // Deadlock-avoidance buffer. In the paper's chosen variant its
        // instructions take precedence ("selection from the IQ is disabled
        // when there are instructions present in the deadlock-avoidance
        // buffer"); in the arbitrated variant they merge with the IQ
        // oldest-first, which here is approximated by issuing DAB entries
        // first only when they are older than the IQ's oldest ready entry —
        // since DAB entries are ROB-oldest they are in practice older than
        // anything ready in the IQ, so both variants issue them eagerly;
        // the difference is whether the rest of the cycle's issue slots may
        // still select from the IQ.
        if !self.dab.is_empty() {
            let mut i = 0;
            while i < self.dab.len() && budget > 0 {
                let d = self.dab[i];
                let (op, mem) = {
                    let e = self.threads[d.thread]
                        .rob
                        .get(d.trace_idx)
                        .expect("DAB entry without ROB entry");
                    (e.inst.op, e.inst.mem)
                };
                // DAB loads are ROB-oldest, so disambiguation can never
                // block them — but a full MSHR file still can.
                if self.nonblocking_mem && op.is_load() {
                    let addr = mem.expect("load without mem").addr;
                    if !hier.admissible_for(self.core_id, AccessKind::Load, addr) {
                        self.counters.threads[d.thread].mshr_full_defers += 1;
                        i += 1;
                        continue;
                    }
                }
                let desc = MachineDesc::fu_desc(op);
                if self.fu.try_issue(desc.kind, self.now, desc.issue_interval) {
                    self.dab.remove(i);
                    self.start_execution(hier, d.thread, d.trace_idx);
                    budget -= 1;
                } else {
                    i += 1;
                }
            }
            if self.dab_precedence && !self.dab.is_empty() {
                return;
            }
        }

        let mut deferred = std::mem::take(&mut self.scratch.deferred);
        deferred.clear();
        while budget > 0 {
            let Some((slot, entry)) = self.iq.pop_ready() else { break };
            // Injected fault: the grant is revoked and the instruction
            // deferred, exactly like losing structural arbitration. The
            // site hash is cycle-keyed, so a deferred instruction re-rolls
            // (and eventually issues) on a later cycle.
            if self.faults.roll(FaultClass::IssueDefer, self.now, entry.thread, entry.trace_idx) {
                self.counters.faults.issue_defers += 1;
                deferred.push(slot);
                continue;
            }
            let inflight = self.threads[entry.thread]
                .rob
                .get(entry.trace_idx)
                .expect("IQ entry without ROB entry");
            let op = inflight.inst.op;
            // Loads must pass memory disambiguation, and under the
            // non-blocking model a cache-bound load also needs a free MSHR.
            if op.is_load() {
                let addr = inflight.inst.mem.expect("load without mem").addr;
                match self.threads[entry.thread].lsq.check_load(entry.trace_idx, addr) {
                    LoadCheck::Blocked => {
                        deferred.push(slot);
                        continue;
                    }
                    LoadCheck::AccessCache
                        if self.nonblocking_mem
                            && !hier.admissible_for(self.core_id, AccessKind::Load, addr) =>
                    {
                        self.counters.threads[entry.thread].mshr_full_defers += 1;
                        deferred.push(slot);
                        continue;
                    }
                    _ => {}
                }
            }
            let desc = MachineDesc::fu_desc(op);
            if !self.fu.try_issue(desc.kind, self.now, desc.issue_interval) {
                deferred.push(slot);
                continue;
            }
            self.iq.remove(slot);
            self.start_execution(hier, entry.thread, entry.trace_idx);
            budget -= 1;
        }
        for &slot in &deferred {
            self.iq.defer(slot);
        }
        self.scratch.deferred = deferred;
    }

    fn start_execution(&mut self, hier: &mut Hierarchy, t: usize, trace_idx: u64) {
        let now = self.now;
        let exec_tail = self.cfg.exec_tail as u64;
        let (op, dest, mem, dispatch_cycle, age) = {
            let e = self.threads[t].rob.get(trace_idx).expect("issuing unknown instruction");
            (e.inst.op, e.dest, e.inst.mem, e.dispatch_cycle, e.age)
        };
        let desc = MachineDesc::fu_desc(op);
        let mut latency = desc.latency as u64;
        match op {
            OpClass::Load => {
                let addr = mem.expect("load without mem").addr;
                match self.threads[t].lsq.check_load(trace_idx, addr) {
                    LoadCheck::Forward => {}
                    LoadCheck::AccessCache if self.nonblocking_mem => {
                        // Injected fault: rolled before the request so the
                        // spurious latency rides the same MSHR fill. The
                        // site hash only keys on (cycle, thread, trace_idx),
                        // so the roll order relative to the probe does not
                        // change the fault stream.
                        let mut injected = 0u64;
                        if self.faults.roll(FaultClass::CacheMissExtra, now, t, trace_idx) {
                            self.counters.faults.cache_extra_injected += 1;
                            injected = self.faults.config().cache_extra_latency;
                        }
                        let req = hier.request_for(
                            self.core_id,
                            AccessKind::Load,
                            addr,
                            now,
                            injected,
                            Waiter { thread: t, token: trace_idx },
                        );
                        self.note_data_access(t, req.level);
                        if injected > 0 {
                            hier.evict_l1_for(self.core_id, AccessKind::Load, addr);
                        }
                        // The wakeup is scheduled analytically at the fill
                        // time the hierarchy just committed to; the MSHR
                        // waiter token is diagnostic state.
                        let wait = req.fill_at - now;
                        latency += wait;
                        if wait >= self.cfg.hierarchy.memory_latency as u64 {
                            if let Some(e) = self.threads[t].rob.get_mut(trace_idx) {
                                e.long_miss = true;
                            }
                            self.threads[t].outstanding_mem_misses += 1;
                            if self.cfg.fetch_policy == FetchPolicy::Flush {
                                self.pending_flushes.push((t, trace_idx));
                            } else if self.cfg.fetch_policy == FetchPolicy::MlpGate {
                                // Gate fetch until this miss's scheduled
                                // fill (`latency` already includes the
                                // wait); a later miss extends the gate.
                                let g = &mut self.threads[t].mlp_gate_until;
                                *g = (*g).max(now + latency);
                            }
                        }
                    }
                    LoadCheck::AccessCache => {
                        let raw = hier.access_for(self.core_id, AccessKind::Load, addr);
                        self.note_data_access(
                            t,
                            HitLevel::from_flat_extra(raw, self.cfg.hierarchy.l2_hit_latency),
                        );
                        let mut extra = raw as u64;
                        // Injected fault: spurious extra miss latency, plus
                        // eviction of the just-filled L1 line so later
                        // accesses genuinely miss. Pushing `extra` past the
                        // memory latency deliberately triggers the full
                        // long-miss bookkeeping (STALL/FLUSH policies).
                        if self.faults.roll(FaultClass::CacheMissExtra, now, t, trace_idx) {
                            self.counters.faults.cache_extra_injected += 1;
                            extra += self.faults.config().cache_extra_latency;
                            hier.evict_l1_for(self.core_id, AccessKind::Load, addr);
                        }
                        latency += extra;
                        // A main-memory miss drives the STALL/FLUSH fetch
                        // policies: the thread stops fetching (and FLUSH
                        // additionally squashes younger instructions).
                        if extra >= self.cfg.hierarchy.memory_latency as u64 {
                            if let Some(e) = self.threads[t].rob.get_mut(trace_idx) {
                                e.long_miss = true;
                            }
                            self.threads[t].outstanding_mem_misses += 1;
                            if self.cfg.fetch_policy == FetchPolicy::Flush {
                                self.pending_flushes.push((t, trace_idx));
                            } else if self.cfg.fetch_policy == FetchPolicy::MlpGate {
                                // Flat model: the miss "fills" when the
                                // load's result is ready (`latency`
                                // already includes `extra`).
                                let g = &mut self.threads[t].mlp_gate_until;
                                *g = (*g).max(now + latency);
                            }
                        }
                    }
                    LoadCheck::Blocked => unreachable!("blocked load must not issue"),
                }
                self.threads[t].lsq.mark_issued(trace_idx);
            }
            OpClass::Store => {
                self.threads[t].lsq.mark_issued(trace_idx);
            }
            _ => {}
        }
        {
            let e = self.threads[t].rob.get_mut(trace_idx).unwrap();
            e.state = InstState::Issued;
            e.issue_cycle = now;
        }
        let tc = &mut self.counters.threads[t];
        tc.issued += 1;
        tc.iq_residency_sum += now - dispatch_cycle;
        if let Some(reg) = dest {
            self.events.schedule(now + latency, Event::Wakeup { thread: t, trace_idx, age, reg });
        }
        self.events
            .schedule(now + latency + exec_tail, Event::Complete { thread: t, trace_idx, age });
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_issue(now, t, trace_idx);
        }
    }

    /// Apply FLUSH-fetch-policy squashes queued during the issue sweep:
    /// discard everything younger than the missing load and refetch it
    /// once the miss returns (Tullsen & Brown's FLUSH [15]).
    fn apply_pending_flushes(&mut self) {
        let flushes = std::mem::take(&mut self.pending_flushes);
        for (t, keep_idx) in flushes {
            // The load itself may already have been squashed by an earlier
            // flush of the same thread this cycle.
            if self.threads[t].rob.get(keep_idx).is_none() {
                continue;
            }
            if self.threads[t].rob.end() <= keep_idx + 1
                && self.threads[t].frontend.is_empty()
                && self.threads[t].fetch_cursor == keep_idx + 1
            {
                continue; // nothing younger in flight
            }
            self.squash_thread_after(t, keep_idx);
            self.counters.fetch_policy_flushes += 1;
        }
    }

    /// Squash everything of thread `t` younger than `keep_idx` — the common
    /// recovery path of the FLUSH fetch policy and of wrong-path branch
    /// resolution. Fetch restarts at `keep_idx + 1`.
    fn squash_thread_after(&mut self, t: usize, keep_idx: u64) {
        self.plan_valid &= !(1 << t);
        let squashed = self.threads[t].rob.squash_after(keep_idx);
        for e in squashed {
            if let Some((areg, old)) = e.old_dest {
                self.threads[t].rat.restore(areg, old);
            }
            if let Some(d) = e.dest {
                self.regs.free(d);
            }
            if e.state == InstState::Issued && e.long_miss {
                self.threads[t].outstanding_mem_misses =
                    self.threads[t].outstanding_mem_misses.saturating_sub(1);
            }
        }
        self.iq.squash_thread_from(t, keep_idx);
        self.dab.retain(|d| !(d.thread == t && d.trace_idx > keep_idx));
        let ctx = &mut self.threads[t];
        ctx.lsq.truncate_after(keep_idx);
        ctx.dispatch_buf.retain(|&i| i <= keep_idx);
        // Everything in the front end is younger than anything renamed.
        ctx.frontend.clear();
        ctx.fetch_cursor = keep_idx + 1;
        ctx.pending_ifetch_line = None;
        ctx.finished_fetch = false;
        // A gating mispredicted branch or wrong-path episode younger than
        // the squash point disappears with everything else.
        if ctx.fetch_gated_by.map(|b| b > keep_idx).unwrap_or(false) {
            ctx.fetch_gated_by = None;
        }
        if ctx.wrongpath_of.map(|b| b > keep_idx).unwrap_or(false) {
            ctx.wrongpath_of = None;
        }
    }

    // ------------------------------------------------------------------
    // Dispatch: the policy under study.
    // ------------------------------------------------------------------

    /// Returns the number of instructions dispatched this cycle.
    fn dispatch_stage(&mut self) -> u32 {
        let n = self.threads.len();
        // Nothing buffered anywhere: no plans, no dispatch, and the
        // dispatch-work statistic below would not fire either.
        if self.threads.iter().all(|ctx| ctx.dispatch_buf.is_empty()) {
            return 0;
        }
        let width = self.cfg.width as usize;
        let policy = self.cfg.policy;

        // Plan each thread, reusing the scratch plan/view buffers. A thread
        // whose `plan_valid` bit survived since last cycle re-uses its
        // cached plan verbatim: none of the planner's inputs (buffer
        // contents, source readiness, ROB base/fullness) changed, so a
        // fresh plan would be identical — only the per-cycle statistics
        // below are replayed.
        let mut plans = std::mem::take(&mut self.scratch.plans);
        let mut plan_pos = std::mem::take(&mut self.scratch.plan_pos);
        let mut views = std::mem::take(&mut self.scratch.views);
        let mut taint = std::mem::take(&mut self.scratch.taint);
        let mut plan_blocked = std::mem::take(&mut self.scratch.plan_blocked);
        let mut plan_pileup = std::mem::take(&mut self.scratch.plan_pileup);
        plans.resize_with(n, Vec::new);
        plan_pos.clear();
        plan_pos.resize(n, 0);
        plan_blocked.resize(n, false);
        plan_pileup.resize(n, None);
        let mut ndi_blocked: u64 = 0;
        for (t, plan) in plans.iter_mut().enumerate() {
            if self.plan_valid & (1 << t) == 0 {
                views.clear();
                self.thread_buf_views_into(t, &mut views);
                let (blocked, pileup) = plan_thread_into(&views, policy, width, plan, &mut taint);
                plan_blocked[t] = blocked;
                plan_pileup[t] = pileup;
                let mut bloom = 0u64;
                for v in &views {
                    for s in v.nonready_srcs.iter().flatten() {
                        bloom |= 1 << (s.index as u64 & 63);
                    }
                }
                self.plan_bloom[t] = bloom;
                self.plan_valid |= 1 << t;
            }
            if let Some((total, hdis)) = plan_pileup[t] {
                self.counters.pileup_total += total as u64;
                self.counters.pileup_hdis += hdis as u64;
            }
            // A stall is attributed to the 2OP_BLOCK condition only when
            // the dispatch stage is the binding bottleneck: if the thread's
            // ROB is full the machine is backed up on execution regardless
            // of the dispatch policy, and the paper's accounting (which
            // records a blocked thread's immediate reason) would charge the
            // cycle to the ROB instead.
            if plan_blocked[t] && !self.threads[t].rob.is_full() {
                ndi_blocked |= 1 << t;
                self.counters.threads[t].ndi_blocked_cycles += 1;
            }
        }

        // Consume candidates round-robin, one instruction per thread per
        // turn, until the shared width is exhausted.
        let mut budget = width as u32;
        let mut dispatched = 0u32;
        let mut iq_full_noted: u64 = 0;
        let mut progress = true;
        while budget > 0 && progress {
            progress = false;
            for i in 0..n {
                if budget == 0 {
                    break;
                }
                let t = (self.rr + i) % n;
                let Some(&cand) = plans[t].get(plan_pos[t]) else { continue };
                if self.iq.has_free_for(cand.non_ready) {
                    plan_pos[t] += 1;
                    self.dispatch_to_iq(t, cand);
                    budget -= 1;
                    dispatched += 1;
                    progress = true;
                } else if cand.dab_eligible && self.dab.len() < self.dab_size {
                    plan_pos[t] += 1;
                    self.dispatch_to_dab(t, cand);
                    budget -= 1;
                    dispatched += 1;
                    progress = true;
                } else {
                    // IQ full: the thread cannot dispatch this cycle (the
                    // IQ only fills during dispatch).
                    if iq_full_noted & (1 << t) == 0 {
                        iq_full_noted |= 1 << t;
                        self.counters.threads[t].iq_full_cycles += 1;
                    }
                    plan_pos[t] = plans[t].len();
                }
            }
        }
        self.scratch.plans = plans;
        self.scratch.plan_pos = plan_pos;
        self.scratch.views = views;
        self.scratch.taint = taint;
        self.scratch.plan_blocked = plan_blocked;
        self.scratch.plan_pileup = plan_pileup;

        // The paper's §3/§5 statistic: a cycle in which the dispatch of
        // *all* threads stalls "due to the presence of instructions with 2
        // non-ready operands from both threads" — i.e. every thread holds
        // undispatched instructions and every one of them is blocked by the
        // non-dispatchable condition. A thread with an empty buffer makes
        // the cycle a fetch-supply stall, not a dispatch stall.
        if (0..n).any(|t| !self.threads[t].dispatch_buf.is_empty()) {
            self.counters.cycles_with_dispatch_work += 1;
            if dispatched == 0 && ndi_blocked.count_ones() as usize == n {
                self.counters.all_threads_ndi_stall_cycles += 1;
            }
        }
        dispatched
    }

    /// Readiness-annotated views of a thread's dispatch buffer (oldest
    /// first) — the input to the dispatch planner, also consumed by
    /// [`Simulator::diagnose`].
    fn thread_buf_views(&self, t: usize) -> Vec<BufView> {
        let mut views = Vec::new();
        self.thread_buf_views_into(t, &mut views);
        views
    }

    /// [`Simulator::thread_buf_views`] into a caller-owned buffer, so the
    /// per-cycle dispatch stage can reuse one allocation.
    fn thread_buf_views_into(&self, t: usize, out: &mut Vec<BufView>) {
        let ctx = &self.threads[t];
        out.extend(ctx.dispatch_buf.iter().map(|&idx| {
            let e = ctx.rob.get(idx).expect("buffered instruction missing from ROB");
            let mut nonready_srcs = [None, None];
            let mut non_ready = 0u8;
            for (i, src) in e.srcs.iter().enumerate() {
                if let Some(p) = src {
                    if !self.regs.is_ready(*p) {
                        nonready_srcs[i] = Some(*p);
                        non_ready += 1;
                    }
                }
            }
            BufView {
                trace_idx: idx,
                non_ready,
                nonready_srcs,
                dest: e.dest,
                is_rob_oldest: idx == ctx.rob.base(),
            }
        }));
    }

    /// Remove `trace_idx` from a thread's dispatch buffer, reporting
    /// whether an older instruction remains buffered (⇒ HDI dispatch).
    fn take_from_buffer(&mut self, t: usize, trace_idx: u64) -> bool {
        self.plan_valid &= !(1 << t);
        let buf = &mut self.threads[t].dispatch_buf;
        let was_hdi = buf.front().map(|&f| f < trace_idx).unwrap_or(false);
        let pos = buf
            .iter()
            .position(|&i| i == trace_idx)
            .expect("dispatch candidate vanished from buffer");
        buf.remove(pos);
        was_hdi
    }

    fn dispatch_to_iq(&mut self, t: usize, cand: Candidate) {
        let was_hdi = self.take_from_buffer(t, cand.trace_idx);
        let now = self.now;
        let (age, waiting, fu, non_ready) = {
            let e = self.threads[t].rob.get_mut(cand.trace_idx).expect("dispatching unknown");
            debug_assert_eq!(e.state, InstState::Renamed);
            e.state = InstState::Dispatched;
            e.dispatch_cycle = now;
            e.dispatched_ooo = was_hdi;
            e.ndi_dependent = cand.ndi_dependent;
            (e.age, e.srcs, MachineDesc::fu_desc(e.inst.op).kind, 0u8)
        };
        // Compact the pending tags so position 0 holds the first non-ready
        // source — in Half-Price mode position 1 is the slow-bus comparator,
        // so single-tag instructions must use the fast one.
        let mut pending = [None, None];
        let mut nr = non_ready;
        for src in waiting.iter().flatten() {
            if !self.regs.is_ready(*src) {
                pending[nr as usize] = Some(*src);
                nr += 1;
            }
        }
        {
            let e = self.threads[t].rob.get_mut(cand.trace_idx).unwrap();
            e.nonready_at_dispatch = nr;
        }
        self.iq.insert(IqEntry { thread: t, trace_idx: cand.trace_idx, age, fu, waiting: pending });
        let tc = &mut self.counters.threads[t];
        tc.dispatched += 1;
        tc.dispatched_by_nonready[nr.min(2) as usize] += 1;
        if was_hdi {
            tc.hdis_dispatched += 1;
            if cand.ndi_dependent {
                tc.hdis_dependent_on_ndi += 1;
            }
        }
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_dispatch(now, t, cand.trace_idx, false, was_hdi);
        }
    }

    fn dispatch_to_dab(&mut self, t: usize, cand: Candidate) {
        let was_hdi = self.take_from_buffer(t, cand.trace_idx);
        debug_assert!(!was_hdi, "the ROB-oldest instruction is never an HDI");
        let now = self.now;
        let age = {
            let e = self.threads[t].rob.get_mut(cand.trace_idx).expect("DAB dispatch unknown");
            debug_assert!(
                e.srcs.iter().flatten().all(|p| self.regs.is_ready(*p)),
                "DAB admits only ready instructions"
            );
            e.state = InstState::InDab;
            e.dispatch_cycle = now;
            e.age
        };
        // Keep the DAB age-ordered so issue is oldest-first.
        let pos = self.dab.partition_point(|d| d.age < age);
        self.dab.insert(pos, DabEntry { thread: t, trace_idx: cand.trace_idx, age });
        let tc = &mut self.counters.threads[t];
        tc.dispatched += 1;
        tc.dab_dispatches += 1;
        tc.dispatched_by_nonready[0] += 1;
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_dispatch(now, t, cand.trace_idx, true, false);
        }
    }

    // ------------------------------------------------------------------
    // Rename.
    // ------------------------------------------------------------------

    fn rename_stage(&mut self) {
        let n = self.threads.len();
        // Nothing to rename anywhere, and every block reason would be
        // `FrontendEmpty` (no counter attached).
        if self.threads.iter().all(|ctx| ctx.frontend.is_empty()) {
            return;
        }
        let mut budget = self.cfg.width;
        // Per-thread one-shot flags: did the thread rename anything, and
        // what was its *first* block reason (only ROB/LSQ-full matter for
        // attribution below).
        let mut renamed: u64 = 0;
        let mut blocked: u64 = 0;
        let mut rob_full_first: u64 = 0;
        let mut lsq_full_first: u64 = 0;
        let mut progress = true;
        while budget > 0 && progress {
            progress = false;
            for i in 0..n {
                if budget == 0 {
                    break;
                }
                let t = (self.rr + i) % n;
                match self.try_rename_one(t) {
                    Ok(()) => {
                        // The rename pushed into the dispatch buffer.
                        self.plan_valid &= !(1 << t);
                        renamed |= 1 << t;
                        budget -= 1;
                        progress = true;
                    }
                    Err(b) => {
                        if blocked & (1 << t) == 0 {
                            blocked |= 1 << t;
                            match b {
                                RenameBlock::RobFull => rob_full_first |= 1 << t,
                                RenameBlock::LsqFull => lsq_full_first |= 1 << t,
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        // Back-pressure attribution: a thread that renamed nothing this
        // cycle because its ROB or LSQ is full is stalled on that structure
        // (the other block reasons are fetch-supply or width conditions,
        // and dispatch-side stalls are attributed in dispatch_stage).
        for t in 0..n {
            if renamed & (1 << t) != 0 {
                continue;
            }
            if rob_full_first & (1 << t) != 0 {
                self.counters.threads[t].rob_full_cycles += 1;
            } else if lsq_full_first & (1 << t) != 0 {
                self.counters.threads[t].lsq_full_cycles += 1;
            }
        }
    }

    fn try_rename_one(&mut self, t: usize) -> Result<(), RenameBlock> {
        let now = self.now;
        let cap = self.cfg.dispatch_buffer_cap;
        // Peek resource needs.
        let (trace_idx, mispredicted, inst) = {
            let ctx = &mut self.threads[t];
            let Some(front) = ctx.frontend.front().copied() else {
                return Err(RenameBlock::FrontendEmpty);
            };
            if front.ready_at > now {
                return Err(RenameBlock::FrontendNotReady);
            }
            if ctx.rob.is_full() {
                return Err(RenameBlock::RobFull);
            }
            if ctx.dispatch_buf.len() >= cap {
                return Err(RenameBlock::BufFull);
            }
            let inst = front.inst;
            if inst.op.is_mem() && ctx.lsq.is_full() {
                return Err(RenameBlock::LsqFull);
            }
            (front.trace_idx, front.mispredicted, inst)
        };
        // Physical-register availability.
        if let Some(d) = inst.real_dest() {
            let class = d.class;
            if self.regs.free_count(class) == 0 {
                return Err(RenameBlock::NoFreeRegs);
            }
        }
        // All resources available: commit to renaming.
        let mut srcs: [Option<PhysReg>; 2] = [None, None];
        for (i, s) in inst.srcs.iter().enumerate() {
            if let Some(a) = s {
                if !a.is_zero() {
                    srcs[i] = Some(self.threads[t].rat.lookup(*a));
                }
            }
        }
        let (dest, old_dest) = match inst.real_dest() {
            Some(a) => {
                let p = self.regs.alloc(a.class).expect("free count checked");
                let old = self.threads[t].rat.rename(a, p);
                (Some(p), Some((a, old)))
            }
            None => (None, None),
        };
        self.age_counter += 1;
        let entry = InFlight {
            trace_idx,
            inst,
            age: self.age_counter,
            srcs,
            dest,
            old_dest,
            state: InstState::Renamed,
            dispatch_cycle: 0,
            issue_cycle: 0,
            mispredicted,
            dispatched_ooo: false,
            ndi_dependent: false,
            nonready_at_dispatch: 0,
            long_miss: false,
        };
        let ctx = &mut self.threads[t];
        ctx.frontend.pop_front();
        if let Some(mem) = inst.mem {
            ctx.lsq.push(trace_idx, inst.op.is_store(), mem.addr);
            // Remember the address so synthetic wrong-path loads revisit
            // the thread's real data structures.
            let at = ctx.recent_addrs_at;
            ctx.recent_addrs[at] = mem.addr;
            ctx.recent_addrs_at = (at + 1) % ctx.recent_addrs.len();
        }
        ctx.rob.push(entry);
        ctx.dispatch_buf.push_back(trace_idx);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fetch: ICOUNT.2.8 with I-cache and branch prediction.
    // ------------------------------------------------------------------

    /// Roll every thread's ILP-YIELD scoring window forward to the one
    /// containing `now`. Windows are absolute-aligned (`now / YIELD_WINDOW`)
    /// and caught up lazily: a window adjacent to the last rolled one
    /// closes with the issue delta observed across it; a gap of elapsed
    /// windows scores zero (the thread issued nothing recently enough to
    /// matter). Laziness is what keeps the fast-forward exact — skipped
    /// stretches have no fetch-eligible thread, so neither run mode rolls
    /// during them, and the catch-up at the next eligible cycle computes
    /// the same score either way because `issued` is provably constant
    /// across a skipped stretch.
    fn roll_yield_windows(&mut self) {
        let win = self.now / YIELD_WINDOW;
        for t in 0..self.threads.len() {
            let issued = self.counters.threads[t].issued;
            let ctx = &mut self.threads[t];
            if ctx.yield_win == win {
                continue;
            }
            // saturating: a measurement reset or migration re-bases the
            // `issued` counter below the recorded window start.
            ctx.yield_score = if ctx.yield_win + 1 == win {
                issued.saturating_sub(ctx.yield_issued_at_win)
            } else {
                0
            };
            ctx.yield_win = win;
            ctx.yield_issued_at_win = issued;
            let tc = &mut self.counters.threads[t];
            tc.yield_windows += 1;
            tc.yield_sum += ctx.yield_score;
        }
    }

    /// ILP-YIELD priority key (lower fetches first): the *inverted* yield
    /// of the previous window, scaled to leave room for the thread's
    /// icount as an intra-yield tie-break — so among equally yielding
    /// threads the least queue-occupying one still wins, and the rotating
    /// pick only arbitrates exact ties.
    fn ilp_yield_key(&self, t: usize) -> usize {
        let ctx = &self.threads[t];
        let icount = ctx.frontend.len() + ctx.dispatch_buf.len() + self.iq.thread_occupancy(t);
        let cap = YIELD_WINDOW as usize * self.cfg.width as usize;
        let inv_yield = cap.saturating_sub(ctx.yield_score as usize);
        inv_yield * 4096 + icount.min(4095)
    }

    fn fetch_stage(&mut self, hier: &mut Hierarchy) {
        let n = self.threads.len();
        // ILP-YIELD: close out elapsed scoring windows before ranking.
        // Gated on a fetch-eligible thread existing so provably idle
        // cycles (which the fast-forward replays arithmetically) never
        // roll — the lazy catch-up in `roll_yield_windows` then lands on
        // identical cycles in skipped and reference runs.
        if self.cfg.fetch_policy == FetchPolicy::IlpYield
            && self.threads.iter().any(|ctx| self.fetch_eligible_at(ctx, self.now))
        {
            self.roll_yield_windows();
        }
        let mut icounts = std::mem::take(&mut self.scratch.icounts);
        icounts.clear();
        icounts.extend((0..n).map(|t| {
            let ctx = &self.threads[t];
            self.fetch_eligible_at(ctx, self.now).then(|| match self.cfg.fetch_policy {
                // Round-robin: priority rotates each cycle.
                FetchPolicy::RoundRobin => (t + n - self.rr % n) % n,
                // ILP-YIELD: highest recent issue yield first (icount is
                // folded in as the intra-yield tie-break).
                FetchPolicy::IlpYield => self.ilp_yield_key(t),
                _ => ctx.frontend.len() + ctx.dispatch_buf.len() + self.iq.thread_occupancy(t),
            })
        }));
        let mut fetch_rank = std::mem::take(&mut self.scratch.fetch_rank);
        let mut picks = std::mem::take(&mut self.scratch.picks);
        match self.cfg.fetch_policy {
            // The new policies rotate equal-key ties with the round-robin
            // cursor; the legacy policies keep the fixed priority encoder
            // (thread 0 wins ties) so their goldens stay bit-for-bit.
            FetchPolicy::MlpGate | FetchPolicy::IlpYield => pick_fetch_threads_rotating_into(
                &icounts,
                self.cfg.fetch_threads_per_cycle as usize,
                self.rr,
                &mut fetch_rank,
                &mut picks,
            ),
            _ => pick_fetch_threads_into(
                &icounts,
                self.cfg.fetch_threads_per_cycle as usize,
                &mut fetch_rank,
                &mut picks,
            ),
        }
        self.scratch.icounts = icounts;
        self.scratch.fetch_rank = fetch_rank;

        let mut budget = self.cfg.width;
        let line_size = self.cfg.hierarchy.l1i.line_size as u64;
        for &t in &picks {
            if budget == 0 {
                break;
            }
            // A thread on the wrong path fetches synthetic instructions
            // (no trace, no I-cache modelling of the unpredicted stream).
            if let Some(branch_idx) = self.threads[t].wrongpath_of {
                let mut per_thread = self.cfg.width;
                while budget > 0
                    && per_thread > 0
                    && self.threads[t].frontend.len() < self.frontend_cap
                {
                    let cursor = self.threads[t].fetch_cursor;
                    let inst = self.gen_wrongpath_inst(t, cursor - branch_idx);
                    let ready_at = self.now + self.cfg.frontend_depth as u64 - 2;
                    self.threads[t].frontend.push_back(FrontEntry {
                        trace_idx: cursor,
                        inst,
                        ready_at,
                        mispredicted: false,
                    });
                    self.threads[t].fetch_cursor = cursor + 1;
                    self.counters.threads[t].fetched += 1;
                    self.counters.threads[t].wrong_path_fetched += 1;
                    budget -= 1;
                    per_thread -= 1;
                }
                continue;
            }
            // Probe the I-cache for the fetch group's line.
            let cursor0 = self.threads[t].fetch_cursor;
            let Some(first) = self.threads[t].trace.get(cursor0) else {
                self.threads[t].finished_fetch = true;
                continue;
            };
            let line = first.pc / line_size;
            if self.threads[t].pending_ifetch_line == Some(line) {
                // The miss we were blocked on has completed: the line is
                // streaming in, so deliver the group now. Touch the cache
                // to install/refresh the line without stalling again.
                let _ = hier.access_for(self.core_id, AccessKind::Fetch, first.pc);
            } else if self.nonblocking_mem {
                // I-fetch misses allocate an L1I MSHR like any other miss;
                // a full file simply stalls fetch for this thread.
                if !hier.admissible_for(self.core_id, AccessKind::Fetch, first.pc) {
                    self.counters.threads[t].fetch_mshr_stall_cycles += 1;
                    continue;
                }
                let req = hier.request_for(
                    self.core_id,
                    AccessKind::Fetch,
                    first.pc,
                    self.now,
                    0,
                    Waiter { thread: t, token: first.pc },
                );
                if req.fill_at > self.now {
                    self.threads[t].fetch_blocked_until = req.fill_at;
                    self.threads[t].pending_ifetch_line = Some(line);
                    continue;
                }
            } else {
                let extra = hier.access_for(self.core_id, AccessKind::Fetch, first.pc);
                if extra > 0 {
                    self.threads[t].fetch_blocked_until = self.now + extra as u64;
                    self.threads[t].pending_ifetch_line = Some(line);
                    continue;
                }
            }
            self.threads[t].pending_ifetch_line = None;
            let mut per_thread = self.cfg.width;
            while budget > 0 && per_thread > 0 && self.threads[t].frontend.len() < self.frontend_cap
            {
                let cursor = self.threads[t].fetch_cursor;
                let Some(inst) = self.threads[t].trace.get(cursor) else {
                    self.threads[t].finished_fetch = true;
                    break;
                };
                if inst.pc / line_size != line {
                    break;
                }
                self.fetch_one(t, cursor, inst);
                budget -= 1;
                per_thread -= 1;
                let ctx = &self.threads[t];
                // A mispredicted branch ends the group: the machine
                // continues on the wrong path (synthetic, next cycle) or
                // stalls (fetch-gated mode).
                if ctx.fetch_gated_by.is_some() || ctx.wrongpath_of.is_some() {
                    break;
                }
                if inst.op.is_branch() && self.was_predicted_taken(t, cursor) {
                    break;
                }
            }
        }
        self.scratch.picks = picks;
    }

    /// Fetch bookkeeping for one instruction; handles branch prediction.
    fn fetch_one(&mut self, t: usize, cursor: u64, inst: TraceInst) {
        let ready_at = self.now + self.cfg.frontend_depth as u64 - 2;
        let mut mispredicted = false;
        if let Some(b) = inst.branch {
            // Injected fault: cold-flush the thread's direction predictor
            // and the shared BTB before this prediction, yielding a burst
            // of mispredictions until both retrain.
            if self.faults.roll(FaultClass::PredictorFlush, self.now, t, cursor) {
                self.counters.faults.predictor_flushes_injected += 1;
                self.threads[t].gshare.flush();
                self.btb.flush();
            }
            let pred_taken = self.threads[t].gshare.predict_and_train(inst.pc, b.taken);
            if pred_taken != b.taken {
                mispredicted = true;
                self.counters.threads[t].dir_mispredicts += 1;
            } else if b.taken {
                // Correct direction, but the BTB must also provide the
                // right target for a taken branch.
                match self.btb.lookup(inst.pc) {
                    Some(target) if target == b.target => {}
                    _ => {
                        mispredicted = true;
                        self.counters.threads[t].btb_mispredicts += 1;
                    }
                }
            }
            self.last_pred_taken = (t, cursor, pred_taken);
        }
        let ctx = &mut self.threads[t];
        ctx.frontend.push_back(FrontEntry { trace_idx: cursor, inst, ready_at, mispredicted });
        ctx.fetch_cursor = cursor + 1;
        self.counters.threads[t].fetched += 1;
        if mispredicted {
            if self.cfg.wrong_path {
                // Keep fetching — down the (synthetic) wrong path — until
                // the branch resolves and squashes it.
                self.threads[t].wrongpath_of = Some(cursor);
            } else {
                self.threads[t].fetch_gated_by = Some(cursor);
            }
        }
    }

    /// Synthesize one wrong-path instruction: a plausible mix of ALU work
    /// and loads that touch the thread's recently used data, competing for
    /// rename registers, queue entries and function units exactly like the
    /// real wrong path in an execution-driven simulator.
    fn gen_wrongpath_inst(&mut self, t: usize, seq_in_path: u64) -> TraceInst {
        use smt_isa::ArchReg;
        let ctx = &mut self.threads[t];
        // xorshift64*
        let mut x = ctx.wp_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        ctx.wp_rng = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // PCs walk away from the mispredicted target, staying line-local.
        let pc = 0x00F0_0000 + ((t as u64) << 32) + (seq_in_path % 512) * 4;
        // Operand profile mirrors real code (see the workload generator):
        // destinations cycle through the hot registers, while second
        // sources are mostly long-lived (r25..r30, almost always ready) —
        // wrong paths are ordinary code, not artificially serial chains.
        let hot = |v: u64| ArchReg::int(1 + (v % 24) as u8);
        let long_lived = |v: u64| ArchReg::int(25 + (v % 5) as u8);
        let src2 = |v: u64, sel: u64| {
            if sel % 10 < 7 {
                long_lived(v)
            } else {
                hot(v)
            }
        };
        if r % 100 < 30 {
            // Wrong-path load near recently used data (same cache sets).
            let base = ctx.recent_addrs[(r as usize >> 8) % ctx.recent_addrs.len()];
            let addr = base ^ ((r >> 16) & 0x3F8);
            TraceInst::load(pc, hot(r >> 24), Some(src2(r >> 32, r >> 4)), addr)
        } else {
            TraceInst::alu(
                pc,
                hot(r >> 24),
                Some(hot(r >> 32)),
                if r & 1 == 0 { Some(src2(r >> 40, r >> 5)) } else { None },
            )
        }
    }

    fn was_predicted_taken(&self, t: usize, cursor: u64) -> bool {
        let (lt, lc, taken) = self.last_pred_taken;
        lt == t && lc == cursor && taken
    }

    // ------------------------------------------------------------------
    // Watchdog-timer deadlock recovery.
    // ------------------------------------------------------------------

    fn watchdog_tick(&mut self, dispatched: u32) {
        let DeadlockMode::Watchdog { timeout } = self.cfg.deadlock else { return };
        let in_flight = self.threads.iter().any(|t| !t.drained());
        if dispatched > 0 || !in_flight {
            self.watchdog_remaining = timeout as u64;
            return;
        }
        self.watchdog_remaining = self.watchdog_remaining.saturating_sub(1);
        if self.watchdog_remaining == 0 {
            self.watchdog_flush();
            self.watchdog_remaining = timeout as u64;
            self.counters.watchdog_flushes += 1;
        }
    }

    /// Flush the whole pipeline and restart every thread from its oldest
    /// uncommitted instruction (paper §4's watchdog recovery).
    fn watchdog_flush(&mut self) {
        for t in 0..self.threads.len() {
            self.flush_thread(t);
        }
    }

    /// Squash every in-flight instruction of thread `t` and restart its
    /// fetch at the oldest uncommitted instruction — the per-thread unit of
    /// the watchdog flush, reused as the drain step of thread migration.
    pub(crate) fn flush_thread(&mut self, t: usize) {
        self.plan_valid &= !(1u64 << t);
        let now = self.now;
        let squashed = self.threads[t].rob.squash_all();
        for e in squashed {
            // Youngest-first: restore the previous mapping and free the
            // allocation this instruction made.
            if let Some((areg, old)) = e.old_dest {
                self.threads[t].rat.restore(areg, old);
            }
            if let Some(d) = e.dest {
                self.regs.free(d);
            }
        }
        let ctx = &mut self.threads[t];
        ctx.frontend.clear();
        ctx.dispatch_buf.clear();
        ctx.lsq.clear();
        ctx.fetch_cursor = ctx.rob.base();
        ctx.fetch_gated_by = None;
        ctx.fetch_blocked_until = now + 1;
        ctx.pending_ifetch_line = None;
        ctx.finished_fetch = false;
        ctx.outstanding_mem_misses = 0;
        // The squash discarded every in-flight miss, including the one the
        // MLP gate was armed on: the thread restarts fetching immediately.
        ctx.mlp_gate_until = 0;
        ctx.wrongpath_of = None;
        self.iq.squash_thread(t);
        self.dab.retain(|d| d.thread != t);
    }

    // ------------------------------------------------------------------
    // Thread migration (drain-and-restart, used by `crate::Machine`).
    // ------------------------------------------------------------------

    /// Seal slot `t` as an empty placeholder: it never fetches, drains
    /// immediately, and waits to be recycled by [`Core::install_thread`].
    /// Used by the multi-core wrapper for the spare contexts that give
    /// migration somewhere to land.
    pub(crate) fn seal_slot(&mut self, t: usize) {
        self.threads[t].finished_fetch = true;
    }

    /// Remove thread `t`'s execution context for migration to another
    /// core. The thread is first drained with a watchdog-style flush back
    /// to its oldest uncommitted instruction, so no in-flight pipeline
    /// state needs to move — only the portable state travels: the trace
    /// position, the trained branch predictor, the wrong-path RNG and
    /// address-locality window, and the thread's counter row. The vacated
    /// slot becomes a sealed placeholder; its rename mapping stays intact
    /// (every mapped register is ready after the flush), parking those
    /// registers until a future occupant recycles the slot, which keeps
    /// register conservation trivially intact across any migration
    /// schedule.
    pub(crate) fn extract_thread(&mut self, t: usize) -> MigratedThread {
        self.flush_thread(t);
        let restart_at = self.threads[t].rob.base();
        let counters = std::mem::take(&mut self.counters.threads[t]);
        self.committed_total -= counters.committed;
        let gshare_cfg = self.cfg.gshare;
        let ctx = &mut self.threads[t];
        let out = MigratedThread {
            trace: std::mem::replace(
                &mut ctx.trace,
                TraceSource::new(Box::new(ProgramTrace::once(Vec::new()))),
            ),
            gshare: std::mem::replace(&mut ctx.gshare, GShare::new(gshare_cfg)),
            restart_at,
            wp_rng: ctx.wp_rng,
            recent_addrs: ctx.recent_addrs,
            recent_addrs_at: ctx.recent_addrs_at,
            counters,
        };
        ctx.fetch_cursor = 0;
        ctx.fetch_blocked_until = 0;
        ctx.finished_fetch = true; // sealed until recycled
                                   // Fetch-policy state does not travel: the gate was cleared by the
                                   // flush above, and the yield window restarts on the destination
                                   // core (its `issued` basis left with the counter row).
        ctx.yield_win = 0;
        ctx.yield_issued_at_win = 0;
        ctx.yield_score = 0;
        out
    }

    /// Install a migrated thread into slot `t` (a sealed placeholder left
    /// by [`Core::extract_thread`] or reserved at construction). Fetch
    /// restarts at the thread's oldest uncommitted instruction after
    /// `penalty` cycles — the migration cost model: a drained pipeline, a
    /// cold L1 on the new core, but a predictor and trace position that
    /// travelled with the thread.
    pub(crate) fn install_thread(&mut self, t: usize, m: MigratedThread, penalty: u64) {
        let now = self.now;
        self.committed_total += m.counters.committed;
        self.counters.threads[t] = m.counters;
        let issued = self.counters.threads[t].issued;
        self.plan_valid &= !(1u64 << t);
        let ctx = &mut self.threads[t];
        debug_assert!(
            ctx.rob.is_empty() && ctx.frontend.is_empty() && ctx.dispatch_buf.is_empty(),
            "install_thread requires a drained placeholder slot"
        );
        ctx.trace = m.trace;
        ctx.gshare = m.gshare;
        ctx.rob.reset_to(m.restart_at);
        ctx.lsq.clear();
        ctx.fetch_cursor = m.restart_at;
        ctx.fetch_gated_by = None;
        ctx.fetch_blocked_until = now + penalty;
        ctx.pending_ifetch_line = None;
        ctx.finished_fetch = false;
        ctx.outstanding_mem_misses = 0;
        // Fresh fetch-policy state on the new core: no gate, and a yield
        // window re-based on the migrated counter row so the first
        // adjacent-window roll computes a sane delta.
        ctx.mlp_gate_until = 0;
        ctx.yield_win = 0;
        ctx.yield_issued_at_win = issued;
        ctx.yield_score = 0;
        ctx.wrongpath_of = None;
        ctx.wp_rng = m.wp_rng;
        ctx.recent_addrs = m.recent_addrs;
        ctx.recent_addrs_at = m.recent_addrs_at;
    }

    /// Is thread slot `t` drained (trace done or sealed, pipeline empty)?
    pub(crate) fn thread_drained(&self, t: usize) -> bool {
        self.threads[t].drained()
    }

    /// Committed instructions in the current measurement window (cached
    /// sum of the per-thread counters).
    pub(crate) fn committed_total(&self) -> u64 {
        self.committed_total
    }

    /// Deadlock-avoidance-buffer capacity (0 = none configured).
    pub(crate) fn dab_capacity(&self) -> usize {
        self.dab_size
    }

    /// Events (wakeups/completions) still scheduled on this core.
    pub(crate) fn pending_events(&self) -> usize {
        self.events.len()
    }

    // ------------------------------------------------------------------
    // Forward-progress diagnosis.
    // ------------------------------------------------------------------

    /// Snapshot why the machine is not committing: whole-machine queue
    /// state plus a per-thread [`ThreadDiagnosis`] naming the blocked
    /// resource. Built by the run loops when the forward-progress watchdog
    /// or the cycle limit trips; also callable directly from tests and
    /// tools against any machine state.
    pub fn diagnose(&self, hier: &Hierarchy, cycles_since_commit: u64) -> DeadlockReport {
        let n = self.threads.len();
        DeadlockReport {
            cycle: self.now,
            cycles_since_commit,
            committed_total: self.counters.threads.iter().map(|t| t.committed).sum(),
            cores: 1,
            iq: self.iq_snapshot(),
            dab: self.dab_snapshot(),
            dab_size: self.dab_size,
            pending_events: self.events.len(),
            mem: hier.is_nonblocking().then(|| hier.snapshot_for(self.core_id)),
            threads: (0..n).map(|t| self.diagnose_thread(hier, t)).collect(),
        }
    }

    /// Snapshot this core's issue queue (for [`Core::diagnose`] and the
    /// multi-core wrapper's combined report).
    pub(crate) fn iq_snapshot(&self) -> IqSnapshot {
        let n = self.threads.len();
        IqSnapshot {
            occupancy: self.iq.occupancy(),
            capacity: self.cfg.iq_size,
            free_by_class: self.iq.free_by_class(),
            per_thread: (0..n).map(|t| self.iq.thread_occupancy(t)).collect(),
            pending_tags: self.iq.pending_tags(),
        }
    }

    /// Snapshot this core's deadlock-avoidance buffer.
    pub(crate) fn dab_snapshot(&self) -> Vec<DabSnapshot> {
        self.dab
            .iter()
            .map(|d| DabSnapshot { thread: d.thread, trace_idx: d.trace_idx, age: d.age })
            .collect()
    }

    pub(crate) fn diagnose_thread(&self, hier: &Hierarchy, t: usize) -> ThreadDiagnosis {
        let ctx = &self.threads[t];
        let views = self.thread_buf_views(t);
        let plan = plan_thread(&views, self.cfg.policy, self.cfg.width as usize);
        let comparators = self.cfg.policy.iq_comparators();
        let rob_head = ctx.rob.front().map(|e| RobHeadView {
            trace_idx: e.trace_idx,
            op: format!("{}", e.inst.op),
            state: e.state,
            srcs: [0, 1].map(|i| {
                e.srcs[i].map(|p| SrcState {
                    reg: format!("{:?}{}", p.class, p.index),
                    ready: self.regs.is_ready(p),
                })
            }),
            long_miss: e.long_miss,
        });
        let dispatch_head = views.first().map(|v| DispatchHeadView {
            trace_idx: v.trace_idx,
            non_ready: v.non_ready,
            is_ndi: is_ndi(v.non_ready, comparators),
            dab_eligible: v.is_rob_oldest && v.non_ready == 0,
        });
        let lsq_head = ctx.lsq.front_view().map(|(trace_idx, is_store, issued)| LsqHeadView {
            trace_idx,
            is_store,
            issued,
        });
        let rename_blocked = self.peek_rename_block(t);
        let blocked_on = self.classify_thread(hier, t, &plan, rename_blocked);
        ThreadDiagnosis {
            core: self.core_id,
            thread: t,
            committed: self.counters.threads[t].committed,
            blocked_on,
            rob_len: ctx.rob.len(),
            rob_cap: self.cfg.rob_per_thread,
            rob_head,
            dispatch_buf_len: ctx.dispatch_buf.len(),
            dispatch_head,
            ndi_blocked: plan.ndi_blocked,
            lsq_len: ctx.lsq.len(),
            lsq_head,
            frontend_len: ctx.frontend.len(),
            fetch_cursor: ctx.fetch_cursor,
            fetch_gated_by: ctx.fetch_gated_by,
            finished_fetch: ctx.finished_fetch,
            outstanding_mem_misses: ctx.outstanding_mem_misses,
            rename_blocked,
        }
    }

    /// The immediate stall reason of thread `t`, decided by its oldest
    /// in-flight instruction (the one that must commit next): its pipeline
    /// state names the stage to blame, and within the dispatch stage the
    /// blocked structural resource is identified. With an empty ROB, the
    /// rename/fetch side is examined instead.
    fn classify_thread(
        &self,
        hier: &Hierarchy,
        t: usize,
        plan: &crate::dispatch::ThreadPlan,
        rename_blocked: Option<StallReason>,
    ) -> StallReason {
        let ctx = &self.threads[t];
        if ctx.drained() {
            return StallReason::Drained;
        }
        let Some(head) = ctx.rob.front() else {
            // Nothing renamed: rename or fetch is the binding stage.
            if let Some(r) = rename_blocked {
                return r;
            }
            return if ctx.frontend.is_empty() {
                if self.cfg.fetch_policy == FetchPolicy::MlpGate && ctx.mlp_gate_until > self.now {
                    StallReason::MlpGated
                } else {
                    StallReason::FetchStalled
                }
            } else {
                StallReason::Progressing
            };
        };
        let mshr_blocked = |addr: u64| {
            self.nonblocking_mem && !hier.admissible_for(self.core_id, AccessKind::Load, addr)
        };
        match head.state {
            InstState::Completed => {
                // A completed store parked behind a full write buffer is a
                // memory-side stall, not a commit-bandwidth one.
                if self.nonblocking_mem
                    && head.inst.op.is_store()
                    && head.inst.mem.is_some()
                    && !hier.wb_can_push()
                {
                    StallReason::WriteBufferFull
                } else {
                    StallReason::CommitPending
                }
            }
            InstState::Issued => {
                if head.long_miss {
                    StallReason::WaitingMemory
                } else {
                    StallReason::WaitingExecution
                }
            }
            InstState::InDab => {
                if head.inst.op.is_load()
                    && mshr_blocked(head.inst.mem.expect("load without mem").addr)
                {
                    StallReason::MshrFull
                } else {
                    StallReason::WaitingExecution
                }
            }
            InstState::Dispatched => {
                let pending = head.srcs.iter().flatten().any(|p| !self.regs.is_ready(*p));
                if pending {
                    StallReason::WaitingOperands
                } else if head.inst.op.is_load() {
                    let addr = head.inst.mem.expect("load without mem").addr;
                    if ctx.lsq.check_load(head.trace_idx, addr) == LoadCheck::Blocked {
                        StallReason::LoadBlocked
                    } else if mshr_blocked(addr) {
                        StallReason::MshrFull
                    } else {
                        StallReason::Progressing
                    }
                } else {
                    StallReason::Progressing
                }
            }
            InstState::Renamed => {
                // The head is still in the dispatch buffer.
                if plan.ndi_blocked {
                    StallReason::Ndi
                } else if let Some(c) = plan.candidates.first() {
                    if self.iq.has_free_for(c.non_ready) {
                        StallReason::Progressing
                    } else if c.dab_eligible && self.dab_size > 0 {
                        if self.dab.len() >= self.dab_size {
                            StallReason::DabFull
                        } else {
                            StallReason::Progressing
                        }
                    } else {
                        StallReason::IqFull
                    }
                } else {
                    StallReason::Progressing
                }
            }
        }
    }

    /// What rename would block on for thread `t` right now, without
    /// mutating anything — mirrors the gate order of `try_rename_one`.
    /// Returns `None` for conditions that are not rename stalls: empty or
    /// not-yet-ready front end (fetch supply) and a full dispatch buffer
    /// (dispatch back-pressure).
    fn peek_rename_block(&self, t: usize) -> Option<StallReason> {
        let ctx = &self.threads[t];
        let front = ctx.frontend.front()?;
        if front.ready_at > self.now {
            return None;
        }
        if ctx.rob.is_full() {
            return Some(StallReason::RobFull);
        }
        if ctx.dispatch_buf.len() >= self.cfg.dispatch_buffer_cap {
            return None;
        }
        if front.inst.op.is_mem() && ctx.lsq.is_full() {
            return Some(StallReason::LsqFull);
        }
        if let Some(d) = front.inst.real_dest() {
            if self.regs.free_count(d.class) == 0 {
                return Some(StallReason::NoFreeRegs);
            }
        }
        None
    }

    /// Per-thread view of each ROB head: `(trace_idx, state, all register
    /// sources ready)`, or `None` for an empty ROB. A cheap probe for
    /// liveness tests stepping the machine cycle by cycle.
    pub fn rob_head_snapshot(&self) -> Vec<Option<(u64, InstState, bool)>> {
        self.threads
            .iter()
            .map(|ctx| {
                ctx.rob.front().map(|e| {
                    let ready = e.srcs.iter().flatten().all(|p| self.regs.is_ready(*p));
                    (e.trace_idx, e.state, ready)
                })
            })
            .collect()
    }

    /// Check the deadlock-avoidance-buffer liveness invariants: the buffer
    /// never exceeds its capacity, and every occupant is its thread's
    /// ROB-oldest instruction, in state [`InstState::InDab`], with all
    /// register sources ready — the structural guarantee that a DAB
    /// occupant can always issue and, eventually, commit. Panics with a
    /// description on violation.
    pub fn assert_dab_invariants(&self) {
        assert!(
            self.dab.len() <= self.dab_size,
            "DAB over capacity: {} > {}",
            self.dab.len(),
            self.dab_size
        );
        for d in &self.dab {
            let ctx = &self.threads[d.thread];
            assert_eq!(
                d.trace_idx,
                ctx.rob.base(),
                "DAB entry t{}#{} is not its thread's ROB-oldest instruction",
                d.thread,
                d.trace_idx
            );
            let e = ctx.rob.get(d.trace_idx).expect("DAB entry without ROB entry");
            assert_eq!(
                e.state,
                InstState::InDab,
                "DAB entry t{}#{} has state {:?}",
                d.thread,
                d.trace_idx,
                e.state
            );
            assert!(
                e.srcs.iter().flatten().all(|p| self.regs.is_ready(*p)),
                "DAB entry t{}#{} has a pending source operand",
                d.thread,
                d.trace_idx
            );
        }
    }
}

/// Mirror a hierarchy statistics view onto the counters' memory block —
/// shared by the per-core [`Core::sync_mem_counters`] (which passes the
/// core's attribution slice) and the machine-level rollup (which passes
/// the whole-hierarchy aggregate).
pub(crate) fn mem_counters_from(ms: &smt_mem::MemStats) -> smt_stats::MemCounters {
    smt_stats::MemCounters {
        l1i_mshr_allocs: ms.l1i_mshr.allocs,
        l1i_mshr_merges: ms.l1i_mshr.merges,
        l1d_mshr_allocs: ms.l1d_mshr.allocs,
        l1d_mshr_merges: ms.l1d_mshr.merges,
        l2_mshr_allocs: ms.l2_mshr.allocs,
        l2_mshr_merges: ms.l2_mshr.merges,
        bus_transactions: ms.bus.transactions,
        bus_queue_delay_sum: ms.bus.queue_delay_sum,
        l1i_mshr_occupancy_sum: ms.l1i_mshr_occupancy_sum,
        l1d_mshr_occupancy_sum: ms.l1d_mshr_occupancy_sum,
        l2_mshr_occupancy_sum: ms.l2_mshr_occupancy_sum,
        wb_enqueued: ms.wb_enqueued,
        wb_drained: ms.wb_drained,
        wb_occupancy_sum: ms.wb_occupancy_sum,
    }
}

// ----------------------------------------------------------------------
// The single-core wrapper.
// ----------------------------------------------------------------------

/// The single-core machine: one [`Core`] plus its own memory [`Hierarchy`],
/// presenting the original simulator API. Multi-core machines use
/// [`crate::Machine`], which steps several `Core`s against one shared
/// hierarchy; this wrapper is the N=1 degenerate case and the bit-for-bit
/// reference the multi-core differential suite pins against.
pub struct Simulator {
    core: Core,
    hier: Hierarchy,
}

impl Simulator {
    /// Build a simulator for `cfg` running one instruction stream per
    /// hardware thread context.
    pub fn new(cfg: SimConfig, streams: Vec<Box<dyn InstGenerator>>) -> Self {
        let hier = Hierarchy::new(cfg.hierarchy);
        Simulator { core: Core::new(cfg, streams, 0), hier }
    }

    /// Run until some thread reaches `commit_target` committed
    /// instructions (the paper's stop rule), every thread drains, or the
    /// machine wedges.
    pub fn run(&mut self, commit_target: u64) -> RunOutcome {
        self.core.run(&mut self.hier, commit_target)
    }

    /// [`Simulator::run`] with an external abort hook, polled every few
    /// thousand loop iterations (see [`ABORT_POLL_ITERS`]).
    pub fn run_with_abort(
        &mut self,
        commit_target: u64,
        should_abort: impl FnMut() -> bool,
    ) -> RunOutcome {
        self.core.run_with_abort(&mut self.hier, commit_target, should_abort)
    }

    /// Run until *every* live thread has committed at least
    /// `commit_target` instructions (warm-up semantics).
    pub fn run_until_all_committed(&mut self, commit_target: u64) -> RunOutcome {
        self.core.run_until_all_committed(&mut self.hier, commit_target)
    }

    /// [`Simulator::run_until_all_committed`] with an external abort hook.
    pub fn run_until_all_committed_with_abort(
        &mut self,
        commit_target: u64,
        should_abort: impl FnMut() -> bool,
    ) -> RunOutcome {
        self.core.run_until_all_committed_with_abort(&mut self.hier, commit_target, should_abort)
    }

    /// Advance the machine by exactly one cycle (no fast-forward).
    pub fn cycle(&mut self) {
        self.core.cycle(&mut self.hier);
    }

    /// Snapshot why the machine is not committing (see [`DeadlockReport`]).
    pub fn diagnose(&self, cycles_since_commit: u64) -> DeadlockReport {
        self.core.diagnose(&self.hier, cycles_since_commit)
    }

    /// Reset measurement state while keeping microarchitectural state warm
    /// (see [`Core::reset_measurement`]).
    pub fn reset_measurement(&mut self) {
        self.core.reset_measurement(&mut self.hier);
    }

    /// Every fault injected so far, in firing order.
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.core.fault_log()
    }

    /// Replace the injector with a replay-mode one (before the first
    /// cycle only).
    pub fn set_fault_replay(&mut self, records: Vec<FaultRecord>) {
        self.core.set_fault_replay(records);
    }

    /// Install a pipeline-event observer, replacing any existing one.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.core.set_tracer(tracer);
    }

    /// Remove and return the installed tracer, if any.
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.core.take_tracer()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Event-driven-loop effectiveness: `(jumps, skipped_cycles)`.
    pub fn ff_stats(&self) -> (u64, u64) {
        self.core.ff_stats()
    }

    /// Accumulated statistics.
    pub fn counters(&self) -> &SimCounters {
        self.core.counters()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        self.core.config()
    }

    /// Number of hardware thread contexts.
    pub fn num_threads(&self) -> usize {
        self.core.num_threads()
    }

    /// One-line-per-thread summary of pipeline state, for debugging hangs.
    pub fn dump_state(&self) -> String {
        self.core.dump_state()
    }

    /// Per-thread `(trace_idx, state, long_miss)` of each ROB head.
    pub fn rob_head_snapshot(&self) -> Vec<Option<(u64, InstState, bool)>> {
        self.core.rob_head_snapshot()
    }

    /// Check the quiescent-machine structural invariants (see
    /// [`Core::assert_quiescent_invariants`]).
    pub fn assert_quiescent_invariants(&self) {
        self.core.assert_quiescent_invariants();
    }

    /// Check the DAB structural invariants.
    pub fn assert_dab_invariants(&self) {
        self.core.assert_dab_invariants();
    }
}
