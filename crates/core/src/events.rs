//! The simulator's timing wheel: a min-heap of future micro-events.

use crate::regfile::PhysReg;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled micro-event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Wakeup broadcast: the producer at (`thread`, `trace_idx`) makes
    /// `reg` ready. Validated against the ROB before delivery so that
    /// squashed producers never wake anything.
    Wakeup {
        /// Producing thread.
        thread: usize,
        /// Producer's trace index.
        trace_idx: u64,
        /// Unique rename stamp of the producing incarnation: a squashed and
        /// refetched instruction reuses its trace index but never its age,
        /// so stale events can always be told apart.
        age: u64,
        /// Destination register becoming ready.
        reg: PhysReg,
    },
    /// Execution complete: mark the ROB entry committable; for branches,
    /// resolve (ungate fetch on a misprediction).
    Complete {
        /// Thread of the completing instruction.
        thread: usize,
        /// Its trace index.
        trace_idx: u64,
        /// Rename stamp of the completing incarnation (see
        /// [`Event::Wakeup::age`]).
        age: u64,
    },
    /// Delayed re-broadcast of a wakeup whose original IQ tag-bus delivery
    /// was suppressed by fault injection
    /// ([`crate::faults::FaultClass::WakeupDrop`]). Delivered only if `reg`
    /// still holds a ready value: the register file's protocol (allocation
    /// clears the ready bit) guarantees a freed-and-reallocated register
    /// never receives a spurious wakeup.
    IqRebroadcast {
        /// Register whose tag is re-broadcast.
        reg: PhysReg,
    },
}

#[derive(Debug, PartialEq, Eq)]
struct Scheduled {
    cycle: u64,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap event queue ordered by (cycle, insertion sequence).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    pops: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at `cycle`.
    pub fn schedule(&mut self, cycle: u64, event: Event) {
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { cycle, seq: self.seq, event }));
    }

    /// Pop the next event due at or before `now`, in schedule order.
    pub fn pop_due(&mut self, now: u64) -> Option<Event> {
        if self.heap.peek().map(|Reverse(s)| s.cycle <= now).unwrap_or(false) {
            self.pops += 1;
            Some(self.heap.pop().unwrap().0.event)
        } else {
            None
        }
    }

    /// The earliest cycle any queued event is due, if the queue is
    /// non-empty. Lets the idle-cycle fast-forward bound a skip window
    /// without popping.
    pub fn next_due_cycle(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(s)| s.cycle)
    }

    /// Monotonic count of events ever popped. Distinguishes a genuinely
    /// untouched queue from a pop-and-reschedule that leaves `len()`
    /// unchanged (e.g. a dropped wakeup scheduling its re-broadcast).
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(t: usize, i: u64) -> Event {
        Event::Complete { thread: t, trace_idx: i, age: i }
    }

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        q.schedule(5, complete(0, 0));
        q.schedule(3, complete(0, 1));
        q.schedule(4, complete(0, 2));
        assert_eq!(q.pop_due(10), Some(complete(0, 1)));
        assert_eq!(q.pop_due(10), Some(complete(0, 2)));
        assert_eq!(q.pop_due(10), Some(complete(0, 0)));
        assert_eq!(q.pop_due(10), None);
    }

    #[test]
    fn respects_due_time() {
        let mut q = EventQueue::new();
        q.schedule(5, complete(0, 0));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some(complete(0, 0)));
    }

    #[test]
    fn same_cycle_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(2, complete(0, 10));
        q.schedule(2, complete(1, 20));
        q.schedule(2, complete(0, 30));
        assert_eq!(q.pop_due(2), Some(complete(0, 10)));
        assert_eq!(q.pop_due(2), Some(complete(1, 20)));
        assert_eq!(q.pop_due(2), Some(complete(0, 30)));
    }

    #[test]
    fn len_tracking() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, complete(0, 0));
        assert_eq!(q.len(), 1);
        let _ = q.pop_due(1);
        assert!(q.is_empty());
    }
}
