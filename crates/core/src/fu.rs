//! Function-unit pool occupancy tracking.

use smt_isa::{FuKind, MachineDesc};

/// Tracks when each unit of each pool becomes free. Units with
/// `issue_interval > 1` (dividers, sqrt) block their unit for the interval.
#[derive(Debug, Clone)]
pub struct FuPools {
    /// `busy_until[kind][unit]`: first cycle the unit can accept a new op.
    busy_until: [Vec<u64>; 5],
}

impl FuPools {
    /// Build pools from a machine description.
    pub fn new(machine: &MachineDesc) -> Self {
        let mk = |k: FuKind| vec![0u64; machine.pool_size(k) as usize];
        FuPools {
            busy_until: [
                mk(FuKind::IntAlu),
                mk(FuKind::IntMultDiv),
                mk(FuKind::LdSt),
                mk(FuKind::FpAdd),
                mk(FuKind::FpMultDivSqrt),
            ],
        }
    }

    /// Try to claim a unit of `kind` at `now` for `issue_interval` cycles.
    /// Returns `false` if every unit is busy.
    pub fn try_issue(&mut self, kind: FuKind, now: u64, issue_interval: u32) -> bool {
        let pool = &mut self.busy_until[kind.index()];
        if let Some(unit) = pool.iter_mut().find(|b| **b <= now) {
            *unit = now + issue_interval as u64;
            true
        } else {
            false
        }
    }

    /// Number of units of `kind` free at `now`.
    pub fn free_units(&self, kind: FuKind, now: u64) -> usize {
        self.busy_until[kind.index()].iter().filter(|b| **b <= now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_unit_reissues_next_cycle() {
        let mut fu = FuPools::new(&MachineDesc::paper());
        assert!(fu.try_issue(FuKind::IntAlu, 0, 1));
        assert!(fu.try_issue(FuKind::IntAlu, 1, 1), "pipelined unit must be free next cycle");
    }

    #[test]
    fn pool_exhaustion() {
        let mut fu = FuPools::new(&MachineDesc::paper());
        for _ in 0..4 {
            assert!(fu.try_issue(FuKind::LdSt, 0, 1));
        }
        assert!(!fu.try_issue(FuKind::LdSt, 0, 1), "only 4 load/store ports");
        assert!(fu.try_issue(FuKind::LdSt, 1, 1));
    }

    #[test]
    fn unpipelined_divider_blocks_for_interval() {
        let mut fu = FuPools::new(&MachineDesc::paper());
        for _ in 0..4 {
            assert!(fu.try_issue(FuKind::IntMultDiv, 0, 19));
        }
        assert!(!fu.try_issue(FuKind::IntMultDiv, 10, 19));
        assert!(fu.try_issue(FuKind::IntMultDiv, 19, 19));
    }

    #[test]
    fn free_unit_counting() {
        let mut fu = FuPools::new(&MachineDesc::paper());
        assert_eq!(fu.free_units(FuKind::FpAdd, 0), 8);
        fu.try_issue(FuKind::FpAdd, 0, 1);
        fu.try_issue(FuKind::FpAdd, 0, 1);
        assert_eq!(fu.free_units(FuKind::FpAdd, 0), 6);
        assert_eq!(fu.free_units(FuKind::FpAdd, 1), 8);
    }
}
