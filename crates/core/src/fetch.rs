//! The I-Count fetch policy (Tullsen et al. [16]).
//!
//! Each cycle, fetch priority goes to the threads with the fewest
//! not-yet-executed instructions in the front end and issue queue; fetching
//! is limited to `fetch_threads_per_cycle` threads (2 in the paper's
//! baseline: ICOUNT.2.8).

/// Pick up to `max` eligible threads in I-Count priority order.
///
/// `icounts[t]` is `Some(count)` for an eligible thread (not gated by a
/// branch misprediction, I-cache miss, or full front end) and `None` for an
/// ineligible one. Ties break by thread id, matching a fixed hardware
/// priority encoder.
pub fn pick_fetch_threads(icounts: &[Option<usize>], max: usize) -> Vec<usize> {
    let mut rank = Vec::new();
    let mut picks = Vec::new();
    pick_fetch_threads_into(icounts, max, &mut rank, &mut picks);
    picks
}

/// Allocation-free form of [`pick_fetch_threads`] for the per-cycle hot
/// path: `rank` is caller-owned scratch and the picks are written to
/// `picks` (cleared first), so a simulator can reuse both buffers every
/// cycle.
pub fn pick_fetch_threads_into(
    icounts: &[Option<usize>],
    max: usize,
    rank: &mut Vec<(usize, usize)>,
    picks: &mut Vec<usize>,
) {
    rank.clear();
    picks.clear();
    rank.extend(icounts.iter().enumerate().filter_map(|(t, c)| c.map(|c| (c, t))));
    rank.sort_unstable();
    picks.extend(rank.iter().take(max).map(|&(_, t)| t));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_lowest_icount_first() {
        let picks = pick_fetch_threads(&[Some(10), Some(3), Some(7)], 2);
        assert_eq!(picks, vec![1, 2]);
    }

    #[test]
    fn skips_ineligible_threads() {
        let picks = pick_fetch_threads(&[None, Some(50), None, Some(2)], 2);
        assert_eq!(picks, vec![3, 1]);
    }

    #[test]
    fn ties_break_by_thread_id() {
        let picks = pick_fetch_threads(&[Some(5), Some(5), Some(5)], 2);
        assert_eq!(picks, vec![0, 1]);
    }

    #[test]
    fn handles_all_ineligible() {
        assert!(pick_fetch_threads(&[None, None], 2).is_empty());
    }

    #[test]
    fn max_zero_returns_nothing() {
        assert!(pick_fetch_threads(&[Some(1)], 0).is_empty());
    }

    #[test]
    fn single_thread_machine() {
        assert_eq!(pick_fetch_threads(&[Some(42)], 2), vec![0]);
    }
}
