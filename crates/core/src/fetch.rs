//! The I-Count fetch policy (Tullsen et al. [16]).
//!
//! Each cycle, fetch priority goes to the threads with the fewest
//! not-yet-executed instructions in the front end and issue queue; fetching
//! is limited to `fetch_threads_per_cycle` threads (2 in the paper's
//! baseline: ICOUNT.2.8).

/// Pick up to `max` eligible threads in I-Count priority order.
///
/// `icounts[t]` is `Some(count)` for an eligible thread (not gated by a
/// branch misprediction, I-cache miss, or full front end) and `None` for an
/// ineligible one. Ties break by thread id, matching a fixed hardware
/// priority encoder.
pub fn pick_fetch_threads(icounts: &[Option<usize>], max: usize) -> Vec<usize> {
    let mut rank = Vec::new();
    let mut picks = Vec::new();
    pick_fetch_threads_into(icounts, max, &mut rank, &mut picks);
    picks
}

/// Allocation-free form of [`pick_fetch_threads`] for the per-cycle hot
/// path: `rank` is caller-owned scratch and the picks are written to
/// `picks` (cleared first), so a simulator can reuse both buffers every
/// cycle.
pub fn pick_fetch_threads_into(
    icounts: &[Option<usize>],
    max: usize,
    rank: &mut Vec<(usize, usize)>,
    picks: &mut Vec<usize>,
) {
    rank.clear();
    picks.clear();
    rank.extend(icounts.iter().enumerate().filter_map(|(t, c)| c.map(|c| (c, t))));
    rank.sort_unstable();
    picks.extend(rank.iter().take(max).map(|&(_, t)| t));
}

/// [`pick_fetch_threads_into`] with a deterministic *rotating* tie-break:
/// equal keys rank by `(t + n - rr % n) % n` instead of raw thread id, so
/// the thread that wins a tie advances one position per rotation step
/// rather than thread 0 winning every tied cycle. `rr` is the caller's
/// rotation cursor (the simulator's round-robin counter, bumped once per
/// cycle). Used by the MLP/ILP-aware policies; ICOUNT keeps the fixed
/// priority encoder of [`pick_fetch_threads_into`] so its goldens are
/// untouched.
pub fn pick_fetch_threads_rotating_into(
    keys: &[Option<usize>],
    max: usize,
    rr: usize,
    rank: &mut Vec<(usize, usize)>,
    picks: &mut Vec<usize>,
) {
    rank.clear();
    picks.clear();
    let n = keys.len();
    if n == 0 {
        return;
    }
    let shift = rr % n;
    rank.extend(keys.iter().enumerate().filter_map(|(t, c)| c.map(|c| (c, (t + n - shift) % n))));
    rank.sort_unstable();
    picks.extend(rank.iter().take(max).map(|&(_, rot)| (rot + shift) % n));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_lowest_icount_first() {
        let picks = pick_fetch_threads(&[Some(10), Some(3), Some(7)], 2);
        assert_eq!(picks, vec![1, 2]);
    }

    #[test]
    fn skips_ineligible_threads() {
        let picks = pick_fetch_threads(&[None, Some(50), None, Some(2)], 2);
        assert_eq!(picks, vec![3, 1]);
    }

    #[test]
    fn ties_break_by_thread_id() {
        let picks = pick_fetch_threads(&[Some(5), Some(5), Some(5)], 2);
        assert_eq!(picks, vec![0, 1]);
    }

    #[test]
    fn handles_all_ineligible() {
        assert!(pick_fetch_threads(&[None, None], 2).is_empty());
    }

    #[test]
    fn max_zero_returns_nothing() {
        assert!(pick_fetch_threads(&[Some(1)], 0).is_empty());
    }

    #[test]
    fn single_thread_machine() {
        assert_eq!(pick_fetch_threads(&[Some(42)], 2), vec![0]);
    }

    fn rotating(keys: &[Option<usize>], max: usize, rr: usize) -> Vec<usize> {
        let (mut rank, mut picks) = (Vec::new(), Vec::new());
        pick_fetch_threads_rotating_into(keys, max, rr, &mut rank, &mut picks);
        picks
    }

    #[test]
    fn rotating_still_ranks_by_key_first() {
        // Rotation only reorders *ties*; distinct keys rank identically to
        // the fixed encoder at every cursor position.
        for rr in 0..8 {
            assert_eq!(rotating(&[Some(10), Some(3), Some(7)], 2, rr), vec![1, 2], "rr={rr}");
        }
    }

    #[test]
    fn rotating_tie_break_advances_with_the_cursor() {
        let keys = [Some(5), Some(5), Some(5)];
        assert_eq!(rotating(&keys, 2, 0), vec![0, 1]);
        assert_eq!(rotating(&keys, 2, 1), vec![1, 2]);
        assert_eq!(rotating(&keys, 2, 2), vec![2, 0]);
        assert_eq!(rotating(&keys, 2, 3), vec![0, 1], "cursor wraps mod n");
    }

    #[test]
    fn fixed_tie_break_starves_high_ids_where_rotation_does_not() {
        // The fairness-skew regression the rotating break fixes: with a
        // persistent 3-way tie and 1 fetch slot, the fixed encoder hands
        // thread 0 *every* cycle; rotation shares slots evenly.
        let keys = [Some(4), Some(4), Some(4)];
        let mut fixed_wins = [0usize; 3];
        let mut rot_wins = [0usize; 3];
        for cycle in 0..300 {
            fixed_wins[pick_fetch_threads(&keys, 1)[0]] += 1;
            rot_wins[rotating(&keys, 1, cycle)[0]] += 1;
        }
        assert_eq!(fixed_wins, [300, 0, 0], "fixed encoder starves high ids on ties");
        assert_eq!(rot_wins, [100, 100, 100], "rotation shares tied slots evenly");
    }

    #[test]
    fn rotating_handles_empty_and_ineligible() {
        assert!(rotating(&[], 2, 5).is_empty());
        assert!(rotating(&[None, None], 2, 3).is_empty());
        assert_eq!(rotating(&[None, Some(50), None, Some(2)], 2, 7), vec![3, 1]);
    }
}
