//! Physical register file: free lists and the ready-bit scoreboard.

use serde::{Deserialize, Serialize};
use smt_isa::RegClass;

/// A physical register: class plus index into that class's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysReg {
    /// Register-file class.
    pub class: RegClass,
    /// Index within the physical file of that class.
    pub index: u16,
}

impl PhysReg {
    /// Dense index across both files (integer file first).
    #[inline]
    pub fn flat(self, phys_int: usize) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => phys_int + self.index as usize,
        }
    }
}

/// Free lists plus ready bits for both physical register files.
///
/// Ready-bit protocol:
/// * a register is marked **not ready** when allocated to a new producer;
/// * it becomes **ready** when the producer's wakeup broadcast fires;
/// * registers holding committed architectural state are always ready.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    phys_int: usize,
    free_int: Vec<u16>,
    free_fp: Vec<u16>,
    ready: Vec<bool>,
}

impl PhysRegFile {
    /// Create a file with all registers free and ready.
    pub fn new(phys_int: usize, phys_fp: usize) -> Self {
        PhysRegFile {
            phys_int,
            free_int: (0..phys_int as u16).rev().collect(),
            free_fp: (0..phys_fp as u16).rev().collect(),
            ready: vec![true; phys_int + phys_fp],
        }
    }

    /// Number of free registers in `class`.
    pub fn free_count(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.free_int.len(),
            RegClass::Fp => self.free_fp.len(),
        }
    }

    /// Allocate a register of `class`, marked not-ready. `None` if the free
    /// list is empty (rename must stall).
    pub fn alloc(&mut self, class: RegClass) -> Option<PhysReg> {
        let idx = match class {
            RegClass::Int => self.free_int.pop()?,
            RegClass::Fp => self.free_fp.pop()?,
        };
        let reg = PhysReg { class, index: idx };
        self.ready[reg.flat(self.phys_int)] = false;
        Some(reg)
    }

    /// Return a register to the free list (at commit of the overwriting
    /// instruction, or at squash of the allocating one). The register
    /// becomes ready (free registers hold no pending value).
    pub fn free(&mut self, reg: PhysReg) {
        self.ready[reg.flat(self.phys_int)] = true;
        match reg.class {
            RegClass::Int => self.free_int.push(reg.index),
            RegClass::Fp => self.free_fp.push(reg.index),
        }
    }

    /// Is the value in `reg` available?
    #[inline]
    pub fn is_ready(&self, reg: PhysReg) -> bool {
        self.ready[reg.flat(self.phys_int)]
    }

    /// Mark `reg` ready (wakeup broadcast).
    #[inline]
    pub fn set_ready(&mut self, reg: PhysReg) {
        self.ready[reg.flat(self.phys_int)] = true;
    }

    /// Mark `reg` not ready (used when re-arming state at reset).
    #[inline]
    pub fn clear_ready(&mut self, reg: PhysReg) {
        self.ready[reg.flat(self.phys_int)] = false;
    }

    /// Total registers in `class`'s file.
    pub fn capacity(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.phys_int,
            RegClass::Fp => self.ready.len() - self.phys_int,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut f = PhysRegFile::new(8, 4);
        assert_eq!(f.free_count(RegClass::Int), 8);
        let r = f.alloc(RegClass::Int).unwrap();
        assert_eq!(f.free_count(RegClass::Int), 7);
        assert!(!f.is_ready(r));
        f.set_ready(r);
        assert!(f.is_ready(r));
        f.free(r);
        assert_eq!(f.free_count(RegClass::Int), 8);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut f = PhysRegFile::new(2, 1);
        assert!(f.alloc(RegClass::Int).is_some());
        assert!(f.alloc(RegClass::Int).is_some());
        assert!(f.alloc(RegClass::Int).is_none());
        assert!(f.alloc(RegClass::Fp).is_some());
        assert!(f.alloc(RegClass::Fp).is_none());
    }

    #[test]
    fn classes_are_independent() {
        let mut f = PhysRegFile::new(4, 4);
        let i = f.alloc(RegClass::Int).unwrap();
        let p = f.alloc(RegClass::Fp).unwrap();
        f.set_ready(i);
        assert!(f.is_ready(i));
        assert!(!f.is_ready(p));
        assert_eq!(f.free_count(RegClass::Int), 3);
        assert_eq!(f.free_count(RegClass::Fp), 3);
    }

    #[test]
    fn freed_register_is_ready() {
        let mut f = PhysRegFile::new(4, 0);
        let r = f.alloc(RegClass::Int).unwrap();
        assert!(!f.is_ready(r));
        f.free(r);
        assert!(f.is_ready(r));
    }

    #[test]
    fn all_registers_distinct_until_freed() {
        let mut f = PhysRegFile::new(16, 0);
        let mut seen = std::collections::HashSet::new();
        while let Some(r) = f.alloc(RegClass::Int) {
            assert!(seen.insert(r.index), "duplicate allocation");
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn capacity_reporting() {
        let f = PhysRegFile::new(256, 128);
        assert_eq!(f.capacity(RegClass::Int), 256);
        assert_eq!(f.capacity(RegClass::Fp), 128);
    }
}
