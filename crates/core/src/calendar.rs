//! Next-activity calendar for the event-driven cycle loop.
//!
//! The idle-cycle fast-forward (DESIGN.md §6.3) advances the clock
//! directly to the next cycle at which *anything* can change machine
//! state. Each wake source registers here and the calendar folds them
//! into one jump target. Two registration flavours exist because the
//! sources have two distinct contracts:
//!
//! * [`Calendar::stop_before`] — a **wake source** (a scheduled event, an
//!   MSHR fill, a fetch unblock time, the watchdog's next flush). The
//!   clock must land *strictly before* it so the waking cycle executes
//!   for real.
//! * [`Calendar::land_on`] — a **boundary** the run loop itself must
//!   observe (the forward-progress check, `max_cycles`). The clock may
//!   land *exactly on* it — the loop trips on `>=` comparisons — but
//!   never past it.
//!
//! The struct is deliberately a plain min-fold over `u64`s with no
//! knowledge of the simulator, so the property tests in
//! `tests/calendar_prop.rs` can drive it with arbitrary calendars and
//! prove the two contracts hold for every combination of sources.

/// Accumulates next-activity times and yields the furthest cycle the
/// clock may jump to without overshooting any of them.
#[derive(Debug, Clone, Copy)]
pub struct Calendar {
    /// Furthest admissible clock value seen so far.
    target: u64,
    /// Whether any source or boundary was registered at all.
    bounded: bool,
}

impl Calendar {
    /// An empty calendar: no wake sources, no boundaries.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Calendar { target: u64::MAX, bounded: false }
    }

    /// Register a wake source firing at `wake`; the jump target stays
    /// strictly below it.
    pub fn stop_before(&mut self, wake: u64) {
        self.bounded = true;
        self.target = self.target.min(wake.saturating_sub(1));
    }

    /// [`Calendar::stop_before`] for optional sources (e.g. "earliest
    /// pending fill, if any"). `None` registers nothing.
    pub fn stop_before_opt(&mut self, wake: Option<u64>) {
        if let Some(w) = wake {
            self.stop_before(w);
        }
    }

    /// Register a boundary the clock may land exactly on but never pass.
    pub fn land_on(&mut self, boundary: u64) {
        self.bounded = true;
        self.target = self.target.min(boundary);
    }

    /// Did any source or boundary bound this calendar? An unbounded
    /// calendar means the machine has *no* scheduled wake source at all —
    /// the caller must fall back to a finite stride rather than jump to
    /// the end of time.
    pub fn is_bounded(&self) -> bool {
        self.bounded
    }

    /// How many cycles past `now` the clock may jump (0 when the nearest
    /// source is due immediately or `now` already sits on a boundary).
    pub fn skip_from(&self, now: u64) -> u64 {
        self.target.saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_calendar_is_unbounded() {
        let cal = Calendar::new();
        assert!(!cal.is_bounded());
        assert_eq!(cal.skip_from(10), u64::MAX - 10);
    }

    #[test]
    fn stops_one_short_of_the_nearest_wake_source() {
        let mut cal = Calendar::new();
        cal.stop_before(100);
        cal.stop_before(57);
        cal.stop_before_opt(None);
        cal.stop_before_opt(Some(80));
        assert!(cal.is_bounded());
        assert_eq!(cal.skip_from(10), 46); // lands on 56, one short of 57
    }

    #[test]
    fn lands_exactly_on_a_boundary() {
        let mut cal = Calendar::new();
        cal.land_on(200);
        assert_eq!(cal.skip_from(150), 50);
    }

    #[test]
    fn boundary_beats_source_when_nearer() {
        let mut cal = Calendar::new();
        cal.stop_before(300);
        cal.land_on(250);
        assert_eq!(cal.skip_from(200), 50);
        let mut cal = Calendar::new();
        cal.stop_before(220);
        cal.land_on(250);
        assert_eq!(cal.skip_from(200), 19);
    }

    #[test]
    fn due_now_or_past_sources_yield_zero() {
        let mut cal = Calendar::new();
        cal.stop_before(11);
        assert_eq!(cal.skip_from(10), 0);
        let mut cal = Calendar::new();
        cal.stop_before(0);
        assert_eq!(cal.skip_from(10), 0);
        let mut cal = Calendar::new();
        cal.land_on(10);
        assert_eq!(cal.skip_from(10), 0);
    }
}
