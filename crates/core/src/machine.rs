//! The multi-core SMT machine: N [`Core`]s stepping in lockstep against
//! one shared memory [`Hierarchy`] (private L1s per core; shared L2, MSHR
//! file, memory bus and write-buffer drain), plus a family of
//! thread-to-core **allocation policies** deciding where each of M
//! software threads runs — including epoch-boundary migration for the
//! dynamic members of the family (Navarro et al.'s thread-to-core
//! allocation line, crossed here with the paper's dispatch policies).
//!
//! Design invariants:
//!
//! - **N=1 is the degenerate single-core machine**, bit-for-bit identical
//!   to [`crate::Simulator`] in cycles, commits, fast-forward jumps and
//!   every per-thread counter (pinned by `tests/multicore_differential.rs`).
//!   With one core there are no spare slots, no placeholder contexts and
//!   no migration, whatever the allocation policy says.
//! - **The shared hierarchy advances exactly once per machine cycle.**
//!   Each cycle runs every core's prologue, one shared memory step
//!   (routing write-buffer drains to the owning core's counters), then
//!   every core's stage sweep against the shared hierarchy.
//! - **The event-driven fast-forward jumps by the minimum next-activity
//!   distance across cores.** A jump is taken only when every core proves
//!   the representative cycle idle; the shared hierarchy's idle accounting
//!   is applied once, and (for dynamic policies) jumps never cross an
//!   epoch boundary, so migration decisions happen at exact cycles.
//! - **Migration is drain-and-restart**: the leaving thread is flushed
//!   back to its oldest uncommitted instruction on the donor core and
//!   restarts fetch on the recipient after a configurable penalty; its
//!   trace position, trained predictor and counter row travel with it
//!   (see [`Core::extract_thread`] / [`Core::install_thread`]).

use crate::config::SimConfig;
use crate::progress::DeadlockReport;
use crate::simulator::{mem_counters_from, Core, FfActivitySig, MigratedThread};
use crate::simulator::{RunOutcome, ABORT_POLL_ITERS};
use serde::{Deserialize, Serialize};
use smt_mem::Hierarchy;
use smt_stats::SimCounters;
use smt_workload::{InstGenerator, ProgramTrace};

/// How software threads are placed onto cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Each thread lands on a core drawn from a seeded xorshift stream —
    /// the unlucky-placement baseline every informed policy must beat.
    Random,
    /// Thread `i` lands on core `i mod N`: balanced thread *counts*,
    /// oblivious to what the threads do.
    RoundRobin,
    /// Epoch-boundary migration balancing recent *issue-slot yield* (ILP):
    /// a thread moves from the busiest core to the laziest when the
    /// imbalance exceeds the hysteresis band.
    IlpBalanced,
    /// Epoch-boundary migration balancing memory-level parallelism
    /// pressure (`mlp_sum` per `mem_busy_cycles`): spreads the
    /// memory-bound threads so they do not serialise on one core's MSHRs.
    MlpBalanced,
    /// Epoch-boundary migration keyed on observed shared-resource
    /// contention (write-buffer stalls, MSHR-full defers, fetch MSHR
    /// stalls): the most-contending thread leaves the most-contended core.
    ContentionAware,
}

impl AllocPolicy {
    /// All members of the family, in presentation order.
    pub const ALL: [AllocPolicy; 5] = [
        AllocPolicy::Random,
        AllocPolicy::RoundRobin,
        AllocPolicy::IlpBalanced,
        AllocPolicy::MlpBalanced,
        AllocPolicy::ContentionAware,
    ];

    /// Short label used in reports and spec names.
    pub fn name(&self) -> &'static str {
        match self {
            AllocPolicy::Random => "RANDOM",
            AllocPolicy::RoundRobin => "RR",
            AllocPolicy::IlpBalanced => "ILP_BAL",
            AllocPolicy::MlpBalanced => "MLP_BAL",
            AllocPolicy::ContentionAware => "CONTENTION",
        }
    }

    /// Does the policy migrate threads at epoch boundaries?
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            AllocPolicy::IlpBalanced | AllocPolicy::MlpBalanced | AllocPolicy::ContentionAware
        )
    }
}

/// Thread-to-core allocation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocConfig {
    /// The placement/migration policy.
    pub policy: AllocPolicy,
    /// Cycles between migration decisions (dynamic policies only).
    #[serde(default = "default_epoch_cycles")]
    pub epoch_cycles: u64,
    /// Seed for the `Random` placement's xorshift stream.
    #[serde(default = "default_alloc_seed")]
    pub seed: u64,
    /// Cycles a migrated thread's fetch stays blocked on the new core —
    /// the drain/refill cost model of a migration.
    #[serde(default = "default_migration_penalty")]
    pub migration_penalty: u64,
}

fn default_epoch_cycles() -> u64 {
    10_000
}
fn default_alloc_seed() -> u64 {
    0x5EED_A110C
}
fn default_migration_penalty() -> u64 {
    30
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            policy: AllocPolicy::RoundRobin,
            epoch_cycles: default_epoch_cycles(),
            seed: default_alloc_seed(),
            migration_penalty: default_migration_penalty(),
        }
    }
}

/// Per-thread sample of the metric an allocation policy balances on,
/// taken at the last epoch boundary so the next decision works on deltas
/// (recent behaviour, not lifetime averages).
#[derive(Clone, Copy, Default)]
struct MetricBase {
    primary: u64,
    secondary: u64,
}

/// N cores against one shared hierarchy, with M ≥ N software threads
/// placed by an [`AllocPolicy`]. See the module docs for the invariants.
pub struct Machine {
    cores: Vec<Core>,
    hier: Hierarchy,
    alloc: AllocConfig,
    /// Global thread id → (core, slot) of its current home.
    placement: Vec<(usize, usize)>,
    /// Per core: slot → resident global thread id (None = sealed
    /// placeholder, recyclable by migration).
    slot_gid: Vec<Vec<Option<usize>>>,
    /// Machine clock — mirrors every core's clock, which advance in
    /// lockstep.
    now: u64,
    /// Cycle of the next migration decision (dynamic policies, N > 1).
    next_epoch: u64,
    /// Per-gid metric sample at the last epoch boundary.
    epoch_base: Vec<MetricBase>,
    /// Completed migrations (lifetime).
    migrations: u64,
    /// Cached: does any migration machinery run at all?
    migratory: bool,
    /// Cached from the config (all cores share these).
    fast_forward: bool,
    nonblocking_mem: bool,
}

impl Machine {
    /// Build an `n_cores`-core machine running one instruction stream per
    /// software thread, placed by `alloc`. With `n_cores == 1` the machine
    /// is exactly the single-core [`crate::Simulator`]: all threads on the
    /// one core, no spare contexts, no migration. With more cores, every
    /// core is built with M thread slots (so any placement — including the
    /// worst random one and any migration schedule — fits) and the slots
    /// not filled by the initial placement are sealed placeholders;
    /// `cfg.phys_int`/`cfg.phys_fp` must therefore cover M contexts per
    /// core, which `SimConfig::validate` enforces per core.
    pub fn new(
        cfg: SimConfig,
        n_cores: usize,
        alloc: AllocConfig,
        streams: Vec<Box<dyn InstGenerator>>,
    ) -> Self {
        assert!(n_cores >= 1, "a machine needs at least one core");
        let m = streams.len();
        let hier = Hierarchy::new_multi(cfg.hierarchy, n_cores);
        let fast_forward = cfg.fast_forward;
        let nonblocking_mem = matches!(cfg.hierarchy.model, smt_mem::MemModel::NonBlocking(_));
        let migratory = n_cores > 1 && alloc.policy.is_dynamic();

        // Initial placement.
        let assignment: Vec<usize> = if n_cores == 1 {
            vec![0; m]
        } else {
            match alloc.policy {
                AllocPolicy::Random => {
                    let mut rng = alloc.seed | 1;
                    (0..m)
                        .map(|_| {
                            // xorshift64
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            (rng % n_cores as u64) as usize
                        })
                        .collect()
                }
                // Every other policy starts from the balanced round-robin
                // placement; the dynamic ones earn their keep by migrating
                // away from it.
                _ => (0..m).map(|g| g % n_cores).collect(),
            }
        };

        // Distribute the streams. With one core the streams pass through
        // untouched (degenerate case == Simulator, bit for bit); otherwise
        // each core gets M slots: its residents first, then sealed
        // placeholders that give migration somewhere to land.
        let mut placement = vec![(0usize, 0usize); m];
        let mut slot_gid: Vec<Vec<Option<usize>>> = vec![Vec::new(); n_cores];
        let mut per_core: Vec<Vec<Box<dyn InstGenerator>>> =
            (0..n_cores).map(|_| Vec::new()).collect();
        for (gid, stream) in streams.into_iter().enumerate() {
            let c = assignment[gid];
            placement[gid] = (c, per_core[c].len());
            slot_gid[c].push(Some(gid));
            per_core[c].push(stream);
        }
        let mut cores: Vec<Core> = Vec::with_capacity(n_cores);
        for (c, mut core_streams) in per_core.into_iter().enumerate() {
            let first_placeholder = core_streams.len();
            if n_cores > 1 {
                while core_streams.len() < m {
                    core_streams.push(Box::new(ProgramTrace::once(Vec::new())));
                    slot_gid[c].push(None);
                }
            }
            let mut core = Core::new(cfg.clone(), core_streams, c);
            for slot in first_placeholder..m.max(first_placeholder) {
                if n_cores > 1 {
                    core.seal_slot(slot);
                }
            }
            cores.push(core);
        }

        Machine {
            cores,
            hier,
            next_epoch: alloc.epoch_cycles,
            alloc,
            placement,
            slot_gid,
            now: 0,
            epoch_base: vec![MetricBase::default(); m],
            migrations: 0,
            migratory,
            fast_forward,
            nonblocking_mem,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of software threads.
    pub fn num_threads(&self) -> usize {
        self.placement.len()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Where each software thread currently runs: gid → (core, slot).
    pub fn placement(&self) -> &[(usize, usize)] {
        &self.placement
    }

    /// Completed migrations (lifetime total).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Event-driven-loop effectiveness: `(jumps, skipped_cycles)`. Jumps
    /// apply to every core simultaneously, so any core's lifetime totals
    /// are the machine's.
    pub fn ff_stats(&self) -> (u64, u64) {
        self.cores[0].ff_stats()
    }

    /// One core's accumulated counters (per-core view; slot-indexed).
    pub fn core_counters(&self, core: usize) -> &SimCounters {
        self.cores[core].counters()
    }

    /// Machine-level rollup: per-thread rows indexed by *global* thread
    /// id, whole-machine sums for the shared-nothing counters, and the
    /// memory block synced from the shared hierarchy's aggregate (per-core
    /// views would double-count the shared structures). For N=1 this is
    /// bit-for-bit the single-core simulator's counter block.
    pub fn counters(&self) -> SimCounters {
        let mut agg = SimCounters::new(self.placement.len());
        for (c, core) in self.cores.iter().enumerate() {
            agg.absorb_core(core.counters(), &self.slot_gid[c]);
        }
        if self.nonblocking_mem {
            agg.mem = mem_counters_from(&self.hier.mem_stats());
        }
        agg
    }

    /// Reset measurement state on every core and the shared hierarchy
    /// (once), keeping microarchitectural state warm — the multi-core
    /// analogue of [`crate::Simulator::reset_measurement`].
    pub fn reset_measurement(&mut self) {
        for core in &mut self.cores {
            core.reset_measurement_local();
        }
        self.hier.reset_stats();
        for base in self.epoch_base.iter_mut() {
            *base = MetricBase::default();
        }
    }

    /// Advance the machine by exactly one cycle: every core's prologue,
    /// one shared memory step, then every core's stage sweep.
    pub fn cycle(&mut self) {
        for core in &mut self.cores {
            core.begin_cycle();
        }
        self.now += 1;
        self.step_memory_shared();
        for core in &mut self.cores {
            core.finish_cycle(&mut self.hier);
        }
    }

    /// The shared half of the memory step: advance fills, drain the write
    /// buffer (routing each drained store's cache traffic to the owning
    /// core), or account one idle cycle when nothing can move. Mirrors
    /// `Core::step_memory` exactly in the N=1 case.
    fn step_memory_shared(&mut self) {
        if !self.nonblocking_mem {
            return;
        }
        if self.hier.next_fill_at().is_none_or(|c| c > self.now)
            && (self.hier.wb_len() == 0 || self.hier.wb_head_stuck())
        {
            self.hier.account_idle_cycles(1);
            return;
        }
        for d in self.hier.step(self.now) {
            self.cores[d.core].note_data_access(d.thread, d.level);
        }
    }

    /// Total committed instructions across all cores in the current
    /// measurement window.
    pub fn committed_total(&self) -> u64 {
        self.cores.iter().map(|c| c.committed_total()).sum()
    }

    /// Are all software threads drained?
    pub fn all_drained(&self) -> bool {
        self.cores.iter().all(|c| c.all_drained())
    }

    /// Committed instruction count of global thread `gid`.
    pub fn thread_committed(&self, gid: usize) -> u64 {
        let (c, s) = self.placement[gid];
        self.cores[c].counters().threads[s].committed
    }

    /// Is global thread `gid` drained?
    pub fn thread_drained(&self, gid: usize) -> bool {
        let (c, s) = self.placement[gid];
        self.cores[c].thread_drained(s)
    }

    /// Run until some thread reaches `commit_target` committed
    /// instructions, every thread drains, or the machine wedges — the
    /// multi-core mirror of [`crate::Simulator::run`].
    pub fn run(&mut self, commit_target: u64) -> RunOutcome {
        self.run_with_abort(commit_target, || false)
    }

    /// [`Machine::run`] with an external abort hook (see
    /// [`crate::Simulator::run_with_abort`]).
    pub fn run_with_abort(
        &mut self,
        commit_target: u64,
        mut should_abort: impl FnMut() -> bool,
    ) -> RunOutcome {
        let mut last_total = self.committed_total();
        let mut last_commit_cycle = self.now;
        let mut iters: u64 = 0;
        loop {
            if (0..self.placement.len()).any(|g| self.thread_committed(g) >= commit_target) {
                return RunOutcome::TargetReached;
            }
            if self.all_drained() {
                return RunOutcome::AllFinished;
            }
            let total = self.committed_total();
            if total != last_total {
                last_total = total;
                last_commit_cycle = self.now;
            }
            if let Some(report) = self.check_progress(last_commit_cycle) {
                return RunOutcome::Wedged(report);
            }
            if iters & (ABORT_POLL_ITERS - 1) == 0 && should_abort() {
                return RunOutcome::Aborted;
            }
            iters += 1;
            self.cycle_with_fast_forward(last_commit_cycle);
            self.maybe_rebalance();
        }
    }

    /// Run until *every* live thread has committed at least
    /// `commit_target` instructions (warm-up semantics across all cores).
    pub fn run_until_all_committed(&mut self, commit_target: u64) -> RunOutcome {
        self.run_until_all_committed_with_abort(commit_target, || false)
    }

    /// [`Machine::run_until_all_committed`] with an external abort hook.
    pub fn run_until_all_committed_with_abort(
        &mut self,
        commit_target: u64,
        mut should_abort: impl FnMut() -> bool,
    ) -> RunOutcome {
        let mut last_total = self.committed_total();
        let mut last_commit_cycle = self.now;
        let mut iters: u64 = 0;
        loop {
            let all_done = (0..self.placement.len())
                .all(|g| self.thread_committed(g) >= commit_target || self.thread_drained(g));
            if all_done {
                return if self.all_drained() {
                    RunOutcome::AllFinished
                } else {
                    RunOutcome::TargetReached
                };
            }
            let total = self.committed_total();
            if total != last_total {
                last_total = total;
                last_commit_cycle = self.now;
            }
            if let Some(report) = self.check_progress(last_commit_cycle) {
                return RunOutcome::Wedged(report);
            }
            if iters & (ABORT_POLL_ITERS - 1) == 0 && should_abort() {
                return RunOutcome::Aborted;
            }
            iters += 1;
            self.cycle_with_fast_forward(last_commit_cycle);
            self.maybe_rebalance();
        }
    }

    /// Machine-wide wedge check, mirroring the single-core run loops.
    fn check_progress(&self, last_commit_cycle: u64) -> Option<Box<DeadlockReport>> {
        let cfg = self.cores[0].config();
        let stuck = self.now - last_commit_cycle;
        let k = cfg.progress_check_cycles;
        if (k > 0 && stuck >= k) || (cfg.max_cycles > 0 && self.now >= cfg.max_cycles) {
            Some(Box::new(self.diagnose(stuck)))
        } else {
            None
        }
    }

    /// Snapshot why the machine is not committing. Thread diagnoses cover
    /// every software thread (labelled `c{core}.t{slot}` in the summary);
    /// the whole-machine queue block reports core 0's issue queue (the
    /// report format has one) plus DAB/event totals across cores.
    pub fn diagnose(&self, cycles_since_commit: u64) -> DeadlockReport {
        let mut threads = Vec::with_capacity(self.placement.len());
        for &(c, s) in &self.placement {
            threads.push(self.cores[c].diagnose_thread(&self.hier, s));
        }
        let dab = self.cores.iter().flat_map(|c| c.dab_snapshot()).collect();
        DeadlockReport {
            cores: self.cores.len(),
            cycle: self.now,
            cycles_since_commit,
            committed_total: self
                .cores
                .iter()
                .flat_map(|c| c.counters().threads.iter())
                .map(|t| t.committed)
                .sum(),
            iq: self.cores[0].iq_snapshot(),
            dab,
            dab_size: self.cores[0].dab_capacity(),
            pending_events: self.cores.iter().map(|c| c.pending_events()).sum(),
            mem: self.hier.is_nonblocking().then(|| self.hier.snapshot()),
            threads,
        }
    }

    /// Advance one cycle and, when every core proves the machine idle,
    /// jump the clock by the *minimum* next-activity distance across
    /// cores — the multi-core generalisation of the single-core
    /// event-driven loop, and bit-for-bit identical to it at N=1.
    fn cycle_with_fast_forward(&mut self, last_commit_cycle: u64) {
        if !self.fast_forward || !self.cores.iter().all(|c| c.ff_idle_precheck(&self.hier)) {
            self.cycle();
            return;
        }
        let mut scratches: Vec<smt_stats::SimCounters> =
            self.cores.iter_mut().map(|c| c.ff_take_scratch()).collect();
        let sigs: Vec<FfActivitySig> =
            self.cores.iter().map(|c| c.ff_activity_sig(&self.hier)).collect();
        self.cycle();
        let idle = self
            .cores
            .iter()
            .zip(&sigs)
            .all(|(c, sig)| &c.ff_activity_sig(&self.hier) == sig)
            && self.cores.iter().all(|c| c.ff_idle_precheck(&self.hier))
            // A drain transition must surface to the run loop at its true
            // cycle, not after an overshoot.
            && !self.all_drained();
        if idle {
            let mut k = self
                .cores
                .iter()
                .map(|c| c.ff_skip_len(&self.hier, last_commit_cycle))
                .min()
                .unwrap_or(0);
            if self.migratory {
                // Jumps never cross an epoch boundary: migration decisions
                // must happen at their exact cycles. (The single cycle above
                // may have just landed on the boundary, in which case no
                // jump is allowed at all — rebalance runs next.)
                k = k.min((self.next_epoch.saturating_sub(self.now)).saturating_sub(1));
            }
            if k > 0 {
                for (c, scratch) in self.cores.iter_mut().zip(&scratches) {
                    c.ff_apply_jump(scratch, k);
                }
                self.now += k;
                if self.nonblocking_mem {
                    self.hier.account_idle_cycles(k);
                    for c in &mut self.cores {
                        c.sync_mem_counters(&self.hier);
                    }
                }
            }
        }
        for (c, scratch) in self.cores.iter_mut().zip(scratches.drain(..)) {
            c.ff_put_scratch(scratch);
        }
    }

    // ------------------------------------------------------------------
    // Epoch-boundary migration.
    // ------------------------------------------------------------------

    /// The running total of the metric the configured policy balances on,
    /// for global thread `gid` (monotone; epoch deltas are taken against
    /// [`Machine::epoch_base`]).
    fn metric_sample(&self, gid: usize) -> MetricBase {
        let (c, s) = self.placement[gid];
        let t = &self.cores[c].counters().threads[s];
        match self.alloc.policy {
            AllocPolicy::IlpBalanced => MetricBase { primary: t.issued, secondary: 0 },
            AllocPolicy::MlpBalanced => {
                MetricBase { primary: t.mlp_sum, secondary: t.mem_busy_cycles }
            }
            AllocPolicy::ContentionAware => MetricBase {
                primary: t.wb_full_stall_cycles + t.mshr_full_defers + t.fetch_mshr_stall_cycles,
                secondary: 0,
            },
            // Static policies never sample.
            AllocPolicy::Random | AllocPolicy::RoundRobin => MetricBase::default(),
        }
    }

    /// This epoch's load contribution of `gid`: the metric delta since the
    /// last boundary (for `MlpBalanced`, the MLP ratio of the deltas in
    /// fixed-point ×256). Pure integer math — identical on every host.
    fn epoch_load(&self, gid: usize) -> u64 {
        let cur = self.metric_sample(gid);
        let base = self.epoch_base[gid];
        let dp = cur.primary - base.primary;
        match self.alloc.policy {
            AllocPolicy::MlpBalanced => {
                let ds = cur.secondary - base.secondary;
                dp * 256 / ds.max(1)
            }
            _ => dp,
        }
    }

    /// At an epoch boundary, move at most one thread from the
    /// highest-load core to the lowest-load one — the thread whose load is
    /// closest to half the imbalance, so the move shrinks it maximally —
    /// subject to a hysteresis band (imbalance must exceed 1/8 of the max
    /// load) that stops placement thrash. Deterministic by construction:
    /// pure integer metrics, lowest-index tie-breaks.
    fn maybe_rebalance(&mut self) {
        if !self.migratory || self.now < self.next_epoch {
            return;
        }
        while self.next_epoch <= self.now {
            self.next_epoch += self.alloc.epoch_cycles.max(1);
        }

        let n = self.cores.len();
        let mut core_load = vec![0u64; n];
        let mut core_live = vec![0usize; n];
        for gid in 0..self.placement.len() {
            if self.thread_drained(gid) {
                continue;
            }
            let (c, _) = self.placement[gid];
            core_load[c] += self.epoch_load(gid);
            core_live[c] += 1;
        }
        let donor = (0..n).max_by_key(|&c| (core_load[c], std::cmp::Reverse(c))).unwrap();
        let recipient = (0..n).min_by_key(|&c| (core_load[c], c)).unwrap();

        let imbalance = core_load[donor] - core_load[recipient];
        let migrate = donor != recipient
            && core_live[donor] >= 2
            && imbalance > core_load[donor] / 8
            && imbalance > 0;
        if migrate {
            if let Some(free_slot) =
                self.slot_gid[recipient].iter().position(|owner| owner.is_none())
            {
                // The donor thread whose load is closest to half the
                // imbalance (ties to the lower gid).
                let target = imbalance / 2;
                let mut best: Option<(u64, usize)> = None;
                for gid in 0..self.placement.len() {
                    if self.placement[gid].0 != donor || self.thread_drained(gid) {
                        continue;
                    }
                    let load = self.epoch_load(gid);
                    let dist = load.abs_diff(target);
                    if best.map(|(d, _)| dist < d).unwrap_or(true) {
                        best = Some((dist, gid));
                    }
                }
                if let Some((_, gid)) = best {
                    self.migrate_thread(gid, recipient, free_slot);
                }
            }
        }

        // Restart every thread's epoch window so next epoch's deltas
        // reflect post-decision behaviour.
        for gid in 0..self.placement.len() {
            self.epoch_base[gid] = self.metric_sample(gid);
        }
    }

    /// Move global thread `gid` to `(recipient, slot)` (drain-and-restart;
    /// see [`Core::extract_thread`]).
    fn migrate_thread(&mut self, gid: usize, recipient: usize, slot: usize) {
        let (donor, donor_slot) = self.placement[gid];
        let migrated: MigratedThread = self.cores[donor].extract_thread(donor_slot);
        self.cores[recipient].install_thread(slot, migrated, self.alloc.migration_penalty);
        self.slot_gid[donor][donor_slot] = None;
        self.slot_gid[recipient][slot] = Some(gid);
        self.placement[gid] = (recipient, slot);
        self.migrations += 1;
    }
}
