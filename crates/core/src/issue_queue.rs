//! The shared issue queue: limited-tag-comparator entries, wakeup and
//! oldest-first select.
//!
//! Each entry carries at most `comparators` pending source tags — the
//! structural encoding of the 2OP_BLOCK design (1 comparator per entry)
//! versus the traditional scheduler (2 comparators). Admission of an
//! instruction with more non-ready sources than an entry's comparators is
//! rejected by [`IssueQueue::insert`]; the dispatch stage must never
//! attempt it (it classifies such instructions as NDIs).

use crate::regfile::PhysReg;
use crate::scheduler::SchedulerQueue;
use smt_isa::FuKind;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One issue-queue entry. `Copy` so the issue stage can hand entries out
/// by value without a heap clone per issued instruction.
#[derive(Debug, Clone, Copy)]
pub struct IqEntry {
    /// Owning thread.
    pub thread: usize,
    /// Trace index within the thread.
    pub trace_idx: u64,
    /// Global age for oldest-first selection.
    pub age: u64,
    /// Function-unit pool this instruction needs.
    pub fu: FuKind,
    /// Source tags still awaited (cleared by wakeup broadcasts).
    pub waiting: [Option<PhysReg>; 2],
}

impl IqEntry {
    /// Number of source tags still awaited.
    pub fn pending(&self) -> usize {
        self.waiting.iter().flatten().count()
    }
}

/// Flat-tag sentinel: "this comparator position holds no pending tag".
const NO_TAG: u32 = u32::MAX;
/// Age sentinel marking a vacant slot in the `ages` array, so stale
/// ready-heap and slow-bus references can never validate against it.
const FREE_AGE: u64 = u64::MAX;

/// The shared issue queue.
///
/// The wakeup-relevant state is packed structure-of-arrays style: per-slot
/// flat tag words (`tag0`/`tag1`), pending-tag counts (`pend`) and entry
/// ages (`ages`) live in dense parallel vectors, so a tag broadcast walks
/// its waiter list touching a few machine words per slot instead of
/// dereferencing whole [`IqEntry`] records. `slots` keeps the per-entry
/// metadata (thread, trace index, FU kind) and is only touched at
/// insert/select/remove, off the broadcast path; its `waiting` tags are
/// frozen at insert time and re-materialized against the SoA state when an
/// entry is handed back out.
#[derive(Debug)]
pub struct IssueQueue {
    slots: Vec<Option<IqEntry>>,
    /// Flat tag pending in comparator position 0 of each slot (`NO_TAG`
    /// when clear or vacant).
    tag0: Vec<u32>,
    /// Flat tag pending in comparator position 1 (the slow-bus position in
    /// Half-Price mode).
    tag1: Vec<u32>,
    /// Pending-tag count of each slot's resident entry.
    pend: Vec<u8>,
    /// Age of each slot's resident entry (`FREE_AGE` when vacant).
    ages: Vec<u64>,
    /// Tag-comparator capacity of each slot (0, 1, or 2).
    slot_caps: Vec<u8>,
    /// Free slots partitioned by comparator capacity.
    free: [Vec<usize>; 3],
    /// Waiter lists indexed by flat physical-register id. Entries may be
    /// stale (slot reused); wakeup validates against the slot's pending
    /// tags, which makes delivery idempotent.
    waiters: Vec<Vec<usize>>,
    /// Min-heap of (age, slot) candidates whose operands are all ready.
    /// Lazily validated on pop.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-thread occupancy (for the I-Count fetch policy).
    per_thread: Vec<usize>,
    /// Maximum comparator capacity of any slot.
    max_cap: u8,
    occupied: usize,
    /// Integer physical-register count, for flat tag indexing.
    phys_int: usize,
    /// Half-Price mode (Kim & Lipasti [7]): the second pending tag of each
    /// entry sits on the *slow* tag bus and receives broadcasts one cycle
    /// late.
    slow_second_tag: bool,
    /// Slow-bus deliveries staged for the next [`IssueQueue::tick`], as
    /// (slot, age, flat tag). The age pins the delivery to the entry
    /// incarnation that was resident at broadcast time: a slot squashed and
    /// reused between broadcast and delivery must not receive the stale
    /// wakeup.
    pending_slow: Vec<(usize, u64, u32)>,
    /// Running total of pending source tags across resident entries, so
    /// [`IssueQueue::pending_tags`] is O(1) instead of a full-queue scan.
    pending_count: usize,
}

impl IssueQueue {
    /// An empty queue of `size` entries with `comparators` tag comparators
    /// per entry, for `threads` hardware contexts and `total_phys` physical
    /// registers (int + fp).
    pub fn new(size: usize, comparators: u8, threads: usize, total_phys: usize) -> Self {
        assert!((1..=2).contains(&comparators), "entries support 1 or 2 comparators");
        Self::new_heterogeneous(vec![comparators; size], threads, total_phys)
    }

    /// Enable Half-Price mode: the second pending tag of every entry sits
    /// on the slow tag bus and is woken one cycle late (Kim & Lipasti [7]).
    pub fn with_slow_second_tag(mut self) -> Self {
        self.slow_second_tag = true;
        self
    }

    /// Set the integer physical-register count used to flatten tags
    /// internally (so the queue can implement [`SchedulerQueue`] without a
    /// caller-supplied closure).
    pub fn with_phys_int(mut self, phys_int: usize) -> Self {
        self.phys_int = phys_int;
        self
    }

    /// A queue with per-entry comparator capacities — the statically
    /// partitioned tag-eliminated scheduler of Ernst & Austin [5]: some
    /// entries have two comparators, some one, and some none (for
    /// instructions whose operands are all ready at dispatch).
    pub fn new_heterogeneous(slot_caps: Vec<u8>, threads: usize, total_phys: usize) -> Self {
        assert!(!slot_caps.is_empty(), "IQ must have at least one entry");
        assert!(slot_caps.iter().all(|&c| c <= 2), "entries support at most 2 comparators");
        let mut free: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (slot, &cap) in slot_caps.iter().enumerate().rev() {
            free[cap as usize].push(slot);
        }
        IssueQueue {
            slots: vec![None; slot_caps.len()],
            tag0: vec![NO_TAG; slot_caps.len()],
            tag1: vec![NO_TAG; slot_caps.len()],
            pend: vec![0; slot_caps.len()],
            ages: vec![FREE_AGE; slot_caps.len()],
            max_cap: slot_caps.iter().copied().max().unwrap(),
            slot_caps,
            free,
            waiters: vec![Vec::new(); total_phys],
            ready: BinaryHeap::new(),
            per_thread: vec![0; threads],
            occupied: 0,
            phys_int: 256,
            slow_second_tag: false,
            pending_slow: Vec::new(),
            pending_count: 0,
        }
    }

    /// Maximum comparators of any entry.
    pub fn comparators(&self) -> u8 {
        self.max_cap
    }

    /// Occupied entries.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Entries owned by `thread`.
    pub fn thread_occupancy(&self, thread: usize) -> usize {
        self.per_thread[thread]
    }

    /// Is there a free entry (of any capacity)?
    pub fn has_free(&self) -> bool {
        self.free.iter().any(|f| !f.is_empty())
    }

    /// Is there a free entry with at least `non_ready` comparators?
    pub fn has_free_for(&self, non_ready: u8) -> bool {
        (non_ready as usize..=2).any(|c| !self.free[c].is_empty())
    }

    /// Insert an instruction whose *non-ready* sources are exactly the
    /// `Some` tags in `entry.waiting`. Panics if the queue is full or the
    /// pending-tag count exceeds the per-entry comparator budget — both are
    /// dispatch-stage bugs.
    pub fn insert(&mut self, entry: IqEntry, phys_flat: impl Fn(PhysReg) -> usize) -> usize {
        // Prefer the smallest sufficient capacity class, preserving
        // high-comparator entries for the instructions that need them.
        let class =
            (entry.pending()..=2).find(|&c| !self.free[c].is_empty()).unwrap_or_else(|| {
                panic!(
                    "no free IQ entry with >= {} comparators: dispatch must check has_free_for()",
                    entry.pending()
                )
            });
        let slot = self.free[class].pop().expect("class checked non-empty");
        self.per_thread[entry.thread] += 1;
        self.occupied += 1;
        self.pending_count += entry.pending();
        for reg in entry.waiting.iter().flatten() {
            self.waiters[phys_flat(*reg)].push(slot);
        }
        self.tag0[slot] = entry.waiting[0].map_or(NO_TAG, |r| phys_flat(r) as u32);
        self.tag1[slot] = entry.waiting[1].map_or(NO_TAG, |r| phys_flat(r) as u32);
        self.pend[slot] = entry.pending() as u8;
        self.ages[slot] = entry.age;
        if entry.pending() == 0 {
            self.ready.push(Reverse((entry.age, slot)));
        }
        self.slots[slot] = Some(entry);
        slot
    }

    /// Reset a slot's SoA pending state when its occupant leaves, so stale
    /// waiter-list, ready-heap, and slow-bus references can never match it.
    fn clear_soa(&mut self, slot: usize) {
        self.tag0[slot] = NO_TAG;
        self.tag1[slot] = NO_TAG;
        self.pend[slot] = 0;
        self.ages[slot] = FREE_AGE;
    }

    /// Re-derive an outgoing entry's `waiting` tags from the SoA state:
    /// positions whose tag has been woken since insert read as `None`.
    fn materialize(&self, slot: usize, mut entry: IqEntry) -> IqEntry {
        if self.tag0[slot] == NO_TAG {
            entry.waiting[0] = None;
        }
        if self.tag1[slot] == NO_TAG {
            entry.waiting[1] = None;
        }
        entry
    }

    /// Deliver a wakeup broadcast for `reg`: clear matching tags and move
    /// newly ready entries to the ready heap. In Half-Price mode, tags in
    /// the slow (second) position are staged for the next cycle's
    /// [`IssueQueue::tick`] instead of clearing immediately.
    ///
    /// This is the broadcast hot path: it reads and writes only the flat
    /// SoA arrays (`tag0`/`tag1`/`pend`/`ages`), never the boxed entry
    /// records. A vacant slot holds `NO_TAG` in both positions, so stale
    /// waiter references fall through the comparisons harmlessly.
    pub fn wakeup(&mut self, _reg: PhysReg, flat: usize) {
        let f = flat as u32;
        let list = std::mem::take(&mut self.waiters[flat]);
        for slot in list {
            let mut hit = false;
            if self.tag0[slot] == f {
                self.tag0[slot] = NO_TAG;
                self.pend[slot] -= 1;
                self.pending_count -= 1;
                hit = true;
            }
            if self.tag1[slot] == f {
                if self.slow_second_tag {
                    // Slow-bus position: stage for next cycle, tag intact.
                    self.pending_slow.push((slot, self.ages[slot], f));
                } else {
                    self.tag1[slot] = NO_TAG;
                    self.pend[slot] -= 1;
                    self.pending_count -= 1;
                    hit = true;
                }
            }
            if hit && self.pend[slot] == 0 {
                self.ready.push(Reverse((self.ages[slot], slot)));
            }
        }
    }

    /// Deliver last cycle's slow-bus broadcasts (Half-Price mode). A staged
    /// delivery lands only if the slot still holds the same entry
    /// incarnation (matching age) — a squash-and-reuse of the slot in
    /// between must not wake the new occupant early.
    pub fn deliver_slow(&mut self) {
        let staged = std::mem::take(&mut self.pending_slow);
        for (slot, age, f) in staged {
            if self.ages[slot] == age && self.tag1[slot] == f {
                self.tag1[slot] = NO_TAG;
                self.pend[slot] -= 1;
                self.pending_count -= 1;
                if self.pend[slot] == 0 {
                    self.ready.push(Reverse((age, slot)));
                }
            }
        }
    }

    /// Free entries usable by instructions with 0/1/2 non-ready sources.
    /// Classes are cumulative: a free 2-comparator entry also admits 0- and
    /// 1-non-ready instructions.
    pub fn free_by_class(&self) -> [usize; 3] {
        let f = [self.free[0].len(), self.free[1].len(), self.free[2].len()];
        [f[0] + f[1] + f[2], f[1] + f[2], f[2]]
    }

    /// Source tags still awaited across all resident entries.
    pub fn pending_tags(&self) -> usize {
        debug_assert_eq!(
            self.pending_count,
            self.pend.iter().map(|&p| p as usize).sum::<usize>(),
            "running pending-tag count out of sync with the SoA state"
        );
        self.pending_count
    }

    /// Pop the oldest ready entry, if any. The caller may decline to issue
    /// it (function unit busy, LSQ conflict) and must then call
    /// [`IssueQueue::defer`] with the returned slot.
    pub fn pop_ready(&mut self) -> Option<(usize, IqEntry)> {
        while let Some(Reverse((age, slot))) = self.ready.pop() {
            // Age match ⇒ the incarnation that became ready is still
            // resident (vacant slots read `FREE_AGE`).
            if self.ages[slot] == age && self.pend[slot] == 0 {
                let entry = self.materialize(slot, self.slots[slot].expect("age-matched slot"));
                return Some((slot, entry));
            }
        }
        None
    }

    /// Put a ready entry back (could not issue this cycle).
    pub fn defer(&mut self, slot: usize) {
        if self.ages[slot] != FREE_AGE {
            self.ready.push(Reverse((self.ages[slot], slot)));
        }
    }

    /// Remove an entry at issue.
    pub fn remove(&mut self, slot: usize) -> IqEntry {
        let entry = self.slots[slot].take().expect("removing empty IQ slot");
        let entry = self.materialize(slot, entry);
        self.per_thread[entry.thread] -= 1;
        self.occupied -= 1;
        self.pending_count -= self.pend[slot] as usize;
        self.clear_soa(slot);
        self.free[self.slot_caps[slot] as usize].push(slot);
        entry
    }

    /// Squash every entry of `thread` (pipeline flush). Stale waiter-list
    /// and ready-heap references are invalidated lazily.
    pub fn squash_thread(&mut self, thread: usize) {
        for slot in 0..self.slots.len() {
            if self.slots[slot].as_ref().map(|e| e.thread == thread).unwrap_or(false) {
                self.slots[slot] = None;
                self.pending_count -= self.pend[slot] as usize;
                self.clear_soa(slot);
                self.free[self.slot_caps[slot] as usize].push(slot);
                self.occupied -= 1;
            }
        }
        self.per_thread[thread] = 0;
    }

    /// Squash `thread`'s entries with `trace_idx > keep_idx` (partial
    /// flush). Stale waiter/ready references are invalidated lazily.
    pub fn squash_thread_from(&mut self, thread: usize, keep_idx: u64) {
        for slot in 0..self.slots.len() {
            let hit = self.slots[slot]
                .as_ref()
                .map(|e| e.thread == thread && e.trace_idx > keep_idx)
                .unwrap_or(false);
            if hit {
                self.slots[slot] = None;
                self.pending_count -= self.pend[slot] as usize;
                self.clear_soa(slot);
                self.free[self.slot_caps[slot] as usize].push(slot);
                self.occupied -= 1;
                self.per_thread[thread] -= 1;
            }
        }
    }

    /// Iterate over occupied entries (diagnostics, tests), with `waiting`
    /// tags reflecting the current (post-wakeup) SoA state.
    pub fn iter(&self) -> impl Iterator<Item = IqEntry> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| e.map(|entry| self.materialize(slot, entry)))
    }
}

impl SchedulerQueue for IssueQueue {
    fn occupancy(&self) -> usize {
        IssueQueue::occupancy(self)
    }

    fn thread_occupancy(&self, thread: usize) -> usize {
        IssueQueue::thread_occupancy(self, thread)
    }

    fn has_free_for(&self, non_ready: u8) -> bool {
        IssueQueue::has_free_for(self, non_ready)
    }

    fn free_by_class(&self) -> [usize; 3] {
        IssueQueue::free_by_class(self)
    }

    fn pending_tags(&self) -> usize {
        IssueQueue::pending_tags(self)
    }

    fn insert(&mut self, entry: IqEntry) -> usize {
        let phys_int = self.phys_int;
        IssueQueue::insert(self, entry, |r| r.flat(phys_int))
    }

    fn wakeup(&mut self, reg: PhysReg) {
        IssueQueue::wakeup(self, reg, reg.flat(self.phys_int))
    }

    fn tick(&mut self) {
        self.deliver_slow();
    }

    fn pop_ready(&mut self) -> Option<(usize, IqEntry)> {
        IssueQueue::pop_ready(self)
    }

    fn defer(&mut self, slot: usize) {
        IssueQueue::defer(self, slot)
    }

    fn remove(&mut self, slot: usize) -> IqEntry {
        IssueQueue::remove(self, slot)
    }

    fn squash_thread(&mut self, thread: usize) {
        IssueQueue::squash_thread(self, thread)
    }

    fn squash_thread_from(&mut self, thread: usize, keep_idx: u64) {
        IssueQueue::squash_thread_from(self, thread, keep_idx)
    }

    fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    fn has_staged(&self) -> bool {
        !self.pending_slow.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::RegClass;

    fn flat(r: PhysReg) -> usize {
        r.flat(256)
    }

    fn preg(i: u16) -> PhysReg {
        PhysReg { class: RegClass::Int, index: i }
    }

    fn entry(thread: usize, idx: u64, age: u64, waiting: [Option<PhysReg>; 2]) -> IqEntry {
        IqEntry { thread, trace_idx: idx, age, fu: FuKind::IntAlu, waiting }
    }

    #[test]
    fn ready_at_insert_pops_immediately() {
        let mut iq = IssueQueue::new(4, 2, 1, 512);
        iq.insert(entry(0, 0, 10, [None, None]), flat);
        let (slot, e) = iq.pop_ready().unwrap();
        assert_eq!(e.trace_idx, 0);
        iq.remove(slot);
        assert_eq!(iq.occupancy(), 0);
    }

    #[test]
    fn wakeup_makes_entry_ready() {
        let mut iq = IssueQueue::new(4, 2, 1, 512);
        iq.insert(entry(0, 0, 1, [Some(preg(5)), None]), flat);
        assert!(iq.pop_ready().is_none());
        iq.wakeup(preg(5), flat(preg(5)));
        let (_, e) = iq.pop_ready().unwrap();
        assert_eq!(e.trace_idx, 0);
    }

    #[test]
    fn two_source_entry_needs_both_wakeups() {
        let mut iq = IssueQueue::new(4, 2, 1, 512);
        iq.insert(entry(0, 0, 1, [Some(preg(5)), Some(preg(6))]), flat);
        iq.wakeup(preg(5), flat(preg(5)));
        assert!(iq.pop_ready().is_none());
        iq.wakeup(preg(6), flat(preg(6)));
        assert!(iq.pop_ready().is_some());
    }

    #[test]
    fn oldest_first_selection() {
        let mut iq = IssueQueue::new(8, 2, 2, 512);
        iq.insert(entry(1, 7, 30, [None, None]), flat);
        iq.insert(entry(0, 3, 10, [None, None]), flat);
        iq.insert(entry(0, 4, 20, [None, None]), flat);
        let (s, e) = iq.pop_ready().unwrap();
        assert_eq!(e.age, 10);
        iq.remove(s);
        let (_, e) = iq.pop_ready().unwrap();
        assert_eq!(e.age, 20);
    }

    #[test]
    #[should_panic(expected = "no free IQ entry with >= 2 comparators")]
    fn comparator_budget_enforced() {
        let mut iq = IssueQueue::new(4, 1, 1, 512);
        assert!(!iq.has_free_for(2));
        iq.insert(entry(0, 0, 1, [Some(preg(5)), Some(preg(6))]), flat);
    }

    #[test]
    fn heterogeneous_layout_allocates_smallest_sufficient_entry() {
        // 1 zero-comparator, 1 one-comparator, 1 two-comparator entry.
        let mut iq = IssueQueue::new_heterogeneous(vec![0, 1, 2], 1, 512);
        assert!(iq.has_free_for(0));
        assert!(iq.has_free_for(1));
        assert!(iq.has_free_for(2));
        // A ready instruction must take the 0-comparator slot first.
        iq.insert(entry(0, 0, 1, [None, None]), flat);
        assert!(iq.has_free_for(1), "1- and 2-comparator entries still free");
        // A 1-non-ready instruction takes the 1-comparator slot.
        iq.insert(entry(0, 1, 2, [Some(preg(5)), None]), flat);
        assert!(iq.has_free_for(2));
        assert!(!iq.has_free_for(1) || iq.has_free_for(2), "only the 2-comp entry remains");
        // A 2-non-ready instruction takes the last (2-comparator) slot.
        iq.insert(entry(0, 2, 3, [Some(preg(6)), Some(preg(7))]), flat);
        assert!(!iq.has_free());
    }

    #[test]
    fn heterogeneous_ready_spills_into_larger_entries() {
        let mut iq = IssueQueue::new_heterogeneous(vec![0, 2], 1, 512);
        iq.insert(entry(0, 0, 1, [None, None]), flat); // takes the 0-comp slot
        assert!(iq.has_free_for(2));
        iq.insert(entry(0, 1, 2, [None, None]), flat); // ready op spills into 2-comp
        assert!(!iq.has_free());
        // Free the 2-comparator entry again by issuing.
        let (slot, e) = iq.pop_ready().unwrap();
        assert_eq!(e.age, 1);
        iq.remove(slot);
        assert!(iq.has_free_for(0));
    }

    #[test]
    fn heterogeneous_zero_comp_entry_rejects_waiting_instruction() {
        let iq = IssueQueue::new_heterogeneous(vec![0, 0], 1, 512);
        assert!(iq.has_free_for(0));
        assert!(!iq.has_free_for(1));
        assert!(!iq.has_free_for(2));
    }

    #[test]
    fn one_comparator_accepts_single_pending_tag() {
        let mut iq = IssueQueue::new(4, 1, 1, 512);
        iq.insert(entry(0, 0, 1, [Some(preg(5)), None]), flat);
        iq.wakeup(preg(5), flat(preg(5)));
        assert!(iq.pop_ready().is_some());
    }

    #[test]
    fn defer_keeps_entry_selectable() {
        let mut iq = IssueQueue::new(4, 2, 1, 512);
        iq.insert(entry(0, 0, 1, [None, None]), flat);
        let (slot, _) = iq.pop_ready().unwrap();
        iq.defer(slot);
        let (slot2, e) = iq.pop_ready().unwrap();
        assert_eq!(slot, slot2);
        assert_eq!(e.trace_idx, 0);
    }

    #[test]
    fn per_thread_occupancy_tracking() {
        let mut iq = IssueQueue::new(8, 2, 2, 512);
        iq.insert(entry(0, 0, 1, [None, None]), flat);
        iq.insert(entry(1, 0, 2, [None, None]), flat);
        iq.insert(entry(1, 1, 3, [None, None]), flat);
        assert_eq!(iq.thread_occupancy(0), 1);
        assert_eq!(iq.thread_occupancy(1), 2);
        let (s, _) = iq.pop_ready().unwrap();
        iq.remove(s);
        assert_eq!(iq.thread_occupancy(0), 0);
    }

    #[test]
    fn squash_thread_clears_only_that_thread() {
        let mut iq = IssueQueue::new(8, 2, 2, 512);
        iq.insert(entry(0, 0, 1, [Some(preg(3)), None]), flat);
        iq.insert(entry(1, 0, 2, [None, None]), flat);
        iq.squash_thread(0);
        assert_eq!(iq.occupancy(), 1);
        assert_eq!(iq.thread_occupancy(0), 0);
        // Stale wakeup for thread 0's tag must be harmless.
        iq.wakeup(preg(3), flat(preg(3)));
        let (_, e) = iq.pop_ready().unwrap();
        assert_eq!(e.thread, 1);
    }

    #[test]
    fn capacity_enforced_via_has_free() {
        let mut iq = IssueQueue::new(2, 2, 1, 512);
        iq.insert(entry(0, 0, 1, [None, None]), flat);
        assert!(iq.has_free());
        iq.insert(entry(0, 1, 2, [None, None]), flat);
        assert!(!iq.has_free());
    }

    #[test]
    fn duplicate_wakeup_is_idempotent() {
        let mut iq = IssueQueue::new(4, 2, 1, 512);
        iq.insert(entry(0, 0, 1, [Some(preg(5)), None]), flat);
        iq.wakeup(preg(5), flat(preg(5)));
        iq.wakeup(preg(5), flat(preg(5)));
        assert!(iq.pop_ready().is_some());
        assert!(iq.pop_ready().is_none(), "entry must become ready exactly once");
    }

    #[test]
    fn same_tag_in_both_sources_cleared_together() {
        let mut iq = IssueQueue::new(4, 2, 1, 512);
        iq.insert(entry(0, 0, 1, [Some(preg(5)), Some(preg(5))]), flat);
        iq.wakeup(preg(5), flat(preg(5)));
        assert!(iq.pop_ready().is_some());
    }

    #[test]
    fn slow_bus_wakeup_is_delivered_one_cycle_late() {
        let mut iq = IssueQueue::new(4, 2, 1, 512).with_slow_second_tag();
        iq.insert(entry(0, 0, 1, [None, Some(preg(5))]), flat);
        iq.wakeup(preg(5), flat(preg(5)));
        assert!(iq.pop_ready().is_none(), "slow tag must not clear in the broadcast cycle");
        iq.deliver_slow();
        assert!(iq.pop_ready().is_some());
    }

    #[test]
    fn stale_slow_bus_delivery_does_not_wake_reused_slot() {
        // Regression pin for the Half-Price stale slow-bus wakeup defect:
        // with a single slot, stage a slow-bus delivery for the resident
        // entry, squash it, and let a new entry (same slot, same slow tag)
        // move in before the staged delivery lands. The new entry never saw
        // its producer execute, so it must stay non-ready.
        let mut iq = IssueQueue::new(1, 2, 1, 512).with_slow_second_tag();
        iq.insert(entry(0, 0, 10, [None, Some(preg(5))]), flat);
        iq.wakeup(preg(5), flat(preg(5))); // staged for next cycle
        iq.squash_thread(0);
        iq.insert(entry(0, 1, 11, [None, Some(preg(5))]), flat); // slot reused
        iq.deliver_slow();
        assert!(
            iq.pop_ready().is_none(),
            "stale slow-bus delivery must not wake the slot's new occupant"
        );
        // The new entry still wakes normally through a fresh broadcast.
        iq.wakeup(preg(5), flat(preg(5)));
        iq.deliver_slow();
        let (_, e) = iq.pop_ready().unwrap();
        assert_eq!(e.trace_idx, 1);
    }

    #[test]
    fn free_by_class_is_cumulative() {
        let mut iq = IssueQueue::new_heterogeneous(vec![0, 1, 2], 1, 512);
        assert_eq!(iq.free_by_class(), [3, 2, 1]);
        iq.insert(entry(0, 0, 1, [Some(preg(5)), Some(preg(6))]), flat);
        assert_eq!(iq.free_by_class(), [2, 1, 0]);
        assert_eq!(iq.pending_tags(), 2);
        iq.wakeup(preg(5), flat(preg(5)));
        assert_eq!(iq.pending_tags(), 1);
    }
}
