//! Per-thread register rename table (RAT).

use crate::regfile::{PhysReg, PhysRegFile};
use smt_isa::{ArchReg, RegClass, NUM_ARCH_FP, NUM_ARCH_INT};

/// A thread's speculative rename table mapping architectural to physical
/// registers. Zero registers are never renamed and never appear here.
#[derive(Debug, Clone)]
pub struct RenameTable {
    map: Vec<PhysReg>,
}

impl RenameTable {
    /// Build a table by allocating an initial physical register for every
    /// architectural register; the initial registers hold committed state
    /// and are marked ready.
    pub fn new(regs: &mut PhysRegFile) -> Self {
        let mut map = Vec::with_capacity(ArchReg::FLAT_COUNT);
        for i in 0..NUM_ARCH_INT {
            let p = regs.alloc(RegClass::Int).expect("initial int mapping");
            regs.set_ready(p);
            map.push(p);
            let _ = i;
        }
        for _ in 0..NUM_ARCH_FP {
            let p = regs.alloc(RegClass::Fp).expect("initial fp mapping");
            regs.set_ready(p);
            map.push(p);
        }
        RenameTable { map }
    }

    /// Current mapping of `reg`.
    #[inline]
    pub fn lookup(&self, reg: ArchReg) -> PhysReg {
        self.map[reg.flat_index()]
    }

    /// Redirect `reg` to `new`, returning the previous mapping (saved in the
    /// ROB for commit-time freeing or squash-time restoration).
    #[inline]
    pub fn rename(&mut self, reg: ArchReg, new: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[reg.flat_index()], new)
    }

    /// Restore `reg` to a previous mapping (squash recovery, applied
    /// youngest-first).
    #[inline]
    pub fn restore(&mut self, reg: ArchReg, old: PhysReg) {
        self.map[reg.flat_index()] = old;
    }

    /// All current mappings (for invariant checks in tests).
    pub fn mappings(&self) -> &[PhysReg] {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mappings_are_distinct_and_ready() {
        let mut regs = PhysRegFile::new(64, 64);
        let rat = RenameTable::new(&mut regs);
        let mut seen = std::collections::HashSet::new();
        for &p in rat.mappings() {
            assert!(seen.insert(p), "duplicate initial mapping {p:?}");
            assert!(regs.is_ready(p));
        }
        assert_eq!(seen.len(), ArchReg::FLAT_COUNT);
        assert_eq!(regs.free_count(RegClass::Int), 64 - NUM_ARCH_INT as usize);
    }

    #[test]
    fn rename_returns_old_mapping() {
        let mut regs = PhysRegFile::new(64, 64);
        let mut rat = RenameTable::new(&mut regs);
        let r5 = ArchReg::int(5);
        let before = rat.lookup(r5);
        let new = regs.alloc(RegClass::Int).unwrap();
        let old = rat.rename(r5, new);
        assert_eq!(old, before);
        assert_eq!(rat.lookup(r5), new);
    }

    #[test]
    fn restore_undoes_rename() {
        let mut regs = PhysRegFile::new(64, 64);
        let mut rat = RenameTable::new(&mut regs);
        let r7 = ArchReg::int(7);
        let orig = rat.lookup(r7);
        let n1 = regs.alloc(RegClass::Int).unwrap();
        let o1 = rat.rename(r7, n1);
        let n2 = regs.alloc(RegClass::Int).unwrap();
        let o2 = rat.rename(r7, n2);
        // Squash youngest-first.
        rat.restore(r7, o2);
        rat.restore(r7, o1);
        assert_eq!(rat.lookup(r7), orig);
    }

    #[test]
    fn int_and_fp_do_not_alias() {
        let mut regs = PhysRegFile::new(64, 64);
        let mut rat = RenameTable::new(&mut regs);
        let n = regs.alloc(RegClass::Int).unwrap();
        let fp3_before = rat.lookup(ArchReg::fp(3));
        rat.rename(ArchReg::int(3), n);
        assert_eq!(rat.lookup(ArchReg::fp(3)), fp3_before);
        assert_eq!(rat.lookup(ArchReg::int(3)), n);
    }
}
