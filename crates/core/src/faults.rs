//! Deterministic, seeded fault injection for the recovery paths.
//!
//! PR 1 root-caused a real deadlock (a lost slow-bus wakeup) that only a
//! lucky fuzz case ever exercised. This module turns that class of failure
//! into a first-class, *reproducible* test input: the simulator can be
//! configured to perturb exactly the event classes behind that bug and its
//! neighbors —
//!
//! * [`FaultClass::WakeupDrop`] — a wakeup broadcast reaches the register
//!   file but is suppressed on the issue-queue tag bus; a delayed
//!   re-broadcast models the eventual recovery a real scheduler's replay
//!   path would provide (and without which the machine must fall back on
//!   its DAB/watchdog machinery).
//! * [`FaultClass::IssueDefer`] — a selected instruction loses its issue
//!   grant this cycle and is deferred, exactly like a structural conflict.
//! * [`FaultClass::CacheMissExtra`] — a load is charged spurious extra
//!   miss latency (and its L1 line is evicted), stretching operand wait
//!   times past every queue's patience.
//! * [`FaultClass::PredictorFlush`] — the thread's direction predictor and
//!   the shared BTB are cold-flushed at a branch fetch, yielding bursts of
//!   mispredictions and squashes.
//!
//! # Determinism contract
//!
//! Whether a fault fires at a *site* `(class, cycle, thread, trace_idx)` is
//! a pure function of the configured seed and that site (a stateless
//! site-hash against a per-class rate threshold), subject only to the
//! per-class injection budget. Because the simulator itself is
//! deterministic, the full injection log of a run is reproducible from
//! `(SimConfig, seed)` alone; and any single run can be replayed *exactly*
//! by feeding its recorded log back via [`FaultInjector::replay`], which
//! injects precisely the logged set and nothing else.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The event classes the injector can perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Suppress a wakeup broadcast on the IQ tag bus (the register-file
    /// ready bit is still set); re-broadcast after a configured delay.
    WakeupDrop,
    /// Revoke a won issue grant: the selected instruction is deferred to a
    /// later cycle as if it had lost structural arbitration.
    IssueDefer,
    /// Charge a load spurious extra miss latency and evict its L1 line.
    CacheMissExtra,
    /// Cold-flush the fetching thread's gShare and the shared BTB at a
    /// branch fetch.
    PredictorFlush,
}

impl FaultClass {
    /// Every class, in a fixed order (indexes [`FaultInjector`] counters).
    pub const ALL: [FaultClass; 4] = [
        FaultClass::WakeupDrop,
        FaultClass::IssueDefer,
        FaultClass::CacheMissExtra,
        FaultClass::PredictorFlush,
    ];

    /// Stable index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            FaultClass::WakeupDrop => 0,
            FaultClass::IssueDefer => 1,
            FaultClass::CacheMissExtra => 2,
            FaultClass::PredictorFlush => 3,
        }
    }

    /// Human-readable name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::WakeupDrop => "wakeup-drop",
            FaultClass::IssueDefer => "issue-defer",
            FaultClass::CacheMissExtra => "cache-miss-extra",
            FaultClass::PredictorFlush => "predictor-flush",
        }
    }

    /// Parse a CLI name as produced by [`FaultClass::name`].
    pub fn from_name(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Default injection rate in faults per million eligible sites — high
    /// enough to fire hundreds of times in a short run, low enough that
    /// forward progress between faults is the common case.
    pub fn default_rate_ppm(self) -> u32 {
        match self {
            FaultClass::WakeupDrop => 1_000,
            FaultClass::IssueDefer => 2_000,
            FaultClass::CacheMissExtra => 1_000,
            FaultClass::PredictorFlush => 200,
        }
    }
}

/// Per-class injection knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultClassConfig {
    /// Injection probability in parts per million of eligible sites
    /// (0 = class disabled).
    #[serde(default)]
    pub rate_ppm: u32,
    /// Maximum injections of this class per run (0 = unlimited).
    #[serde(default)]
    pub budget: u64,
}

/// Full fault-model configuration, carried by `SimConfig::faults`.
/// The default is fully disabled (all rates zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the site-hash; independent of the workload seed.
    #[serde(default)]
    pub seed: u64,
    /// Dropped-wakeup knobs.
    #[serde(default)]
    pub wakeup_drop: FaultClassConfig,
    /// Deferred-issue-grant knobs.
    #[serde(default)]
    pub issue_defer: FaultClassConfig,
    /// Spurious-cache-miss knobs.
    #[serde(default)]
    pub cache_miss_extra: FaultClassConfig,
    /// Predictor-flush knobs.
    #[serde(default)]
    pub predictor_flush: FaultClassConfig,
    /// Cycles until a dropped wakeup is re-broadcast on the IQ tag bus
    /// (clamped to ≥ 1 at use).
    #[serde(default = "default_redeliver_delay")]
    pub wakeup_redeliver_delay: u64,
    /// Extra latency cycles charged by [`FaultClass::CacheMissExtra`]
    /// (the paper machine's memory latency by default, so an injected
    /// fault looks like one more main-memory round trip).
    #[serde(default = "default_cache_extra")]
    pub cache_extra_latency: u64,
}

fn default_redeliver_delay() -> u64 {
    64
}

fn default_cache_extra() -> u64 {
    150
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            wakeup_drop: FaultClassConfig::default(),
            issue_defer: FaultClassConfig::default(),
            cache_miss_extra: FaultClassConfig::default(),
            predictor_flush: FaultClassConfig::default(),
            wakeup_redeliver_delay: default_redeliver_delay(),
            cache_extra_latency: default_cache_extra(),
        }
    }
}

impl FaultConfig {
    /// Enable a single class at its default rate.
    pub fn single(class: FaultClass, seed: u64) -> Self {
        let mut cfg = FaultConfig { seed, ..FaultConfig::default() };
        cfg.class_mut(class).rate_ppm = class.default_rate_ppm();
        cfg
    }

    /// Enable every class at its default rate.
    pub fn all_classes(seed: u64) -> Self {
        let mut cfg = FaultConfig { seed, ..FaultConfig::default() };
        for class in FaultClass::ALL {
            cfg.class_mut(class).rate_ppm = class.default_rate_ppm();
        }
        cfg
    }

    /// The knobs of one class.
    pub fn class(&self, class: FaultClass) -> FaultClassConfig {
        match class {
            FaultClass::WakeupDrop => self.wakeup_drop,
            FaultClass::IssueDefer => self.issue_defer,
            FaultClass::CacheMissExtra => self.cache_miss_extra,
            FaultClass::PredictorFlush => self.predictor_flush,
        }
    }

    /// Mutable access to the knobs of one class.
    pub fn class_mut(&mut self, class: FaultClass) -> &mut FaultClassConfig {
        match class {
            FaultClass::WakeupDrop => &mut self.wakeup_drop,
            FaultClass::IssueDefer => &mut self.issue_defer,
            FaultClass::CacheMissExtra => &mut self.cache_miss_extra,
            FaultClass::PredictorFlush => &mut self.predictor_flush,
        }
    }

    /// Is any class enabled?
    pub fn enabled(&self) -> bool {
        FaultClass::ALL.iter().any(|&c| self.class(c).rate_ppm > 0)
    }
}

/// One injected fault: the `(seed, cycle, site)` tuple the determinism
/// contract promises is sufficient to replay it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Which perturbation fired.
    pub class: FaultClass,
    /// Cycle it fired on.
    pub cycle: u64,
    /// Thread of the perturbed instruction (or fetching thread).
    pub thread: usize,
    /// Trace index of the perturbed instruction (fetch cursor for
    /// [`FaultClass::PredictorFlush`]).
    pub trace_idx: u64,
}

/// SplitMix64-style avalanche of a fault site into a uniform u64.
fn site_hash(seed: u64, class: FaultClass, cycle: u64, thread: usize, trace_idx: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
    for word in [class.index() as u64 + 1, cycle, thread as u64, trace_idx] {
        z = z.wrapping_add(word).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// The run-time injector: decides per site whether a fault fires, and logs
/// every injection for replay. Constructed in one of two modes:
///
/// * **rate mode** ([`FaultInjector::new`]) — stateless site-hash decisions
///   against each class's configured rate, bounded by its budget;
/// * **replay mode** ([`FaultInjector::replay`]) — injects *exactly* a
///   previously recorded log, ignoring rates and budgets.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    replay: Option<HashSet<FaultRecord>>,
    log: Vec<FaultRecord>,
    injected: [u64; 4],
}

impl FaultInjector {
    /// Rate-mode injector.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg, replay: None, log: Vec::new(), injected: [0; 4] }
    }

    /// Replay-mode injector: fire exactly at the recorded sites.
    pub fn replay(cfg: FaultConfig, records: impl IntoIterator<Item = FaultRecord>) -> Self {
        FaultInjector {
            cfg,
            replay: Some(records.into_iter().collect()),
            log: Vec::new(),
            injected: [0; 4],
        }
    }

    /// The configuration in use (delays and extra latencies apply in both
    /// modes).
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decide whether a fault of `class` fires at this site, logging it if
    /// so. Call exactly once per eligible site; the decision is
    /// deterministic in `(seed, class, cycle, thread, trace_idx)`.
    pub fn roll(&mut self, class: FaultClass, cycle: u64, thread: usize, trace_idx: u64) -> bool {
        let record = FaultRecord { class, cycle, thread, trace_idx };
        let fire = match &self.replay {
            Some(set) => set.contains(&record),
            None => {
                let knobs = self.cfg.class(class);
                if knobs.rate_ppm == 0 {
                    return false;
                }
                if knobs.budget > 0 && self.injected[class.index()] >= knobs.budget {
                    return false;
                }
                let threshold =
                    ((knobs.rate_ppm.min(1_000_000) as u128 * u64::MAX as u128) / 1_000_000) as u64;
                site_hash(self.cfg.seed, class, cycle, thread, trace_idx) <= threshold
            }
        };
        if fire {
            self.injected[class.index()] += 1;
            self.log.push(record);
        }
        fire
    }

    /// Every injection so far, in firing order.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Injections of one class so far.
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.injected[class.index()]
    }

    /// Injections across all classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        let mut inj = FaultInjector::new(cfg);
        for cycle in 0..10_000 {
            assert!(!inj.roll(FaultClass::WakeupDrop, cycle, 0, cycle));
        }
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn rate_mode_is_deterministic_and_roughly_calibrated() {
        let cfg = FaultConfig::single(FaultClass::IssueDefer, 42);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        let sites = 1_000_000u64;
        for i in 0..sites {
            let fa = a.roll(FaultClass::IssueDefer, i, (i % 4) as usize, i * 3);
            let fb = b.roll(FaultClass::IssueDefer, i, (i % 4) as usize, i * 3);
            assert_eq!(fa, fb);
        }
        assert_eq!(a.log(), b.log());
        // 2000 ppm over 1M sites: expect ~2000 hits, allow wide slack.
        let hits = a.injected(FaultClass::IssueDefer);
        assert!((1_000..4_000).contains(&hits), "rate badly calibrated: {hits} hits");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultInjector::new(FaultConfig::single(FaultClass::WakeupDrop, 1));
        let mut b = FaultInjector::new(FaultConfig::single(FaultClass::WakeupDrop, 2));
        for i in 0..100_000 {
            a.roll(FaultClass::WakeupDrop, i, 0, i);
            b.roll(FaultClass::WakeupDrop, i, 0, i);
        }
        assert_ne!(a.log(), b.log());
    }

    #[test]
    fn budget_caps_injections() {
        let mut cfg = FaultConfig::single(FaultClass::CacheMissExtra, 7);
        cfg.cache_miss_extra.rate_ppm = 1_000_000; // always fire...
        cfg.cache_miss_extra.budget = 5; // ...but at most 5 times
        let mut inj = FaultInjector::new(cfg);
        for i in 0..1_000 {
            inj.roll(FaultClass::CacheMissExtra, i, 0, i);
        }
        assert_eq!(inj.injected(FaultClass::CacheMissExtra), 5);
        assert_eq!(inj.log().len(), 5);
    }

    #[test]
    fn replay_injects_exactly_the_recorded_log() {
        let cfg = FaultConfig::single(FaultClass::WakeupDrop, 99);
        let mut first = FaultInjector::new(cfg);
        for i in 0..200_000 {
            first.roll(FaultClass::WakeupDrop, i, (i % 2) as usize, i / 2);
        }
        assert!(first.total_injected() > 0, "seed 99 produced no faults");
        let recorded: Vec<FaultRecord> = first.log().to_vec();
        let mut second = FaultInjector::replay(cfg, recorded.clone());
        for i in 0..200_000 {
            second.roll(FaultClass::WakeupDrop, i, (i % 2) as usize, i / 2);
        }
        assert_eq!(second.log(), recorded.as_slice());
    }

    #[test]
    fn class_names_round_trip() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(class.name()), Some(class));
        }
        assert_eq!(FaultClass::from_name("nonsense"), None);
    }

    #[test]
    fn single_and_all_enable_the_right_classes() {
        let one = FaultConfig::single(FaultClass::PredictorFlush, 3);
        assert!(one.enabled());
        assert_eq!(one.predictor_flush.rate_ppm, 200);
        assert_eq!(one.wakeup_drop.rate_ppm, 0);
        let all = FaultConfig::all_classes(3);
        for class in FaultClass::ALL {
            assert_eq!(all.class(class).rate_ppm, class.default_rate_ppm());
        }
    }
}
