//! Instruction packing (Sharkey et al., ISLPED'05 [11]): two instructions
//! with at most one non-ready source operand each share one physical issue
//! queue entry, splitting its two tag comparators between them.
//!
//! An instruction with **two** non-ready sources needs both comparators and
//! occupies a whole physical entry; instructions with ≤1 non-ready source
//! occupy half an entry and *pack* pairwise. A queue of `N` physical
//! entries therefore holds between `N` and `2N` instructions depending on
//! the dynamic mix — achieving dynamically what the Ernst–Austin static
//! partition fixes at design time.

use crate::issue_queue::IqEntry;
use crate::regfile::PhysReg;
use crate::scheduler::SchedulerQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Flat-tag sentinel: "this comparator position holds no pending tag".
const NO_TAG: u32 = u32::MAX;
/// Age sentinel marking a vacant slot in the `ages` array.
const FREE_AGE: u64 = u64::MAX;

/// The packing issue queue. Slot tokens are *logical* half-entry indices:
/// logical slots `2k` and `2k+1` share physical entry `k`.
///
/// Like [`crate::issue_queue::IssueQueue`], the wakeup-relevant state is
/// packed structure-of-arrays style (`tag0`/`tag1`/`pend`/`ages`), so tag
/// broadcasts touch dense flat arrays instead of the boxed entry records.
#[derive(Debug)]
pub struct PackedIssueQueue {
    /// Logical half-slots (`2 × physical entries`).
    slots: Vec<Option<IqEntry>>,
    /// Flat tag pending in comparator position 0/1 of each logical slot
    /// (`NO_TAG` when clear or vacant).
    tag0: Vec<u32>,
    tag1: Vec<u32>,
    /// Pending-tag count of each logical slot's resident entry.
    pend: Vec<u8>,
    /// Age of each logical slot's resident entry (`FREE_AGE` when vacant).
    ages: Vec<u64>,
    /// Physical entry `k` is wholly occupied by a 2-non-ready instruction
    /// living in logical slot `2k`.
    wide: Vec<bool>,
    waiters: Vec<Vec<usize>>,
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    per_thread: Vec<usize>,
    occupied: usize,
    phys_int: usize,
    /// Running total of pending source tags across resident entries, so
    /// [`SchedulerQueue::pending_tags`] is O(1) instead of a full scan.
    pending_count: usize,
}

impl PackedIssueQueue {
    /// A queue of `physical_entries` two-comparator entries for `threads`
    /// contexts and `total_phys` physical registers.
    pub fn new(physical_entries: usize, threads: usize, total_phys: usize) -> Self {
        assert!(physical_entries >= 1, "queue must have at least one entry");
        PackedIssueQueue {
            slots: vec![None; physical_entries * 2],
            tag0: vec![NO_TAG; physical_entries * 2],
            tag1: vec![NO_TAG; physical_entries * 2],
            pend: vec![0; physical_entries * 2],
            ages: vec![FREE_AGE; physical_entries * 2],
            wide: vec![false; physical_entries],
            waiters: vec![Vec::new(); total_phys],
            ready: BinaryHeap::new(),
            per_thread: vec![0; threads],
            occupied: 0,
            phys_int: 256,
            pending_count: 0,
        }
    }

    /// Set the integer physical-register count used for tag indexing.
    pub fn with_phys_int(mut self, phys_int: usize) -> Self {
        self.phys_int = phys_int;
        self
    }

    /// Number of physical entries.
    pub fn physical_entries(&self) -> usize {
        self.wide.len()
    }

    /// Find a half-slot for a packable (≤1 non-ready) instruction,
    /// preferring to complete a partially used physical entry (tightest
    /// packing, least fragmentation).
    fn find_half(&self) -> Option<usize> {
        let n = self.wide.len();
        let mut empty_pair: Option<usize> = None;
        for k in 0..n {
            if self.wide[k] {
                continue;
            }
            let (a, b) = (2 * k, 2 * k + 1);
            match (self.slots[a].is_some(), self.slots[b].is_some()) {
                (true, false) => return Some(b),
                (false, true) => return Some(a),
                (false, false) => {
                    if empty_pair.is_none() {
                        empty_pair = Some(a);
                    }
                }
                (true, true) => {}
            }
        }
        empty_pair
    }

    /// Find an empty physical entry for a 2-non-ready instruction.
    fn find_wide(&self) -> Option<usize> {
        (0..self.wide.len())
            .find(|&k| {
                !self.wide[k] && self.slots[2 * k].is_none() && self.slots[2 * k + 1].is_none()
            })
            .map(|k| 2 * k)
    }

    fn clear_slot(&mut self, slot: usize) -> IqEntry {
        let entry = self.slots[slot].take().expect("clearing empty packed slot");
        let entry = self.materialize(slot, entry);
        self.per_thread[entry.thread] -= 1;
        self.occupied -= 1;
        self.pending_count -= self.pend[slot] as usize;
        self.tag0[slot] = NO_TAG;
        self.tag1[slot] = NO_TAG;
        self.pend[slot] = 0;
        self.ages[slot] = FREE_AGE;
        if self.wide[slot / 2] {
            debug_assert_eq!(slot % 2, 0, "wide occupants live in the even half");
            self.wide[slot / 2] = false;
        }
        entry
    }

    /// Re-derive an outgoing entry's `waiting` tags from the SoA state:
    /// positions whose tag has been woken since insert read as `None`.
    fn materialize(&self, slot: usize, mut entry: IqEntry) -> IqEntry {
        if self.tag0[slot] == NO_TAG {
            entry.waiting[0] = None;
        }
        if self.tag1[slot] == NO_TAG {
            entry.waiting[1] = None;
        }
        entry
    }
}

impl SchedulerQueue for PackedIssueQueue {
    fn occupancy(&self) -> usize {
        self.occupied
    }

    fn thread_occupancy(&self, thread: usize) -> usize {
        self.per_thread[thread]
    }

    fn has_free_for(&self, non_ready: u8) -> bool {
        if non_ready >= 2 {
            self.find_wide().is_some()
        } else {
            self.find_half().is_some()
        }
    }

    fn free_by_class(&self) -> [usize; 3] {
        let mut halves = 0;
        let mut whole = 0;
        for k in 0..self.wide.len() {
            if self.wide[k] {
                continue;
            }
            let free =
                self.slots[2 * k].is_none() as usize + self.slots[2 * k + 1].is_none() as usize;
            halves += free;
            if free == 2 {
                whole += 1;
            }
        }
        [halves, halves, whole]
    }

    fn pending_tags(&self) -> usize {
        debug_assert_eq!(
            self.pending_count,
            self.pend.iter().map(|&p| p as usize).sum::<usize>(),
            "running pending-tag count out of sync with the SoA state"
        );
        self.pending_count
    }

    fn insert(&mut self, entry: IqEntry) -> usize {
        let slot = if entry.pending() >= 2 {
            let s = self.find_wide().expect("no whole entry free: check has_free_for()");
            self.wide[s / 2] = true;
            s
        } else {
            self.find_half().expect("no half entry free: check has_free_for()")
        };
        debug_assert!(self.slots[slot].is_none());
        self.per_thread[entry.thread] += 1;
        self.occupied += 1;
        self.pending_count += entry.pending();
        for reg in entry.waiting.iter().flatten() {
            self.waiters[reg.flat(self.phys_int)].push(slot);
        }
        self.tag0[slot] = entry.waiting[0].map_or(NO_TAG, |r| r.flat(self.phys_int) as u32);
        self.tag1[slot] = entry.waiting[1].map_or(NO_TAG, |r| r.flat(self.phys_int) as u32);
        self.pend[slot] = entry.pending() as u8;
        self.ages[slot] = entry.age;
        if entry.pending() == 0 {
            self.ready.push(Reverse((entry.age, slot)));
        }
        self.slots[slot] = Some(entry);
        slot
    }

    /// Broadcast hot path: touches only the flat SoA arrays (vacant slots
    /// hold `NO_TAG`, so stale waiter references fall through harmlessly).
    fn wakeup(&mut self, reg: PhysReg) {
        let flat = reg.flat(self.phys_int);
        let f = flat as u32;
        let list = std::mem::take(&mut self.waiters[flat]);
        for slot in list {
            let mut hit = false;
            if self.tag0[slot] == f {
                self.tag0[slot] = NO_TAG;
                self.pend[slot] -= 1;
                self.pending_count -= 1;
                hit = true;
            }
            if self.tag1[slot] == f {
                self.tag1[slot] = NO_TAG;
                self.pend[slot] -= 1;
                self.pending_count -= 1;
                hit = true;
            }
            if hit && self.pend[slot] == 0 {
                self.ready.push(Reverse((self.ages[slot], slot)));
            }
        }
    }

    fn tick(&mut self) {}

    fn pop_ready(&mut self) -> Option<(usize, IqEntry)> {
        while let Some(Reverse((age, slot))) = self.ready.pop() {
            // Age match ⇒ the incarnation that became ready is still
            // resident (vacant slots read `FREE_AGE`).
            if self.ages[slot] == age && self.pend[slot] == 0 {
                let entry = self.materialize(slot, self.slots[slot].expect("age-matched slot"));
                return Some((slot, entry));
            }
        }
        None
    }

    fn defer(&mut self, slot: usize) {
        if self.ages[slot] != FREE_AGE {
            self.ready.push(Reverse((self.ages[slot], slot)));
        }
    }

    fn remove(&mut self, slot: usize) -> IqEntry {
        self.clear_slot(slot)
    }

    fn squash_thread(&mut self, thread: usize) {
        for slot in 0..self.slots.len() {
            if self.slots[slot].as_ref().map(|e| e.thread == thread).unwrap_or(false) {
                self.clear_slot(slot);
            }
        }
    }

    fn squash_thread_from(&mut self, thread: usize, keep_idx: u64) {
        for slot in 0..self.slots.len() {
            let hit = self.slots[slot]
                .as_ref()
                .map(|e| e.thread == thread && e.trace_idx > keep_idx)
                .unwrap_or(false);
            if hit {
                self.clear_slot(slot);
            }
        }
    }

    fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{FuKind, RegClass};

    fn preg(i: u16) -> PhysReg {
        PhysReg { class: RegClass::Int, index: i }
    }

    fn entry(thread: usize, idx: u64, age: u64, waiting: [Option<PhysReg>; 2]) -> IqEntry {
        IqEntry { thread, trace_idx: idx, age, fu: FuKind::IntAlu, waiting }
    }

    #[test]
    fn two_packable_instructions_share_one_entry() {
        let mut q = PackedIssueQueue::new(1, 1, 512);
        assert!(q.has_free_for(1));
        q.insert(entry(0, 0, 1, [Some(preg(5)), None]));
        assert!(q.has_free_for(1), "the second half of the entry is still free");
        q.insert(entry(0, 1, 2, [Some(preg(6)), None]));
        assert_eq!(q.occupancy(), 2, "one physical entry holds two instructions");
        assert!(!q.has_free_for(0));
    }

    #[test]
    fn wide_instruction_takes_whole_entry() {
        let mut q = PackedIssueQueue::new(1, 1, 512);
        assert!(q.has_free_for(2));
        q.insert(entry(0, 0, 1, [Some(preg(5)), Some(preg(6))]));
        assert_eq!(q.occupancy(), 1);
        assert!(!q.has_free_for(1), "a wide occupant blocks both halves");
        assert!(!q.has_free_for(2));
    }

    #[test]
    fn half_used_entry_blocks_wide_insert() {
        let mut q = PackedIssueQueue::new(1, 1, 512);
        q.insert(entry(0, 0, 1, [None, None]));
        assert!(q.has_free_for(1));
        assert!(!q.has_free_for(2), "no fully empty physical entry remains");
    }

    #[test]
    fn packing_prefers_completing_a_pair() {
        let mut q = PackedIssueQueue::new(2, 1, 512);
        let s0 = q.insert(entry(0, 0, 1, [Some(preg(5)), None]));
        let s1 = q.insert(entry(0, 1, 2, [Some(preg(6)), None]));
        assert_eq!(s0 / 2, s1 / 2, "the second packable instruction joins the first's entry");
        assert!(q.has_free_for(2), "the other physical entry stays whole");
    }

    #[test]
    fn wakeup_and_select_work_through_packing() {
        let mut q = PackedIssueQueue::new(1, 1, 512);
        q.insert(entry(0, 0, 5, [Some(preg(5)), None]));
        q.insert(entry(0, 1, 6, [Some(preg(5)), None]));
        assert!(q.pop_ready().is_none());
        q.wakeup(preg(5));
        let (s1, e1) = q.pop_ready().unwrap();
        assert_eq!(e1.age, 5, "oldest first");
        q.remove(s1);
        let (s2, e2) = q.pop_ready().unwrap();
        assert_eq!(e2.age, 6);
        q.remove(s2);
        assert_eq!(q.occupancy(), 0);
        assert!(q.has_free_for(2), "whole entry reclaimed after both leave");
    }

    #[test]
    fn removing_wide_occupant_frees_both_halves() {
        let mut q = PackedIssueQueue::new(1, 1, 512);
        let s = q.insert(entry(0, 0, 1, [Some(preg(5)), Some(preg(6))]));
        q.wakeup(preg(5));
        q.wakeup(preg(6));
        let (slot, _) = q.pop_ready().unwrap();
        assert_eq!(slot, s);
        q.remove(slot);
        assert!(q.has_free_for(2));
        q.insert(entry(0, 1, 2, [None, None]));
        q.insert(entry(0, 2, 3, [None, None]));
        assert_eq!(q.occupancy(), 2);
    }

    #[test]
    fn capacity_doubles_for_packable_mix() {
        let mut q = PackedIssueQueue::new(4, 1, 512);
        for i in 0..8 {
            assert!(q.has_free_for(1), "insert {i}");
            q.insert(entry(0, i, i, [Some(preg(100 + i as u16)), None]));
        }
        assert!(!q.has_free_for(1), "8 packable instructions fill 4 physical entries");
        assert_eq!(q.occupancy(), 8);
    }

    #[test]
    fn squash_thread_reclaims_everything() {
        let mut q = PackedIssueQueue::new(2, 2, 512);
        q.insert(entry(0, 0, 1, [Some(preg(5)), Some(preg(6))]));
        q.insert(entry(1, 0, 2, [Some(preg(7)), None]));
        q.squash_thread(0);
        assert_eq!(q.occupancy(), 1);
        assert!(q.has_free_for(2), "the wide occupant's entry is whole again");
        assert_eq!(q.thread_occupancy(0), 0);
        assert_eq!(q.thread_occupancy(1), 1);
    }

    #[test]
    fn free_by_class_tracks_halves_and_whole_entries() {
        let mut q = PackedIssueQueue::new(2, 1, 512);
        assert_eq!(q.free_by_class(), [4, 4, 2]);
        q.insert(entry(0, 0, 1, [Some(preg(5)), None]));
        assert_eq!(q.free_by_class(), [3, 3, 1], "a half-used entry is no longer whole");
        q.insert(entry(0, 1, 2, [Some(preg(6)), Some(preg(7))]));
        assert_eq!(q.free_by_class(), [1, 1, 0], "the wide occupant blocks both halves");
        assert_eq!(q.pending_tags(), 3);
    }

    #[test]
    fn partial_squash_respects_keep_index() {
        let mut q = PackedIssueQueue::new(2, 1, 512);
        q.insert(entry(0, 3, 1, [Some(preg(5)), None]));
        q.insert(entry(0, 7, 2, [Some(preg(6)), None]));
        q.squash_thread_from(0, 3);
        assert_eq!(q.occupancy(), 1);
        q.wakeup(preg(5));
        let (_, e) = q.pop_ready().unwrap();
        assert_eq!(e.trace_idx, 3);
    }
}
