//! Dispatch-policy planning: the paper's contribution lives here.
//!
//! Every cycle, each thread's post-rename dispatch buffer is examined and a
//! [`ThreadPlan`] is produced: the ordered list of instructions the policy
//! would move into the issue queue this cycle, plus the blocking/statistics
//! classification the paper reports (NDI stalls, HDI pile-ups, NDI-dependence
//! of bypassed instructions).
//!
//! Terminology (paper §4):
//! * **DI** — *dispatchable instruction*: an IQ entry with enough tag
//!   comparators exists for it (≤ 1 non-ready source under 2OP_BLOCK).
//! * **NDI** — *non-dispatchable instruction*: more non-ready sources than
//!   any IQ entry supports (2 non-ready sources under 2OP_BLOCK).
//! * **HDI** — *hidden dispatchable instruction*: a DI queued behind an NDI
//!   that in-order dispatch would hide from the scheduler.

use crate::config::DispatchPolicy;
use crate::regfile::PhysReg;

/// Dispatch-relevant view of one buffered (renamed, undispatched)
/// instruction.
#[derive(Debug, Clone, Copy)]
pub struct BufView {
    /// Trace index (identifies the instruction within its thread).
    pub trace_idx: u64,
    /// Number of non-ready register sources right now (0–2).
    pub non_ready: u8,
    /// The non-ready source tags (`Some` entries only for non-ready
    /// sources), used for NDI-dependence tracking.
    pub nonready_srcs: [Option<PhysReg>; 2],
    /// Renamed destination, if any.
    pub dest: Option<PhysReg>,
    /// Is this instruction the oldest uncommitted instruction of its thread
    /// (ROB head)? Only possible for the buffer head.
    pub is_rob_oldest: bool,
}

/// One instruction the policy wants to dispatch this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Which instruction.
    pub trace_idx: u64,
    /// Non-ready source count at planning time (selects the IQ entry
    /// class the instruction needs).
    pub non_ready: u8,
    /// Did it depend (directly or transitively, within the buffer) on an
    /// NDI it would bypass? (Paper: ~10% of HDIs.)
    pub ndi_dependent: bool,
    /// May fall back to the deadlock-avoidance buffer if the IQ is full
    /// (ROB-oldest with all sources ready).
    pub dab_eligible: bool,
}

/// A thread's dispatch decision for one cycle.
#[derive(Debug, Clone, Default)]
pub struct ThreadPlan {
    /// Instructions to dispatch, in program order, capped at machine width.
    pub candidates: Vec<Candidate>,
    /// True when the thread has buffered instructions but the policy can
    /// dispatch none of them because of the non-dispatchable condition —
    /// the stall the paper's §3 statistics count.
    pub ndi_blocked: bool,
    /// When the buffer head is an NDI: `(instructions piled up behind it,
    /// how many of those are HDIs)` — the paper's ~90% statistic.
    pub pileup: Option<(u32, u32)>,
}

/// Number of non-ready sources above which an instruction is an NDI for a
/// queue with `comparators` tag comparators per entry.
#[inline]
pub fn is_ndi(non_ready: u8, comparators: u8) -> bool {
    non_ready > comparators
}

/// Compute the dispatch plan for one thread under `policy`, examining at
/// most the first `max` dispatchable instructions.
///
/// ```
/// use smt_core::{plan_thread, BufView, DispatchPolicy, PhysReg};
/// use smt_isa::RegClass;
///
/// let preg = |i| PhysReg { class: RegClass::Int, index: i };
/// // An NDI (2 non-ready sources) followed by a ready instruction.
/// let ndi = BufView {
///     trace_idx: 0,
///     non_ready: 2,
///     nonready_srcs: [Some(preg(1)), Some(preg(2))],
///     dest: Some(preg(3)),
///     is_rob_oldest: false,
/// };
/// let hdi = BufView {
///     trace_idx: 1,
///     non_ready: 0,
///     nonready_srcs: [None, None],
///     dest: Some(preg(4)),
///     is_rob_oldest: false,
/// };
///
/// // 2OP_BLOCK blocks at the NDI …
/// let blocked = plan_thread(&[ndi, hdi], DispatchPolicy::TwoOpBlock, 8);
/// assert!(blocked.candidates.is_empty());
/// assert!(blocked.ndi_blocked);
///
/// // … while out-of-order dispatch sends the HDI around it.
/// let ooo = plan_thread(&[ndi, hdi], DispatchPolicy::TwoOpBlockOoo, 8);
/// assert_eq!(ooo.candidates.len(), 1);
/// assert_eq!(ooo.candidates[0].trace_idx, 1);
/// ```
pub fn plan_thread(entries: &[BufView], policy: DispatchPolicy, max: usize) -> ThreadPlan {
    let mut candidates = Vec::new();
    let mut taint = Vec::new();
    let (ndi_blocked, pileup) = plan_thread_into(entries, policy, max, &mut candidates, &mut taint);
    ThreadPlan { candidates, ndi_blocked, pileup }
}

/// Allocation-free form of [`plan_thread`] for the per-cycle hot path:
/// candidates are appended to `candidates` (cleared first) and `taint` is
/// caller-owned scratch, so a simulator can reuse both buffers every cycle.
/// Returns `(ndi_blocked, pileup)`.
///
/// The taint set is a plain vector with linear membership scans: dispatch
/// buffers hold at most a few dozen entries, where a scan over a handful of
/// tags beats hashing.
pub fn plan_thread_into(
    entries: &[BufView],
    policy: DispatchPolicy,
    max: usize,
    candidates: &mut Vec<Candidate>,
    taint: &mut Vec<PhysReg>,
) -> (bool, Option<(u32, u32)>) {
    candidates.clear();
    taint.clear();
    if entries.is_empty() || max == 0 {
        return (false, None);
    }
    let comparators = policy.iq_comparators();

    // Pile-up statistic: sampled whenever the buffer head is an NDI.
    let mut pileup = None;
    if is_ndi(entries[0].non_ready, comparators) {
        let behind = &entries[1..];
        let hdis = behind.iter().filter(|e| !is_ndi(e.non_ready, comparators)).count();
        pileup = Some((behind.len() as u32, hdis as u32));
    }

    let mut ndi_blocked = false;
    match policy {
        DispatchPolicy::Traditional
        | DispatchPolicy::TagEliminated
        | DispatchPolicy::HalfPrice
        | DispatchPolicy::Packed => {
            // Every instruction is admissible comparator-wise (the
            // tag-eliminated queue's per-class availability is enforced at
            // dispatch time); dispatch strictly in order.
            for e in entries.iter().take(max) {
                candidates.push(Candidate {
                    trace_idx: e.trace_idx,
                    non_ready: e.non_ready,
                    ndi_dependent: false,
                    dab_eligible: false,
                });
            }
        }
        DispatchPolicy::TwoOpBlock => {
            // In-order dispatch; stop at the first NDI.
            for e in entries.iter().take(max) {
                if is_ndi(e.non_ready, comparators) {
                    break;
                }
                candidates.push(Candidate {
                    trace_idx: e.trace_idx,
                    non_ready: e.non_ready,
                    ndi_dependent: false,
                    dab_eligible: false,
                });
            }
            ndi_blocked = candidates.is_empty();
        }
        DispatchPolicy::TwoOpBlockOoo | DispatchPolicy::TwoOpBlockOooFiltered => {
            let filtered = policy == DispatchPolicy::TwoOpBlockOooFiltered;
            // Taint set: destinations of bypassed NDIs and (transitively)
            // of instructions depending on them. A tainted register is by
            // construction non-ready, so checking non-ready sources is
            // exact.
            for (pos, e) in entries.iter().enumerate() {
                if candidates.len() >= max {
                    break;
                }
                let ndi = is_ndi(e.non_ready, comparators);
                // A non-empty taint set implies an NDI has already been
                // bypassed, so `dependent` alone is the NDI-dependence
                // classification.
                let dependent = !taint.is_empty()
                    && e.nonready_srcs.iter().flatten().any(|s| taint.contains(s));
                if ndi {
                    if let Some(d) = e.dest {
                        taint.push(d);
                    }
                    continue;
                }
                if dependent {
                    if let Some(d) = e.dest {
                        taint.push(d);
                    }
                    if filtered {
                        // Idealized filter: refuse to dispatch NDI-dependent
                        // HDIs; they block like NDIs.
                        continue;
                    }
                }
                candidates.push(Candidate {
                    trace_idx: e.trace_idx,
                    non_ready: e.non_ready,
                    ndi_dependent: dependent,
                    dab_eligible: pos == 0 && e.is_rob_oldest && e.non_ready == 0,
                });
            }
            ndi_blocked = candidates.is_empty();
        }
    }
    (ndi_blocked, pileup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::RegClass;

    fn preg(i: u16) -> PhysReg {
        PhysReg { class: RegClass::Int, index: i }
    }

    fn view(idx: u64, non_ready: u8) -> BufView {
        let srcs = match non_ready {
            0 => [None, None],
            1 => [Some(preg(100 + idx as u16)), None],
            _ => [Some(preg(100 + idx as u16)), Some(preg(200 + idx as u16))],
        };
        BufView {
            trace_idx: idx,
            non_ready,
            nonready_srcs: srcs,
            dest: Some(preg(idx as u16)),
            is_rob_oldest: false,
        }
    }

    fn idxs(plan: &ThreadPlan) -> Vec<u64> {
        plan.candidates.iter().map(|c| c.trace_idx).collect()
    }

    #[test]
    fn traditional_dispatches_everything_in_order() {
        let entries = [view(0, 2), view(1, 1), view(2, 0)];
        let plan = plan_thread(&entries, DispatchPolicy::Traditional, 8);
        assert_eq!(idxs(&plan), vec![0, 1, 2]);
        assert!(!plan.ndi_blocked);
    }

    #[test]
    fn traditional_respects_width() {
        let entries: Vec<BufView> = (0..10).map(|i| view(i, 0)).collect();
        let plan = plan_thread(&entries, DispatchPolicy::Traditional, 4);
        assert_eq!(idxs(&plan), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_op_block_stops_at_ndi() {
        let entries = [view(0, 1), view(1, 0), view(2, 2), view(3, 0)];
        let plan = plan_thread(&entries, DispatchPolicy::TwoOpBlock, 8);
        assert_eq!(idxs(&plan), vec![0, 1], "dispatch must stop at the NDI");
        assert!(!plan.ndi_blocked, "progress was made");
    }

    #[test]
    fn two_op_block_head_ndi_blocks_thread() {
        let entries = [view(0, 2), view(1, 0), view(2, 0)];
        let plan = plan_thread(&entries, DispatchPolicy::TwoOpBlock, 8);
        assert!(idxs(&plan).is_empty());
        assert!(plan.ndi_blocked);
        assert_eq!(plan.pileup, Some((2, 2)), "both piled-up instructions are HDIs");
    }

    #[test]
    fn pileup_counts_only_dis_as_hdis() {
        let entries = [view(0, 2), view(1, 0), view(2, 2), view(3, 1)];
        let plan = plan_thread(&entries, DispatchPolicy::TwoOpBlock, 8);
        assert_eq!(plan.pileup, Some((3, 2)), "the second NDI is not an HDI");
    }

    #[test]
    fn ooo_bypasses_ndi() {
        // Figure 2 of the paper: I2 is an NDI; I3 (independent) and I4
        // (dependent on I2) both dispatch before it under OOO dispatch.
        let i2 = BufView {
            trace_idx: 2,
            non_ready: 2,
            nonready_srcs: [Some(preg(10)), Some(preg(11))],
            dest: Some(preg(12)),
            is_rob_oldest: false,
        };
        let i3 = BufView {
            trace_idx: 3,
            non_ready: 0,
            nonready_srcs: [None, None],
            dest: Some(preg(13)),
            is_rob_oldest: false,
        };
        let i4 = BufView {
            trace_idx: 4,
            non_ready: 1,
            nonready_srcs: [Some(preg(12)), None], // reads I2's dest
            dest: Some(preg(14)),
            is_rob_oldest: false,
        };
        let plan = plan_thread(&[i2, i3, i4], DispatchPolicy::TwoOpBlockOoo, 8);
        assert_eq!(idxs(&plan), vec![3, 4], "both HDIs dispatch ahead of the NDI");
        assert!(!plan.candidates[0].ndi_dependent, "I3 is independent of I2");
        assert!(plan.candidates[1].ndi_dependent, "I4 depends on the bypassed NDI");
    }

    #[test]
    fn filtered_policy_skips_ndi_dependents() {
        let ndi = BufView {
            trace_idx: 0,
            non_ready: 2,
            nonready_srcs: [Some(preg(1)), Some(preg(2))],
            dest: Some(preg(3)),
            is_rob_oldest: false,
        };
        let dependent = BufView {
            trace_idx: 1,
            non_ready: 1,
            nonready_srcs: [Some(preg(3)), None],
            dest: Some(preg(4)),
            is_rob_oldest: false,
        };
        let clean = BufView {
            trace_idx: 2,
            non_ready: 0,
            nonready_srcs: [None, None],
            dest: Some(preg(5)),
            is_rob_oldest: false,
        };
        let plan = plan_thread(&[ndi, dependent, clean], DispatchPolicy::TwoOpBlockOooFiltered, 8);
        assert_eq!(idxs(&plan), vec![2], "only the NDI-independent HDI passes the filter");
    }

    #[test]
    fn taint_propagates_transitively() {
        let ndi = BufView {
            trace_idx: 0,
            non_ready: 2,
            nonready_srcs: [Some(preg(1)), Some(preg(2))],
            dest: Some(preg(3)),
            is_rob_oldest: false,
        };
        let dep1 = BufView {
            trace_idx: 1,
            non_ready: 1,
            nonready_srcs: [Some(preg(3)), None],
            dest: Some(preg(4)),
            is_rob_oldest: false,
        };
        let dep2 = BufView {
            trace_idx: 2,
            non_ready: 1,
            nonready_srcs: [Some(preg(4)), None], // depends on dep1
            dest: Some(preg(5)),
            is_rob_oldest: false,
        };
        let plan = plan_thread(&[ndi, dep1, dep2], DispatchPolicy::TwoOpBlockOoo, 8);
        assert_eq!(idxs(&plan), vec![1, 2]);
        assert!(plan.candidates[0].ndi_dependent);
        assert!(plan.candidates[1].ndi_dependent, "indirect dependence must be detected");
    }

    #[test]
    fn destinationless_ndi_taints_nothing() {
        // A store with two non-ready sources is an NDI but produces no
        // register; bypassing it must not mark later instructions as
        // NDI-dependent (there is nothing to depend on).
        let store_ndi = BufView {
            trace_idx: 0,
            non_ready: 2,
            nonready_srcs: [Some(preg(1)), Some(preg(2))],
            dest: None,
            is_rob_oldest: false,
        };
        let reader = BufView {
            trace_idx: 1,
            non_ready: 1,
            nonready_srcs: [Some(preg(1)), None], // shares a source, not a dest
            dest: Some(preg(4)),
            is_rob_oldest: false,
        };
        let plan = plan_thread(&[store_ndi, reader], DispatchPolicy::TwoOpBlockOoo, 8);
        assert_eq!(idxs(&plan), vec![1]);
        assert!(!plan.candidates[0].ndi_dependent);
        // The filtered policy must not filter it either.
        let plan = plan_thread(&[store_ndi, reader], DispatchPolicy::TwoOpBlockOooFiltered, 8);
        assert_eq!(idxs(&plan), vec![1]);
    }

    #[test]
    fn ooo_all_ndis_blocks_thread() {
        let entries = [view(0, 2), view(1, 2)];
        let plan = plan_thread(&entries, DispatchPolicy::TwoOpBlockOoo, 8);
        assert!(plan.candidates.is_empty());
        assert!(plan.ndi_blocked);
    }

    #[test]
    fn ooo_in_order_when_no_ndi() {
        let entries = [view(0, 0), view(1, 1), view(2, 0)];
        let plan = plan_thread(&entries, DispatchPolicy::TwoOpBlockOoo, 8);
        assert_eq!(idxs(&plan), vec![0, 1, 2]);
        assert!(plan.candidates.iter().all(|c| !c.ndi_dependent));
    }

    #[test]
    fn dab_eligibility_requires_rob_oldest_head() {
        let mut head = view(0, 0);
        head.is_rob_oldest = true;
        let entries = [head, view(1, 0)];
        let plan = plan_thread(&entries, DispatchPolicy::TwoOpBlockOoo, 8);
        assert!(plan.candidates[0].dab_eligible);
        assert!(!plan.candidates[1].dab_eligible);
        // Traditional policy never uses the DAB.
        let plan = plan_thread(&entries, DispatchPolicy::Traditional, 8);
        assert!(!plan.candidates[0].dab_eligible);
    }

    #[test]
    fn empty_buffer_yields_empty_plan() {
        let plan = plan_thread(&[], DispatchPolicy::TwoOpBlockOoo, 8);
        assert!(plan.candidates.is_empty());
        assert!(!plan.ndi_blocked, "an empty buffer is not an NDI stall");
        assert!(plan.pileup.is_none());
    }

    #[test]
    fn is_ndi_thresholds() {
        assert!(!is_ndi(0, 1));
        assert!(!is_ndi(1, 1));
        assert!(is_ndi(2, 1));
        assert!(!is_ndi(2, 2));
    }

    #[test]
    fn width_cap_applies_to_ooo() {
        let entries: Vec<BufView> = (0..10).map(|i| view(i, if i == 0 { 2 } else { 0 })).collect();
        let plan = plan_thread(&entries, DispatchPolicy::TwoOpBlockOoo, 3);
        assert_eq!(idxs(&plan), vec![1, 2, 3]);
    }
}
