//! The scheduler-queue abstraction.
//!
//! The paper and its §6 related work explore several *organizations* of the
//! dynamic scheduling window: the uniform 2-comparator queue, the 2OP_BLOCK
//! 1-comparator queue, the statically partitioned tag-eliminated queue of
//! Ernst & Austin [5], the fast/slow-tag-bus "Half-Price" queue of Kim &
//! Lipasti [7], and the instruction-packing queue of Sharkey et al. [11].
//! All share the same wakeup/select contract, expressed by
//! [`SchedulerQueue`]; the pipeline is generic over it.

use crate::issue_queue::IqEntry;
use crate::regfile::PhysReg;

/// Contract between the dispatch/issue stages and a scheduling-window
/// implementation.
pub trait SchedulerQueue: std::fmt::Debug {
    /// Instructions currently resident.
    fn occupancy(&self) -> usize;

    /// Instructions of `thread` currently resident (for the I-Count fetch
    /// policy).
    fn thread_occupancy(&self, thread: usize) -> usize;

    /// Can an instruction with `non_ready` non-ready sources be admitted
    /// right now?
    fn has_free_for(&self, non_ready: u8) -> bool;

    /// Free entries admitting an instruction with 0, 1 and 2 non-ready
    /// sources respectively. `free_by_class()[n] > 0` iff
    /// [`SchedulerQueue::has_free_for`]`(n)`. Diagnostic: reported in
    /// [`crate::progress::DeadlockReport`].
    fn free_by_class(&self) -> [usize; 3];

    /// Source tags still awaited across all resident entries — wakeup
    /// broadcasts the window is waiting for. Diagnostic.
    fn pending_tags(&self) -> usize;

    /// Admit an instruction whose non-ready source tags are the `Some`
    /// values of `entry.waiting`. Returns an opaque slot token. Panics if
    /// [`SchedulerQueue::has_free_for`] would have returned false — that is
    /// a dispatch-stage bug.
    fn insert(&mut self, entry: IqEntry) -> usize;

    /// Deliver a wakeup broadcast: `reg`'s value is now available.
    fn wakeup(&mut self, reg: PhysReg);

    /// Per-cycle maintenance hook, called once at the start of each cycle
    /// (before select). Used by the Half-Price queue to deliver slow-bus
    /// broadcasts one cycle late.
    fn tick(&mut self);

    /// Pop the oldest entry whose operands are all ready. The caller may
    /// decline to issue it and must then call [`SchedulerQueue::defer`].
    fn pop_ready(&mut self) -> Option<(usize, IqEntry)>;

    /// Return a popped-but-not-issued entry to the ready pool.
    fn defer(&mut self, slot: usize);

    /// Remove an entry at issue.
    fn remove(&mut self, slot: usize) -> IqEntry;

    /// Squash every entry of `thread`.
    fn squash_thread(&mut self, thread: usize);

    /// Squash `thread`'s entries younger than `keep_idx`.
    fn squash_thread_from(&mut self, thread: usize, keep_idx: u64);

    /// Might [`SchedulerQueue::pop_ready`] return an entry right now? May
    /// conservatively answer `true` for stale ready-heap candidates; must
    /// never answer `false` when an entry would pop. Used by the idle-cycle
    /// fast-forward to prove the issue stage has nothing to do.
    fn has_ready(&self) -> bool;

    /// Are any wakeups staged for delivery at the next
    /// [`SchedulerQueue::tick`] (Half-Price slow-bus broadcasts)? Such
    /// state makes the next cycle non-idle even though every counter looks
    /// quiescent.
    fn has_staged(&self) -> bool {
        false
    }
}
