//! Forward-progress diagnosis: when the machine stops committing, snapshot
//! the wedge instead of silently burning cycles to a bare cycle limit.
//!
//! A cycle-level SMT model with shared queues, a deadlock-avoidance buffer
//! and several squash paths has many ways to wedge, and a run that ends in
//! "hit the cycle limit" carries no information about *which* resource each
//! thread was pinned on. [`DeadlockReport`] is the machine's answer: built
//! by `Simulator::diagnose` when the progress watchdog fires (no thread has
//! committed for [`crate::SimConfig::progress_check_cycles`] cycles) or the
//! safety cycle limit is reached, it records the issue-queue free lists, the
//! DAB contents, and for every thread the ROB-head state, the
//! dispatch-buffer head classification, the LSQ head and a single
//! [`StallReason`] naming the blocked resource.

use crate::rob::InstState;
use serde::{Deserialize, Serialize};
use smt_mem::MemSnapshot;

/// The immediate reason a thread is not making progress, ordered by the
/// pipeline position of its oldest in-flight instruction: the ROB head's
/// state decides which stage to blame, and within the dispatch/rename
/// stages the blocked structural resource is named.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallReason {
    /// Nothing left to run: trace exhausted and pipeline empty.
    Drained,
    /// ROB head completed; commit is imminent (transient, not a wedge).
    CommitPending,
    /// ROB head is executing a load that missed to main memory.
    WaitingMemory,
    /// ROB head is a ready load whose miss cannot allocate an MSHR (the
    /// L1D or L2 file is full); it retries every cycle until a fill frees
    /// an entry.
    MshrFull,
    /// ROB head is a completed store whose commit is blocked by a full
    /// write buffer; it retries every cycle until a drain frees a slot.
    WriteBufferFull,
    /// ROB head is executing (or sitting in the DAB awaiting a function
    /// unit); completion is scheduled.
    WaitingExecution,
    /// ROB head is in the IQ with at least one source operand not ready.
    WaitingOperands,
    /// ROB head is a ready load blocked behind an unissued older store
    /// (memory disambiguation).
    LoadBlocked,
    /// ROB head is undispatched and classified non-dispatchable (more
    /// non-ready sources than the IQ's comparators support).
    Ndi,
    /// ROB head is dispatchable but no IQ entry with enough comparators is
    /// free.
    IqFull,
    /// ROB head is DAB-eligible but both the IQ and the DAB are full.
    DabFull,
    /// Rename is blocked because the thread's ROB is full.
    RobFull,
    /// Rename is blocked because the thread's LSQ is full.
    LsqFull,
    /// Rename is blocked because no physical register of the destination's
    /// class is free.
    NoFreeRegs,
    /// No in-flight work and nothing renamable: the front end is starved
    /// (I-cache miss, gated fetch, redirect penalty).
    FetchStalled,
    /// No in-flight work because the MLP-GATE fetch policy is holding the
    /// thread until its outstanding long-latency miss fills (a timed gate
    /// with a registered calendar wake source, not a wedge).
    MlpGated,
    /// No structural block was identified; the thread should be advancing.
    Progressing,
}

/// One source operand of the ROB head, with its readiness at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrcState {
    /// Rendered physical register, e.g. `Int42`.
    pub reg: String,
    /// Was the register's value available when the report was taken?
    pub ready: bool,
}

/// Snapshot of a thread's oldest uncommitted instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobHeadView {
    /// Trace index within the thread.
    pub trace_idx: u64,
    /// Rendered operation class, e.g. `Load`.
    pub op: String,
    /// Pipeline state of the head.
    pub state: InstState,
    /// Renamed sources with readiness (`None` = no register source).
    pub srcs: [Option<SrcState>; 2],
    /// Is the head a load outstanding to main memory?
    pub long_miss: bool,
}

/// Snapshot of a thread's oldest renamed-but-undispatched instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchHeadView {
    /// Trace index within the thread.
    pub trace_idx: u64,
    /// Non-ready source count at snapshot time.
    pub non_ready: u8,
    /// Does the dispatch policy classify it as non-dispatchable?
    pub is_ndi: bool,
    /// Could it fall back to the deadlock-avoidance buffer?
    pub dab_eligible: bool,
}

/// Snapshot of a thread's oldest load/store-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LsqHeadView {
    /// Trace index within the thread.
    pub trace_idx: u64,
    /// Store (vs. load)?
    pub is_store: bool,
    /// Has it issued (address generated, data live)?
    pub issued: bool,
}

/// Per-thread progress diagnosis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadDiagnosis {
    /// Core the thread context lives on (0 for the single-core simulator).
    #[serde(default)]
    pub core: usize,
    /// Hardware thread context index (within its core).
    pub thread: usize,
    /// Instructions committed in the current measurement window.
    pub committed: u64,
    /// The resource or condition the thread is pinned on.
    pub blocked_on: StallReason,
    /// ROB occupancy.
    pub rob_len: usize,
    /// ROB capacity.
    pub rob_cap: usize,
    /// The oldest uncommitted instruction, if any.
    pub rob_head: Option<RobHeadView>,
    /// Dispatch-buffer occupancy (renamed, undispatched).
    pub dispatch_buf_len: usize,
    /// The oldest undispatched instruction, if any.
    pub dispatch_head: Option<DispatchHeadView>,
    /// Is the thread's dispatch blocked by the non-dispatchable condition
    /// this cycle (regardless of whether that is the primary stall)?
    pub ndi_blocked: bool,
    /// LSQ occupancy.
    pub lsq_len: usize,
    /// The oldest LSQ entry, if any.
    pub lsq_head: Option<LsqHeadView>,
    /// Front-end (fetched, unrenamed) occupancy.
    pub frontend_len: usize,
    /// Next trace index to fetch.
    pub fetch_cursor: u64,
    /// Unresolved mispredicted branch gating fetch, if any.
    pub fetch_gated_by: Option<u64>,
    /// Trace exhausted at the fetch cursor?
    pub finished_fetch: bool,
    /// Loads outstanding to main memory.
    pub outstanding_mem_misses: u32,
    /// What rename is blocked on right now, when it is the binding stage.
    pub rename_blocked: Option<StallReason>,
}

/// Snapshot of the shared issue queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IqSnapshot {
    /// Occupied entries.
    pub occupancy: usize,
    /// Total (logical) capacity.
    pub capacity: usize,
    /// Free entries usable by an instruction with 0/1/2 non-ready sources.
    pub free_by_class: [usize; 3],
    /// Occupied entries per thread.
    pub per_thread: Vec<usize>,
    /// Source tags still awaited across all resident entries (outstanding
    /// wakeup waiters).
    pub pending_tags: usize,
}

/// One deadlock-avoidance-buffer occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DabSnapshot {
    /// Owning thread.
    pub thread: usize,
    /// Trace index within the thread.
    pub trace_idx: u64,
    /// Global rename stamp.
    pub age: u64,
}

/// Everything `Simulator::diagnose` can say about a machine that stopped
/// committing: the whole-machine queues plus a per-thread diagnosis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockReport {
    /// Number of cores in the machine the report describes (1 for the
    /// single-core simulator). When > 1, thread lines are rendered as
    /// `c{core}.t{thread}` so a multi-core wedge names the core too.
    #[serde(default = "one")]
    pub cores: usize,
    /// Cycle the report was taken.
    pub cycle: u64,
    /// Cycles since the last commit by any thread.
    pub cycles_since_commit: u64,
    /// Instructions committed in the current measurement window.
    pub committed_total: u64,
    /// Shared issue-queue snapshot.
    pub iq: IqSnapshot,
    /// Deadlock-avoidance-buffer contents.
    pub dab: Vec<DabSnapshot>,
    /// Deadlock-avoidance-buffer capacity (0 = no DAB configured).
    pub dab_size: usize,
    /// Events (wakeups/completions) still scheduled.
    pub pending_events: usize,
    /// Per-thread diagnoses.
    pub threads: Vec<ThreadDiagnosis>,
    /// Occupancy of the non-blocking memory machinery (MSHRs, bus, write
    /// buffer), when the hierarchy runs the non-blocking model.
    #[serde(default)]
    pub mem: Option<MemSnapshot>,
}

fn one() -> usize {
    1
}

impl DeadlockReport {
    /// One-line-per-thread human rendering, for panic messages and logs.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "no commit for {} cycles at cycle {} (committed {}); iq {}/{} free{:?} tags={} \
             dab {}/{} events={}",
            self.cycles_since_commit,
            self.cycle,
            self.committed_total,
            self.iq.occupancy,
            self.iq.capacity,
            self.iq.free_by_class,
            self.iq.pending_tags,
            self.dab.len(),
            self.dab_size,
            self.pending_events,
        );
        if let Some(m) = &self.mem {
            let _ = writeln!(
                s,
                "mem: mshrs l1i {}/{} l1d {}/{} l2 {}/{} bus next_free={} interval={} wb {}/{}",
                m.l1i_mshrs_in_flight,
                m.l1i_mshr_capacity,
                m.l1d_mshrs_in_flight,
                m.l1d_mshr_capacity,
                m.l2_mshrs_in_flight,
                m.l2_mshr_capacity,
                m.bus_next_free,
                m.bus_cycles_per_transfer,
                m.wb_occupancy,
                m.wb_capacity,
            );
        }
        for t in &self.threads {
            let head = t
                .rob_head
                .as_ref()
                .map(|h| {
                    let srcs: Vec<String> = h
                        .srcs
                        .iter()
                        .map(|s| match s {
                            None => "-".to_string(),
                            Some(s) => {
                                format!("{}({})", s.reg, if s.ready { "ready" } else { "PENDING" })
                            }
                        })
                        .collect();
                    format!("{}@{} {:?} srcs=[{}]", h.op, h.trace_idx, h.state, srcs.join(", "))
                })
                .unwrap_or_else(|| "-".into());
            let label = if self.cores > 1 {
                format!("c{}.t{}", t.core, t.thread)
            } else {
                format!("t{}", t.thread)
            };
            let _ = writeln!(
                s,
                "{}: blocked_on={:?} rob={}/{} buf={} fe={} lsq={} ndi_blocked={} \
                 rename_blocked={:?} head={}",
                label,
                t.blocked_on,
                t.rob_len,
                t.rob_cap,
                t.dispatch_buf_len,
                t.frontend_len,
                t.lsq_len,
                t.ndi_blocked,
                t.rename_blocked,
                head,
            );
        }
        s
    }
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DeadlockReport {
        DeadlockReport {
            cores: 1,
            cycle: 1000,
            cycles_since_commit: 400,
            committed_total: 17,
            iq: IqSnapshot {
                occupancy: 8,
                capacity: 8,
                free_by_class: [0, 0, 0],
                per_thread: vec![8, 0],
                pending_tags: 9,
            },
            dab: vec![DabSnapshot { thread: 0, trace_idx: 12, age: 40 }],
            dab_size: 2,
            pending_events: 1,
            threads: vec![
                ThreadDiagnosis {
                    core: 0,
                    thread: 0,
                    committed: 12,
                    blocked_on: StallReason::WaitingMemory,
                    rob_len: 30,
                    rob_cap: 96,
                    rob_head: Some(RobHeadView {
                        trace_idx: 12,
                        op: "Load".into(),
                        state: InstState::Issued,
                        srcs: [Some(SrcState { reg: "Int7".into(), ready: true }), None],
                        long_miss: true,
                    }),
                    dispatch_buf_len: 3,
                    dispatch_head: Some(DispatchHeadView {
                        trace_idx: 13,
                        non_ready: 2,
                        is_ndi: true,
                        dab_eligible: false,
                    }),
                    ndi_blocked: true,
                    lsq_len: 2,
                    lsq_head: Some(LsqHeadView { trace_idx: 12, is_store: false, issued: true }),
                    frontend_len: 0,
                    fetch_cursor: 40,
                    fetch_gated_by: None,
                    finished_fetch: false,
                    outstanding_mem_misses: 1,
                    rename_blocked: None,
                },
                ThreadDiagnosis {
                    core: 1,
                    thread: 1,
                    committed: 5,
                    blocked_on: StallReason::IqFull,
                    rob_len: 96,
                    rob_cap: 96,
                    rob_head: None,
                    dispatch_buf_len: 24,
                    dispatch_head: None,
                    ndi_blocked: false,
                    lsq_len: 0,
                    lsq_head: None,
                    frontend_len: 40,
                    fetch_cursor: 200,
                    fetch_gated_by: Some(150),
                    finished_fetch: false,
                    outstanding_mem_misses: 0,
                    rename_blocked: Some(StallReason::RobFull),
                },
            ],
            mem: Some(MemSnapshot {
                l1i_mshrs_in_flight: 0,
                l1i_mshr_capacity: 0,
                l1d_mshrs_in_flight: 4,
                l1d_mshr_capacity: 4,
                l2_mshrs_in_flight: 2,
                l2_mshr_capacity: 8,
                bus_next_free: 1040,
                bus_cycles_per_transfer: 16,
                wb_occupancy: 1,
                wb_capacity: 8,
            }),
        }
    }

    #[test]
    fn summary_names_each_thread_and_its_stall() {
        let s = report().summary();
        assert!(s.contains("no commit for 400 cycles"));
        assert!(s.contains("t0: blocked_on=WaitingMemory"));
        assert!(s.contains("t1: blocked_on=IqFull"));
        assert!(s.contains("Load@12 Issued"));
        assert!(s.contains("rename_blocked=Some(RobFull)"));
        assert!(s.contains("mem: mshrs l1i 0/0 l1d 4/4 l2 2/8"));
    }

    #[test]
    fn multi_core_summary_names_the_wedged_core() {
        let mut r = report();
        r.cores = 2;
        let s = r.summary();
        assert!(s.contains("c0.t0: blocked_on=WaitingMemory"));
        assert!(s.contains("c1.t1: blocked_on=IqFull"));
        assert!(!s.contains("\nt0:"), "flat thread labels must not appear when cores > 1");
    }

    #[test]
    fn display_matches_summary() {
        let r = report();
        assert_eq!(format!("{r}"), r.summary());
    }

    #[test]
    fn report_equality_is_structural() {
        assert_eq!(report(), report());
    }
}
