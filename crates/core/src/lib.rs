//! Cycle-level SMT processor model for reproducing Sharkey & Ponomarev,
//! *"Balancing ILP and TLP in SMT Architectures through Out-of-Order
//! Instruction Dispatch"* (ICPP 2006).
//!
//! The crate models an 8-wide SMT pipeline (Table 1 of the paper): an
//! I-Count front end, explicit register renaming over shared physical
//! register files, a shared issue queue with a configurable number of tag
//! comparators per entry, per-thread load/store queues and reorder buffers,
//! a two-level cache hierarchy and per-thread gShare branch predictors.
//!
//! Three dispatch policies are implemented (see [`DispatchPolicy`]):
//!
//! * `Traditional` — 2 comparators per IQ entry, in-order dispatch;
//! * `TwoOpBlock` — 1 comparator, thread blocks on an instruction with two
//!   non-ready sources (HPCA'06 baseline the paper starts from);
//! * `TwoOpBlockOoo` — the paper's contribution: hidden dispatchable
//!   instructions bypass blocked NDIs into the IQ, with a
//!   deadlock-avoidance buffer or watchdog timer backstop.
//!
//! # Timing model
//!
//! Stages are evaluated in reverse pipeline order each cycle (commit →
//! issue → dispatch → rename → fetch) so every stage observes the previous
//! cycle's downstream state. Wakeup broadcasts are scheduled at
//! `issue + latency` and delivered at cycle start, keeping single-cycle
//! operations back-to-back. Loads learn their full latency at issue (the
//! cache hierarchy is probed then), stores write the data cache at commit,
//! and branches resolve `latency + exec_tail` cycles after issue. Squash
//! recovery (watchdog flush, FLUSH fetch policy, wrong-path resolution)
//! rewinds the rename table from per-entry checkpoints and invalidates
//! in-flight events through per-incarnation rename stamps.
//!
//! # Quickstart
//!
//! ```
//! use smt_core::{DispatchPolicy, SimConfig, Simulator};
//! use smt_workload::{benchmark, SyntheticGen};
//!
//! let cfg = SimConfig::paper(64, DispatchPolicy::TwoOpBlockOoo);
//! let streams: Vec<Box<dyn smt_workload::InstGenerator>> = vec![
//!     Box::new(SyntheticGen::new(benchmark("gcc"), 0, 1)),
//!     Box::new(SyntheticGen::new(benchmark("art"), 1, 1)),
//! ];
//! let mut sim = Simulator::new(cfg, streams);
//! sim.run(5_000);
//! assert!(sim.counters().throughput_ipc() > 0.0);
//! ```

pub mod calendar;
pub mod config;
pub mod dispatch;
pub mod events;
pub mod faults;
pub mod fetch;
pub mod fu;
pub mod issue_queue;
pub mod lsq;
pub mod machine;
pub mod packed;
pub mod progress;
pub mod regfile;
pub mod rename;
pub mod rob;
pub mod scheduler;
pub mod simulator;
pub mod tracer;

pub use calendar::Calendar;
pub use config::{DeadlockMode, DispatchPolicy, FetchPolicy, SimConfig};
pub use dispatch::{is_ndi, plan_thread, BufView, Candidate, ThreadPlan};
pub use faults::{FaultClass, FaultClassConfig, FaultConfig, FaultInjector, FaultRecord};
pub use machine::{AllocConfig, AllocPolicy, Machine};
pub use packed::PackedIssueQueue;
pub use progress::{DeadlockReport, StallReason};
pub use regfile::{PhysReg, PhysRegFile};
pub use rob::InstState;
pub use scheduler::SchedulerQueue;
pub use simulator::{RunOutcome, Simulator, ABORT_POLL_ITERS};
pub use tracer::Tracer;
