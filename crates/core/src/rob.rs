//! Per-thread reorder buffer and the in-flight instruction record.

use crate::regfile::PhysReg;
use smt_isa::{ArchReg, TraceInst};

/// Lifecycle of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InstState {
    /// Renamed, waiting in the dispatch buffer.
    Renamed,
    /// In the issue queue.
    Dispatched,
    /// In the deadlock-avoidance buffer.
    InDab,
    /// Executing on a function unit.
    Issued,
    /// Result produced; eligible for commit.
    Completed,
}

/// Everything the pipeline tracks about one in-flight instruction. Lives in
/// its thread's ROB from rename to commit.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Global index of this instruction in its thread's dynamic trace.
    pub trace_idx: u64,
    /// The architectural instruction.
    pub inst: TraceInst,
    /// Global rename stamp — the age used for oldest-first selection.
    pub age: u64,
    /// Renamed source operands (`None` = no register / zero register).
    pub srcs: [Option<PhysReg>; 2],
    /// Renamed destination.
    pub dest: Option<PhysReg>,
    /// Previous mapping of the destination architectural register, for
    /// commit-time freeing and squash-time restoration.
    pub old_dest: Option<(ArchReg, PhysReg)>,
    /// Current pipeline state.
    pub state: InstState,
    /// Cycle the instruction entered the IQ (or DAB).
    pub dispatch_cycle: u64,
    /// Cycle the instruction issued.
    pub issue_cycle: u64,
    /// For branches: was the fetch-time prediction wrong?
    pub mispredicted: bool,
    /// Did this instruction enter the IQ out of program order (HDI)?
    pub dispatched_ooo: bool,
    /// Was it (transitively) dependent on an NDI it bypassed?
    pub ndi_dependent: bool,
    /// Number of non-ready sources at the time of dispatch (0–2).
    pub nonready_at_dispatch: u8,
    /// Load that missed to main memory (drives STALL/FLUSH fetch policies).
    pub long_miss: bool,
}

/// A per-thread reorder buffer. Entries are inserted at rename in program
/// order (contiguous trace indices), committed from the front, and squashed
/// from the back.
#[derive(Debug)]
pub struct Rob {
    entries: std::collections::VecDeque<InFlight>,
    /// Trace index of the entry at the front (== next to commit).
    base: u64,
    capacity: usize,
}

impl Rob {
    /// An empty ROB with `capacity` entries starting at trace index 0.
    pub fn new(capacity: usize) -> Self {
        Rob { entries: std::collections::VecDeque::with_capacity(capacity), base: 0, capacity }
    }

    /// Point an **empty** ROB at a new restart index — used when a migrated
    /// thread is installed into a recycled slot whose previous occupant
    /// ended at a different trace position.
    pub fn reset_to(&mut self, base: u64) {
        assert!(self.entries.is_empty(), "reset_to requires an empty ROB");
        self.base = base;
    }

    /// Entries currently occupied.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the ROB empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is the ROB full (rename must stall)?
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Trace index of the oldest uncommitted instruction.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Trace index one past the youngest entry.
    pub fn end(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Insert the next instruction (must be `self.end()`-indexed).
    pub fn push(&mut self, entry: InFlight) {
        assert!(!self.is_full(), "ROB overflow");
        assert_eq!(entry.trace_idx, self.end(), "ROB entries must be contiguous");
        self.entries.push_back(entry);
    }

    /// The entry at `trace_idx`, if present.
    pub fn get(&self, trace_idx: u64) -> Option<&InFlight> {
        if trace_idx < self.base {
            return None;
        }
        self.entries.get((trace_idx - self.base) as usize)
    }

    /// Mutable access to the entry at `trace_idx`.
    pub fn get_mut(&mut self, trace_idx: u64) -> Option<&mut InFlight> {
        if trace_idx < self.base {
            return None;
        }
        self.entries.get_mut((trace_idx - self.base) as usize)
    }

    /// The oldest entry.
    pub fn front(&self) -> Option<&InFlight> {
        self.entries.front()
    }

    /// Commit (remove) the oldest entry.
    pub fn pop_front(&mut self) -> Option<InFlight> {
        let e = self.entries.pop_front()?;
        self.base += 1;
        Some(e)
    }

    /// Squash every entry, youngest first, returning them in that order for
    /// rename-table restoration and register freeing. The base (fetch
    /// restart point) is unchanged.
    pub fn squash_all(&mut self) -> Vec<InFlight> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(e) = self.entries.pop_back() {
            out.push(e);
        }
        out
    }

    /// Squash every entry *younger* than `keep_idx` (exclusive), youngest
    /// first — the partial flush used by the FLUSH fetch policy, which
    /// discards the instructions behind a load that missed to memory.
    pub fn squash_after(&mut self, keep_idx: u64) -> Vec<InFlight> {
        let mut out = Vec::new();
        while self.entries.back().map(|e| e.trace_idx > keep_idx).unwrap_or(false) {
            out.push(self.entries.pop_back().unwrap());
        }
        out
    }

    /// Iterate over occupied entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &InFlight> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::ArchReg;

    fn entry(idx: u64) -> InFlight {
        InFlight {
            trace_idx: idx,
            inst: TraceInst::alu(idx * 4, ArchReg::int(1), None, None),
            age: idx,
            srcs: [None, None],
            dest: None,
            old_dest: None,
            state: InstState::Renamed,
            dispatch_cycle: 0,
            issue_cycle: 0,
            mispredicted: false,
            dispatched_ooo: false,
            ndi_dependent: false,
            nonready_at_dispatch: 0,
            long_miss: false,
        }
    }

    #[test]
    fn push_get_commit() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.get(1).unwrap().trace_idx, 1);
        assert!(rob.get(2).is_none());
        let e = rob.pop_front().unwrap();
        assert_eq!(e.trace_idx, 0);
        assert_eq!(rob.base(), 1);
        assert!(rob.get(0).is_none(), "committed entries are gone");
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(2));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(2);
        rob.push(entry(0));
        rob.push(entry(1));
        rob.push(entry(2));
    }

    #[test]
    fn squash_returns_youngest_first_and_keeps_base() {
        let mut rob = Rob::new(8);
        for i in 0..5 {
            rob.push(entry(i));
        }
        rob.pop_front();
        let squashed = rob.squash_all();
        let idxs: Vec<u64> = squashed.iter().map(|e| e.trace_idx).collect();
        assert_eq!(idxs, vec![4, 3, 2, 1]);
        assert!(rob.is_empty());
        assert_eq!(rob.base(), 1, "restart point is the oldest uncommitted instruction");
    }

    #[test]
    fn refill_after_squash_continues_from_base() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        rob.pop_front();
        rob.squash_all();
        assert_eq!(rob.end(), 1);
        rob.push(entry(1)); // refetched
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn squash_after_keeps_older_entries() {
        let mut rob = Rob::new(8);
        for i in 0..6 {
            rob.push(entry(i));
        }
        let squashed = rob.squash_after(2);
        let idxs: Vec<u64> = squashed.iter().map(|e| e.trace_idx).collect();
        assert_eq!(idxs, vec![5, 4, 3], "youngest first, down to (not including) 2");
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.end(), 3);
        assert!(rob.get(2).is_some());
        assert!(rob.get(3).is_none());
    }

    #[test]
    fn squash_after_with_nothing_younger_is_noop() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        assert!(rob.squash_after(5).is_empty());
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn full_and_empty_flags() {
        let mut rob = Rob::new(2);
        assert!(rob.is_empty() && !rob.is_full());
        rob.push(entry(0));
        rob.push(entry(1));
        assert!(rob.is_full() && !rob.is_empty());
    }
}
