//! Per-thread load/store queue with oracle memory disambiguation and
//! store-to-load forwarding.
//!
//! Entries are allocated at rename in program order and removed at commit.
//! Because the simulator is trace-driven, every access address is known at
//! allocation time; disambiguation is therefore *oracle-exact*: a load
//! conflicts only with an older store to the same 8-byte slot (no false
//! dependences from unknown addresses). Store-to-load forwarding succeeds
//! once the conflicting store has issued (its address and data are live in
//! the queue).

/// Disposition of a load attempting to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older conflicting store: access the data cache.
    AccessCache,
    /// Conflicting older store has issued: forward from the queue.
    Forward,
    /// Conflicting older store has not issued yet: the load must wait.
    Blocked,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    trace_idx: u64,
    is_store: bool,
    /// 8-byte-aligned slot address.
    slot: u64,
    issued: bool,
}

/// A thread's load/store queue.
#[derive(Debug)]
pub struct Lsq {
    entries: std::collections::VecDeque<LsqEntry>,
    capacity: usize,
}

impl Lsq {
    /// An empty queue of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Lsq { entries: std::collections::VecDeque::with_capacity(capacity), capacity }
    }

    /// Is the queue full (rename of a memory instruction must stall)?
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocate an entry for a memory instruction (at rename, in order).
    pub fn push(&mut self, trace_idx: u64, is_store: bool, addr: u64) {
        assert!(!self.is_full(), "LSQ overflow");
        if let Some(back) = self.entries.back() {
            assert!(back.trace_idx < trace_idx, "LSQ entries must be in program order");
        }
        self.entries.push_back(LsqEntry { trace_idx, is_store, slot: addr & !7, issued: false });
    }

    /// Mark the entry of `trace_idx` issued (address generated, data live).
    pub fn mark_issued(&mut self, trace_idx: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.trace_idx == trace_idx) {
            e.issued = true;
        }
    }

    /// View of the oldest entry for diagnostics: (trace_idx, is_store,
    /// issued).
    pub fn front_view(&self) -> Option<(u64, bool, bool)> {
        self.entries.front().map(|e| (e.trace_idx, e.is_store, e.issued))
    }

    /// Can the load at `trace_idx` (address `addr`) issue, and how?
    ///
    /// Scans older stores for a same-slot conflict; the **youngest** older
    /// conflicting store decides: issued ⇒ forward, not issued ⇒ blocked.
    pub fn check_load(&self, trace_idx: u64, addr: u64) -> LoadCheck {
        let slot = addr & !7;
        let mut result = LoadCheck::AccessCache;
        for e in &self.entries {
            if e.trace_idx >= trace_idx {
                break;
            }
            if e.is_store && e.slot == slot {
                result = if e.issued { LoadCheck::Forward } else { LoadCheck::Blocked };
            }
        }
        result
    }

    /// Remove the oldest entry at commit; must match `trace_idx`.
    pub fn pop_front(&mut self, trace_idx: u64) {
        let e = self.entries.pop_front().expect("LSQ underflow at commit");
        assert_eq!(e.trace_idx, trace_idx, "LSQ commit order mismatch");
    }

    /// Drop every entry (pipeline flush).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drop every entry with `trace_idx > keep_idx` (partial flush).
    pub fn truncate_after(&mut self, keep_idx: u64) {
        while self.entries.back().map(|e| e.trace_idx > keep_idx).unwrap_or(false) {
            self.entries.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_with_no_conflict_accesses_cache() {
        let mut q = Lsq::new(8);
        q.push(0, true, 0x1000);
        q.push(1, false, 0x2000);
        assert_eq!(q.check_load(1, 0x2000), LoadCheck::AccessCache);
    }

    #[test]
    fn load_blocked_by_unissued_older_store() {
        let mut q = Lsq::new(8);
        q.push(0, true, 0x1000);
        q.push(1, false, 0x1000);
        assert_eq!(q.check_load(1, 0x1000), LoadCheck::Blocked);
    }

    #[test]
    fn load_forwards_from_issued_store() {
        let mut q = Lsq::new(8);
        q.push(0, true, 0x1000);
        q.push(1, false, 0x1000);
        q.mark_issued(0);
        assert_eq!(q.check_load(1, 0x1000), LoadCheck::Forward);
    }

    #[test]
    fn youngest_conflicting_store_wins() {
        let mut q = Lsq::new(8);
        q.push(0, true, 0x1000);
        q.push(1, true, 0x1000);
        q.push(2, false, 0x1000);
        q.mark_issued(0);
        // Store 1 (younger, unissued) shadows store 0.
        assert_eq!(q.check_load(2, 0x1000), LoadCheck::Blocked);
        q.mark_issued(1);
        assert_eq!(q.check_load(2, 0x1000), LoadCheck::Forward);
    }

    #[test]
    fn younger_stores_do_not_affect_load() {
        let mut q = Lsq::new(8);
        q.push(0, false, 0x1000);
        q.push(1, true, 0x1000);
        assert_eq!(q.check_load(0, 0x1000), LoadCheck::AccessCache);
    }

    #[test]
    fn slot_granularity_is_8_bytes() {
        let mut q = Lsq::new(8);
        q.push(0, true, 0x1000);
        q.push(1, false, 0x1004); // same 8-byte slot
        q.push(2, false, 0x1008); // next slot
        assert_eq!(q.check_load(1, 0x1004), LoadCheck::Blocked);
        assert_eq!(q.check_load(2, 0x1008), LoadCheck::AccessCache);
    }

    #[test]
    fn commit_pops_in_order() {
        let mut q = Lsq::new(4);
        q.push(3, true, 0x0);
        q.push(5, false, 0x8);
        q.pop_front(3);
        q.pop_front(5);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "order mismatch")]
    fn out_of_order_commit_panics() {
        let mut q = Lsq::new(4);
        q.push(3, true, 0x0);
        q.push(5, false, 0x8);
        q.pop_front(5);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = Lsq::new(1);
        q.push(0, true, 0x0);
        q.push(1, false, 0x8);
    }

    #[test]
    fn truncate_after_drops_younger_entries() {
        let mut q = Lsq::new(8);
        q.push(0, true, 0x0);
        q.push(2, false, 0x8);
        q.push(5, true, 0x10);
        q.truncate_after(2);
        assert_eq!(q.len(), 2);
        // Entry 5 is gone; a fresh push at index 3 must succeed in order.
        q.push(3, false, 0x18);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = Lsq::new(4);
        q.push(0, true, 0x0);
        q.clear();
        assert!(q.is_empty());
        assert!(!q.is_full());
    }
}
