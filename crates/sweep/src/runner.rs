//! Execution of single simulation runs.

use crate::supervise::CancelToken;
use serde::{Deserialize, Serialize};
use smt_core::{
    AllocConfig, DeadlockReport, DispatchPolicy, Machine, RunOutcome, SimConfig, Simulator,
};
use smt_stats::SimCounters;
use smt_workload::{benchmark, InstGenerator, SyntheticGen};

/// Deterministic per-thread seed derived from the global seed, benchmark
/// name, and thread slot. The same benchmark in the same slot always
/// replays identically, making whole sweeps reproducible.
pub fn thread_seed(global_seed: u64, bench: &str, thread: usize) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ global_seed;
    for b in bench.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((thread as u64) << 56)
}

/// Everything identifying one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunSpec {
    /// Benchmarks, one per hardware thread.
    pub benchmarks: Vec<String>,
    /// Issue-queue capacity.
    pub iq_size: usize,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Stop after any thread commits this many instructions.
    pub commit_target: u64,
    /// Warm-up commits per thread before measurement begins (caches fill,
    /// predictors train) — the stand-in for the paper's SimPoint
    /// fast-forwarding. Statistics are reset after warm-up.
    pub warmup: u64,
    /// Global seed for workload generation.
    pub seed: u64,
    /// Hard cycle ceiling for this run; `0` keeps the configuration's (or
    /// the auto-derived) ceiling. Lets a single sweep entry bound a run it
    /// expects might wedge without shortening every other run.
    #[serde(default)]
    pub max_cycles: u64,
}

impl RunSpec {
    /// A run of `benchmarks` on the paper's machine.
    pub fn new(
        benchmarks: &[impl AsRef<str>],
        iq_size: usize,
        policy: DispatchPolicy,
        commit_target: u64,
        seed: u64,
    ) -> Self {
        RunSpec {
            benchmarks: benchmarks.iter().map(|b| b.as_ref().to_string()).collect(),
            iq_size,
            policy,
            commit_target,
            // A quarter of the target, floored at 2k commits so short runs
            // still warm caches and predictors — but never more than half
            // the target, so a small `commit_target` measures more than it
            // warms (the unclamped floor used to hand a 1k-commit run a
            // 2k-commit warm-up: twice the work spent outside the window).
            warmup: ((commit_target / 4).max(2_000)).min(commit_target / 2),
            seed,
            max_cycles: 0,
        }
    }

    /// Override the warm-up budget.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Override the cycle ceiling (`0` = keep the configuration's).
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }
}

/// The measured outcome of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// What stopped the run.
    pub outcome_target_reached: bool,
    /// Total throughput IPC.
    pub ipc: f64,
    /// Per-thread IPCs, benchmark order.
    pub per_thread_ipc: Vec<f64>,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Fraction of cycles all threads with dispatch work were NDI-blocked.
    pub all_stall_frac: f64,
    /// Fraction of instructions piled behind NDIs that were HDIs.
    pub hdi_pileup_frac: f64,
    /// Fraction of dispatched HDIs dependent on a bypassed NDI.
    pub hdi_ndi_dep_frac: f64,
    /// Mean cycles an instruction spent in the IQ before issue.
    pub mean_iq_residency: f64,
    /// Mean IQ occupancy.
    pub mean_iq_occupancy: f64,
    /// Whether idle-cycle fast-forward was active for this run. (Earlier
    /// revisions silently disabled the skip under round-robin fetch and
    /// recorded an "effective" state; the event-driven loop removed the
    /// carve-out, so this is simply the configuration flag.)
    #[serde(default)]
    pub fast_forward: bool,
    /// Calendar jumps the event-driven loop took during this run (warm-up
    /// included — the skip machinery runs across the whole lifetime).
    #[serde(default)]
    pub ff_jumps: u64,
    /// Total cycles those jumps skipped. `cycles` minus the measured
    /// window's share of this is the number of cycles actually executed;
    /// sweeps report it as the *effective* fast-forward rate.
    #[serde(default)]
    pub ff_skipped_cycles: u64,
    /// Thread migrations performed by a dynamic allocation policy (always
    /// 0 for single-core runs and static placements).
    #[serde(default)]
    pub migrations: u64,
    /// Full raw counters for deeper analysis.
    pub counters: SimCounters,
}

impl RunResult {
    /// An all-zero placeholder recorded for runs that produced no usable
    /// measurement (wedged, panicked, or timed out). Keeps failed runs
    /// representable in results tables without poisoning averages — callers
    /// must consult the run's status before aggregating.
    pub fn failed(n_threads: usize) -> Self {
        RunResult {
            outcome_target_reached: false,
            ipc: 0.0,
            per_thread_ipc: vec![0.0; n_threads],
            cycles: 0,
            all_stall_frac: 0.0,
            hdi_pileup_frac: 0.0,
            hdi_ndi_dep_frac: 0.0,
            mean_iq_residency: 0.0,
            mean_iq_occupancy: 0.0,
            fast_forward: false,
            ff_jumps: 0,
            ff_skipped_cycles: 0,
            migrations: 0,
            counters: SimCounters::new(n_threads),
        }
    }
}

/// Why a budgeted run produced no result.
#[derive(Debug)]
pub enum RunFailure {
    /// The pipeline stopped making forward progress; the report diagnoses
    /// what every thread was blocked on.
    Wedged(Box<DeadlockReport>),
    /// The wall-clock deadline expired before the run finished.
    TimedOut,
    /// The sweep's [`CancelToken`] fired (explicit cancel, per-sweep
    /// deadline, or service drain). The run produced nothing and must not
    /// be journaled: a resumed sweep re-runs it from scratch.
    Cancelled,
}

/// Execute one simulation run.
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let cfg = SimConfig::paper(spec.iq_size, spec.policy);
    run_spec_with_config(spec, cfg)
}

/// Execute one run with an explicit configuration (the IQ size and policy
/// of `cfg` are overridden by the spec's).
///
/// Panics with the full [`DeadlockReport`] (human summary plus JSON) if the
/// pipeline wedges; sweeps must fail loudly rather than average a hung run
/// into their results. Use [`try_run_spec_with_config`] to handle the report
/// programmatically.
pub fn run_spec_with_config(spec: &RunSpec, cfg: SimConfig) -> RunResult {
    match try_run_spec_with_config(spec, cfg) {
        Ok(r) => r,
        Err(report) => {
            let json = serde_json::to_string_pretty(&*report)
                .unwrap_or_else(|e| format!("<report serialization failed: {e}>"));
            panic!(
                "pipeline wedged (no forward progress): {spec:?}\n{report}\nfull report:\n{json}"
            );
        }
    }
}

/// Execute one run with an explicit configuration, returning the deadlock
/// report instead of panicking if the pipeline stops making forward
/// progress.
pub fn try_run_spec_with_config(
    spec: &RunSpec,
    cfg: SimConfig,
) -> Result<RunResult, Box<DeadlockReport>> {
    run_spec_budgeted(spec, cfg, None).map_err(|f| match f {
        RunFailure::Wedged(report) => report,
        RunFailure::TimedOut => unreachable!("no deadline was set"),
        RunFailure::Cancelled => unreachable!("no cancel token was set"),
    })
}

/// Execute one run with an explicit configuration and an optional wall-clock
/// deadline. The deadline is polled every few thousand cycles; an expired
/// run stops with [`RunFailure::TimedOut`] instead of hanging its sweep.
pub fn run_spec_budgeted(
    spec: &RunSpec,
    cfg: SimConfig,
    deadline: Option<std::time::Instant>,
) -> Result<RunResult, RunFailure> {
    run_spec_supervised(spec, cfg, deadline, None)
}

/// Execute one run under full supervision: an optional per-run wall-clock
/// `deadline` (sweep `--budget`) and an optional sweep-wide [`CancelToken`].
/// Both feed the simulator's abort hook, polled every
/// [`smt_core::ABORT_POLL_ITERS`] run-loop iterations, so a fired token
/// stops the run within one poll interval; the token is checked first, so a
/// simultaneous expiry reports [`RunFailure::Cancelled`], which the sweep
/// layer treats as "never happened" (no journal entry, no memoization).
pub fn run_spec_supervised(
    spec: &RunSpec,
    mut cfg: SimConfig,
    deadline: Option<std::time::Instant>,
    cancel: Option<&CancelToken>,
) -> Result<RunResult, RunFailure> {
    normalize_cfg(spec, &mut cfg);
    let fast_forward = cfg.fast_forward;
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let expired = || deadline.is_some_and(|d| std::time::Instant::now() >= d);
    let abort = || cancelled() || expired();
    // An Aborted outcome is ambiguous between the two supervisors; the
    // token wins so a cancelled run is never journaled as a timeout.
    let aborted = || if cancelled() { RunFailure::Cancelled } else { RunFailure::TimedOut };
    let mut sim = Simulator::new(cfg, spec_streams(spec));
    if spec.warmup > 0 {
        match sim.run_until_all_committed_with_abort(spec.warmup, abort) {
            RunOutcome::Wedged(report) => return Err(RunFailure::Wedged(report)),
            RunOutcome::Aborted => return Err(aborted()),
            _ => {}
        }
        sim.reset_measurement();
    }
    let outcome = sim.run_with_abort(spec.commit_target, abort);
    match outcome {
        RunOutcome::Wedged(report) => return Err(RunFailure::Wedged(report)),
        RunOutcome::Aborted => return Err(aborted()),
        _ => {}
    }
    let c = sim.counters().clone();
    let (ff_jumps, ff_skipped_cycles) = sim.ff_stats();
    Ok(RunResult {
        outcome_target_reached: matches!(outcome, RunOutcome::TargetReached),
        ipc: c.throughput_ipc(),
        per_thread_ipc: c.per_thread_ipc(),
        cycles: c.cycles,
        all_stall_frac: c.all_stall_fraction(),
        hdi_pileup_frac: c.hdi_pileup_fraction(),
        hdi_ndi_dep_frac: c.hdi_ndi_dependence_fraction(),
        mean_iq_residency: c.mean_iq_residency(),
        mean_iq_occupancy: c.mean_iq_occupancy(),
        fast_forward,
        ff_jumps,
        ff_skipped_cycles,
        migrations: 0,
        counters: c,
    })
}

/// Spec-driven configuration normalization shared by the single-core and
/// multi-core runners: the spec's IQ size and policy override the config's,
/// the DAB backstop tracks whether the policy dispatches out of order, and
/// the cycle ceiling falls back to a generous safety net so a wedged
/// pipeline cannot hang its sweep.
fn normalize_cfg(spec: &RunSpec, cfg: &mut SimConfig) {
    cfg.iq_size = spec.iq_size;
    cfg.policy = spec.policy;
    if cfg.policy.is_out_of_order() && cfg.deadlock == smt_core::DeadlockMode::None {
        cfg.deadlock = smt_core::DeadlockMode::Dab { size: 4 };
    }
    if !cfg.policy.is_out_of_order() {
        if let smt_core::DeadlockMode::Dab { .. } = cfg.deadlock {
            cfg.deadlock = smt_core::DeadlockMode::None;
        }
    }
    if spec.max_cycles > 0 {
        cfg.max_cycles = spec.max_cycles;
    }
    if cfg.max_cycles == 0 {
        cfg.max_cycles = (spec.commit_target + spec.warmup).saturating_mul(800).max(4_000_000);
    }
}

/// One deterministic instruction stream per benchmark slot in the spec.
fn spec_streams(spec: &RunSpec) -> Vec<Box<dyn InstGenerator>> {
    spec.benchmarks
        .iter()
        .enumerate()
        .map(|(t, b)| {
            Box::new(SyntheticGen::new(benchmark(b), t, thread_seed(spec.seed, b, t)))
                as Box<dyn InstGenerator>
        })
        .collect()
}

/// Execute one run on the multi-core [`Machine`]: the spec's benchmarks
/// become M software threads placed onto `cores` cores by `alloc`. The
/// warm-up/measure protocol, supervision hooks and result shape match
/// [`run_spec_supervised`] exactly — with `cores == 1` the machine *is* the
/// single-core simulator bit for bit, which `tests/multicore_differential.rs`
/// pins.
pub fn run_machine_spec_supervised(
    spec: &RunSpec,
    mut cfg: SimConfig,
    cores: usize,
    alloc: AllocConfig,
    deadline: Option<std::time::Instant>,
    cancel: Option<&CancelToken>,
) -> Result<RunResult, RunFailure> {
    normalize_cfg(spec, &mut cfg);
    let fast_forward = cfg.fast_forward;
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let expired = || deadline.is_some_and(|d| std::time::Instant::now() >= d);
    let abort = || cancelled() || expired();
    let aborted = || if cancelled() { RunFailure::Cancelled } else { RunFailure::TimedOut };
    let mut machine = Machine::new(cfg, cores, alloc, spec_streams(spec));
    if spec.warmup > 0 {
        match machine.run_until_all_committed_with_abort(spec.warmup, abort) {
            RunOutcome::Wedged(report) => return Err(RunFailure::Wedged(report)),
            RunOutcome::Aborted => return Err(aborted()),
            _ => {}
        }
        machine.reset_measurement();
    }
    let outcome = machine.run_with_abort(spec.commit_target, abort);
    match outcome {
        RunOutcome::Wedged(report) => return Err(RunFailure::Wedged(report)),
        RunOutcome::Aborted => return Err(aborted()),
        _ => {}
    }
    let c = machine.counters();
    let (ff_jumps, ff_skipped_cycles) = machine.ff_stats();
    Ok(RunResult {
        outcome_target_reached: matches!(outcome, RunOutcome::TargetReached),
        ipc: c.throughput_ipc(),
        per_thread_ipc: c.per_thread_ipc(),
        cycles: c.cycles,
        all_stall_frac: c.all_stall_fraction(),
        hdi_pileup_frac: c.hdi_pileup_fraction(),
        hdi_ndi_dep_frac: c.hdi_ndi_dependence_fraction(),
        mean_iq_residency: c.mean_iq_residency(),
        mean_iq_occupancy: c.mean_iq_occupancy(),
        fast_forward,
        ff_jumps,
        ff_skipped_cycles,
        migrations: machine.migrations(),
        counters: c,
    })
}

/// [`run_machine_spec_supervised`] without supervision, returning the wedge
/// report instead of panicking — the multi-core analogue of
/// [`try_run_spec_with_config`].
pub fn try_run_machine_spec_with_config(
    spec: &RunSpec,
    cfg: SimConfig,
    cores: usize,
    alloc: AllocConfig,
) -> Result<RunResult, Box<DeadlockReport>> {
    run_machine_spec_supervised(spec, cfg, cores, alloc, None, None).map_err(|f| match f {
        RunFailure::Wedged(report) => report,
        RunFailure::TimedOut => unreachable!("no deadline was set"),
        RunFailure::Cancelled => unreachable!("no cancel token was set"),
    })
}

/// Multi-core run that panics with the full deadlock report on a wedge —
/// the multi-core analogue of [`run_spec_with_config`].
pub fn run_machine_spec_with_config(
    spec: &RunSpec,
    cfg: SimConfig,
    cores: usize,
    alloc: AllocConfig,
) -> RunResult {
    match try_run_machine_spec_with_config(spec, cfg, cores, alloc) {
        Ok(r) => r,
        Err(report) => {
            let json = serde_json::to_string_pretty(&*report)
                .unwrap_or_else(|e| format!("<report serialization failed: {e}>"));
            panic!(
                "machine wedged (no forward progress): {spec:?} cores={cores}\n{report}\nfull report:\n{json}"
            );
        }
    }
}

/// Multi-core run that records a wedge inline instead of propagating it —
/// the multi-core analogue of [`run_spec_with_config_recorded`].
pub fn run_machine_spec_recorded(
    spec: &RunSpec,
    cfg: SimConfig,
    cores: usize,
    alloc: AllocConfig,
) -> RecordedRun {
    match try_run_machine_spec_with_config(spec, cfg, cores, alloc) {
        Ok(result) => RecordedRun { result, wedge: None },
        Err(report) => RecordedRun {
            result: RunResult::failed(spec.benchmarks.len()),
            wedge: Some(report.summary()),
        },
    }
}

/// A run's result together with the wedge diagnosis, if it wedged. Lets
/// experiment tables record a failed run inline (zeroed metrics + summary)
/// and keep going instead of panicking mid-sweep.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    /// Measured metrics, or [`RunResult::failed`] zeros if the run wedged.
    pub result: RunResult,
    /// Human-readable [`DeadlockReport`] summary when the run wedged.
    pub wedge: Option<String>,
}

/// Execute one run, recording a wedge instead of propagating it. The
/// returned [`RecordedRun`] always carries a result row.
pub fn run_spec_with_config_recorded(spec: &RunSpec, cfg: SimConfig) -> RecordedRun {
    match try_run_spec_with_config(spec, cfg) {
        Ok(result) => RecordedRun { result, wedge: None },
        Err(report) => RecordedRun {
            result: RunResult::failed(spec.benchmarks.len()),
            wedge: Some(report.summary()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(benches: &[&str], policy: DispatchPolicy) -> RunResult {
        run_spec(&RunSpec::new(benches, 64, policy, 2_000, 1))
    }

    #[test]
    fn warmup_never_exceeds_half_the_commit_target() {
        // Regression: the 2k-commit warm-up floor used to dominate small
        // targets — a 1k-commit run warmed twice as long as it measured.
        let spec = RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 1_000, 1);
        assert_eq!(spec.warmup, 500, "small targets must measure more than they warm");
        let spec = RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 20_000, 1);
        assert_eq!(spec.warmup, 5_000, "large targets keep the quarter-of-target warm-up");
        let spec = RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 6_000, 1);
        assert_eq!(spec.warmup, 2_000, "the 2k floor applies between the clamps");
    }

    #[test]
    fn single_thread_run_commits() {
        let r = quick(&["gcc"], DispatchPolicy::Traditional);
        assert!(r.outcome_target_reached);
        assert!(r.ipc > 0.1, "IPC {} suspiciously low", r.ipc);
        assert!(r.ipc <= 8.0, "IPC cannot exceed machine width");
    }

    #[test]
    fn two_thread_run_commits_on_all_policies() {
        for policy in [
            DispatchPolicy::Traditional,
            DispatchPolicy::TwoOpBlock,
            DispatchPolicy::TwoOpBlockOoo,
            DispatchPolicy::TwoOpBlockOooFiltered,
        ] {
            let r = quick(&["gcc", "art"], policy);
            assert!(r.outcome_target_reached, "{policy:?} did not reach target");
            assert!(r.ipc > 0.1, "{policy:?} IPC {}", r.ipc);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = RunSpec::new(&["gcc", "equake"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 7);
        let a = run_spec(&spec);
        let b = run_spec(&spec);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.per_thread_ipc, b.per_thread_ipc);
    }

    #[test]
    fn seeds_change_results() {
        let a = run_spec(&RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 2_000, 1));
        let b = run_spec(&RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 2_000, 2));
        // Scalar summaries can coincide; the full counter set cannot for
        // genuinely different instruction streams.
        assert_ne!(a.counters, b.counters);
    }

    #[test]
    fn wedged_run_surfaces_the_deadlock_report() {
        // 50 cycles cannot retire 1M instructions, so the progress check
        // must trip and hand back a per-thread diagnosis instead of a
        // result.
        let spec = RunSpec::new(&["gcc", "art"], 64, DispatchPolicy::Traditional, 1_000_000, 1)
            .with_warmup(0);
        let mut cfg = smt_core::SimConfig::paper(64, DispatchPolicy::Traditional);
        cfg.max_cycles = 50;
        let report =
            try_run_spec_with_config(&spec, cfg).expect_err("a 50-cycle budget must wedge the run");
        assert_eq!(report.threads.len(), 2);
        let s = report.summary();
        assert!(s.contains("t0:") && s.contains("t1:"), "summary missing threads:\n{s}");
    }

    #[test]
    fn fired_cancel_token_aborts_the_run_as_cancelled() {
        let spec = RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 1_000_000, 1);
        let cfg = smt_core::SimConfig::paper(64, DispatchPolicy::Traditional);
        let token = CancelToken::new();
        token.cancel();
        match run_spec_supervised(&spec, cfg, None, Some(&token)) {
            Err(RunFailure::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancel_wins_over_a_simultaneously_expired_deadline() {
        let spec = RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 1_000_000, 1);
        let cfg = smt_core::SimConfig::paper(64, DispatchPolicy::Traditional);
        let token = CancelToken::new();
        token.cancel();
        let deadline = std::time::Instant::now();
        match run_spec_supervised(&spec, cfg, Some(deadline), Some(&token)) {
            Err(RunFailure::Cancelled) => {}
            other => panic!("expected Cancelled to shadow TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_times_out_instead_of_hanging() {
        let spec = RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 1_000_000, 1);
        let cfg = smt_core::SimConfig::paper(64, DispatchPolicy::Traditional);
        let deadline = std::time::Instant::now();
        match run_spec_budgeted(&spec, cfg, Some(deadline)) {
            Err(RunFailure::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn recorded_run_turns_a_wedge_into_a_row() {
        let spec = RunSpec::new(&["gcc", "art"], 64, DispatchPolicy::Traditional, 1_000_000, 1)
            .with_warmup(0)
            .with_max_cycles(50);
        let cfg = smt_core::SimConfig::paper(64, DispatchPolicy::Traditional);
        let rec = run_spec_with_config_recorded(&spec, cfg);
        let wedge = rec.wedge.expect("a 50-cycle budget must wedge");
        assert!(wedge.contains("t0:"), "summary missing diagnosis:\n{wedge}");
        assert_eq!(rec.result.ipc, 0.0);
        assert_eq!(rec.result.per_thread_ipc.len(), 2);
        assert!(!rec.result.outcome_target_reached);
    }

    #[test]
    fn spec_max_cycles_overrides_config_ceiling() {
        // Same wedge as above, but driven through the spec field with a
        // default config — proving the override reaches the simulator.
        let spec = RunSpec::new(&["gcc", "art"], 64, DispatchPolicy::Traditional, 1_000_000, 1)
            .with_warmup(0)
            .with_max_cycles(50);
        let cfg = smt_core::SimConfig::paper(64, DispatchPolicy::Traditional);
        let report = try_run_spec_with_config(&spec, cfg).expect_err("50-cycle ceiling must trip");
        assert!(report.cycle >= 50);
    }

    #[test]
    fn thread_seed_is_stable_and_distinct() {
        assert_eq!(thread_seed(1, "gcc", 0), thread_seed(1, "gcc", 0));
        assert_ne!(thread_seed(1, "gcc", 0), thread_seed(1, "gcc", 1));
        assert_ne!(thread_seed(1, "gcc", 0), thread_seed(1, "art", 0));
        assert_ne!(thread_seed(1, "gcc", 0), thread_seed(2, "gcc", 0));
    }
}
