//! Execution of single simulation runs.

use serde::{Deserialize, Serialize};
use smt_core::{DeadlockReport, DispatchPolicy, RunOutcome, SimConfig, Simulator};
use smt_stats::SimCounters;
use smt_workload::{benchmark, InstGenerator, SyntheticGen};

/// Deterministic per-thread seed derived from the global seed, benchmark
/// name, and thread slot. The same benchmark in the same slot always
/// replays identically, making whole sweeps reproducible.
pub fn thread_seed(global_seed: u64, bench: &str, thread: usize) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ global_seed;
    for b in bench.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((thread as u64) << 56)
}

/// Everything identifying one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunSpec {
    /// Benchmarks, one per hardware thread.
    pub benchmarks: Vec<String>,
    /// Issue-queue capacity.
    pub iq_size: usize,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Stop after any thread commits this many instructions.
    pub commit_target: u64,
    /// Warm-up commits per thread before measurement begins (caches fill,
    /// predictors train) — the stand-in for the paper's SimPoint
    /// fast-forwarding. Statistics are reset after warm-up.
    pub warmup: u64,
    /// Global seed for workload generation.
    pub seed: u64,
}

impl RunSpec {
    /// A run of `benchmarks` on the paper's machine.
    pub fn new(
        benchmarks: &[impl AsRef<str>],
        iq_size: usize,
        policy: DispatchPolicy,
        commit_target: u64,
        seed: u64,
    ) -> Self {
        RunSpec {
            benchmarks: benchmarks.iter().map(|b| b.as_ref().to_string()).collect(),
            iq_size,
            policy,
            commit_target,
            warmup: (commit_target / 4).max(2_000),
            seed,
        }
    }

    /// Override the warm-up budget.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }
}

/// The measured outcome of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// What stopped the run.
    pub outcome_target_reached: bool,
    /// Total throughput IPC.
    pub ipc: f64,
    /// Per-thread IPCs, benchmark order.
    pub per_thread_ipc: Vec<f64>,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Fraction of cycles all threads with dispatch work were NDI-blocked.
    pub all_stall_frac: f64,
    /// Fraction of instructions piled behind NDIs that were HDIs.
    pub hdi_pileup_frac: f64,
    /// Fraction of dispatched HDIs dependent on a bypassed NDI.
    pub hdi_ndi_dep_frac: f64,
    /// Mean cycles an instruction spent in the IQ before issue.
    pub mean_iq_residency: f64,
    /// Mean IQ occupancy.
    pub mean_iq_occupancy: f64,
    /// Full raw counters for deeper analysis.
    pub counters: SimCounters,
}

/// Execute one simulation run.
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let cfg = SimConfig::paper(spec.iq_size, spec.policy);
    run_spec_with_config(spec, cfg)
}

/// Execute one run with an explicit configuration (the IQ size and policy
/// of `cfg` are overridden by the spec's).
///
/// Panics with the full [`DeadlockReport`] (human summary plus JSON) if the
/// pipeline wedges; sweeps must fail loudly rather than average a hung run
/// into their results. Use [`try_run_spec_with_config`] to handle the report
/// programmatically.
pub fn run_spec_with_config(spec: &RunSpec, cfg: SimConfig) -> RunResult {
    match try_run_spec_with_config(spec, cfg) {
        Ok(r) => r,
        Err(report) => {
            let json = serde_json::to_string_pretty(&*report)
                .unwrap_or_else(|e| format!("<report serialization failed: {e}>"));
            panic!(
                "pipeline wedged (no forward progress): {spec:?}\n{report}\nfull report:\n{json}"
            );
        }
    }
}

/// Execute one run with an explicit configuration, returning the deadlock
/// report instead of panicking if the pipeline stops making forward
/// progress.
pub fn try_run_spec_with_config(
    spec: &RunSpec,
    mut cfg: SimConfig,
) -> Result<RunResult, Box<DeadlockReport>> {
    cfg.iq_size = spec.iq_size;
    cfg.policy = spec.policy;
    if cfg.policy.is_out_of_order() && cfg.deadlock == smt_core::DeadlockMode::None {
        cfg.deadlock = smt_core::DeadlockMode::Dab { size: 4 };
    }
    if !cfg.policy.is_out_of_order() {
        if let smt_core::DeadlockMode::Dab { .. } = cfg.deadlock {
            cfg.deadlock = smt_core::DeadlockMode::None;
        }
    }
    // Safety net: no realistic run needs more cycles than this; a wedged
    // pipeline would otherwise hang the whole sweep.
    if cfg.max_cycles == 0 {
        cfg.max_cycles = (spec.commit_target + spec.warmup).saturating_mul(800).max(4_000_000);
    }
    let streams: Vec<Box<dyn InstGenerator>> = spec
        .benchmarks
        .iter()
        .enumerate()
        .map(|(t, b)| {
            Box::new(SyntheticGen::new(benchmark(b), t, thread_seed(spec.seed, b, t)))
                as Box<dyn InstGenerator>
        })
        .collect();
    let mut sim = Simulator::new(cfg, streams);
    if spec.warmup > 0 {
        if let RunOutcome::Wedged(report) = sim.run_until_all_committed(spec.warmup) {
            return Err(report);
        }
        sim.reset_measurement();
    }
    let outcome = sim.run(spec.commit_target);
    if let RunOutcome::Wedged(report) = outcome {
        return Err(report);
    }
    let c = sim.counters().clone();
    Ok(RunResult {
        outcome_target_reached: matches!(outcome, RunOutcome::TargetReached),
        ipc: c.throughput_ipc(),
        per_thread_ipc: c.per_thread_ipc(),
        cycles: c.cycles,
        all_stall_frac: c.all_stall_fraction(),
        hdi_pileup_frac: c.hdi_pileup_fraction(),
        hdi_ndi_dep_frac: c.hdi_ndi_dependence_fraction(),
        mean_iq_residency: c.mean_iq_residency(),
        mean_iq_occupancy: c.mean_iq_occupancy(),
        counters: c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(benches: &[&str], policy: DispatchPolicy) -> RunResult {
        run_spec(&RunSpec::new(benches, 64, policy, 2_000, 1))
    }

    #[test]
    fn single_thread_run_commits() {
        let r = quick(&["gcc"], DispatchPolicy::Traditional);
        assert!(r.outcome_target_reached);
        assert!(r.ipc > 0.1, "IPC {} suspiciously low", r.ipc);
        assert!(r.ipc <= 8.0, "IPC cannot exceed machine width");
    }

    #[test]
    fn two_thread_run_commits_on_all_policies() {
        for policy in [
            DispatchPolicy::Traditional,
            DispatchPolicy::TwoOpBlock,
            DispatchPolicy::TwoOpBlockOoo,
            DispatchPolicy::TwoOpBlockOooFiltered,
        ] {
            let r = quick(&["gcc", "art"], policy);
            assert!(r.outcome_target_reached, "{policy:?} did not reach target");
            assert!(r.ipc > 0.1, "{policy:?} IPC {}", r.ipc);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = RunSpec::new(&["gcc", "equake"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 7);
        let a = run_spec(&spec);
        let b = run_spec(&spec);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.per_thread_ipc, b.per_thread_ipc);
    }

    #[test]
    fn seeds_change_results() {
        let a = run_spec(&RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 2_000, 1));
        let b = run_spec(&RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 2_000, 2));
        // Scalar summaries can coincide; the full counter set cannot for
        // genuinely different instruction streams.
        assert_ne!(a.counters, b.counters);
    }

    #[test]
    fn wedged_run_surfaces_the_deadlock_report() {
        // 50 cycles cannot retire 1M instructions, so the progress check
        // must trip and hand back a per-thread diagnosis instead of a
        // result.
        let spec = RunSpec::new(&["gcc", "art"], 64, DispatchPolicy::Traditional, 1_000_000, 1)
            .with_warmup(0);
        let mut cfg = smt_core::SimConfig::paper(64, DispatchPolicy::Traditional);
        cfg.max_cycles = 50;
        let report =
            try_run_spec_with_config(&spec, cfg).expect_err("a 50-cycle budget must wedge the run");
        assert_eq!(report.threads.len(), 2);
        let s = report.summary();
        assert!(s.contains("t0:") && s.contains("t1:"), "summary missing threads:\n{s}");
    }

    #[test]
    fn thread_seed_is_stable_and_distinct() {
        assert_eq!(thread_seed(1, "gcc", 0), thread_seed(1, "gcc", 0));
        assert_ne!(thread_seed(1, "gcc", 0), thread_seed(1, "gcc", 1));
        assert_ne!(thread_seed(1, "gcc", 0), thread_seed(1, "art", 0));
        assert_ne!(thread_seed(1, "gcc", 0), thread_seed(2, "gcc", 0));
    }
}
