//! Supervision primitives for the long-running sweep service.
//!
//! [`CancelToken`] is the cooperative cancellation handle threaded from the
//! protocol layer (`{"cmd":"cancel"}`, per-sweep `deadline_secs`, SIGTERM
//! drain) down through [`crate::ResultsDb::run_all`], the pool jobs, and
//! [`crate::runner::run_spec_supervised`] into the simulator's abort-polling
//! hook, so an in-flight sweep stops within one abort-poll interval of the
//! flag being raised. Cancellation is *cooperative and clean*: a run that
//! observes the token simply reports [`crate::runner::RunFailure::Cancelled`],
//! nothing is journaled for it, and the journal prefix written so far stays
//! resumable.
//!
//! [`Supervisor`] is the service-wide ledger `paperbench serve` keeps of
//! every in-flight sweep: it enforces the admission bound (excess requests
//! are shed with a `busy` event instead of spawning unbounded session
//! threads), answers `status` requests, drives the SIGTERM graceful drain,
//! and broadcasts service-level events (`heartbeat`, the final `bye`) to
//! every connected client.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A shared cooperative-cancellation handle: an atomic flag plus an optional
/// wall-clock deadline. Cheap to clone (one `Arc`), cheap to poll (one
/// relaxed load on the common path), safe to fire from any thread or from a
/// signal-driven watcher.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Absolute deadline; `None` = no deadline. Set once at construction.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once `deadline` of wall-clock time
    /// has elapsed (the protocol's per-sweep `deadline_secs`).
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + deadline),
            }),
        }
    }

    /// Raise the flag. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Has the token fired (explicit cancel *or* expired deadline)? The
    /// explicit-flag check is a single relaxed atomic load, so this is safe
    /// to poll from the simulator's abort hook.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Was the token *explicitly* cancelled (as opposed to expiring)?
    /// Distinguishes the `cancelled` event's `reason` field.
    pub fn cancelled_explicitly(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }
}

/// Progress card of one in-flight sweep, shared between the session thread
/// running it and the supervisor's status reporting.
#[derive(Debug)]
pub struct SweepEntry {
    /// Client-chosen request id (echoed on its events), if any.
    pub client_id: Option<u64>,
    /// Experiment name.
    pub experiment: String,
    /// Journal path, if the request attached one.
    pub journal: Option<String>,
    /// When the sweep was admitted.
    pub started: Instant,
    /// Runs merged so far (updated by the progress callback).
    pub done: AtomicUsize,
    /// Total runs of the current batch (0 until the first batch starts).
    pub total: AtomicUsize,
    /// The sweep's cancellation handle.
    pub token: CancelToken,
}

/// Anything that can deliver a protocol event to a client. Implemented by
/// the serve layer's `EventSink`; registered with the supervisor so drain
/// and heartbeat machinery can broadcast without knowing the stream type.
pub trait EventEmit: Send + Sync {
    /// Best-effort single-line delivery (errors are swallowed; a dead
    /// client latches the sink instead of failing the service).
    fn emit_event(&self, event: &serde_json::Value);
}

/// Service-wide supervision state shared by every connection of a
/// `paperbench serve` process.
pub struct Supervisor {
    started: Instant,
    pool_jobs: usize,
    max_inflight: usize,
    sweeps: Mutex<HashMap<u64, Arc<SweepEntry>>>,
    next_seq: AtomicU64,
    /// Requests shed by admission control.
    shed: AtomicU64,
    /// Sweeps that ended cancelled (explicit cancel, deadline, or drain).
    cancelled: AtomicU64,
    /// Sweeps that ran to completion.
    completed: AtomicU64,
    /// Raised by the SIGTERM/SIGINT drain; new sweeps are shed while set.
    draining: AtomicBool,
    /// Registered client sinks for service-level broadcasts.
    sinks: Mutex<HashMap<u64, Arc<dyn EventEmit>>>,
    next_sink: AtomicU64,
}

impl Supervisor {
    /// A supervisor for a service whose pool has `pool_jobs` workers,
    /// admitting at most `max_inflight` concurrent sweeps (`0` picks the
    /// default bound of `2 × pool_jobs`).
    pub fn new(pool_jobs: usize, max_inflight: usize) -> Arc<Self> {
        let max_inflight = if max_inflight == 0 { 2 * pool_jobs.max(1) } else { max_inflight };
        Arc::new(Supervisor {
            started: Instant::now(),
            pool_jobs,
            max_inflight,
            sweeps: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(1),
            shed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            sinks: Mutex::new(HashMap::new()),
            next_sink: AtomicU64::new(1),
        })
    }

    /// The admission bound.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// In-flight sweep count.
    pub fn active(&self) -> usize {
        lock(&self.sweeps).len()
    }

    /// Is the service draining towards exit?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Admit one sweep, or shed it. Returns the sweep's supervisor sequence
    /// number and its entry on success; `None` (and a bumped shed counter)
    /// when the in-flight table is full or the service is draining.
    pub fn admit(
        &self,
        client_id: Option<u64>,
        experiment: &str,
        journal: Option<String>,
        token: CancelToken,
    ) -> Option<(u64, Arc<SweepEntry>)> {
        let mut sweeps = lock(&self.sweeps);
        if self.is_draining() || sweeps.len() >= self.max_inflight {
            self.shed.fetch_add(1, Ordering::SeqCst);
            return None;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let entry = Arc::new(SweepEntry {
            client_id,
            experiment: experiment.to_string(),
            journal,
            started: Instant::now(),
            done: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            token,
        });
        sweeps.insert(seq, Arc::clone(&entry));
        Some((seq, entry))
    }

    /// Retire one sweep from the in-flight table, counting its outcome.
    pub fn finish(&self, seq: u64, was_cancelled: bool) {
        lock(&self.sweeps).remove(&seq);
        if was_cancelled {
            self.cancelled.fetch_add(1, Ordering::SeqCst);
        } else {
            self.completed.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Fire the cancel token of the in-flight sweep `seq`. Returns whether
    /// such a sweep existed.
    pub fn cancel_seq(&self, seq: u64) -> bool {
        match lock(&self.sweeps).get(&seq) {
            Some(entry) => {
                entry.token.cancel();
                true
            }
            None => false,
        }
    }

    /// Fire every in-flight sweep's token (the drain path).
    pub fn cancel_all(&self) {
        for entry in lock(&self.sweeps).values() {
            entry.token.cancel();
        }
    }

    /// Register a client sink for service-level broadcasts; returns a
    /// handle to pass to [`Supervisor::unregister_sink`] at session end.
    pub fn register_sink(&self, sink: Arc<dyn EventEmit>) -> u64 {
        let id = self.next_sink.fetch_add(1, Ordering::SeqCst);
        lock(&self.sinks).insert(id, sink);
        id
    }

    /// Drop a client sink (its session ended).
    pub fn unregister_sink(&self, id: u64) {
        lock(&self.sinks).remove(&id);
    }

    /// Deliver `event` to every registered client (best effort).
    pub fn broadcast(&self, event: &serde_json::Value) {
        let sinks: Vec<Arc<dyn EventEmit>> = lock(&self.sinks).values().cloned().collect();
        for sink in sinks {
            sink.emit_event(event);
        }
    }

    /// The introspection payload served to `status` requests and embedded
    /// in `heartbeat` events: uptime, pool size, the admission bound,
    /// per-sweep progress, and the shed/cancel/complete counters. Journal
    /// paths are included so an operator can find the resumable state of
    /// anything in flight.
    pub fn status(&self) -> serde_json::Value {
        let sweeps = lock(&self.sweeps);
        let mut inflight: Vec<(u64, serde_json::Value)> = sweeps
            .iter()
            .map(|(seq, e)| {
                (
                    *seq,
                    serde_json::json!({
                        "seq": seq,
                        "id": e.client_id,
                        "experiment": e.experiment,
                        "done": e.done.load(Ordering::SeqCst),
                        "total": e.total.load(Ordering::SeqCst),
                        "elapsed_ms": e.started.elapsed().as_millis() as u64,
                        "journal": e.journal,
                    }),
                )
            })
            .collect();
        drop(sweeps);
        inflight.sort_by_key(|(seq, _)| *seq);
        serde_json::json!({
            "uptime_secs": self.started.elapsed().as_secs(),
            "pool_jobs": self.pool_jobs,
            "max_inflight": self.max_inflight,
            "inflight": inflight.into_iter().map(|(_, v)| v).collect::<Vec<_>>(),
            "shed": self.shed.load(Ordering::SeqCst),
            "cancelled": self.cancelled.load(Ordering::SeqCst),
            "completed": self.completed.load(Ordering::SeqCst),
            "draining": self.is_draining(),
        })
    }

    /// Graceful drain: stop admitting, cancel every in-flight sweep, wait
    /// up to `grace` for them to retire (they stop at the next abort poll
    /// and their journals end on a clean record boundary), then broadcast
    /// `bye`. Returns `true` if everything drained within the grace period.
    pub fn drain(&self, grace: Duration) -> bool {
        self.draining.store(true, Ordering::SeqCst);
        self.cancel_all();
        let deadline = Instant::now() + grace;
        while self.active() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let clean = self.active() == 0;
        self.broadcast(&serde_json::json!({
            "event": "bye",
            "reason": "drain",
            "drained": clean,
        }));
        clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_fires_on_cancel_and_every_clone_sees_it() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        assert!(t.cancelled_explicitly());
    }

    #[test]
    fn token_fires_on_deadline_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled(), "zero deadline must already have expired");
        assert!(!t.cancelled_explicitly(), "deadline expiry is not an explicit cancel");
    }

    #[test]
    fn admission_sheds_beyond_the_bound_and_frees_on_finish() {
        let sup = Supervisor::new(2, 0); // default bound = 4
        assert_eq!(sup.max_inflight(), 4);
        let mut seqs = Vec::new();
        for i in 0..4 {
            let (seq, _) = sup
                .admit(Some(i), "fig1", None, CancelToken::new())
                .expect("under the bound must admit");
            seqs.push(seq);
        }
        assert!(sup.admit(Some(9), "fig1", None, CancelToken::new()).is_none());
        assert_eq!(sup.status().get("shed").and_then(|v| v.as_u64()), Some(1));
        sup.finish(seqs[0], false);
        assert!(sup.admit(Some(9), "fig1", None, CancelToken::new()).is_some());
    }

    #[test]
    fn drain_sheds_new_sweeps_and_cancels_inflight() {
        let sup = Supervisor::new(1, 8);
        let (_, entry) = sup.admit(None, "fig3", None, CancelToken::new()).unwrap();
        // Drain with active sweeps times out (nothing retires them here)
        // but must have fired their tokens and latched draining.
        assert!(!sup.drain(Duration::from_millis(50)));
        assert!(entry.token.is_cancelled());
        assert!(sup.is_draining());
        assert!(sup.admit(None, "fig3", None, CancelToken::new()).is_none());
    }

    #[test]
    fn cancel_seq_hits_only_the_named_sweep() {
        let sup = Supervisor::new(2, 8);
        let (a, ea) = sup.admit(Some(1), "fig1", None, CancelToken::new()).unwrap();
        let (_, eb) = sup.admit(Some(2), "fig3", None, CancelToken::new()).unwrap();
        assert!(sup.cancel_seq(a));
        assert!(ea.token.is_cancelled());
        assert!(!eb.token.is_cancelled());
        assert!(!sup.cancel_seq(999), "unknown seq must report false");
    }

    #[test]
    fn status_reports_progress_and_journals() {
        let sup = Supervisor::new(4, 0);
        let (_, entry) =
            sup.admit(Some(7), "fig1", Some("j.jsonl".into()), CancelToken::new()).unwrap();
        entry.done.store(3, Ordering::SeqCst);
        entry.total.store(10, Ordering::SeqCst);
        let s = sup.status();
        let get_u64 = |v: &serde_json::Value, k: &str| v.get(k).and_then(|x| x.as_u64());
        assert_eq!(get_u64(&s, "pool_jobs"), Some(4));
        assert_eq!(get_u64(&s, "max_inflight"), Some(8));
        let flight = s.get("inflight").and_then(|v| v.as_array()).unwrap().clone();
        assert_eq!(flight.len(), 1);
        assert_eq!(get_u64(&flight[0], "id"), Some(7));
        assert_eq!(get_u64(&flight[0], "done"), Some(3));
        assert_eq!(get_u64(&flight[0], "total"), Some(10));
        assert_eq!(flight[0].get("journal").and_then(|v| v.as_str()), Some("j.jsonl"));
    }
}
