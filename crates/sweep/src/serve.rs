//! `paperbench serve` — a supervised, persistent sweep service.
//!
//! Speaks a newline-delimited JSON protocol over any byte stream (stdin/
//! stdout by default, a Unix socket with `--socket`): each request line is
//! a JSON object with a `cmd` field, each response line an object with an
//! `event` field. Requests:
//!
//! - `{"cmd":"ping","id":N}` → `{"event":"pong","id":N}`
//! - `{"cmd":"sweep","id":N,"experiment":"fig1",...}` — run one experiment;
//!   optional fields `target`, `seed`, `jobs`, `journal`, `budget_secs`
//!   mirror the CLI flags, and `deadline_secs` bounds the *whole sweep*
//!   (expiry cancels it cleanly). Streams `start`, `checkpoint` (one per
//!   merged run, in spec order — the same granularity as the journal),
//!   `section` (rendered text), then `done`; a failure yields `error`, a
//!   cancellation `cancelled`, and a request shed by admission control
//!   `busy` (with `retry_after_ms`).
//! - `{"cmd":"cancel","id":N}` — fire the cancel token of this session's
//!   in-flight sweep `N`. The sweep aborts within one abort-poll interval,
//!   its journal ends at a clean record boundary (resumable prefix), and a
//!   `cancelled` event reports how many runs had completed.
//! - `{"cmd":"status","id":N}` → `{"event":"status",...}` with the
//!   supervisor's introspection payload: uptime, pool size, per-sweep
//!   progress, shed/cancel counters, journal paths. The same payload rides
//!   in periodic `heartbeat` events when the service enables them.
//! - `{"cmd":"shutdown"}` → `{"event":"bye"}`, then the service drains
//!   in-flight sweeps and exits.
//!
//! Concurrent sweeps multiplex over one shared [`SweepPool`]: each admitted
//! `sweep` request runs on its own session thread and fans its runs into
//! the pool. Admission is bounded by the shared [`Supervisor`] (default
//! `2 × pool jobs`): excess requests are shed with a `busy` event instead
//! of spawning unbounded threads, so a misbehaving client cannot grow the
//! service without limit — and request lines themselves are read through a
//! bounded reader, so an unterminated line cannot OOM the process either.
//!
//! Failure is contained at three levels: a wedged/panicked/timed-out *run*
//! becomes a non-`ok` record (costing one worker slot for its duration,
//! never the service); a *client* that disappears mid-sweep latches its
//! event sink dead (no further serialization, no further writes) while the
//! sweep still runs to completion so its journal supports resume; and a
//! *cancelled sweep* stops at the next abort poll with nothing torn — the
//! journal holds exactly the completed prefix.

use crate::drive;
use crate::experiments::ExpParams;
use crate::pool::SweepPool;
use crate::supervise::{CancelToken, EventEmit, Supervisor, SweepEntry};
use crate::ResultsDb;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One protocol request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// `"ping"`, `"sweep"`, `"cancel"`, `"status"`, or `"shutdown"`.
    pub cmd: String,
    /// Client-chosen id echoed on every event this request produces (and
    /// the handle `cancel` addresses).
    #[serde(default)]
    pub id: Option<u64>,
    /// Experiment name (see [`drive::EXPERIMENTS`]); `sweep` only.
    #[serde(default)]
    pub experiment: Option<String>,
    /// Per-thread commit budget (default 20000).
    #[serde(default)]
    pub target: Option<u64>,
    /// Global workload seed (default 1).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Worker shards for this sweep's experiment tables (default: the
    /// service pool size).
    #[serde(default)]
    pub jobs: Option<usize>,
    /// JSONL checkpoint journal path; resumed if it exists.
    #[serde(default)]
    pub journal: Option<String>,
    /// Per-run wall-clock budget in seconds.
    #[serde(default)]
    pub budget_secs: Option<u64>,
    /// Whole-sweep wall-clock deadline in seconds; expiry cancels the sweep
    /// cleanly (journal resumable, `cancelled` event with reason
    /// `"deadline"`).
    #[serde(default)]
    pub deadline_secs: Option<u64>,
}

/// Service tuning knobs for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Longest accepted request line in bytes; longer lines are discarded
    /// (bounded memory) and answered with an `error` event.
    pub max_line_bytes: usize,
    /// Emit a `heartbeat` event (carrying the status payload) at this
    /// interval; `None` disables heartbeats.
    pub heartbeat: Option<Duration>,
    /// `retry_after_ms` hint carried on `busy` events.
    pub retry_after_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { max_line_bytes: 64 * 1024, heartbeat: None, retry_after_ms: 500 }
    }
}

/// Serializes events as single lines under one mutex (concurrent sweeps
/// interleave whole lines, never fragments), swallowing write errors: a
/// client that died mid-sweep must not kill the sweep (its journal still
/// has to reach completion for resume to work). The first failed write
/// latches the sink **dead** — subsequent events are dropped before they
/// are even serialized, so a week of sweeping for a vanished client costs
/// nothing beyond the sweep itself.
struct EventSink<W: Write> {
    out: Mutex<W>,
    dead: AtomicBool,
}

impl<W: Write> EventSink<W> {
    fn new(out: W) -> Self {
        EventSink { out: Mutex::new(out), dead: AtomicBool::new(false) }
    }

    /// Has a write failed (client hung up)? Producers use this to skip
    /// rendering payloads nobody will receive.
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn emit(&self, event: &serde_json::Value) {
        if self.is_dead() {
            return;
        }
        if let Ok(line) = serde_json::to_string(event) {
            let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
            let failed = out.write_all(line.as_bytes()).is_err()
                || out.write_all(b"\n").is_err()
                || out.flush().is_err();
            if failed {
                self.dead.store(true, Ordering::Relaxed);
            }
        }
    }
}

impl<W: Write + Send> EventEmit for EventSink<W> {
    fn emit_event(&self, event: &serde_json::Value) {
        self.emit(event);
    }
}

fn id_value(id: Option<u64>) -> serde_json::Value {
    match id {
        Some(id) => serde_json::json!(id),
        None => serde_json::Value::Null,
    }
}

/// Run one admitted `sweep` request to completion (or cancellation),
/// streaming events into `sink`. Returns whether the sweep was cancelled.
fn run_sweep<W: Write + Send + 'static>(
    req: &Request,
    sink: &Arc<EventSink<W>>,
    pool: &Arc<SweepPool>,
    entry: &Arc<SweepEntry>,
) -> bool {
    let id = id_value(req.id);
    let error = |message: String| {
        sink.emit(&serde_json::json!({ "event": "error", "id": id, "message": message }));
    };
    let Some(experiment) = req.experiment.clone() else {
        error("sweep request is missing \"experiment\"".into());
        return false;
    };
    let defaults = ExpParams::default();
    let params = ExpParams {
        commit_target: req.target.unwrap_or(defaults.commit_target),
        seed: req.seed.unwrap_or(defaults.seed),
        jobs: req.jobs.unwrap_or_else(|| pool.jobs()),
    };

    let mut db = ResultsDb::new().with_pool(Arc::clone(pool)).with_cancel(entry.token.clone());
    if let Some(path) = &req.journal {
        db = match db.with_journal(path) {
            Ok(db) => db,
            Err(e) => {
                error(format!("opening journal {path}: {e}"));
                return false;
            }
        };
    }
    if let Some(secs) = req.budget_secs {
        db = db.with_wall_budget(std::time::Duration::from_secs(secs));
    }
    sink.emit(&serde_json::json!({
        "event": "start",
        "id": id,
        "experiment": experiment,
        "resumed_runs": db.len(),
    }));
    // Checkpoints fire as records merge — strictly in spec order, i.e.
    // exactly when (and in the order) the journal grows. The supervisor's
    // progress card is updated first so `status` always reflects at least
    // what the client has been told.
    let db = db.with_progress({
        let sink = Arc::clone(sink);
        let id = id.clone();
        let entry = Arc::clone(entry);
        move |done, total| {
            entry.done.store(done, Ordering::SeqCst);
            entry.total.store(total, Ordering::SeqCst);
            sink.emit(&serde_json::json!({
                "event": "checkpoint",
                "id": id,
                "done": done,
                "total": total,
            }));
        }
    });
    let rendered = drive::run_experiment(&db, &experiment, params);
    if entry.token.is_cancelled() {
        // Whatever was rendered after the token fired came from ephemeral
        // placeholder records; report the cancellation instead. The journal
        // (if any) ends at the last completed record — the resumable prefix.
        sink.emit(&serde_json::json!({
            "event": "cancelled",
            "id": id,
            "experiment": experiment,
            "runs_done": entry.done.load(Ordering::SeqCst),
            "runs_total": entry.total.load(Ordering::SeqCst),
            "reason": if entry.token.cancelled_explicitly() { "cancel" } else { "deadline" },
        }));
        return true;
    }
    match rendered {
        None => error(format!("unknown experiment {experiment:?}")),
        Some(rendered) => {
            // A dead client skips section rendering entirely (the payloads
            // are the large part of the stream); the final `done` is cheap
            // and harmlessly dropped by the latched sink.
            if !sink.is_dead() {
                for (name, text) in &rendered.sections {
                    sink.emit(&serde_json::json!({
                        "event": "section",
                        "id": id,
                        "name": name,
                        "text": text,
                    }));
                }
            }
            sink.emit(&serde_json::json!({
                "event": "done",
                "id": id,
                "sections": rendered.sections.len(),
            }));
        }
    }
    false
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (newline stripped), within the byte cap.
    Line(String),
    /// The line exceeded the cap; it was consumed and discarded.
    TooLong,
    /// End of stream.
    Eof,
}

/// Read one `\n`-terminated line, never buffering more than `cap` bytes: a
/// client streaming an endless unterminated line costs the service one
/// bounded buffer, not its address space. Oversized lines are consumed to
/// their terminator (or EOF) and reported as [`LineRead::TooLong`].
fn read_line_bounded(r: &mut impl BufRead, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut over = false;
    loop {
        let (done, used) = {
            let chunk = r.fill_buf()?;
            if chunk.is_empty() {
                // EOF: a clean end between lines, or it terminates the
                // final (unterminated) line.
                return Ok(match (buf.is_empty(), over) {
                    (true, false) => LineRead::Eof,
                    (_, true) => LineRead::TooLong,
                    (false, false) => LineRead::Line(String::from_utf8_lossy(&buf).into_owned()),
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if !over && buf.len() + i <= cap {
                        buf.extend_from_slice(&chunk[..i]);
                    } else {
                        over = true;
                    }
                    (true, i + 1)
                }
                None => {
                    if !over && buf.len() + chunk.len() <= cap {
                        buf.extend_from_slice(chunk);
                    } else {
                        over = true;
                        buf.clear();
                    }
                    (false, chunk.len())
                }
            }
        };
        r.consume(used);
        if done {
            return Ok(if over {
                LineRead::TooLong
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// Serve the line protocol on `input`/`output` with a private supervisor
/// and default options. Suitable for single-session services (the stdin
/// mode of the binary) and tests; socket services share one supervisor
/// across connections via [`serve_with`].
pub fn serve<R, W>(input: R, output: W, pool: Arc<SweepPool>) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let supervisor = Supervisor::new(pool.jobs(), 0);
    serve_with(input, output, pool, supervisor, &ServeOptions::default())
}

/// Serve the line protocol on `input`/`output` until EOF or `shutdown`,
/// fanning every admitted sweep's runs into `pool` and recording it with
/// `supervisor` (shared across every connection of a socket service).
/// Sweeps run on their own session threads — reaped as they finish, all
/// drained before returning — so clients can keep several in flight;
/// events from concurrent sweeps interleave line-atomically and carry the
/// request `id` for demultiplexing.
pub fn serve_with<R, W>(
    mut input: R,
    output: W,
    pool: Arc<SweepPool>,
    supervisor: Arc<Supervisor>,
    opts: &ServeOptions,
) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let sink = Arc::new(EventSink::new(output));
    let sink_handle = supervisor.register_sink(Arc::clone(&sink) as Arc<dyn EventEmit>);
    // This session's in-flight sweeps, client id → supervisor seq: the
    // scope `cancel` resolves ids in (ids are client-chosen, so they are
    // only meaningful within one connection).
    let session_sweeps: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let heartbeat = opts.heartbeat.map(|interval| {
        let sink = Arc::clone(&sink);
        let supervisor = Arc::clone(&supervisor);
        let done = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&done);
        let handle = std::thread::spawn(move || {
            // Tick in small steps so session teardown never waits a full
            // interval on this thread.
            let step = Duration::from_millis(10).min(interval);
            let mut elapsed = Duration::ZERO;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(step);
                elapsed += step;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    let mut event = serde_json::json!({ "event": "heartbeat" });
                    merge_status(&mut event, supervisor.status());
                    sink.emit(&event);
                }
            }
        });
        (done, handle)
    });
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Reap finished sweep threads before (possibly) blocking on the
        // next request: a long-lived service must not accumulate one
        // JoinHandle per completed sweep.
        let mut i = 0;
        while i < sessions.len() {
            if sessions[i].is_finished() {
                let _ = sessions.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        let line = match read_line_bounded(&mut input, opts.max_line_bytes) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::TooLong) => {
                sink.emit(&serde_json::json!({
                    "event": "error",
                    "id": null,
                    "message": format!(
                        "request line exceeds {} bytes and was discarded",
                        opts.max_line_bytes
                    ),
                }));
                continue;
            }
            Ok(LineRead::Eof) | Err(_) => break, // client hung up
        };
        if line.trim().is_empty() {
            continue;
        }
        let req: Request = match serde_json::from_str(&line) {
            Ok(req) => req,
            Err(e) => {
                sink.emit(&serde_json::json!({
                    "event": "error",
                    "id": null,
                    "message": format!("unparseable request: {e}"),
                }));
                continue;
            }
        };
        match req.cmd.as_str() {
            "ping" => sink.emit(&serde_json::json!({ "event": "pong", "id": id_value(req.id) })),
            "status" => {
                let mut event = serde_json::json!({ "event": "status", "id": id_value(req.id) });
                merge_status(&mut event, supervisor.status());
                sink.emit(&event);
            }
            "cancel" => {
                let found = req.id.is_some_and(|cid| {
                    let seq = session_sweeps.lock().unwrap_or_else(|e| e.into_inner());
                    let seq = seq.get(&cid).copied();
                    seq.is_some_and(|s| supervisor.cancel_seq(s))
                });
                if found {
                    sink.emit(&serde_json::json!({
                        "event": "cancelling",
                        "id": id_value(req.id),
                    }));
                } else {
                    sink.emit(&serde_json::json!({
                        "event": "error",
                        "id": id_value(req.id),
                        "message": match req.id {
                            Some(cid) => format!("no in-flight sweep with id {cid}"),
                            None => "cancel requires \"id\"".to_string(),
                        },
                    }));
                }
            }
            "sweep" => {
                let token = match req.deadline_secs {
                    Some(secs) => CancelToken::with_deadline(Duration::from_secs(secs)),
                    None => CancelToken::new(),
                };
                let experiment = req.experiment.as_deref().unwrap_or("?");
                match supervisor.admit(req.id, experiment, req.journal.clone(), token) {
                    None => sink.emit(&serde_json::json!({
                        "event": "busy",
                        "id": id_value(req.id),
                        "retry_after_ms": opts.retry_after_ms,
                        "inflight": supervisor.active(),
                        "max_inflight": supervisor.max_inflight(),
                        "draining": supervisor.is_draining(),
                    })),
                    Some((seq, entry)) => {
                        if let Some(cid) = req.id {
                            session_sweeps
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .insert(cid, seq);
                        }
                        let sink = Arc::clone(&sink);
                        let pool = Arc::clone(&pool);
                        let supervisor = Arc::clone(&supervisor);
                        let session_sweeps = Arc::clone(&session_sweeps);
                        sessions.push(std::thread::spawn(move || {
                            let cancelled = run_sweep(&req, &sink, &pool, &entry);
                            supervisor.finish(seq, cancelled);
                            if let Some(cid) = req.id {
                                let mut map =
                                    session_sweeps.lock().unwrap_or_else(|e| e.into_inner());
                                // Only un-register if a newer sweep has not
                                // reused the client id.
                                if map.get(&cid) == Some(&seq) {
                                    map.remove(&cid);
                                }
                            }
                        }));
                    }
                }
            }
            "shutdown" => {
                sink.emit(&serde_json::json!({ "event": "bye" }));
                break;
            }
            other => sink.emit(&serde_json::json!({
                "event": "error",
                "id": id_value(req.id),
                "message": format!("unknown cmd {other:?}"),
            })),
        }
    }
    if let Some((stop, handle)) = heartbeat {
        stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
    }
    // Drain in-flight sweeps: their journals must reach completion even if
    // the client is gone (that is what makes kill-and-resume work). A
    // SIGTERM drain cancels their tokens instead, so they stop at the next
    // abort poll with the journal on a record boundary.
    for s in sessions {
        let _ = s.join();
    }
    supervisor.unregister_sink(sink_handle);
    Ok(())
}

/// Splice the supervisor's status fields into an event object (the stub
/// and real serde_json both lack a cheap object-merge, so do it by hand).
fn merge_status(event: &mut serde_json::Value, status: serde_json::Value) {
    if let (serde_json::Value::Object(event), serde_json::Value::Object(fields)) = (event, status) {
        event.extend(fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::os::unix::net::UnixStream;

    fn parse_events(raw: &str) -> Vec<serde_json::Value> {
        raw.lines().map(|l| serde_json::from_str(l).expect("event must parse")).collect()
    }

    fn event_str<'a>(v: &'a serde_json::Value, key: &str) -> &'a str {
        v.get(key).and_then(|s| s.as_str()).unwrap_or("")
    }

    fn events_of_kind<'a>(
        events: &'a [serde_json::Value],
        kind: &str,
    ) -> Vec<&'a serde_json::Value> {
        events.iter().filter(|e| event_str(e, "event") == kind).collect()
    }

    /// Spawn a served session over a socketpair, returning the client end
    /// and the serve handle.
    fn spawn_session(
        pool: Arc<SweepPool>,
        supervisor: Arc<Supervisor>,
        opts: ServeOptions,
    ) -> (UnixStream, std::thread::JoinHandle<std::io::Result<()>>) {
        let (client, server) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || {
            let input = BufReader::new(server.try_clone().unwrap());
            serve_with(input, server, pool, supervisor, &opts)
        });
        (client, handle)
    }

    #[test]
    fn ping_shutdown_roundtrip() {
        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(2);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(b"{\"cmd\":\"ping\",\"id\":7}\nnot json\n{\"cmd\":\"shutdown\"}\n")
                .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert_eq!(event_str(&events[0], "event"), "pong");
        assert_eq!(events[0].get("id").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(event_str(&events[1], "event"), "error");
        assert_eq!(event_str(&events[2], "event"), "bye");
    }

    #[test]
    fn sweep_streams_checkpoints_then_sections() {
        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(2);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(
                b"{\"cmd\":\"sweep\",\"id\":1,\"experiment\":\"table1\",\"target\":800}\n\
                  {\"cmd\":\"shutdown\"}\n",
            )
            .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert!(events.iter().any(|e| event_str(e, "event") == "start"));
        let section = events
            .iter()
            .find(|e| event_str(e, "event") == "section")
            .expect("sweep must stream its section");
        assert_eq!(event_str(section, "name"), "table1");
        assert!(event_str(section, "text").contains("Table 1"));
        assert!(events.iter().any(|e| event_str(e, "event") == "done"));
    }

    #[test]
    fn unknown_experiment_reports_error_not_death() {
        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(2);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(
                b"{\"cmd\":\"sweep\",\"id\":2,\"experiment\":\"fig99\"}\n\
                  {\"cmd\":\"ping\",\"id\":3}\n{\"cmd\":\"shutdown\"}\n",
            )
            .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert!(
            events
                .iter()
                .any(|e| event_str(e, "event") == "error"
                    && event_str(e, "message").contains("fig99"))
        );
        assert!(
            events.iter().any(|e| event_str(e, "event") == "pong"),
            "service must keep answering after a bad sweep"
        );
    }

    #[test]
    fn client_kill_mid_sweep_leaves_a_complete_resumable_journal() {
        let dir = std::env::temp_dir().join(format!("smt-serve-kill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("serve.jsonl");
        let _ = std::fs::remove_file(&journal);

        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(4);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            let req = format!(
                "{{\"cmd\":\"sweep\",\"id\":9,\"experiment\":\"fig1\",\"target\":800,\
                 \"journal\":{:?}}}\n",
                journal.to_str().unwrap()
            );
            w.write_all(req.as_bytes()).unwrap();
        }
        // Kill the client immediately: reads hit EOF, writes hit EPIPE.
        drop(client);
        // The service must finish the sweep anyway and exit cleanly.
        handle.join().unwrap().unwrap();

        // The journal must be complete and torn-line-free: a resumed db
        // loads it and re-renders fig1 without executing a single new run.
        let db = ResultsDb::new().with_journal(&journal).unwrap();
        let before = db.len();
        assert!(before > 0, "the killed sweep must still have journaled its runs");
        let rendered =
            drive::run_experiment(&db, "fig1", ExpParams { commit_target: 800, seed: 1, jobs: 1 })
                .unwrap();
        assert_eq!(db.len(), before, "resume must not need any new runs");
        assert!(rendered.sections[0].1.contains("Figure 1"));

        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn oversized_request_line_is_shed_not_buffered() {
        let pool = SweepPool::shared(1);
        let supervisor = Supervisor::new(1, 0);
        let opts = ServeOptions { max_line_bytes: 256, ..ServeOptions::default() };
        let (client, handle) = spawn_session(pool, supervisor, opts);
        {
            let mut w = client.try_clone().unwrap();
            // 4 KiB of garbage on one line — 16x the cap.
            let mut big = vec![b'x'; 4096];
            big.push(b'\n');
            w.write_all(&big).unwrap();
            w.write_all(b"{\"cmd\":\"ping\",\"id\":1}\n{\"cmd\":\"shutdown\"}\n").unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert!(
            event_str(&events[0], "message").contains("exceeds 256 bytes"),
            "oversized line must be rejected: {raw}"
        );
        assert_eq!(
            event_str(&events[1], "event"),
            "pong",
            "the service must keep answering after shedding the line"
        );
    }

    #[test]
    fn admission_control_sheds_excess_sweeps_with_busy() {
        // One worker, admission bound of 2: the third concurrent sweep and
        // beyond must be shed with `busy`, not queued without limit. Large
        // targets keep the admitted sweeps in flight while the flood lands
        // (requests on one connection are processed strictly in order, so
        // by the time the flood is parsed the first two sweeps hold slots).
        let pool = SweepPool::shared(1);
        let supervisor = Supervisor::new(1, 2);
        let (client, handle) =
            spawn_session(Arc::clone(&pool), Arc::clone(&supervisor), ServeOptions::default());
        {
            let mut w = client.try_clone().unwrap();
            for i in 0..4u64 {
                let req = format!(
                    "{{\"cmd\":\"sweep\",\"id\":{i},\"experiment\":\"fig1\",\"target\":20000}}\n"
                );
                w.write_all(req.as_bytes()).unwrap();
            }
            w.write_all(b"{\"cmd\":\"status\",\"id\":99}\n").unwrap();
            // Cancel the admitted two so the test does not simulate four
            // full fig1 sweeps.
            w.write_all(b"{\"cmd\":\"cancel\",\"id\":0}\n{\"cmd\":\"cancel\",\"id\":1}\n").unwrap();
            w.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        let busy = events_of_kind(&events, "busy");
        assert_eq!(busy.len(), 2, "exactly the two excess sweeps must be shed:\n{raw}");
        for b in &busy {
            assert!(b.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
            assert_eq!(b.get("max_inflight").and_then(|v| v.as_u64()), Some(2));
        }
        let status = events_of_kind(&events, "status")[0];
        assert_eq!(
            status.get("inflight").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(2),
            "in-flight table must be pinned at the admission bound"
        );
        assert_eq!(status.get("shed").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(events_of_kind(&events, "cancelled").len(), 2);
    }

    #[test]
    fn cancel_aborts_an_inflight_sweep_and_reports_progress() {
        let pool = SweepPool::shared(2);
        let supervisor = Supervisor::new(2, 0);
        let (client, handle) =
            spawn_session(Arc::clone(&pool), Arc::clone(&supervisor), ServeOptions::default());
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(
                b"{\"cmd\":\"sweep\",\"id\":5,\"experiment\":\"fig1\",\"target\":20000}\n\
                  {\"cmd\":\"cancel\",\"id\":5}\n{\"cmd\":\"shutdown\"}\n",
            )
            .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert!(!events_of_kind(&events, "cancelling").is_empty());
        let cancelled = events_of_kind(&events, "cancelled");
        assert_eq!(cancelled.len(), 1, "cancel must end the sweep with a cancelled event:\n{raw}");
        assert_eq!(cancelled[0].get("id").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(event_str(cancelled[0], "reason"), "cancel");
        assert!(
            !events.iter().any(|e| event_str(e, "event") == "done"),
            "a cancelled sweep must not also report done"
        );
    }

    #[test]
    fn sweep_deadline_cancels_with_reason_deadline() {
        let pool = SweepPool::shared(2);
        let supervisor = Supervisor::new(2, 0);
        let (client, handle) =
            spawn_session(Arc::clone(&pool), Arc::clone(&supervisor), ServeOptions::default());
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(
                b"{\"cmd\":\"sweep\",\"id\":6,\"experiment\":\"fig1\",\"target\":20000,\
                   \"deadline_secs\":0}\n{\"cmd\":\"shutdown\"}\n",
            )
            .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        let cancelled = events_of_kind(&events, "cancelled");
        assert_eq!(cancelled.len(), 1, "an expired deadline must cancel the sweep:\n{raw}");
        assert_eq!(event_str(cancelled[0], "reason"), "deadline");
    }

    #[test]
    fn cancel_of_unknown_id_is_an_error() {
        let pool = SweepPool::shared(1);
        let supervisor = Supervisor::new(1, 0);
        let (client, handle) = spawn_session(pool, supervisor, ServeOptions::default());
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(b"{\"cmd\":\"cancel\",\"id\":42}\n{\"cmd\":\"shutdown\"}\n").unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert!(event_str(&events[0], "message").contains("no in-flight sweep with id 42"));
    }

    #[test]
    fn status_reports_service_shape_when_idle() {
        let pool = SweepPool::shared(3);
        let supervisor = Supervisor::new(3, 0);
        let (client, handle) = spawn_session(pool, supervisor, ServeOptions::default());
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(b"{\"cmd\":\"status\",\"id\":1}\n{\"cmd\":\"shutdown\"}\n").unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        let status = &events[0];
        assert_eq!(event_str(status, "event"), "status");
        assert_eq!(status.get("pool_jobs").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(status.get("max_inflight").and_then(|v| v.as_u64()), Some(6));
        assert_eq!(status.get("inflight").and_then(|v| v.as_array()).map(|a| a.len()), Some(0));
        assert_eq!(status.get("draining").and_then(|v| v.as_bool()), Some(false));
    }

    #[test]
    fn heartbeats_carry_the_status_payload() {
        let pool = SweepPool::shared(1);
        let supervisor = Supervisor::new(1, 0);
        let opts =
            ServeOptions { heartbeat: Some(Duration::from_millis(30)), ..ServeOptions::default() };
        let (client, handle) = spawn_session(pool, supervisor, opts);
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(b"{\"cmd\":\"ping\",\"id\":1}\n").unwrap();
            std::thread::sleep(Duration::from_millis(200));
            w.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        let beats = events_of_kind(&events, "heartbeat");
        assert!(!beats.is_empty(), "a 30ms heartbeat must fire within 200ms:\n{raw}");
        assert!(beats[0].get("pool_jobs").and_then(|v| v.as_u64()).is_some());
        assert!(beats[0].get("uptime_secs").is_some());
    }
}
