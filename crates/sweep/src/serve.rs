//! `paperbench serve` — a persistent sweep service.
//!
//! Speaks a newline-delimited JSON protocol over any byte stream (stdin/
//! stdout by default, a Unix socket with `--socket`): each request line is
//! a JSON object with a `cmd` field, each response line an object with an
//! `event` field. Requests:
//!
//! - `{"cmd":"ping","id":N}` → `{"event":"pong","id":N}`
//! - `{"cmd":"sweep","id":N,"experiment":"fig1",...}` — run one experiment;
//!   optional fields `target`, `seed`, `jobs`, `journal`, `budget_secs`
//!   mirror the CLI flags. Streams `start`, `checkpoint` (one per merged
//!   run, in spec order — the same granularity as the journal), `section`
//!   (rendered text), then `done`; a failure yields `error` instead.
//! - `{"cmd":"shutdown"}` → `{"event":"bye"}`, then the service drains
//!   in-flight sweeps and exits.
//!
//! Concurrent sweeps multiplex over one shared [`SweepPool`]: each `sweep`
//! request runs on its own session thread and fans its runs into the pool,
//! so a service sized `--jobs 8` keeps eight workers busy across however
//! many clients are connected. Failure is contained at two levels: a
//! wedged/panicked/timed-out *run* becomes a non-`ok` record (costing one
//! worker slot for its duration, never the service), and a *client* that
//! disappears mid-sweep only makes event writes no-ops — the sweep still
//! runs to completion so its journal is complete and a later `sweep`
//! against the same journal resumes instead of recomputing.

use crate::drive;
use crate::experiments::ExpParams;
use crate::pool::SweepPool;
use crate::ResultsDb;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};

/// One protocol request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// `"ping"`, `"sweep"`, or `"shutdown"`.
    pub cmd: String,
    /// Client-chosen id echoed on every event this request produces.
    #[serde(default)]
    pub id: Option<u64>,
    /// Experiment name (see [`drive::EXPERIMENTS`]); `sweep` only.
    #[serde(default)]
    pub experiment: Option<String>,
    /// Per-thread commit budget (default 20000).
    #[serde(default)]
    pub target: Option<u64>,
    /// Global workload seed (default 1).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Worker shards for this sweep's experiment tables (default: the
    /// service pool size).
    #[serde(default)]
    pub jobs: Option<usize>,
    /// JSONL checkpoint journal path; resumed if it exists.
    #[serde(default)]
    pub journal: Option<String>,
    /// Per-run wall-clock budget in seconds.
    #[serde(default)]
    pub budget_secs: Option<u64>,
}

/// Serializes events as single lines, swallowing write errors: a client
/// that died mid-sweep must not kill the sweep (its journal still has to
/// reach completion for resume to work).
struct EventSink<W: Write> {
    out: Mutex<W>,
}

impl<W: Write> EventSink<W> {
    fn emit(&self, event: &serde_json::Value) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
            let _ = out.flush();
        }
    }
}

fn id_value(id: Option<u64>) -> serde_json::Value {
    match id {
        Some(id) => serde_json::json!(id),
        None => serde_json::Value::Null,
    }
}

/// Run one `sweep` request to completion, streaming events into `sink`.
fn run_sweep<W: Write + Send + 'static>(
    req: &Request,
    sink: &Arc<EventSink<W>>,
    pool: &Arc<SweepPool>,
) {
    let id = id_value(req.id);
    let error = |message: String| {
        sink.emit(&serde_json::json!({ "event": "error", "id": id, "message": message }));
    };
    let Some(experiment) = req.experiment.clone() else {
        return error("sweep request is missing \"experiment\"".into());
    };
    let defaults = ExpParams::default();
    let params = ExpParams {
        commit_target: req.target.unwrap_or(defaults.commit_target),
        seed: req.seed.unwrap_or(defaults.seed),
        jobs: req.jobs.unwrap_or_else(|| pool.jobs()),
    };

    let mut db = ResultsDb::new().with_pool(Arc::clone(pool));
    if let Some(path) = &req.journal {
        db = match db.with_journal(path) {
            Ok(db) => db,
            Err(e) => return error(format!("opening journal {path}: {e}")),
        };
    }
    if let Some(secs) = req.budget_secs {
        db = db.with_wall_budget(std::time::Duration::from_secs(secs));
    }
    sink.emit(&serde_json::json!({
        "event": "start",
        "id": id,
        "experiment": experiment,
        "resumed_runs": db.len(),
    }));
    // Checkpoints fire as records merge — strictly in spec order, i.e.
    // exactly when (and in the order) the journal grows.
    let db = db.with_progress({
        let sink = Arc::clone(sink);
        let id = id.clone();
        move |done, total| {
            sink.emit(&serde_json::json!({
                "event": "checkpoint",
                "id": id,
                "done": done,
                "total": total,
            }));
        }
    });
    match drive::run_experiment(&db, &experiment, params) {
        None => error(format!("unknown experiment {experiment:?}")),
        Some(rendered) => {
            for (name, text) in &rendered.sections {
                sink.emit(&serde_json::json!({
                    "event": "section",
                    "id": id,
                    "name": name,
                    "text": text,
                }));
            }
            sink.emit(&serde_json::json!({
                "event": "done",
                "id": id,
                "sections": rendered.sections.len(),
            }));
        }
    }
}

/// Serve the line protocol on `input`/`output` until EOF or `shutdown`,
/// fanning every sweep's runs into `pool`. Sweeps run on their own session
/// threads (all drained before returning), so clients can keep several in
/// flight; events from concurrent sweeps interleave line-atomically and
/// carry the request `id` for demultiplexing.
pub fn serve<R, W>(input: R, output: W, pool: Arc<SweepPool>) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let sink = Arc::new(EventSink { out: Mutex::new(output) });
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for line in input.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // client hung up mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let req: Request = match serde_json::from_str(&line) {
            Ok(req) => req,
            Err(e) => {
                sink.emit(&serde_json::json!({
                    "event": "error",
                    "id": null,
                    "message": format!("unparseable request: {e}"),
                }));
                continue;
            }
        };
        match req.cmd.as_str() {
            "ping" => sink.emit(&serde_json::json!({ "event": "pong", "id": id_value(req.id) })),
            "sweep" => {
                let sink = Arc::clone(&sink);
                let pool = Arc::clone(&pool);
                sessions.push(std::thread::spawn(move || run_sweep(&req, &sink, &pool)));
            }
            "shutdown" => {
                sink.emit(&serde_json::json!({ "event": "bye" }));
                break;
            }
            other => sink.emit(&serde_json::json!({
                "event": "error",
                "id": id_value(req.id),
                "message": format!("unknown cmd {other:?}"),
            })),
        }
    }
    // Drain in-flight sweeps: their journals must reach completion even if
    // the client is gone (that is what makes kill-and-resume work).
    for s in sessions {
        let _ = s.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::os::unix::net::UnixStream;

    fn parse_events(raw: &str) -> Vec<serde_json::Value> {
        raw.lines().map(|l| serde_json::from_str(l).expect("event must parse")).collect()
    }

    fn event_str<'a>(v: &'a serde_json::Value, key: &str) -> &'a str {
        v.get(key).and_then(|s| s.as_str()).unwrap_or("")
    }

    #[test]
    fn ping_shutdown_roundtrip() {
        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(2);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(b"{\"cmd\":\"ping\",\"id\":7}\nnot json\n{\"cmd\":\"shutdown\"}\n")
                .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert_eq!(event_str(&events[0], "event"), "pong");
        assert_eq!(events[0].get("id").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(event_str(&events[1], "event"), "error");
        assert_eq!(event_str(&events[2], "event"), "bye");
    }

    #[test]
    fn sweep_streams_checkpoints_then_sections() {
        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(2);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(
                b"{\"cmd\":\"sweep\",\"id\":1,\"experiment\":\"table1\",\"target\":800}\n\
                  {\"cmd\":\"shutdown\"}\n",
            )
            .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert!(events.iter().any(|e| event_str(e, "event") == "start"));
        let section = events
            .iter()
            .find(|e| event_str(e, "event") == "section")
            .expect("sweep must stream its section");
        assert_eq!(event_str(section, "name"), "table1");
        assert!(event_str(section, "text").contains("Table 1"));
        assert!(events.iter().any(|e| event_str(e, "event") == "done"));
    }

    #[test]
    fn unknown_experiment_reports_error_not_death() {
        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(2);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            w.write_all(
                b"{\"cmd\":\"sweep\",\"id\":2,\"experiment\":\"fig99\"}\n\
                  {\"cmd\":\"ping\",\"id\":3}\n{\"cmd\":\"shutdown\"}\n",
            )
            .unwrap();
        }
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
        handle.join().unwrap().unwrap();
        let events = parse_events(&raw);
        assert!(
            events
                .iter()
                .any(|e| event_str(e, "event") == "error"
                    && event_str(e, "message").contains("fig99"))
        );
        assert!(
            events.iter().any(|e| event_str(e, "event") == "pong"),
            "service must keep answering after a bad sweep"
        );
    }

    #[test]
    fn client_kill_mid_sweep_leaves_a_complete_resumable_journal() {
        let dir = std::env::temp_dir().join(format!("smt-serve-kill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("serve.jsonl");
        let _ = std::fs::remove_file(&journal);

        let (client, server) = UnixStream::pair().unwrap();
        let pool = SweepPool::shared(4);
        let handle = {
            let input = BufReader::new(server.try_clone().unwrap());
            std::thread::spawn(move || serve(input, server, pool))
        };
        {
            let mut w = client.try_clone().unwrap();
            let req = format!(
                "{{\"cmd\":\"sweep\",\"id\":9,\"experiment\":\"fig1\",\"target\":800,\
                 \"journal\":{:?}}}\n",
                journal.to_str().unwrap()
            );
            w.write_all(req.as_bytes()).unwrap();
        }
        // Kill the client immediately: reads hit EOF, writes hit EPIPE.
        drop(client);
        // The service must finish the sweep anyway and exit cleanly.
        handle.join().unwrap().unwrap();

        // The journal must be complete and torn-line-free: a resumed db
        // loads it and re-renders fig1 without executing a single new run.
        let db = ResultsDb::new().with_journal(&journal).unwrap();
        let before = db.len();
        assert!(before > 0, "the killed sweep must still have journaled its runs");
        let rendered =
            drive::run_experiment(&db, "fig1", ExpParams { commit_target: 800, seed: 1, jobs: 1 })
                .unwrap();
        assert_eq!(db.len(), before, "resume must not need any new runs");
        assert!(rendered.sections[0].1.contains("Figure 1"));

        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_dir(&dir);
    }
}
