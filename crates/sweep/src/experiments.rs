//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Experiment index (DESIGN.md §5): Figure 1 (2OP_BLOCK vs traditional),
//! Figures 3–8 (throughput and fairness for 2/3/4-threaded workloads),
//! plus the in-text statistics: all-thread dispatch-stall fractions (§3/§5),
//! the HDI pile-up and NDI-dependence fractions (§4), mean IQ residency
//! (§5) and the idealized-filtering comparison (§4).

use crate::db::ResultsDb;
use crate::runner::RunSpec;
use crate::IQ_SIZES;
use serde::{Deserialize, Serialize};
use smt_core::DispatchPolicy;
use smt_stats::{fairness, harmonic_mean, Fairness};
use smt_workload::{mixes_for, Mix, MixTable};

/// Global experiment parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExpParams {
    /// Stop a run after any thread commits this many instructions.
    pub commit_target: u64,
    /// Global workload seed.
    pub seed: u64,
    /// Worker threads for sharded experiment tables (1 = serial). Runs are
    /// deterministic and merged in input order, so results never depend on
    /// this — only wall-clock does.
    #[serde(default = "default_jobs")]
    pub jobs: usize,
}

fn default_jobs() -> usize {
    1
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams { commit_target: 20_000, seed: 1, jobs: 1 }
    }
}

/// One line in a figure: a labelled series over IQ sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(iq_size, value)` points.
    pub points: Vec<(usize, f64)>,
}

/// A regenerated figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (matching the paper).
    pub title: String,
    /// What the y-axis means.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
    /// Caveats about individual points (e.g. a starved thread forcing a
    /// fairness of zero), rendered under the chart.
    #[serde(default)]
    pub notes: Vec<String>,
}

const POLICIES: [DispatchPolicy; 3] =
    [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo];

fn mix_spec(mix: &Mix, iq: usize, policy: DispatchPolicy, p: ExpParams) -> RunSpec {
    RunSpec::new(&mix.benchmarks, iq, policy, p.commit_target, p.seed)
}

/// Throughput IPC of `mix` under (policy, iq).
fn mix_ipc(db: &ResultsDb, mix: &Mix, iq: usize, policy: DispatchPolicy, p: ExpParams) -> f64 {
    db.get(&mix_spec(mix, iq, policy, p)).ipc
}

/// The paper's fairness metric for `mix` under (policy, iq): harmonic mean
/// of per-thread IPC weighted by the single-threaded IPC on the same
/// machine configuration. `None` only for invalid inputs (a single-thread
/// reference that failed to commit anything); a genuinely starved SMT
/// thread is the *valid* observation [`Fairness::Starved`].
fn mix_fairness(
    db: &ResultsDb,
    mix: &Mix,
    iq: usize,
    policy: DispatchPolicy,
    p: ExpParams,
) -> Option<Fairness> {
    let r = db.get(&mix_spec(mix, iq, policy, p));
    let singles: Vec<f64> = mix
        .benchmarks
        .iter()
        .map(|b| db.single_thread_ipc(b, iq, p.commit_target, p.seed))
        .collect();
    fairness(&r.per_thread_ipc, &singles)
}

/// Warm the database with every run a full regeneration needs, exploiting
/// maximal parallelism (one big batch instead of on-demand trickle).
pub fn prewarm(db: &ResultsDb, p: ExpParams) {
    let mut specs = Vec::new();
    for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
        for mix in mixes_for(table) {
            for iq in IQ_SIZES {
                for policy in POLICIES {
                    specs.push(mix_spec(&mix, iq, policy, p));
                }
            }
            // Idealized-filter comparison (§4) at the headline 64-entry IQ.
            specs.push(mix_spec(&mix, 64, DispatchPolicy::TwoOpBlockOooFiltered, p));
            // Single-thread fairness references.
            for b in &mix.benchmarks {
                for iq in IQ_SIZES {
                    specs.push(RunSpec::new(
                        &[b.as_str()],
                        iq,
                        DispatchPolicy::Traditional,
                        p.commit_target,
                        p.seed,
                    ));
                }
            }
        }
    }
    db.run_all(&specs);
}

/// Figure 1: IPC speedup (harmonic mean across mixes) of the 2OP_BLOCK
/// scheduler over the traditional IQ of the same capacity, for 2/3/4-thread
/// workloads across IQ sizes.
pub fn figure1(db: &ResultsDb, p: ExpParams) -> Figure {
    let mut series = Vec::new();
    for (table, label) in [
        (MixTable::TwoThread, "2 threads"),
        (MixTable::ThreeThread, "3 threads"),
        (MixTable::FourThread, "4 threads"),
    ] {
        let mixes = mixes_for(table);
        let points = IQ_SIZES
            .iter()
            .map(|&iq| {
                let speedups: Vec<f64> = mixes
                    .iter()
                    .map(|m| {
                        mix_ipc(db, m, iq, DispatchPolicy::TwoOpBlock, p)
                            / mix_ipc(db, m, iq, DispatchPolicy::Traditional, p)
                    })
                    .collect();
                (iq, harmonic_mean(&speedups).unwrap_or(0.0))
            })
            .collect();
        series.push(Series { label: label.to_string(), points });
    }
    Figure {
        title: "Figure 1: 2OP_BLOCK speedup over traditional IQ of same capacity".into(),
        y_label: "IPC speedup (hmean across mixes)".into(),
        series,
        notes: Vec::new(),
    }
}

/// Figures 3/5/7: throughput-IPC speedup of each scheduler for the given
/// thread count, normalized per mix to the traditional scheduler of the
/// same capacity (so the traditional series is 1.0 by construction, and a
/// value above 1 means "faster than the baseline machine").
pub fn figure_throughput(db: &ResultsDb, table: MixTable, p: ExpParams) -> Figure {
    let mixes = mixes_for(table);
    let fig_no = match table {
        MixTable::TwoThread => 3,
        MixTable::ThreeThread => 5,
        MixTable::FourThread => 7,
    };
    let mut series = Vec::new();
    for policy in POLICIES {
        let points = IQ_SIZES
            .iter()
            .map(|&iq| {
                let speedups: Vec<f64> = mixes
                    .iter()
                    .map(|m| {
                        mix_ipc(db, m, iq, policy, p)
                            / mix_ipc(db, m, iq, DispatchPolicy::Traditional, p)
                    })
                    .collect();
                (iq, harmonic_mean(&speedups).unwrap_or(0.0))
            })
            .collect();
        series.push(Series { label: policy.name().to_string(), points });
    }
    Figure {
        title: format!(
            "Figure {fig_no}: Throughput IPC speedup, {}-threaded workloads",
            table.num_threads()
        ),
        y_label: "speedup vs traditional of same capacity (hmean)".into(),
        series,
        notes: Vec::new(),
    }
}

/// Figures 4/6/8: improvement in the fairness metric, normalized like the
/// throughput figures.
pub fn figure_fairness(db: &ResultsDb, table: MixTable, p: ExpParams) -> Figure {
    let mixes = mixes_for(table);
    let fig_no = match table {
        MixTable::TwoThread => 4,
        MixTable::ThreeThread => 6,
        MixTable::FourThread => 8,
    };
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for policy in POLICIES {
        let points = IQ_SIZES
            .iter()
            .map(|&iq| {
                let ratios: Vec<f64> = mixes
                    .iter()
                    .map(|m| {
                        let f = mix_fairness(db, m, iq, policy, p);
                        // A starved thread is a real (and damning) fairness
                        // of zero — fold it into the mean, but call it out
                        // so a flat-zero point isn't mistaken for noise.
                        if f == Some(Fairness::Starved) {
                            notes.push(format!(
                                "{} under {} at IQ {iq}: thread starved (fairness 0)",
                                m.name,
                                policy.name()
                            ));
                        }
                        let f = f.map(Fairness::as_f64).unwrap_or(0.0);
                        let base = mix_fairness(db, m, iq, DispatchPolicy::Traditional, p)
                            .map(Fairness::as_f64)
                            .unwrap_or(0.0);
                        if base > 0.0 {
                            f / base
                        } else {
                            0.0
                        }
                    })
                    .collect();
                (iq, harmonic_mean(&ratios).unwrap_or(0.0))
            })
            .collect();
        series.push(Series { label: policy.name().to_string(), points });
    }
    Figure {
        title: format!(
            "Figure {fig_no}: Fairness-metric improvement, {}-threaded workloads",
            table.num_threads()
        ),
        y_label: "fairness vs traditional of same capacity (hmean)".into(),
        series,
        notes,
    }
}

/// One cell of the structured fairness data behind Figures 4/6/8: the raw
/// (un-normalized) metric for every (mix, policy, IQ) point, with the
/// starved-thread degeneracy made explicit instead of flattened to 0.0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairnessCell {
    /// Mix name ("Mix 1"…).
    pub mix: String,
    /// Scheduler.
    pub policy: String,
    /// Issue-queue size.
    pub iq_size: usize,
    /// The metric (0.0 when starved); `None` only for invalid inputs —
    /// a single-thread reference run that committed nothing.
    pub fairness: Option<f64>,
    /// True when some SMT thread committed nothing in the window.
    pub starved: bool,
}

/// The raw fairness metric behind one fairness figure, for `--json`
/// consumers that want the per-mix numbers rather than the rendered chart.
pub fn fairness_detail(db: &ResultsDb, table: MixTable, p: ExpParams) -> Vec<FairnessCell> {
    let mut cells = Vec::new();
    for mix in mixes_for(table) {
        for iq in IQ_SIZES {
            for policy in POLICIES {
                let f = mix_fairness(db, &mix, iq, policy, p);
                cells.push(FairnessCell {
                    mix: mix.name.clone(),
                    policy: policy.name().to_string(),
                    iq_size: iq,
                    fairness: f.map(Fairness::as_f64),
                    starved: f == Some(Fairness::Starved),
                });
            }
        }
    }
    cells
}

/// §3/§5 statistic: fraction of cycles in which *all* threads' dispatch is
/// blocked by the 2OP_BLOCK condition, at the 64-entry IQ. Paper: 43%/17%/7%
/// for 2/3/4-thread workloads under 2OP_BLOCK; ~0.2% for 2 threads with
/// out-of-order dispatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StallRow {
    /// Thread count of the workload table.
    pub threads: usize,
    /// Scheduler.
    pub policy: String,
    /// Mean all-thread NDI-stall fraction across mixes.
    pub stall_frac: f64,
}

/// Compute the dispatch-stall statistics table.
pub fn stall_stats(db: &ResultsDb, p: ExpParams) -> Vec<StallRow> {
    let mut rows = Vec::new();
    for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
        let mixes = mixes_for(table);
        for policy in [DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo] {
            let fracs: Vec<f64> =
                mixes.iter().map(|m| db.get(&mix_spec(m, 64, policy, p)).all_stall_frac).collect();
            rows.push(StallRow {
                threads: table.num_threads(),
                policy: policy.name().to_string(),
                stall_frac: fracs.iter().sum::<f64>() / fracs.len() as f64,
            });
        }
    }
    rows
}

/// One thread's share of the per-stage stall-attribution counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StallAttributionRow {
    /// Hardware thread slot.
    pub thread: usize,
    /// Benchmark running in that slot.
    pub benchmark: String,
    /// Cycles dispatch was blocked by the NDI condition.
    pub ndi_blocked_cycles: u64,
    /// Cycles dispatch was blocked by a full IQ.
    pub iq_full_cycles: u64,
    /// Cycles rename was blocked by a full ROB.
    pub rob_full_cycles: u64,
    /// Cycles rename was blocked by a full LSQ.
    pub lsq_full_cycles: u64,
    /// Sum of the four attributions above.
    pub dispatch_stall_cycles: u64,
    /// Data-side L1 hits.
    #[serde(default)]
    pub l1d_hits: u64,
    /// Data-side L1 misses.
    #[serde(default)]
    pub l1d_misses: u64,
    /// Data-side L2 hits.
    #[serde(default)]
    pub l2_hits: u64,
    /// Data-side L2 misses (main-memory accesses).
    #[serde(default)]
    pub l2_misses: u64,
    /// Mean memory-level parallelism over cycles with a miss outstanding.
    #[serde(default)]
    pub mlp: f64,
}

/// Per-stage stall attribution for one smoke run: where did each thread's
/// dispatch bandwidth actually go? Every counter is bumped at most once per
/// thread per cycle, so each row's components are bounded by `cycles`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StallAttribution {
    /// Benchmarks, one per thread.
    pub benchmarks: Vec<String>,
    /// Scheduler.
    pub policy: String,
    /// IQ capacity.
    pub iq_size: usize,
    /// Elapsed cycles of the measured run.
    pub cycles: u64,
    /// One row per hardware thread.
    pub threads: Vec<StallAttributionRow>,
}

/// Run the stall-attribution smoke mix: the first 2-threaded workload at
/// the 64-entry IQ under 2OP_BLOCK (the stall-heavy design point).
pub fn stall_attribution(db: &ResultsDb, p: ExpParams) -> StallAttribution {
    let mix = &mixes_for(MixTable::TwoThread)[0];
    let iq = 64;
    let policy = DispatchPolicy::TwoOpBlock;
    let r = db.get(&mix_spec(mix, iq, policy, p));
    let threads = r
        .counters
        .threads
        .iter()
        .enumerate()
        .map(|(t, tc)| StallAttributionRow {
            thread: t,
            benchmark: mix.benchmarks[t].clone(),
            ndi_blocked_cycles: tc.ndi_blocked_cycles,
            iq_full_cycles: tc.iq_full_cycles,
            rob_full_cycles: tc.rob_full_cycles,
            lsq_full_cycles: tc.lsq_full_cycles,
            dispatch_stall_cycles: tc.dispatch_stall_cycles(),
            l1d_hits: tc.l1d_hits,
            l1d_misses: tc.l1d_misses,
            l2_hits: tc.l2_hits,
            l2_misses: tc.l2_misses,
            mlp: tc.mlp(),
        })
        .collect();
    StallAttribution {
        benchmarks: mix.benchmarks.clone(),
        policy: policy.name().to_string(),
        iq_size: iq,
        cycles: r.cycles,
        threads,
    }
}

/// §4 statistics: HDI pile-up fraction (paper ~90%) and the fraction of
/// dispatched HDIs that depended on a bypassed NDI (paper ~10%), aggregated
/// over all 36 mixes at the 64-entry IQ under out-of-order dispatch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HdiStats {
    /// Fraction of instructions piled behind NDIs that are HDIs.
    pub pileup_hdi_frac: f64,
    /// Fraction of dispatched HDIs dependent on a bypassed NDI.
    pub ndi_dependent_frac: f64,
}

/// Compute the HDI statistics.
pub fn hdi_stats(db: &ResultsDb, p: ExpParams) -> HdiStats {
    let mut pileup_total = 0u64;
    let mut pileup_hdis = 0u64;
    let mut hdis = 0u64;
    let mut dep = 0u64;
    for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
        for mix in mixes_for(table) {
            // The pile-up fraction is measured on the *basic 2OP_BLOCK*
            // design, as in the paper ("in the basic 2OP_BLOCK design …
            // almost 90% of instructions piled up behind the NDIs can be
            // classified as HDIs"): under OOO dispatch the HDIs drain out
            // of the buffer, which would bias the sample downward.
            let blocked = db.get(&mix_spec(&mix, 64, DispatchPolicy::TwoOpBlock, p));
            pileup_total += blocked.counters.pileup_total;
            pileup_hdis += blocked.counters.pileup_hdis;
            let r = db.get(&mix_spec(&mix, 64, DispatchPolicy::TwoOpBlockOoo, p));
            for t in &r.counters.threads {
                hdis += t.hdis_dispatched;
                dep += t.hdis_dependent_on_ndi;
            }
        }
    }
    HdiStats {
        pileup_hdi_frac: if pileup_total == 0 {
            0.0
        } else {
            pileup_hdis as f64 / pileup_total as f64
        },
        ndi_dependent_frac: if hdis == 0 { 0.0 } else { dep as f64 / hdis as f64 },
    }
}

/// §5 statistic: mean IQ residency on 2-threaded workloads at 64 entries
/// (paper: 21 cycles traditional → 15 cycles 2OP_BLOCK+OOO).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ResidencyStats {
    /// Mean IQ residency under the traditional scheduler.
    pub traditional: f64,
    /// Mean IQ residency under 2OP_BLOCK with out-of-order dispatch.
    pub ooo: f64,
}

/// Compute the IQ-residency comparison.
pub fn residency_stats(db: &ResultsDb, p: ExpParams) -> ResidencyStats {
    let mixes = mixes_for(MixTable::TwoThread);
    let mean = |policy| {
        let v: Vec<f64> =
            mixes.iter().map(|m| db.get(&mix_spec(m, 64, policy, p)).mean_iq_residency).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    ResidencyStats {
        traditional: mean(DispatchPolicy::Traditional),
        ooo: mean(DispatchPolicy::TwoOpBlockOoo),
    }
}

/// §4 statistic: IPC gain of idealized zero-overhead NDI-dependence
/// filtering over plain out-of-order dispatch (paper: ~1.2% on average),
/// across all 36 mixes at 64 entries.
pub fn filter_gain(db: &ResultsDb, p: ExpParams) -> f64 {
    let mut ratios = Vec::new();
    for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
        for mix in mixes_for(table) {
            let plain = db.get(&mix_spec(&mix, 64, DispatchPolicy::TwoOpBlockOoo, p)).ipc;
            let filtered =
                db.get(&mix_spec(&mix, 64, DispatchPolicy::TwoOpBlockOooFiltered, p)).ipc;
            ratios.push(filtered / plain);
        }
    }
    harmonic_mean(&ratios).unwrap_or(1.0) - 1.0
}

/// §2 methodology: single-threaded IPC of every modelled benchmark on the
/// baseline machine, with its ILP classification — the measurement the
/// paper uses to build its mixes ("we first simulated all benchmarks in the
/// single-threaded superscalar environment and used these results to
/// classify them as low, medium, and high ILP").
pub fn classify(db: &ResultsDb, p: ExpParams) -> Vec<(String, &'static str, f64)> {
    let mut rows: Vec<(String, &'static str, f64)> = smt_workload::spec2000()
        .into_iter()
        .map(|prof| {
            let ipc = db.single_thread_ipc(&prof.name, 64, p.commit_target, p.seed);
            (prof.name, prof.ilp.label(), ipc)
        })
        .collect();
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    rows
}

/// One row of the design-choice ablation study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which design knob was varied.
    pub knob: String,
    /// The value used.
    pub value: String,
    /// Resulting throughput IPC (zero if the run wedged).
    pub ipc: f64,
    /// Deadlock summary if this configuration wedged.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub wedge: Option<String>,
}

/// Ablations over the design choices DESIGN.md calls out: the
/// deadlock-avoidance buffer size, the dispatch-buffer (HDI scan window)
/// depth, and DAB-vs-watchdog deadlock handling.
pub fn ablation(p: ExpParams) -> Vec<AblationRow> {
    use smt_core::{DeadlockMode, SimConfig};

    let mix4 = &mixes_for(MixTable::FourThread)[6]; // 2 LOW + 2 HIGH
    let mix2 = &mixes_for(MixTable::TwoThread)[0]; // 2 LOW

    let mut jobs: Vec<(String, String, RunSpec, SimConfig)> = Vec::new();
    // DAB size: forward-progress insurance; should be performance-neutral.
    for size in [1usize, 2, 4, 8, 16] {
        let spec = RunSpec::new(
            &mix4.benchmarks,
            48,
            DispatchPolicy::TwoOpBlockOoo,
            p.commit_target,
            p.seed,
        );
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = DeadlockMode::Dab { size };
        jobs.push(("dab_size".into(), size.to_string(), spec, cfg));
    }
    // Dispatch-buffer depth: the HDI scan window of the OOO mechanism.
    for cap in [8usize, 16, 24, 48, 96] {
        let spec = RunSpec::new(
            &mix2.benchmarks,
            64,
            DispatchPolicy::TwoOpBlockOoo,
            p.commit_target,
            p.seed,
        );
        let mut cfg = SimConfig::paper(64, DispatchPolicy::TwoOpBlockOoo);
        cfg.dispatch_buffer_cap = cap;
        jobs.push(("dispatch_buffer_cap".into(), cap.to_string(), spec, cfg));
    }
    // Deadlock handling: the paper's preferred DAB vs the watchdog flush.
    for (label, mode) in [
        ("dab(4)", DeadlockMode::Dab { size: 4 }),
        ("dab(4)-arbitrated", DeadlockMode::DabArbitrated { size: 4 }),
        ("watchdog(300)", DeadlockMode::Watchdog { timeout: 300 }),
        ("watchdog(1000)", DeadlockMode::Watchdog { timeout: 1000 }),
    ] {
        let spec = RunSpec::new(
            &mix2.benchmarks,
            32,
            DispatchPolicy::TwoOpBlockOoo,
            p.commit_target,
            p.seed,
        );
        let mut cfg = SimConfig::paper(32, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = mode;
        jobs.push(("deadlock_mode".into(), label.to_string(), spec, cfg));
    }

    crate::pool::ordered_par_map(p.jobs, jobs, |(knob, value, spec, cfg)| {
        let rec = crate::runner::run_spec_with_config_recorded(&spec, cfg);
        AblationRow { knob, value, ipc: rec.result.ipc, wedge: rec.wedge }
    })
}

/// One row of the fetch-policy comparison (§6 related work: ICOUNT vs the
/// STALL/FLUSH long-latency-load policies of Tullsen & Brown, plus a naive
/// round-robin lower bound).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchPolicyRow {
    /// Fetch policy name.
    pub policy: String,
    /// Workload label.
    pub workload: String,
    /// Issue-queue size.
    pub iq_size: usize,
    /// Measured throughput IPC (zero if the run wedged).
    pub ipc: f64,
    /// Partial flushes triggered (FLUSH only).
    pub flushes: u64,
    /// Deadlock summary if this configuration wedged.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub wedge: Option<String>,
}

/// Compare fetch policies on memory-pressure-heavy mixes under the
/// traditional scheduler.
pub fn fetch_policies(p: ExpParams) -> Vec<FetchPolicyRow> {
    use smt_core::config::FetchPolicy;
    use smt_core::SimConfig;

    let workloads: [(&str, &Mix); 2] = [
        ("2T 1LOW+1HIGH (Mix 7)", &mixes_for(MixTable::TwoThread)[6]),
        ("4T 2LOW+2HIGH (Mix 7)", &mixes_for(MixTable::FourThread)[6]),
    ];
    let mut jobs = Vec::new();
    for (label, mix) in workloads {
        for iq in [32usize, 64] {
            for policy in [
                FetchPolicy::RoundRobin,
                FetchPolicy::ICount,
                FetchPolicy::Stall,
                FetchPolicy::Flush,
            ] {
                let spec = RunSpec::new(
                    &mix.benchmarks,
                    iq,
                    DispatchPolicy::Traditional,
                    p.commit_target,
                    p.seed,
                );
                let mut cfg = SimConfig::paper(iq, DispatchPolicy::Traditional);
                cfg.fetch_policy = policy;
                jobs.push((label.to_string(), iq, policy, spec, cfg));
            }
        }
    }
    crate::pool::ordered_par_map(p.jobs, jobs, |(workload, iq_size, policy, spec, cfg)| {
        let rec = crate::runner::run_spec_with_config_recorded(&spec, cfg);
        FetchPolicyRow {
            policy: policy.name().to_string(),
            workload,
            iq_size,
            ipc: rec.result.ipc,
            flushes: rec.result.counters.fetch_policy_flushes,
            wedge: rec.wedge,
        }
    })
}

/// One row of the fetch × dispatch policy matrix: the MLP/ILP-aware fetch
/// policies (MLP-GATE, ILP-YIELD) against the ICOUNT baseline, crossed with
/// the paper's dispatch schemes, on one cache-bound and one ILP-bound mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchPolMatrixRow {
    /// Workload label.
    pub workload: String,
    /// Fetch policy name.
    pub fetch: String,
    /// Dispatch policy name.
    pub dispatch: String,
    /// Issue-queue size.
    pub iq_size: usize,
    /// Measured throughput IPC (zero if the run wedged).
    pub ipc: f64,
    /// Harmonic mean of per-thread IPC (throughput-fairness balance).
    pub hmean_ipc: f64,
    /// Total thread-cycles spent MLP-gated (MLP-GATE only; zero otherwise).
    pub mlp_gate_cycles: u64,
    /// Mean issue-slot yield per sliding window, averaged over threads
    /// (ILP-YIELD only; zero otherwise).
    pub mean_yield: f64,
    /// Deadlock summary if this configuration wedged.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub wedge: Option<String>,
}

/// The {ICOUNT, MLP-GATE, ILP-YIELD} × {traditional, 2OP_BLOCK,
/// 2OP_BLOCK+OOO} matrix on a cache-bound and an ILP-bound mix. The
/// interesting read-out is the OOO-dispatch IPC delta with vs. without
/// MLP-aware fetch: OOO dispatch tolerates IQ clog from long-latency
/// misses, so an MLP-aware fetch gate and OOO dispatch partially overlap
/// in what they buy.
pub fn fetchpol_matrix(p: ExpParams) -> Vec<FetchPolMatrixRow> {
    use smt_core::config::FetchPolicy;
    use smt_core::SimConfig;

    // Mix 1 is two LOW-ILP (memory-bound) benchmarks; Mix 6 two HIGH-ILP
    // (execution-bound) ones — the two poles the fetch policies target.
    let workloads: [(&str, &Mix); 2] = [
        ("2T cache-bound (Mix 1)", &mixes_for(MixTable::TwoThread)[0]),
        ("2T ILP-bound (Mix 6)", &mixes_for(MixTable::TwoThread)[5]),
    ];
    let mut jobs = Vec::new();
    for (label, mix) in workloads {
        for fetch in [FetchPolicy::ICount, FetchPolicy::MlpGate, FetchPolicy::IlpYield] {
            for dispatch in POLICIES {
                let iq = 64usize;
                let spec = RunSpec::new(&mix.benchmarks, iq, dispatch, p.commit_target, p.seed);
                let mut cfg = SimConfig::paper(iq, dispatch);
                cfg.fetch_policy = fetch;
                jobs.push((label.to_string(), iq, fetch, dispatch, spec, cfg));
            }
        }
    }
    crate::pool::ordered_par_map(p.jobs, jobs, |(workload, iq_size, fetch, dispatch, spec, cfg)| {
        let rec = crate::runner::run_spec_with_config_recorded(&spec, cfg);
        let threads = &rec.result.counters.threads;
        let gate: u64 = threads.iter().map(|t| t.mlp_gate_cycles).sum();
        let yields: Vec<f64> =
            threads.iter().filter(|t| t.yield_windows > 0).map(|t| t.mean_yield()).collect();
        let mean_yield =
            if yields.is_empty() { 0.0 } else { yields.iter().sum::<f64>() / yields.len() as f64 };
        FetchPolMatrixRow {
            workload,
            fetch: fetch.name().to_string(),
            dispatch: dispatch.name().to_string(),
            iq_size,
            ipc: rec.result.ipc,
            hmean_ipc: harmonic_mean(&rec.result.per_thread_ipc).unwrap_or(0.0),
            mlp_gate_cycles: gate,
            mean_yield,
            wedge: rec.wedge,
        }
    })
}

/// One row of the scheduler-organization comparison (Ernst & Austin's
/// tag-eliminated queue vs the paper's designs, §6 related work).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Total tag comparators in the queue.
    pub comparators: usize,
    /// Workload label.
    pub workload: String,
    /// Issue-queue size.
    pub iq_size: usize,
    /// Measured throughput IPC (zero if the run wedged).
    pub ipc: f64,
    /// Deadlock summary if this configuration wedged.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub wedge: Option<String>,
}

/// Compare issue-queue organizations at equal size: the traditional
/// 2-comparator queue, the paper's 2OP_BLOCK (with and without OOO
/// dispatch), and the statically partitioned tag-eliminated queue of [5]
/// with the *same total comparator budget* as 2OP_BLOCK.
pub fn hetero_comparison(p: ExpParams) -> Vec<HeteroRow> {
    use smt_core::SimConfig;

    let workloads: [(&str, &Mix); 2] = [
        ("2T 1LOW+1MED (Mix 10)", &mixes_for(MixTable::TwoThread)[9]),
        ("4T 2LOW+2HIGH (Mix 7)", &mixes_for(MixTable::FourThread)[6]),
    ];
    let mut jobs = Vec::new();
    for (label, mix) in workloads {
        for iq in [32usize, 64] {
            for policy in [
                DispatchPolicy::Traditional,
                DispatchPolicy::TwoOpBlock,
                DispatchPolicy::TagEliminated,
                DispatchPolicy::HalfPrice,
                DispatchPolicy::Packed,
                DispatchPolicy::TwoOpBlockOoo,
            ] {
                let spec = RunSpec::new(&mix.benchmarks, iq, policy, p.commit_target, p.seed);
                let cfg = SimConfig::paper(iq, policy);
                // Total comparators on the *fast* wakeup path: the Half-
                // Price design keeps 2 per entry but moves one to a cheap
                // slow bus; packing shares 2 comparators between up to two
                // instructions (iq_size/2 physical entries).
                let comparators = match policy {
                    DispatchPolicy::Traditional => iq * 2,
                    DispatchPolicy::TagEliminated => {
                        let [_, one, two] = SimConfig::default_tag_eliminated_layout(iq);
                        one + two * 2
                    }
                    DispatchPolicy::HalfPrice | DispatchPolicy::Packed => iq,
                    _ => iq,
                };
                jobs.push((label.to_string(), iq, policy, comparators, spec, cfg));
            }
        }
    }
    crate::pool::ordered_par_map(
        p.jobs,
        jobs,
        |(workload, iq_size, policy, comparators, spec, cfg)| {
            let rec = crate::runner::run_spec_with_config_recorded(&spec, cfg);
            HeteroRow {
                scheduler: policy.name().to_string(),
                comparators,
                workload,
                iq_size,
                ipc: rec.result.ipc,
                wedge: rec.wedge,
            }
        },
    )
}

/// One row of the MSHR × bus-bandwidth contention study (DESIGN.md §7):
/// how finite memory-level-parallelism resources shift the traditional vs
/// 2OP_BLOCK+OOO comparison. The paper's machine assumes unlimited
/// outstanding misses; this study bounds them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpRow {
    /// Workload label.
    pub workload: String,
    /// Scheduler.
    pub policy: String,
    /// L1D (and L2) MSHR entries, 0 = unlimited.
    pub mshrs: u32,
    /// Memory-bus cycles per transfer, 0 = infinite bandwidth.
    pub bus: u32,
    /// Measured throughput IPC (zero if the run wedged).
    pub ipc: f64,
    /// Whole-machine mean MLP over cycles with any miss outstanding.
    pub mlp: f64,
    /// Issue grants revoked because every MSHR was busy.
    pub mshr_defers: u64,
    /// Mean cycles each memory-bus transaction queued.
    pub bus_queue_delay: f64,
    /// Deadlock summary if this configuration wedged.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub wedge: Option<String>,
}

/// Sweep MSHR count × bus bandwidth under the traditional and OOO-dispatch
/// schedulers on a 2-thread and a 4-thread mix.
pub fn mlp_contention(p: ExpParams) -> Vec<MlpRow> {
    use smt_core::SimConfig;
    use smt_mem::{MemModel, NonBlockingConfig};

    let workloads: [(&str, &Mix); 2] = [
        ("2T 2LOW (Mix 1)", &mixes_for(MixTable::TwoThread)[0]),
        ("4T 2LOW+2HIGH (Mix 7)", &mixes_for(MixTable::FourThread)[6]),
    ];
    let mut jobs = Vec::new();
    for (label, mix) in workloads {
        for mshrs in [1u32, 4, 0] {
            for bus in [0u32, 8] {
                for policy in [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlockOoo] {
                    let spec = RunSpec::new(&mix.benchmarks, 64, policy, p.commit_target, p.seed);
                    let mut cfg = SimConfig::paper(64, policy);
                    cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
                        l1d_mshrs: mshrs,
                        l2_mshrs: mshrs.saturating_mul(2),
                        bus_cycles_per_transfer: bus,
                        ..NonBlockingConfig::default()
                    });
                    jobs.push((label.to_string(), mshrs, bus, policy, spec, cfg));
                }
            }
        }
    }
    crate::pool::ordered_par_map(p.jobs, jobs, |(workload, mshrs, bus, policy, spec, cfg)| {
        let rec = crate::runner::run_spec_with_config_recorded(&spec, cfg);
        let c = &rec.result.counters;
        let busy: u64 = c.threads.iter().map(|t| t.mem_busy_cycles).sum();
        let mlp_sum: u64 = c.threads.iter().map(|t| t.mlp_sum).sum();
        MlpRow {
            workload,
            policy: policy.name().to_string(),
            mshrs,
            bus,
            ipc: rec.result.ipc,
            mlp: if busy == 0 { 0.0 } else { mlp_sum as f64 / busy as f64 },
            mshr_defers: c.threads.iter().map(|t| t.mshr_full_defers).sum(),
            bus_queue_delay: c.mem.mean_bus_queue_delay(),
            wedge: rec.wedge,
        }
    })
}

/// Sensitivity of Figure 1's headline points to wrong-path execution: the
/// same 2OP_BLOCK-vs-traditional speedups with synthetic wrong-path
/// fetching enabled (execution-driven style) instead of fetch gating.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WrongPathRow {
    /// Thread count of the workload table.
    pub threads: usize,
    /// Issue-queue size.
    pub iq_size: usize,
    /// 2OP_BLOCK/traditional speedup with fetch gating (the default model).
    pub gated: f64,
    /// The same speedup with synthetic wrong-path execution.
    pub wrong_path: f64,
    /// Underlying runs that wedged (their IPC enters the ratios as zero).
    #[serde(default)]
    pub wedged_runs: usize,
}

/// Recompute Figure-1 points under both misprediction models.
pub fn wrongpath_sensitivity(p: ExpParams) -> Vec<WrongPathRow> {
    use smt_core::SimConfig;

    let mut jobs = Vec::new();
    for (threads, table) in [(2, MixTable::TwoThread), (4, MixTable::FourThread)] {
        for iq in [32usize, 64, 128] {
            for wrong_path in [false, true] {
                for policy in [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock] {
                    for mix in mixes_for(table) {
                        let spec =
                            RunSpec::new(&mix.benchmarks, iq, policy, p.commit_target, p.seed);
                        let mut cfg = SimConfig::paper(iq, policy);
                        cfg.wrong_path = wrong_path;
                        jobs.push((threads, iq, wrong_path, policy, mix.name.clone(), spec, cfg));
                    }
                }
            }
        }
    }
    let results: Vec<(usize, usize, bool, DispatchPolicy, String, f64, bool)> =
        crate::pool::ordered_par_map(p.jobs, jobs, |(threads, iq, wp, policy, mix, spec, cfg)| {
            let rec = crate::runner::run_spec_with_config_recorded(&spec, cfg);
            (threads, iq, wp, policy, mix, rec.result.ipc, rec.wedge.is_some())
        });

    let speedup = |threads: usize, iq: usize, wp: bool| -> f64 {
        let ratios: Vec<f64> = results
            .iter()
            .filter(|r| {
                r.0 == threads && r.1 == iq && r.2 == wp && r.3 == DispatchPolicy::TwoOpBlock
            })
            .map(|blocked| {
                let trad = results
                    .iter()
                    .find(|r| {
                        r.0 == threads
                            && r.1 == iq
                            && r.2 == wp
                            && r.3 == DispatchPolicy::Traditional
                            && r.4 == blocked.4
                    })
                    .expect("matching traditional run");
                blocked.5 / trad.5
            })
            .collect();
        harmonic_mean(&ratios).unwrap_or(0.0)
    };

    let mut rows = Vec::new();
    for threads in [2usize, 4] {
        for iq in [32usize, 64, 128] {
            rows.push(WrongPathRow {
                threads,
                iq_size: iq,
                gated: speedup(threads, iq, false),
                wrong_path: speedup(threads, iq, true),
                wedged_runs: results.iter().filter(|r| r.0 == threads && r.1 == iq && r.6).count(),
            });
        }
    }
    rows
}

/// One sample of the budget-convergence study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceRow {
    /// Commit budget (stop rule: any thread reaches it).
    pub commit_target: u64,
    /// Measured 2OP_BLOCK+OOO / traditional speedup at 64 entries, hmean
    /// across the 2-thread mixes.
    pub speedup_2t: f64,
    /// Same for the 4-thread mixes.
    pub speedup_4t: f64,
}

/// How quickly the headline metric converges with the commit budget — the
/// justification for running at 20k instead of the paper's 100M (see
/// DESIGN.md §3). The synthetic workloads are statistically stationary, so
/// ratios stabilize once caches/predictors are warm and a few thousand
/// instructions are averaged.
pub fn convergence(db: &ResultsDb, p: ExpParams) -> Vec<ConvergenceRow> {
    let budgets = [2_500u64, 5_000, 10_000, 20_000, 40_000];
    let mut rows = Vec::new();
    for &budget in &budgets {
        let params = ExpParams { commit_target: budget, ..p };
        let mut speedups = [0.0f64; 2];
        for (slot, table) in [(0, MixTable::TwoThread), (1, MixTable::FourThread)] {
            let mixes = mixes_for(table);
            let ratios: Vec<f64> = mixes
                .iter()
                .map(|m| {
                    mix_ipc(db, m, 64, DispatchPolicy::TwoOpBlockOoo, params)
                        / mix_ipc(db, m, 64, DispatchPolicy::Traditional, params)
                })
                .collect();
            speedups[slot] = harmonic_mean(&ratios).unwrap_or(0.0);
        }
        rows.push(ConvergenceRow {
            commit_target: budget,
            speedup_2t: speedups[0],
            speedup_4t: speedups[1],
        });
    }
    rows
}

/// Per-mix detail behind one figure point: the speedup of each scheduler
/// over the traditional baseline for every mix of a table at one IQ size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixDetailRow {
    /// Mix name ("Mix 1"…).
    pub mix: String,
    /// ILP classification from the paper's table.
    pub classification: String,
    /// Baseline (traditional) IPC.
    pub trad_ipc: f64,
    /// 2OP_BLOCK speedup over traditional.
    pub two_op: f64,
    /// 2OP_BLOCK+OOO speedup over traditional.
    pub ooo: f64,
}

/// Compute the per-mix breakdown for `table` at `iq` entries.
pub fn mix_detail(db: &ResultsDb, table: MixTable, iq: usize, p: ExpParams) -> Vec<MixDetailRow> {
    mixes_for(table)
        .iter()
        .map(|m| {
            let trad = mix_ipc(db, m, iq, DispatchPolicy::Traditional, p);
            MixDetailRow {
                mix: m.name.clone(),
                classification: m.classification.clone(),
                trad_ipc: trad,
                two_op: mix_ipc(db, m, iq, DispatchPolicy::TwoOpBlock, p) / trad,
                ooo: mix_ipc(db, m, iq, DispatchPolicy::TwoOpBlockOoo, p) / trad,
            }
        })
        .collect()
}

/// One cell of the thread-to-core allocation × dispatch-policy matrix: M
/// software threads placed onto N < M cores (shared L2, MSHR file, memory
/// bus and write-buffer drain) by an [`smt_core::AllocPolicy`], crossed
/// with the paper's dispatch policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocRow {
    /// Workload label (thread count, mix, core count).
    pub workload: String,
    /// Cores in the machine.
    pub cores: usize,
    /// Software threads in the workload.
    pub threads: usize,
    /// Thread-to-core allocation policy.
    pub alloc: String,
    /// Dispatch policy (all cores run the same one).
    pub dispatch: String,
    /// Whole-machine throughput IPC (zero if the run wedged).
    pub ipc: f64,
    /// Harmonic mean of per-thread IPC — penalises placements that starve
    /// a thread even when the aggregate stays high.
    pub hmean_ipc: f64,
    /// Thread migrations the policy performed (0 for static placements).
    pub migrations: u64,
    /// Deadlock summary if this configuration wedged.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub wedge: Option<String>,
}

/// Sweep every thread-to-core allocation policy × the paper's three
/// dispatch policies over multi-core machines with more threads than
/// cores: the 4-thread Mix 7 (2 LOW + 2 HIGH) on 2 cores, and a 6-thread
/// memory-heavy stress mix on 2 cores. Dynamic policies run a short epoch
/// so even quick sweeps cross several migration decision points.
pub fn alloc_matrix(p: ExpParams) -> Vec<AllocRow> {
    use smt_core::{AllocConfig, AllocPolicy, SimConfig};

    let four = mixes_for(MixTable::FourThread)[6].benchmarks.clone();
    let six: Vec<String> =
        ["art", "equake", "twolf", "gcc", "crafty", "mesa"].map(String::from).to_vec();
    let workloads: [(String, Vec<String>, usize); 2] =
        [("4T Mix 7 / 2 cores".into(), four, 2), ("6T 3LOW+3HI / 2 cores".into(), six, 2)];
    let mut jobs = Vec::new();
    for (label, benches, cores) in workloads {
        for alloc_policy in AllocPolicy::ALL {
            for dispatch in POLICIES {
                let spec = RunSpec::new(&benches, 64, dispatch, p.commit_target, p.seed);
                let cfg = SimConfig::paper(64, dispatch);
                let alloc = AllocConfig {
                    policy: alloc_policy,
                    // Short epochs: even an 800-commit smoke run crosses
                    // several decision points.
                    epoch_cycles: 1_000,
                    ..AllocConfig::default()
                };
                jobs.push((
                    label.clone(),
                    benches.len(),
                    cores,
                    alloc_policy,
                    dispatch,
                    spec,
                    cfg,
                    alloc,
                ));
            }
        }
    }
    crate::pool::ordered_par_map(
        p.jobs,
        jobs,
        |(workload, threads, cores, alloc_policy, dispatch, spec, cfg, alloc)| {
            let rec = crate::runner::run_machine_spec_recorded(&spec, cfg, cores, alloc);
            AllocRow {
                workload,
                cores,
                threads,
                alloc: alloc_policy.name().to_string(),
                dispatch: dispatch.name().to_string(),
                ipc: rec.result.ipc,
                hmean_ipc: harmonic_mean(&rec.result.per_thread_ipc).unwrap_or(0.0),
                migrations: rec.result.migrations,
                wedge: rec.wedge,
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        // jobs: 2 exercises the sharded path; results are identical to
        // serial by construction (ordered_par_map).
        ExpParams { commit_target: 800, seed: 1, jobs: 2 }
    }

    #[test]
    fn figure1_has_three_series_over_all_sizes() {
        let db = ResultsDb::new();
        // Restrict cost: compute directly; tiny target keeps this fast.
        let fig = figure1(&db, tiny());
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), IQ_SIZES.len());
            for &(_, v) in &s.points {
                assert!(v > 0.0, "speedup must be positive, got {v}");
            }
        }
    }

    #[test]
    fn stall_attribution_sums_consistently() {
        let db = ResultsDb::new();
        let a = stall_attribution(&db, tiny());
        assert_eq!(a.threads.len(), 2);
        for r in &a.threads {
            assert_eq!(
                r.dispatch_stall_cycles,
                r.ndi_blocked_cycles + r.iq_full_cycles + r.rob_full_cycles + r.lsq_full_cycles
            );
            for c in [r.ndi_blocked_cycles, r.iq_full_cycles, r.rob_full_cycles, r.lsq_full_cycles]
            {
                assert!(c <= a.cycles, "attribution {c} exceeds elapsed cycles {}", a.cycles);
            }
        }
    }

    #[test]
    fn fairness_detail_flags_starvation_explicitly() {
        let db = ResultsDb::new();
        let cells = fairness_detail(&db, MixTable::TwoThread, tiny());
        // Full matrix: every mix × IQ size × policy.
        assert_eq!(cells.len(), 12 * IQ_SIZES.len() * 3);
        for c in &cells {
            // Single-thread references always commit on these workloads, so
            // the metric is defined everywhere …
            let f = c.fairness.expect("fairness defined for valid runs");
            assert!(f >= 0.0 && f.is_finite());
            // … and `starved` is exactly the f == 0 degeneracy.
            assert_eq!(c.starved, f == 0.0, "starved flag out of sync at {c:?}");
        }
    }

    #[test]
    fn throughput_figure_baseline_is_unity() {
        let db = ResultsDb::new();
        let fig = figure_throughput(&db, MixTable::TwoThread, tiny());
        let trad = fig.series.iter().find(|s| s.label == "traditional").unwrap();
        for &(_, v) in &trad.points {
            assert!((v - 1.0).abs() < 1e-9, "traditional normalized to itself must be 1.0");
        }
    }

    #[test]
    fn classification_orders_by_ipc() {
        let db = ResultsDb::new();
        let rows = classify(&db, tiny());
        assert_eq!(rows.len(), 24);
        // Class means must order LOW < MED < HIGH.
        let mean = |label: &str| {
            let v: Vec<f64> = rows.iter().filter(|r| r.1 == label).map(|r| r.2).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean("LOW") < mean("MED"), "LOW vs MED class means out of order");
        assert!(mean("MED") < mean("HIGH"), "MED vs HIGH class means out of order");
    }

    #[test]
    fn mix_detail_covers_all_mixes() {
        let db = ResultsDb::new();
        let rows = mix_detail(&db, MixTable::TwoThread, 48, tiny());
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.trad_ipc > 0.0 && r.two_op > 0.0 && r.ooo > 0.0));
    }

    #[test]
    fn hetero_rows_cover_matrix() {
        let rows = hetero_comparison(tiny());
        assert_eq!(rows.len(), 24);
        assert!(rows.iter().all(|r| r.ipc > 0.0));
        // Comparator budget accounting: tag-eliminated == 2OP_BLOCK budget.
        let te = rows.iter().find(|r| r.scheduler == "tag-eliminated" && r.iq_size == 64).unwrap();
        let tb = rows.iter().find(|r| r.scheduler == "2OP_BLOCK" && r.iq_size == 64).unwrap();
        assert_eq!(te.comparators, tb.comparators);
    }

    #[test]
    fn fetch_policy_rows_cover_matrix() {
        let rows = fetch_policies(tiny());
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|r| r.ipc > 0.0));
        let flush_rows: Vec<_> = rows.iter().filter(|r| r.policy == "FLUSH").collect();
        assert!(
            flush_rows.iter().any(|r| r.flushes > 0),
            "FLUSH must trigger at least one squash on memory-bound mixes"
        );
    }

    #[test]
    fn fetchpol_matrix_covers_matrix_and_carries_policy_counters() {
        let rows = fetchpol_matrix(tiny());
        // 2 mixes × 3 fetch policies × 3 dispatch policies.
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|r| r.wedge.is_none() && r.ipc > 0.0));
        // The gate counter fires only under MLP-GATE, and must fire on the
        // cache-bound mix.
        assert!(rows.iter().filter(|r| r.fetch != "MLP-GATE").all(|r| r.mlp_gate_cycles == 0));
        assert!(rows.iter().any(|r| r.fetch == "MLP-GATE"
            && r.workload.contains("cache-bound")
            && r.mlp_gate_cycles > 0));
        // Yield tracking fires only under ILP-YIELD.
        assert!(rows.iter().filter(|r| r.fetch != "ILP-YIELD").all(|r| r.mean_yield == 0.0));
        assert!(rows.iter().any(|r| r.fetch == "ILP-YIELD" && r.mean_yield > 0.0));
    }

    #[test]
    fn ablation_produces_all_rows() {
        let rows = ablation(tiny());
        assert_eq!(rows.len(), 14);
        assert!(rows.iter().all(|r| r.ipc > 0.0));
        // DAB size is forward-progress insurance and must be roughly
        // performance-neutral (well within 15% across sizes).
        let dab: Vec<f64> = rows.iter().filter(|r| r.knob == "dab_size").map(|r| r.ipc).collect();
        let (min, max) = dab.iter().fold((f64::MAX, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!(max / min < 1.15, "DAB size should barely matter: {dab:?}");
    }

    #[test]
    fn mlp_contention_covers_matrix_without_wedges() {
        let rows = mlp_contention(tiny());
        assert_eq!(rows.len(), 24);
        assert!(rows.iter().all(|r| r.wedge.is_none() && r.ipc > 0.0));
        // A single MSHR must register pressure on the memory-heavy mixes.
        assert!(rows.iter().filter(|r| r.mshrs == 1).any(|r| r.mshr_defers > 0));
        // The finite bus must actually queue transactions somewhere.
        assert!(rows.iter().filter(|r| r.bus > 0).any(|r| r.bus_queue_delay > 0.0));
    }

    #[test]
    fn stall_attribution_carries_memory_counters() {
        let db = ResultsDb::new();
        let a = stall_attribution(&db, tiny());
        assert!(a.threads.iter().any(|r| r.l1d_hits + r.l1d_misses > 0));
    }

    #[test]
    fn stall_rows_cover_all_tables_and_policies() {
        let db = ResultsDb::new();
        let rows = stall_stats(&db, tiny());
        assert_eq!(rows.len(), 6);
        let two_block: Vec<_> = rows.iter().filter(|r| r.policy == "2OP_BLOCK").collect();
        let ooo: Vec<_> = rows.iter().filter(|r| r.policy == "2OP_BLOCK+OOO").collect();
        assert_eq!(two_block.len(), 3);
        assert_eq!(ooo.len(), 3);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.stall_frac));
        }
    }
}
