//! Plain-text rendering of regenerated figures and tables.

use crate::experiments::{
    AllocRow, Figure, HdiStats, MlpRow, ResidencyStats, StallAttribution, StallRow,
};
use crate::IQ_SIZES;
use std::fmt::Write as _;

/// Render a figure as an aligned text table (one row per series, one column
/// per IQ size) followed by a compact ASCII chart.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);
    let _ = writeln!(out, "  ({})", fig.y_label);
    let _ = write!(out, "  {:<26}", "series \\ IQ size");
    for iq in IQ_SIZES {
        let _ = write!(out, "{iq:>9}");
    }
    let _ = writeln!(out);
    for s in &fig.series {
        let _ = write!(out, "  {:<26}", s.label);
        for &(_, v) in &s.points {
            let _ = write!(out, "{v:>9.3}");
        }
        let _ = writeln!(out);
    }
    out.push_str(&render_chart(fig));
    for note in &fig.notes {
        let _ = writeln!(out, "  ! {note}");
    }
    out
}

/// A small ASCII chart: y = value, x = IQ size, one plot symbol per series.
fn render_chart(fig: &Figure) -> String {
    const ROWS: usize = 12;
    const COL_W: usize = 6;
    let symbols = ['o', 'x', '*', '+', '#', '@'];
    let values: Vec<f64> =
        fig.series.iter().flat_map(|s| s.points.iter().map(|&(_, v)| v)).collect();
    let (min, max) =
        values.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    if !min.is_finite() || !max.is_finite() || values.is_empty() {
        return String::new();
    }
    let span = (max - min).max(1e-9);
    // Pad the range slightly so extremes don't sit on the frame.
    let (lo, hi) = (min - span * 0.05, max + span * 0.05);
    let row_of = |v: f64| -> usize {
        let frac = (v - lo) / (hi - lo);
        ((1.0 - frac) * (ROWS as f64 - 1.0)).round() as usize
    };
    let mut grid = vec![vec![' '; IQ_SIZES.len() * COL_W]; ROWS];
    for (si, series) in fig.series.iter().enumerate() {
        let sym = symbols[si % symbols.len()];
        for (xi, &(_, v)) in series.points.iter().enumerate() {
            let r = row_of(v).min(ROWS - 1);
            let c = xi * COL_W + COL_W / 2;
            grid[r][c] = if grid[r][c] == ' ' { sym } else { '&' };
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y = hi - (r as f64 / (ROWS as f64 - 1.0)) * (hi - lo);
        let line: String = row.iter().collect();
        let _ = writeln!(out, "  {y:>7.3} |{}", line.trim_end());
    }
    let _ = writeln!(out, "  {:>7} +{}", "", "-".repeat(IQ_SIZES.len() * COL_W));
    let _ = write!(out, "  {:>7}  ", "");
    for iq in IQ_SIZES {
        let _ = write!(out, "{:^width$}", iq, width = COL_W);
    }
    let _ = writeln!(out);
    let legend: Vec<String> = fig
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", symbols[i % symbols.len()], s.label))
        .collect();
    let _ = writeln!(out, "  {:>7}  legend: {}  (& = overlap)", "", legend.join("   "));
    out
}

/// Render the dispatch-stall statistics table with the paper's reference
/// values alongside.
pub fn render_stalls(rows: &[StallRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "All-thread dispatch-stall fraction at 64-entry IQ (paper §3/§5)");
    let _ = writeln!(out, "  {:<10}{:<26}{:>10}{:>18}", "threads", "policy", "measured", "paper");
    for r in rows {
        let paper: &str = match (r.threads, r.policy.as_str()) {
            (2, "2OP_BLOCK") => "43%",
            (3, "2OP_BLOCK") => "17%",
            (4, "2OP_BLOCK") => "7%",
            (2, "2OP_BLOCK+OOO") => "0.2%",
            _ => "~0% (implied)",
        };
        let _ = writeln!(
            out,
            "  {:<10}{:<26}{:>9.1}%{:>18}",
            r.threads,
            r.policy,
            r.stall_frac * 100.0,
            paper
        );
    }
    out
}

/// Render the per-stage stall-attribution breakdown of the smoke run.
pub fn render_stall_attribution(a: &StallAttribution) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Per-stage stall attribution: {} on {} at {}-entry IQ ({} cycles)",
        a.policy,
        a.benchmarks.join("+"),
        a.iq_size,
        a.cycles
    );
    let _ = writeln!(
        out,
        "  {:<8}{:<10}{:>10}{:>10}{:>10}{:>10}{:>8}{:>9}{:>9}{:>9}{:>7}",
        "thread",
        "bench",
        "ndi",
        "iq-full",
        "rob-full",
        "lsq-full",
        "total",
        "l1d-hit",
        "l1d-miss",
        "l2-miss",
        "mlp"
    );
    for r in &a.threads {
        let _ = writeln!(
            out,
            "  t{:<7}{:<10}{:>10}{:>10}{:>10}{:>10}{:>8}{:>9}{:>9}{:>9}{:>7.2}",
            r.thread,
            r.benchmark,
            r.ndi_blocked_cycles,
            r.iq_full_cycles,
            r.rob_full_cycles,
            r.lsq_full_cycles,
            r.dispatch_stall_cycles,
            r.l1d_hits,
            r.l1d_misses,
            r.l2_misses,
            r.mlp
        );
    }
    out
}

/// Render the MSHR × bus-bandwidth contention matrix.
pub fn render_mlp(rows: &[MlpRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Memory-level parallelism under MSHR and bus contention (non-blocking memory model)"
    );
    let _ = writeln!(
        out,
        "  {:<24}{:<16}{:>7}{:>6}{:>8}{:>7}{:>10}{:>10}",
        "workload", "policy", "mshrs", "bus", "IPC", "MLP", "defers", "bus-queue"
    );
    let fmt_knob = |v: u32| if v == 0 { "inf".to_string() } else { v.to_string() };
    for r in rows {
        let mark = if r.wedge.is_some() { "  WEDGED" } else { "" };
        let _ = writeln!(
            out,
            "  {:<24}{:<16}{:>7}{:>6}{:>8.3}{:>7.2}{:>10}{:>10.2}{mark}",
            r.workload,
            r.policy,
            fmt_knob(r.mshrs),
            fmt_knob(r.bus),
            r.ipc,
            r.mlp,
            r.mshr_defers,
            r.bus_queue_delay
        );
    }
    let _ = writeln!(
        out,
        "  (mshrs/bus of 'inf' = unlimited entries / infinite bandwidth; finite MSHRs cap\n            the overlap a memory-bound thread can expose, which narrows the OOO-dispatch\n            gap over traditional scheduling — see DESIGN.md §7)"
    );
    out
}

/// Render the thread-to-core allocation × dispatch-policy matrix.
pub fn render_alloc(rows: &[AllocRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Thread-to-core allocation × dispatch policy (multi-core machine, shared L2/bus)"
    );
    let _ = writeln!(
        out,
        "  {:<24}{:<12}{:<16}{:>8}{:>8}{:>7}",
        "workload", "alloc", "dispatch", "IPC", "hmean", "migr"
    );
    for r in rows {
        let mark = if r.wedge.is_some() { "  WEDGED" } else { "" };
        let _ = writeln!(
            out,
            "  {:<24}{:<12}{:<16}{:>8.3}{:>8.3}{:>7}{mark}",
            r.workload, r.alloc, r.dispatch, r.ipc, r.hmean_ipc, r.migrations
        );
    }
    let _ = writeln!(
        out,
        "  (M threads placed on N < M cores; hmean penalises starved threads. RANDOM/RR\n            are static placements, ILP_BAL/MLP_BAL/CONTENTION migrate one thread per\n            epoch when the load imbalance exceeds the hysteresis band — see DESIGN.md §8)"
    );
    out
}

/// Render the HDI statistics with the paper's reference values.
pub fn render_hdi(h: &HdiStats) -> String {
    format!(
        "HDI statistics under out-of-order dispatch (paper §4)\n  \
         instructions piled behind NDIs that are HDIs: {:.1}%  (paper: ~90%)\n  \
         dispatched HDIs dependent on a bypassed NDI:  {:.1}%  (paper: ~10%)\n",
        h.pileup_hdi_frac * 100.0,
        h.ndi_dependent_frac * 100.0
    )
}

/// Render the IQ-residency comparison with the paper's reference values.
pub fn render_residency(r: &ResidencyStats) -> String {
    format!(
        "Mean IQ residency, 2-threaded workloads, 64-entry IQ (paper §5)\n  \
         traditional scheduler: {:.1} cycles  (paper: 21)\n  \
         2OP_BLOCK + OOO:       {:.1} cycles  (paper: 15)\n",
        r.traditional, r.ooo
    )
}

/// Render the idealized-filtering result with the paper's reference value.
pub fn render_filter(gain: f64) -> String {
    format!(
        "Idealized zero-overhead NDI-dependence filtering vs plain OOO dispatch (paper §4)\n  \
         mean IPC change: {:+.2}%  (paper: ~+1.2%)\n",
        gain * 100.0
    )
}

/// Render the §2 single-thread classification table.
pub fn render_classify(rows: &[(String, &'static str, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Single-thread IPC classification (§2 methodology, 64-entry IQ, traditional scheduler)"
    );
    let _ = writeln!(out, "  {:<12}{:<8}{:>8}", "benchmark", "class", "IPC");
    for (name, class, ipc) in rows {
        let _ = writeln!(out, "  {name:<12}{class:<8}{ipc:>8.3}");
    }
    out
}

/// Render the design-choice ablation table.
pub fn render_ablation(rows: &[crate::experiments::AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Design-choice ablations (2OP_BLOCK + OOO dispatch)");
    let _ = writeln!(out, "  {:<24}{:<16}{:>8}", "knob", "value", "IPC");
    let mut last = String::new();
    for r in rows {
        if r.knob != last {
            if !last.is_empty() {
                let _ = writeln!(out);
            }
            last = r.knob.clone();
        }
        let mark = if r.wedge.is_some() { "  WEDGED" } else { "" };
        let _ = writeln!(out, "  {:<24}{:<16}{:>8.3}{mark}", r.knob, r.value, r.ipc);
    }
    out
}

/// Render the fetch-policy comparison table.
pub fn render_fetch_policies(rows: &[crate::experiments::FetchPolicyRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fetch-policy comparison (traditional scheduler; §6 related work)");
    let _ = writeln!(
        out,
        "  {:<24}{:<12}{:>6}{:>9}{:>10}",
        "workload", "policy", "IQ", "IPC", "flushes"
    );
    for r in rows {
        let mark = if r.wedge.is_some() { "  WEDGED" } else { "" };
        let _ = writeln!(
            out,
            "  {:<24}{:<12}{:>6}{:>9.3}{:>10}{mark}",
            r.workload, r.policy, r.iq_size, r.ipc, r.flushes
        );
    }
    out
}

/// Render the MLP/ILP-aware fetch × dispatch policy matrix, with the
/// headline read-out: how much OOO dispatch still buys once fetch is
/// already MLP-aware.
pub fn render_fetchpol_matrix(rows: &[crate::experiments::FetchPolMatrixRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "MLP/ILP-aware fetch × dispatch policy matrix (64-entry IQ)");
    let _ = writeln!(
        out,
        "  {:<24}{:<12}{:<16}{:>8}{:>8}{:>10}{:>8}",
        "workload", "fetch", "dispatch", "IPC", "hmean", "gatecyc", "yield"
    );
    for r in rows {
        let mark = if r.wedge.is_some() { "  WEDGED" } else { "" };
        let _ = writeln!(
            out,
            "  {:<24}{:<12}{:<16}{:>8.3}{:>8.3}{:>10}{:>8.2}{mark}",
            r.workload, r.fetch, r.dispatch, r.ipc, r.hmean_ipc, r.mlp_gate_cycles, r.mean_yield
        );
    }
    // OOO-dispatch delta with vs. without MLP-aware fetch, per mix: both
    // mechanisms tolerate IQ clog from long-latency misses, so the delta
    // shrinking under MLP-GATE means the fetch gate absorbed part of what
    // OOO dispatch would otherwise recover.
    let ipc_of = |workload: &str, fetch: &str, dispatch: &str| {
        rows.iter()
            .find(|r| r.workload == workload && r.fetch == fetch && r.dispatch == dispatch)
            .map(|r| r.ipc)
    };
    let mut workloads: Vec<&str> = Vec::new();
    for r in rows {
        if !workloads.contains(&r.workload.as_str()) {
            workloads.push(&r.workload);
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  OOO-dispatch IPC delta (2OP_BLOCK+OOO minus traditional):");
    for w in workloads {
        let delta = |fetch: &str| -> Option<f64> {
            Some(ipc_of(w, fetch, "2OP_BLOCK+OOO")? - ipc_of(w, fetch, "traditional")?)
        };
        if let (Some(base), Some(gated)) = (delta("ICOUNT"), delta("MLP-GATE")) {
            let _ =
                writeln!(out, "  {w:<24}under ICOUNT: {base:+.3}   under MLP-GATE: {gated:+.3}");
        }
    }
    out
}

/// Render the scheduler-organization comparison table.
pub fn render_hetero(rows: &[crate::experiments::HeteroRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Issue-queue organizations at equal size (tag counts vs performance; §6 related work)"
    );
    let _ = writeln!(
        out,
        "  {:<24}{:<26}{:>6}{:>13}{:>9}",
        "workload", "scheduler", "IQ", "comparators", "IPC"
    );
    for r in rows {
        let mark = if r.wedge.is_some() { "  WEDGED" } else { "" };
        let _ = writeln!(
            out,
            "  {:<24}{:<26}{:>6}{:>13}{:>9.3}{mark}",
            r.workload, r.scheduler, r.iq_size, r.comparators, r.ipc
        );
    }
    out
}

/// Render the wrong-path sensitivity table.
pub fn render_wrongpath(rows: &[crate::experiments::WrongPathRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Misprediction-model sensitivity: 2OP_BLOCK speedup over traditional (Figure 1 points)"
    );
    let _ =
        writeln!(out, "  {:<10}{:>6}{:>14}{:>14}", "threads", "IQ", "fetch-gated", "wrong-path");
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<10}{:>6}{:>14.3}{:>14.3}",
            r.threads, r.iq_size, r.gated, r.wrong_path
        );
    }
    let _ = writeln!(
        out,
        "  (synthetic wrong-path fetching pollutes the shared IQ and amplifies the\n            reduced-tag designs' advantage, shifting crossovers about one IQ step right;\n            the fetch-gated default matches the paper's crossovers best — see DESIGN.md §3.1)"
    );
    out
}

/// Render the budget-convergence table.
pub fn render_convergence(rows: &[crate::experiments::ConvergenceRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Headline-metric convergence with commit budget (OOO/traditional speedup @64 entries)"
    );
    let _ = writeln!(out, "  {:<14}{:>12}{:>12}", "budget", "2 threads", "4 threads");
    for r in rows {
        let _ =
            writeln!(out, "  {:<14}{:>12.3}{:>12.3}", r.commit_target, r.speedup_2t, r.speedup_4t);
    }
    let _ = writeln!(
        out,
        "  (ratios stabilize well below the default 20k budget; the paper's 100M-instruction\n            runs serve the same purpose on non-stationary real binaries)"
    );
    out
}

/// Render the per-mix breakdown table.
pub fn render_mix_detail(
    table_name: &str,
    iq: usize,
    rows: &[crate::experiments::MixDetailRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Per-mix speedups over traditional, {table_name}, {iq}-entry IQ");
    let _ = writeln!(
        out,
        "  {:<9}{:<28}{:>10}{:>12}{:>14}",
        "mix", "classification", "trad IPC", "2OP_BLOCK", "2OP_BLOCK+OOO"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<9}{:<28}{:>10.3}{:>12.3}{:>14.3}",
            r.mix, r.classification, r.trad_ipc, r.two_op, r.ooo
        );
    }
    out
}

/// Table 1: print the paper configuration (asserting the defaults).
pub fn render_table1() -> String {
    use smt_core::{DispatchPolicy, SimConfig};
    let c = SimConfig::paper(64, DispatchPolicy::Traditional);
    format!(
        "Table 1: Configuration of the simulated processor\n  \
         machine width:        {}-wide fetch/issue/commit\n  \
         fetch threads/cycle:  {}\n  \
         ROB per thread:       {} entries\n  \
         LSQ per thread:       {} entries\n  \
         physical registers:   {} int + {} fp\n  \
         front end:            {}-stage fetch-to-dispatch\n  \
         L2 hit / memory:      {} / {} cycles\n  \
         branch predictor:     {}-entry gShare, {}-bit history, {}-entry {}-way BTB\n",
        c.width,
        c.fetch_threads_per_cycle,
        c.rob_per_thread,
        c.lsq_per_thread,
        c.phys_int,
        c.phys_fp,
        c.frontend_depth,
        c.hierarchy.l2_hit_latency,
        c.hierarchy.memory_latency,
        c.gshare.table_entries,
        c.gshare.history_bits,
        c.btb.entries,
        c.btb.ways,
    )
}

/// Tables 2–4: the simulated workload mixes.
pub fn render_mixes_tables() -> String {
    use smt_workload::{mixes_for, MixTable};
    let mut out = String::new();
    for table in [MixTable::FourThread, MixTable::TwoThread, MixTable::ThreeThread] {
        out.push_str(&format!("{}\n", table.table_name()));
        for m in mixes_for(table) {
            out.push_str(&format!(
                "  {:<8} {:<26} {}\n",
                m.name,
                m.classification,
                m.benchmarks.join(", ")
            ));
        }
        out.push('\n');
    }
    out
}

/// Figure 2: the NDI/HDI classification example, demonstrated live through
/// the dispatch planner.
pub fn render_figure2_demo() -> String {
    use smt_core::{plan_thread, BufView, DispatchPolicy, PhysReg};
    use smt_isa::RegClass;
    let preg = |i| PhysReg { class: RegClass::Int, index: i };
    // I2 has two non-ready sources (an NDI under 2OP_BLOCK); I3 is
    // independent of I2; I4 reads I2's destination.
    let i2 = BufView {
        trace_idx: 2,
        non_ready: 2,
        nonready_srcs: [Some(preg(1)), Some(preg(2))],
        dest: Some(preg(3)),
        is_rob_oldest: false,
    };
    let i3 = BufView {
        trace_idx: 3,
        non_ready: 0,
        nonready_srcs: [None, None],
        dest: Some(preg(4)),
        is_rob_oldest: false,
    };
    let i4 = BufView {
        trace_idx: 4,
        non_ready: 1,
        nonready_srcs: [Some(preg(3)), None],
        dest: Some(preg(5)),
        is_rob_oldest: false,
    };
    let ooo = plan_thread(&[i2, i3, i4], DispatchPolicy::TwoOpBlockOoo, 8);
    let blocked = plan_thread(&[i2, i3, i4], DispatchPolicy::TwoOpBlock, 8);
    let order: Vec<String> = ooo.candidates.iter().map(|c| format!("I{}", c.trace_idx)).collect();
    format!(
        "Figure 2: NDI/HDI classification example\n  \
         program: I2 (2 non-ready sources, NDI), I3 (independent DI), I4 (DI reading I2)\n  \
         2OP_BLOCK:          dispatches nothing (thread blocked by I2): blocked={}\n  \
         2OP_BLOCK+OOO:      dispatches {} ahead of I2 — both HDIs enter the IQ first\n  \
         I4 flagged NDI-dependent: {} (paper: such HDIs are ~10%% and not worth filtering)\n",
        blocked.ndi_blocked,
        order.join(", "),
        ooo.candidates.iter().any(|c| c.ndi_dependent),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Series;

    #[test]
    fn figure_rendering_includes_all_series() {
        let fig = Figure {
            title: "Figure X".into(),
            y_label: "speedup".into(),
            series: vec![
                Series { label: "a".into(), points: IQ_SIZES.iter().map(|&q| (q, 1.0)).collect() },
                Series { label: "b".into(), points: IQ_SIZES.iter().map(|&q| (q, 2.0)).collect() },
            ],
            notes: vec!["Mix 9 under 2OP_BLOCK at IQ 8: thread starved (fairness 0)".into()],
        };
        let text = render_figure(&fig);
        assert!(text.contains("Figure X"));
        assert!(text.contains("a"));
        assert!(text.contains("2.000"));
        assert!(text.contains("128"));
        assert!(text.contains("! Mix 9"), "figure notes must be rendered");
    }

    #[test]
    fn stall_rendering_shows_paper_references() {
        let rows = vec![StallRow { threads: 2, policy: "2OP_BLOCK".into(), stall_frac: 0.41 }];
        let text = render_stalls(&rows);
        assert!(text.contains("41.0%"));
        assert!(text.contains("43%"));
    }

    #[test]
    fn mlp_rendering_marks_wedges_and_unlimited_knobs() {
        let rows = vec![
            MlpRow {
                workload: "2T 2LOW (Mix 1)".into(),
                policy: "2OP_BLOCK+OOO".into(),
                mshrs: 0,
                bus: 8,
                ipc: 1.234,
                mlp: 2.5,
                mshr_defers: 0,
                bus_queue_delay: 0.75,
                wedge: None,
            },
            MlpRow {
                workload: "2T 2LOW (Mix 1)".into(),
                policy: "traditional".into(),
                mshrs: 1,
                bus: 8,
                ipc: 0.0,
                mlp: 1.0,
                mshr_defers: 42,
                bus_queue_delay: 9.5,
                wedge: Some("wedged".into()),
            },
        ];
        let text = render_mlp(&rows);
        assert!(text.contains("inf"), "unlimited knobs render as inf");
        assert!(text.contains("1.234"));
        assert!(text.contains("WEDGED"));
    }

    #[test]
    fn hdi_and_residency_render() {
        let text = render_hdi(&HdiStats { pileup_hdi_frac: 0.9, ndi_dependent_frac: 0.1 });
        assert!(text.contains("90.0%"));
        let text = render_residency(&ResidencyStats { traditional: 21.0, ooo: 15.0 });
        assert!(text.contains("21.0"));
        let text = render_filter(0.012);
        assert!(text.contains("+1.20%"));
    }
}
