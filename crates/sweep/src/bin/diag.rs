//! Internal diagnostic runner: executes one spec and dumps pipeline state
//! counters periodically. Not part of the documented CLI surface.

use smt_core::{DispatchPolicy, SimConfig};
use smt_sweep::runner::{try_run_spec_with_config, RunSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 4 {
        eprintln!("usage: diag <bench[,bench...]> <iq> <trad|2op|ooo|filt> <target> [max_cycles]");
        std::process::exit(2);
    }
    let benches: Vec<&str> = args[0].split(',').collect();
    let iq: usize = args[1].parse().unwrap();
    let policy = match args[2].as_str() {
        "trad" => DispatchPolicy::Traditional,
        "2op" => DispatchPolicy::TwoOpBlock,
        "ooo" => DispatchPolicy::TwoOpBlockOoo,
        "filt" => DispatchPolicy::TwoOpBlockOooFiltered,
        other => panic!("unknown policy {other}"),
    };
    let target: u64 = args[3].parse().unwrap();
    let spec = RunSpec::new(&benches, iq, policy, target, 1);
    let mut cfg = SimConfig::paper(iq, policy);
    // An explicit cycle budget turns this into a wedge probe: if the run
    // cannot finish in time, print the deadlock diagnosis and exit 1.
    if let Some(max) = args.get(4) {
        cfg.max_cycles = max.parse().unwrap();
        // A wedge probe wants the snapshot at the budget, not after warmup.
    }
    let spec = if args.get(4).is_some() { spec.with_warmup(0) } else { spec };
    let r = match try_run_spec_with_config(&spec, cfg) {
        Ok(r) => r,
        Err(report) => {
            eprintln!("pipeline wedged (no forward progress):\n{report}");
            std::process::exit(1);
        }
    };
    println!("ipc={:.3} cycles={} per_thread={:?}", r.ipc, r.cycles, r.per_thread_ipc);
    println!(
        "all_stall={:.3} pileup_hdi={:.3} ndi_dep={:.3} residency={:.2} occ={:.1}",
        r.all_stall_frac,
        r.hdi_pileup_frac,
        r.hdi_ndi_dep_frac,
        r.mean_iq_residency,
        r.mean_iq_occupancy
    );
    for (t, tc) in r.counters.threads.iter().enumerate() {
        println!(
            "t{t}: fetched={} disp={} issued={} committed={} br={} misp={} dir={} btbm={} ndi_blk={} iqfull={} hdi={} dab={}",
            tc.fetched,
            tc.dispatched,
            tc.issued,
            tc.committed,
            tc.branches,
            tc.mispredicts,
            tc.dir_mispredicts,
            tc.btb_mispredicts,
            tc.ndi_blocked_cycles,
            tc.iq_full_cycles,
            tc.hdis_dispatched,
            tc.dab_dispatches
        );
        println!(
            "    mean iq occupancy: {:.1}",
            tc.iq_occupancy_sum as f64 / r.cycles.max(1) as f64
        );
        let total: u64 = tc.dispatched_by_nonready.iter().sum();
        if total > 0 {
            println!(
                "    nonready at dispatch: 0src={:.1}% 1src={:.1}% 2src={:.1}%",
                tc.dispatched_by_nonready[0] as f64 / total as f64 * 100.0,
                tc.dispatched_by_nonready[1] as f64 / total as f64 * 100.0,
                tc.dispatched_by_nonready[2] as f64 / total as f64 * 100.0,
            );
        }
    }
}
