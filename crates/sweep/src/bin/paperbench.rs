//! `paperbench` — regenerate the tables and figures of Sharkey & Ponomarev,
//! "Balancing ILP and TLP in SMT Architectures through Out-of-Order
//! Instruction Dispatch" (ICPP 2006).
//!
//! Usage:
//!   paperbench <experiment> [--target N] [--seed S] [--jobs N] [--json FILE]
//!              [--journal FILE] [--budget SECS]
//!   paperbench serve  [--jobs N] [--socket PATH]
//!   paperbench submit --socket PATH <experiment> [--target N] [--seed S]
//!              [--jobs N] [--journal FILE] [--budget SECS]
//!
//! Experiments:
//!   fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8
//!   stalls | stallattr | hdi | residency | filter | table1 | mixes | mlp | all
//!
//! `--target` sets the per-thread commit budget (default 20000; the paper
//! used 100M — see DESIGN.md §3 on scaling). `all` regenerates everything.
//! `--jobs` shards runs across N worker threads; every output (journal, db,
//! report, `--json`) is byte-identical to `--jobs 1`, only wall-clock
//! changes. `--journal` checkpoints every completed run to a JSONL file and
//! resumes from it on restart; `--budget` bounds each run's wall-clock
//! seconds. With `--json`, per-run outcomes (ok / wedged / panicked /
//! timed-out) are included under `run_outcomes` — see EXPERIMENTS.md.
//!
//! `serve` turns the binary into a persistent sweep service speaking
//! newline-delimited JSON on stdin/stdout (or a Unix socket with
//! `--socket`); `submit` is the matching client. See EXPERIMENTS.md §serve.

use smt_sweep::experiments as exp;
use smt_sweep::{drive, serve, ResultsDb, SweepPool};
use std::io::{BufRead, Write as _};

fn usage() -> ! {
    eprintln!(
        "usage: paperbench <fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|stalls|stallattr|hdi|\
         residency|filter|table1|mixes|mlp|all> [--target N] [--seed S] [--jobs N] \
         [--json FILE] [--journal FILE] [--budget SECS]\n       \
         paperbench serve [--jobs N] [--socket PATH]\n       \
         paperbench submit --socket PATH <experiment> [flags]"
    );
    std::process::exit(2);
}

struct Flags {
    params: exp::ExpParams,
    jobs: usize,
    json_out: Option<String>,
    journal: Option<String>,
    budget_secs: Option<u64>,
    socket: Option<String>,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags {
        params: exp::ExpParams::default(),
        jobs: 1,
        json_out: None,
        journal: None,
        budget_secs: None,
        socket: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--target" => {
                i += 1;
                flags.params.commit_target =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                flags.params.seed =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--jobs" => {
                i += 1;
                flags.jobs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                flags.json_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--journal" => {
                i += 1;
                flags.journal = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--budget" => {
                i += 1;
                flags.budget_secs =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--socket" => {
                i += 1;
                flags.socket = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    flags.params.jobs = flags.jobs.max(1);
    flags
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].clone();
    match cmd.as_str() {
        "serve" => return serve_main(parse_flags(&args[1..])),
        "submit" => {
            // The experiment name may appear anywhere among the flags
            // (`submit --socket PATH fig1 --target N` per the docs): every
            // flag takes a value, so the first token outside a flag pair is
            // the experiment.
            let rest = &args[1..];
            let mut experiment = None;
            let mut flag_args = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                if rest[i].starts_with("--") {
                    flag_args.push(rest[i].clone());
                    if let Some(v) = rest.get(i + 1) {
                        flag_args.push(v.clone());
                    }
                    i += 2;
                } else {
                    if experiment.replace(rest[i].clone()).is_some() {
                        usage();
                    }
                    i += 1;
                }
            }
            let experiment = experiment.unwrap_or_else(|| usage());
            return submit_main(&experiment, parse_flags(&flag_args));
        }
        _ => {}
    }
    let flags = parse_flags(&args[1..]);
    let params = flags.params;

    let mut db = ResultsDb::new().with_progress(|done, total| {
        if total >= 20 && (done % 20 == 0 || done == total) {
            eprint!("\r  [{done}/{total} runs]");
            let _ = std::io::stderr().flush();
            if done == total {
                eprintln!();
            }
        }
    });
    if flags.jobs > 1 {
        db = db.with_jobs(flags.jobs);
    }
    if let Some(path) = &flags.journal {
        db = db.with_journal(path).unwrap_or_else(|e| panic!("opening journal {path}: {e}"));
        if !db.is_empty() {
            eprintln!("resumed {} completed runs from {path}", db.len());
        }
    }
    if let Some(secs) = flags.budget_secs {
        db = db.with_wall_budget(std::time::Duration::from_secs(secs));
    }
    let db = db;

    if cmd == "all" {
        eprintln!("prewarming the results database (every figure's sweeps)...");
    }
    let rendered = drive::run_experiment(&db, &cmd, params).unwrap_or_else(|| usage());

    for (_, text) in &rendered.sections {
        println!("{text}");
    }
    if let Some(path) = flags.json_out {
        let map: std::collections::BTreeMap<&str, &str> =
            rendered.sections.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let data_map: std::collections::BTreeMap<&str, &serde_json::Value> =
            rendered.data.iter().map(|(k, v)| (k.as_str(), v)).collect();
        let run_outcomes: Vec<serde_json::Value> = db
            .outcomes()
            .iter()
            .map(|r| {
                serde_json::json!({
                    "spec": r.spec,
                    "status": r.status.name(),
                    "attempts": r.attempts,
                    "effective_fast_forward": r.metrics.effective_fast_forward,
                    "wedge": r.report.as_ref().map(|rep| rep.summary()),
                })
            })
            .collect();
        // `jobs` is deliberately not echoed: it is a scheduling knob, and
        // the payload must be byte-identical at any --jobs count.
        let payload = serde_json::json!({
            "params": { "commit_target": params.commit_target, "seed": params.seed },
            "sections": map,
            "data": data_map,
            "run_outcomes": run_outcomes,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&payload).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// `paperbench serve`: speak the sweep protocol on stdin/stdout, or accept
/// connections on `--socket PATH` (one protocol session per connection),
/// multiplexing every sweep over one shared worker pool.
fn serve_main(flags: Flags) {
    let jobs = if flags.jobs > 1 {
        flags.jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    };
    let pool = SweepPool::shared(jobs);
    match flags.socket {
        None => {
            eprintln!("paperbench serve: {jobs} workers, protocol on stdin/stdout");
            let stdin = std::io::stdin();
            serve::serve(stdin.lock(), std::io::stdout(), pool)
                .unwrap_or_else(|e| panic!("serve: {e}"));
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| panic!("binding {path}: {e}"));
            eprintln!("paperbench serve: {jobs} workers, listening on {path}");
            let mut sessions = Vec::new();
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let pool = std::sync::Arc::clone(&pool);
                sessions.push(std::thread::spawn(move || {
                    let reader =
                        std::io::BufReader::new(stream.try_clone().expect("cloning connection"));
                    let _ = serve::serve(reader, stream, pool);
                }));
                sessions.retain(|s| !s.is_finished());
            }
        }
    }
}

/// `paperbench submit`: send one sweep to a running `serve --socket` and
/// stream its events — checkpoints to stderr, sections to stdout.
fn submit_main(experiment: &str, flags: Flags) {
    let Some(path) = &flags.socket else {
        eprintln!("submit requires --socket PATH");
        usage();
    };
    let stream = std::os::unix::net::UnixStream::connect(path)
        .unwrap_or_else(|e| panic!("connecting to {path}: {e}"));
    let req = serve::Request {
        cmd: "sweep".into(),
        id: Some(std::process::id() as u64),
        experiment: Some(experiment.to_string()),
        target: Some(flags.params.commit_target),
        seed: Some(flags.params.seed),
        jobs: if flags.jobs > 1 { Some(flags.jobs) } else { None },
        journal: flags.journal.clone(),
        budget_secs: flags.budget_secs,
    };
    {
        let mut w = stream.try_clone().expect("cloning socket");
        let mut line = serde_json::to_string(&req).expect("encoding request");
        line.push('\n');
        w.write_all(line.as_bytes()).unwrap_or_else(|e| panic!("sending request: {e}"));
    }
    for line in std::io::BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        let Ok(event) = serde_json::from_str::<serde_json::Value>(&line) else { continue };
        let kind = event.get("event").and_then(|v| v.as_str()).unwrap_or("");
        match kind {
            "checkpoint" => {
                let done = event.get("done").and_then(|v| v.as_u64()).unwrap_or(0);
                let total = event.get("total").and_then(|v| v.as_u64()).unwrap_or(0);
                eprint!("\r  [{done}/{total} runs]");
                let _ = std::io::stderr().flush();
                if done == total {
                    eprintln!();
                }
            }
            "section" => {
                if let Some(text) = event.get("text").and_then(|v| v.as_str()) {
                    println!("{text}");
                }
            }
            "done" => return,
            "error" => {
                let msg = event.get("message").and_then(|v| v.as_str()).unwrap_or("?");
                eprintln!("sweep failed: {msg}");
                std::process::exit(1);
            }
            _ => {}
        }
    }
    eprintln!("connection closed before the sweep finished");
    std::process::exit(1);
}
