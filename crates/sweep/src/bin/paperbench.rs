//! `paperbench` — regenerate the tables and figures of Sharkey & Ponomarev,
//! "Balancing ILP and TLP in SMT Architectures through Out-of-Order
//! Instruction Dispatch" (ICPP 2006).
//!
//! Usage:
//!   paperbench <experiment> [--target N] [--seed S] [--jobs N] [--json FILE]
//!              [--journal FILE] [--budget SECS]
//!   paperbench serve  [--jobs N] [--socket PATH] [--max-inflight N]
//!              [--heartbeat SECS] [--grace SECS]
//!   paperbench submit --socket PATH <experiment> [--target N] [--seed S]
//!              [--jobs N] [--journal FILE] [--budget SECS] [--deadline SECS]
//!              [--timeout SECS]
//!   paperbench status --socket PATH
//!
//! Experiments:
//!   fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8
//!   stalls | stallattr | hdi | residency | filter | table1 | mixes | mlp | alloc | all
//!
//! `--target` sets the per-thread commit budget (default 20000; the paper
//! used 100M — see DESIGN.md §3 on scaling). `all` regenerates everything.
//! `--jobs` shards runs across N worker threads; every output (journal, db,
//! report, `--json`) is byte-identical to `--jobs 1`, only wall-clock
//! changes. `--journal` checkpoints every completed run to a JSONL file and
//! resumes from it on restart; `--budget` bounds each run's wall-clock
//! seconds. With `--json`, per-run outcomes (ok / wedged / panicked /
//! timed-out) are included under `run_outcomes` — see EXPERIMENTS.md.
//!
//! `serve` turns the binary into a persistent *supervised* sweep service
//! speaking newline-delimited JSON on stdin/stdout (or a Unix socket with
//! `--socket`): admission-bounded (`--max-inflight`, default 2× the pool),
//! cancellable (`{"cmd":"cancel"}`, per-sweep `deadline_secs`), introspectable
//! (`{"cmd":"status"}`, `--heartbeat`), and drained gracefully on
//! SIGTERM/SIGINT (in-flight sweeps are cancelled at a clean journal
//! boundary, clients get `cancelled` + `bye`, the process exits 0 within
//! `--grace` seconds). `submit` is the matching client: it retries with
//! backoff when shed with `busy`, exits nonzero on `error`, and `--timeout`
//! bounds its total wait. `status` prints a running service's introspection
//! payload. See EXPERIMENTS.md §serve.

use smt_sweep::experiments as exp;
use smt_sweep::serve::ServeOptions;
use smt_sweep::{drive, serve, ResultsDb, Supervisor, SweepPool};
use std::io::{BufRead, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: paperbench <fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|stalls|stallattr|hdi|\
         residency|filter|table1|mixes|mlp|alloc|all> [--target N] [--seed S] [--jobs N] \
         [--json FILE] [--journal FILE] [--budget SECS]\n       \
         paperbench serve [--jobs N] [--socket PATH] [--max-inflight N] [--heartbeat SECS] \
         [--grace SECS]\n       \
         paperbench submit --socket PATH <experiment> [flags] [--deadline SECS] \
         [--timeout SECS]\n       \
         paperbench status --socket PATH"
    );
    std::process::exit(2);
}

struct Flags {
    params: exp::ExpParams,
    jobs: usize,
    json_out: Option<String>,
    journal: Option<String>,
    budget_secs: Option<u64>,
    socket: Option<String>,
    /// serve: admission bound (0 = default 2 × pool jobs).
    max_inflight: usize,
    /// serve: heartbeat interval.
    heartbeat_secs: Option<u64>,
    /// serve: SIGTERM/SIGINT drain grace period.
    grace_secs: u64,
    /// submit: whole-sweep deadline forwarded as `deadline_secs`.
    deadline_secs: Option<u64>,
    /// submit: client-side bound on the total wait.
    timeout_secs: Option<u64>,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags {
        params: exp::ExpParams::default(),
        jobs: 1,
        json_out: None,
        journal: None,
        budget_secs: None,
        socket: None,
        max_inflight: 0,
        heartbeat_secs: None,
        grace_secs: 30,
        deadline_secs: None,
        timeout_secs: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--target" => {
                i += 1;
                flags.params.commit_target =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                flags.params.seed =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--jobs" => {
                i += 1;
                flags.jobs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                flags.json_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--journal" => {
                i += 1;
                flags.journal = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--budget" => {
                i += 1;
                flags.budget_secs =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--socket" => {
                i += 1;
                flags.socket = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--max-inflight" => {
                i += 1;
                flags.max_inflight =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--heartbeat" => {
                i += 1;
                flags.heartbeat_secs =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--grace" => {
                i += 1;
                flags.grace_secs =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--deadline" => {
                i += 1;
                flags.deadline_secs =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--timeout" => {
                i += 1;
                flags.timeout_secs =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    flags.params.jobs = flags.jobs.max(1);
    flags
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].clone();
    match cmd.as_str() {
        "serve" => return serve_main(parse_flags(&args[1..])),
        "status" => return status_main(parse_flags(&args[1..])),
        "submit" => {
            // The experiment name may appear anywhere among the flags
            // (`submit --socket PATH fig1 --target N` per the docs): every
            // flag takes a value, so the first token outside a flag pair is
            // the experiment.
            let rest = &args[1..];
            let mut experiment = None;
            let mut flag_args = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                if rest[i].starts_with("--") {
                    flag_args.push(rest[i].clone());
                    if let Some(v) = rest.get(i + 1) {
                        flag_args.push(v.clone());
                    }
                    i += 2;
                } else {
                    if experiment.replace(rest[i].clone()).is_some() {
                        usage();
                    }
                    i += 1;
                }
            }
            let experiment = experiment.unwrap_or_else(|| usage());
            return submit_main(&experiment, parse_flags(&flag_args));
        }
        _ => {}
    }
    let flags = parse_flags(&args[1..]);
    let params = flags.params;

    let mut db = ResultsDb::new().with_progress(|done, total| {
        if total >= 20 && (done % 20 == 0 || done == total) {
            eprint!("\r  [{done}/{total} runs]");
            let _ = std::io::stderr().flush();
            if done == total {
                eprintln!();
            }
        }
    });
    if flags.jobs > 1 {
        db = db.with_jobs(flags.jobs);
    }
    if let Some(path) = &flags.journal {
        db = db.with_journal(path).unwrap_or_else(|e| panic!("opening journal {path}: {e}"));
        if !db.is_empty() {
            eprintln!("resumed {} completed runs from {path}", db.len());
        }
    }
    if let Some(secs) = flags.budget_secs {
        db = db.with_wall_budget(std::time::Duration::from_secs(secs));
    }
    let db = db;

    if cmd == "all" {
        eprintln!("prewarming the results database (every figure's sweeps)...");
    }
    let rendered = drive::run_experiment(&db, &cmd, params).unwrap_or_else(|| usage());

    for (_, text) in &rendered.sections {
        println!("{text}");
    }
    if let Some(path) = flags.json_out {
        let map: std::collections::BTreeMap<&str, &str> =
            rendered.sections.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let data_map: std::collections::BTreeMap<&str, &serde_json::Value> =
            rendered.data.iter().map(|(k, v)| (k.as_str(), v)).collect();
        let run_outcomes: Vec<serde_json::Value> = db
            .outcomes()
            .iter()
            .map(|r| {
                serde_json::json!({
                    "spec": r.spec,
                    "status": r.status.name(),
                    "attempts": r.attempts,
                    "fast_forward": r.metrics.fast_forward,
                    "wedge": r.report.as_ref().map(|rep| rep.summary()),
                })
            })
            .collect();
        // `jobs` is deliberately not echoed: it is a scheduling knob, and
        // the payload must be byte-identical at any --jobs count.
        let payload = serde_json::json!({
            "params": { "commit_target": params.commit_target, "seed": params.seed },
            "sections": map,
            "data": data_map,
            "run_outcomes": run_outcomes,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&payload).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

// ---------------------------------------------------------------------------
// Signal-driven graceful drain
// ---------------------------------------------------------------------------

/// Latched by the SIGTERM/SIGINT handler; the watcher thread polls it. An
/// atomic store is the only async-signal-safe thing the handler does.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate_signal(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers and a watcher thread that, when either
/// signal lands, drains `supervisor` (cancel every in-flight sweep, wait up
/// to `grace` for them to retire at a clean journal boundary, broadcast
/// `bye`) and exits. Exit status 0 when the drain completed within the
/// grace period, 1 when sweeps were still live at its end (their journals
/// are still resumable — cancellation only ever stops at record
/// boundaries — but the operator should know the period was too short).
///
/// `signal(2)` is declared directly rather than through a bindings crate:
/// registering a handler is the single libc call this binary needs.
fn install_drain_on_signals(supervisor: Arc<Supervisor>, grace: Duration) {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_terminate_signal as *const () as usize);
        signal(SIGINT, on_terminate_signal as *const () as usize);
    }
    std::thread::spawn(move || {
        while !TERM_REQUESTED.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("paperbench serve: signal received, draining (grace {}s)...", grace.as_secs());
        let clean = supervisor.drain(grace);
        if clean {
            eprintln!("paperbench serve: drained cleanly, exiting");
            std::process::exit(0);
        }
        eprintln!("paperbench serve: grace period expired with sweeps still live, exiting");
        std::process::exit(1);
    });
}

/// `paperbench serve`: speak the sweep protocol on stdin/stdout, or accept
/// connections on `--socket PATH` (one protocol session per connection),
/// multiplexing every sweep over one shared worker pool under one shared
/// supervisor (so the admission bound, `status`, and the signal drain are
/// service-wide, not per-connection).
fn serve_main(flags: Flags) {
    let jobs = if flags.jobs > 1 {
        flags.jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    };
    let pool = SweepPool::shared(jobs);
    let supervisor = Supervisor::new(jobs, flags.max_inflight);
    let opts = ServeOptions {
        heartbeat: flags.heartbeat_secs.map(Duration::from_secs),
        ..ServeOptions::default()
    };
    install_drain_on_signals(Arc::clone(&supervisor), Duration::from_secs(flags.grace_secs));
    match flags.socket {
        None => {
            eprintln!(
                "paperbench serve: {jobs} workers, max {} in-flight sweeps, \
                 protocol on stdin/stdout",
                supervisor.max_inflight()
            );
            let stdin = std::io::stdin();
            serve::serve_with(stdin.lock(), std::io::stdout(), pool, supervisor, &opts)
                .unwrap_or_else(|e| panic!("serve: {e}"));
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| panic!("binding {path}: {e}"));
            eprintln!(
                "paperbench serve: {jobs} workers, max {} in-flight sweeps, listening on {path}",
                supervisor.max_inflight()
            );
            let mut sessions = Vec::new();
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let pool = Arc::clone(&pool);
                let supervisor = Arc::clone(&supervisor);
                let opts = opts.clone();
                // One thread per connection: a client that wedges or dies
                // mid-session never blocks the accept loop, and its sweeps
                // retire through the shared supervisor like any other.
                sessions.push(std::thread::spawn(move || {
                    let reader =
                        std::io::BufReader::new(stream.try_clone().expect("cloning connection"));
                    let _ = serve::serve_with(reader, stream, pool, supervisor, &opts);
                }));
                sessions.retain(|s| !s.is_finished());
            }
        }
    }
}

/// `paperbench submit`: send one sweep to a running `serve --socket` and
/// stream its events — checkpoints to stderr, sections to stdout. Retries
/// with backoff when the service sheds the request with `busy`; exits 1 on
/// an `error` event, a `cancelled` sweep, or a severed connection, and 124
/// when `--timeout` expires first.
fn submit_main(experiment: &str, flags: Flags) {
    let Some(path) = &flags.socket else {
        eprintln!("submit requires --socket PATH");
        usage();
    };
    let stream = std::os::unix::net::UnixStream::connect(path)
        .unwrap_or_else(|e| panic!("connecting to {path}: {e}"));
    let deadline = flags.timeout_secs.map(|secs| Instant::now() + Duration::from_secs(secs));
    let req = serve::Request {
        cmd: "sweep".into(),
        id: Some(std::process::id() as u64),
        experiment: Some(experiment.to_string()),
        target: Some(flags.params.commit_target),
        seed: Some(flags.params.seed),
        jobs: if flags.jobs > 1 { Some(flags.jobs) } else { None },
        journal: flags.journal.clone(),
        budget_secs: flags.budget_secs,
        deadline_secs: flags.deadline_secs,
    };
    let send_request = || {
        let mut w = stream.try_clone().expect("cloning socket");
        let mut line = serde_json::to_string(&req).expect("encoding request");
        line.push('\n');
        w.write_all(line.as_bytes()).unwrap_or_else(|e| panic!("sending request: {e}"));
    };
    let timed_out = || -> ! {
        eprintln!("timed out after {}s", flags.timeout_secs.unwrap_or(0));
        std::process::exit(124);
    };
    send_request();
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("cloning socket"));
    // Successive `busy` sheds back off exponentially from the service's
    // own `retry_after_ms` hint, capped at 10s per wait.
    let mut backoff_multiplier: u64 = 1;
    // True while an open-ended progress line (`\r  [N runs]`) is unterminated.
    let mut open_progress = false;
    loop {
        if let Some(deadline) = deadline {
            // Bound each read by the time left so a silent service cannot
            // hold the client past --timeout.
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                timed_out();
            };
            stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .expect("setting read timeout");
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                timed_out();
            }
            Err(_) => break,
        }
        let Ok(event) = serde_json::from_str::<serde_json::Value>(&line) else { continue };
        let kind = event.get("event").and_then(|v| v.as_str()).unwrap_or("");
        match kind {
            "checkpoint" => {
                let done = event.get("done").and_then(|v| v.as_u64()).unwrap_or(0);
                let total = event.get("total").and_then(|v| v.as_u64()).unwrap_or(0);
                // total == 0 marks an open-ended (trickle-style) sweep.
                if total == 0 {
                    eprint!("\r  [{done} runs]");
                    open_progress = true;
                } else {
                    eprint!("\r  [{done}/{total} runs]");
                }
                let _ = std::io::stderr().flush();
                if total != 0 && done == total {
                    eprintln!();
                }
            }
            "section" => {
                if std::mem::take(&mut open_progress) {
                    eprintln!();
                }
                if let Some(text) = event.get("text").and_then(|v| v.as_str()) {
                    println!("{text}");
                }
            }
            "done" => {
                if open_progress {
                    eprintln!();
                }
                return;
            }
            "busy" => {
                let hint = event.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap_or(500);
                let wait = Duration::from_millis((hint * backoff_multiplier).min(10_000));
                backoff_multiplier = (backoff_multiplier * 2).min(64);
                eprintln!("service busy, retrying in {}ms...", wait.as_millis());
                if let Some(deadline) = deadline {
                    if Instant::now() + wait >= deadline {
                        timed_out();
                    }
                }
                std::thread::sleep(wait);
                send_request();
            }
            "cancelled" => {
                if std::mem::take(&mut open_progress) {
                    eprintln!();
                }
                let reason = event.get("reason").and_then(|v| v.as_str()).unwrap_or("?");
                let done = event.get("runs_done").and_then(|v| v.as_u64()).unwrap_or(0);
                let total = event.get("runs_total").and_then(|v| v.as_u64()).unwrap_or(0);
                let progress = if total == 0 {
                    format!("{done} runs")
                } else {
                    format!("{done}/{total} runs")
                };
                eprintln!(
                    "sweep cancelled ({reason}) after {progress}; the journal prefix is resumable"
                );
                std::process::exit(1);
            }
            "error" => {
                if std::mem::take(&mut open_progress) {
                    eprintln!();
                }
                let msg = event.get("message").and_then(|v| v.as_str()).unwrap_or("?");
                eprintln!("sweep failed: {msg}");
                std::process::exit(1);
            }
            _ => {} // pong, start, status, heartbeat, cancelling, bye
        }
    }
    eprintln!("connection closed before the sweep finished");
    std::process::exit(1);
}

/// `paperbench status`: print a running service's introspection payload.
fn status_main(flags: Flags) {
    let Some(path) = &flags.socket else {
        eprintln!("status requires --socket PATH");
        usage();
    };
    let stream = std::os::unix::net::UnixStream::connect(path)
        .unwrap_or_else(|e| panic!("connecting to {path}: {e}"));
    {
        let mut w = stream.try_clone().expect("cloning socket");
        w.write_all(b"{\"cmd\":\"status\",\"id\":0}\n")
            .unwrap_or_else(|e| panic!("sending request: {e}"));
    }
    for line in std::io::BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        let Ok(event) = serde_json::from_str::<serde_json::Value>(&line) else { continue };
        if event.get("event").and_then(|v| v.as_str()) == Some("status") {
            println!("{}", serde_json::to_string_pretty(&event).unwrap());
            return;
        }
    }
    eprintln!("connection closed before status arrived");
    std::process::exit(1);
}
