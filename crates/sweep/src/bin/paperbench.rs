//! `paperbench` — regenerate the tables and figures of Sharkey & Ponomarev,
//! "Balancing ILP and TLP in SMT Architectures through Out-of-Order
//! Instruction Dispatch" (ICPP 2006).
//!
//! Usage:
//!   paperbench <experiment> [--target N] [--seed S] [--json FILE]
//!              [--journal FILE] [--budget SECS]
//!
//! Experiments:
//!   fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8
//!   stalls | stallattr | hdi | residency | filter | table1 | mixes | mlp | all
//!
//! `--target` sets the per-thread commit budget (default 20000; the paper
//! used 100M — see DESIGN.md §3 on scaling). `all` regenerates everything.
//! `--journal` checkpoints every completed run to a JSONL file and resumes
//! from it on restart; `--budget` bounds each run's wall-clock seconds.
//! With `--json`, per-run outcomes (ok / wedged / panicked / timed-out)
//! are included under `run_outcomes` — see EXPERIMENTS.md.

use smt_core::{DispatchPolicy, SimConfig};
use smt_sweep::experiments as exp;
use smt_sweep::report;
use smt_sweep::ResultsDb;
use smt_workload::{mixes_for, MixTable};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: paperbench <fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|stalls|stallattr|hdi|\
         residency|filter|table1|mixes|mlp|all> [--target N] [--seed S] [--json FILE] \
         [--journal FILE] [--budget SECS]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].clone();
    let mut params = exp::ExpParams::default();
    let mut json_out: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut budget_secs: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--target" => {
                i += 1;
                params.commit_target =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                params.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                json_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--journal" => {
                i += 1;
                journal = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--budget" => {
                i += 1;
                budget_secs =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    let mut db = ResultsDb::new().with_progress(|done, total| {
        if total >= 20 && (done % 20 == 0 || done == total) {
            eprint!("\r  [{done}/{total} runs]");
            let _ = std::io::stderr().flush();
            if done == total {
                eprintln!();
            }
        }
    });
    if let Some(path) = &journal {
        db = db.with_journal(path).unwrap_or_else(|e| panic!("opening journal {path}: {e}"));
        if !db.is_empty() {
            eprintln!("resumed {} completed runs from {path}", db.len());
        }
    }
    if let Some(secs) = budget_secs {
        db = db.with_wall_budget(std::time::Duration::from_secs(secs));
    }
    let db = db;

    let mut sections: Vec<(String, String)> = Vec::new();
    // Structured (non-rendered) payloads for the `--json` dump, keyed like
    // `sections`; currently the stall-attribution counters.
    let mut data: Vec<(String, serde_json::Value)> = Vec::new();
    let add_figure = |name: &str, fig: exp::Figure, sections: &mut Vec<(String, String)>| {
        sections.push((name.to_string(), report::render_figure(&fig)));
    };

    match cmd.as_str() {
        "fig1" => add_figure("fig1", exp::figure1(&db, params), &mut sections),
        "fig2" => sections.push(("fig2".into(), figure2_demo())),
        "fig3" => add_figure(
            "fig3",
            exp::figure_throughput(&db, MixTable::TwoThread, params),
            &mut sections,
        ),
        "fig4" => {
            data.push((
                "fig4".into(),
                serde_json::json!(exp::fairness_detail(&db, MixTable::TwoThread, params)),
            ));
            add_figure(
                "fig4",
                exp::figure_fairness(&db, MixTable::TwoThread, params),
                &mut sections,
            )
        }
        "fig5" => add_figure(
            "fig5",
            exp::figure_throughput(&db, MixTable::ThreeThread, params),
            &mut sections,
        ),
        "fig6" => {
            data.push((
                "fig6".into(),
                serde_json::json!(exp::fairness_detail(&db, MixTable::ThreeThread, params)),
            ));
            add_figure(
                "fig6",
                exp::figure_fairness(&db, MixTable::ThreeThread, params),
                &mut sections,
            )
        }
        "fig7" => add_figure(
            "fig7",
            exp::figure_throughput(&db, MixTable::FourThread, params),
            &mut sections,
        ),
        "fig8" => {
            data.push((
                "fig8".into(),
                serde_json::json!(exp::fairness_detail(&db, MixTable::FourThread, params)),
            ));
            add_figure(
                "fig8",
                exp::figure_fairness(&db, MixTable::FourThread, params),
                &mut sections,
            )
        }
        "stalls" => {
            sections.push(("stalls".into(), report::render_stalls(&exp::stall_stats(&db, params))))
        }
        "stallattr" => {
            let attr = exp::stall_attribution(&db, params);
            data.push(("stallattr".into(), serde_json::json!(attr)));
            sections.push(("stallattr".into(), report::render_stall_attribution(&attr)));
        }
        "hdi" => sections.push(("hdi".into(), report::render_hdi(&exp::hdi_stats(&db, params)))),
        "residency" => sections.push((
            "residency".into(),
            report::render_residency(&exp::residency_stats(&db, params)),
        )),
        "filter" => {
            sections.push(("filter".into(), report::render_filter(exp::filter_gain(&db, params))))
        }
        "mlp" => {
            let rows = exp::mlp_contention(params);
            data.push(("mlp".into(), serde_json::json!(rows)));
            sections.push(("mlp".into(), report::render_mlp(&rows)));
        }
        "table1" => sections.push(("table1".into(), table1())),
        "mixes" => sections.push(("mixes".into(), mixes_tables())),
        "classify" => {
            sections.push(("classify".into(), report::render_classify(&exp::classify(&db, params))))
        }
        "ablation" => {
            sections.push(("ablation".into(), report::render_ablation(&exp::ablation(params))))
        }
        "fetchpol" => sections
            .push(("fetchpol".into(), report::render_fetch_policies(&exp::fetch_policies(params)))),
        "hetero" => {
            sections.push(("hetero".into(), report::render_hetero(&exp::hetero_comparison(params))))
        }
        "wrongpath" => sections.push((
            "wrongpath".into(),
            report::render_wrongpath(&exp::wrongpath_sensitivity(params)),
        )),
        "convergence" => sections.push((
            "convergence".into(),
            report::render_convergence(&exp::convergence(&db, params)),
        )),
        "mixdetail" => {
            for (name, table) in [
                ("Table 3 (2-threaded)", MixTable::TwoThread),
                ("Table 4 (3-threaded)", MixTable::ThreeThread),
                ("Table 2 (4-threaded)", MixTable::FourThread),
            ] {
                sections.push((
                    format!("mixdetail-{}", table.num_threads()),
                    report::render_mix_detail(name, 64, &exp::mix_detail(&db, table, 64, params)),
                ));
            }
        }
        "all" => {
            eprintln!("prewarming the results database (every figure's sweeps)...");
            exp::prewarm(&db, params);
            sections.push(("table1".into(), table1()));
            sections.push(("mixes".into(), mixes_tables()));
            add_figure("fig1", exp::figure1(&db, params), &mut sections);
            sections.push(("fig2".into(), figure2_demo()));
            for (name, table) in [
                ("fig3", MixTable::TwoThread),
                ("fig5", MixTable::ThreeThread),
                ("fig7", MixTable::FourThread),
            ] {
                add_figure(name, exp::figure_throughput(&db, table, params), &mut sections);
            }
            for (name, table) in [
                ("fig4", MixTable::TwoThread),
                ("fig6", MixTable::ThreeThread),
                ("fig8", MixTable::FourThread),
            ] {
                data.push((
                    name.into(),
                    serde_json::json!(exp::fairness_detail(&db, table, params)),
                ));
                add_figure(name, exp::figure_fairness(&db, table, params), &mut sections);
            }
            sections.push(("stalls".into(), report::render_stalls(&exp::stall_stats(&db, params))));
            let attr = exp::stall_attribution(&db, params);
            data.push(("stallattr".into(), serde_json::json!(attr)));
            sections.push(("stallattr".into(), report::render_stall_attribution(&attr)));
            sections.push(("hdi".into(), report::render_hdi(&exp::hdi_stats(&db, params))));
            sections.push((
                "residency".into(),
                report::render_residency(&exp::residency_stats(&db, params)),
            ));
            sections.push(("filter".into(), report::render_filter(exp::filter_gain(&db, params))));
            sections
                .push(("classify".into(), report::render_classify(&exp::classify(&db, params))));
            sections.push(("ablation".into(), report::render_ablation(&exp::ablation(params))));
            sections.push((
                "fetchpol".into(),
                report::render_fetch_policies(&exp::fetch_policies(params)),
            ));
            sections
                .push(("hetero".into(), report::render_hetero(&exp::hetero_comparison(params))));
            sections.push((
                "wrongpath".into(),
                report::render_wrongpath(&exp::wrongpath_sensitivity(params)),
            ));
            let mlp_rows = exp::mlp_contention(params);
            data.push(("mlp".into(), serde_json::json!(mlp_rows)));
            sections.push(("mlp".into(), report::render_mlp(&mlp_rows)));
        }
        _ => usage(),
    }

    for (_, text) in &sections {
        println!("{text}");
    }
    if let Some(path) = json_out {
        let map: std::collections::BTreeMap<&str, &str> =
            sections.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let data_map: std::collections::BTreeMap<&str, &serde_json::Value> =
            data.iter().map(|(k, v)| (k.as_str(), v)).collect();
        let run_outcomes: Vec<serde_json::Value> = db
            .outcomes()
            .iter()
            .map(|r| {
                serde_json::json!({
                    "spec": r.spec,
                    "status": r.status.name(),
                    "attempts": r.attempts,
                    "wall_ms": r.wall_ms,
                    "wedge": r.report.as_ref().map(|rep| rep.summary()),
                })
            })
            .collect();
        let payload = serde_json::json!({
            "params": { "commit_target": params.commit_target, "seed": params.seed },
            "sections": map,
            "data": data_map,
            "run_outcomes": run_outcomes,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&payload).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Table 1: print the paper configuration (asserting the defaults).
fn table1() -> String {
    let c = SimConfig::paper(64, DispatchPolicy::Traditional);
    format!(
        "Table 1: Configuration of the simulated processor\n  \
         machine width:        {}-wide fetch/issue/commit\n  \
         fetch threads/cycle:  {}\n  \
         ROB per thread:       {} entries\n  \
         LSQ per thread:       {} entries\n  \
         physical registers:   {} int + {} fp\n  \
         front end:            {}-stage fetch-to-dispatch\n  \
         L2 hit / memory:      {} / {} cycles\n  \
         branch predictor:     {}-entry gShare, {}-bit history, {}-entry {}-way BTB\n",
        c.width,
        c.fetch_threads_per_cycle,
        c.rob_per_thread,
        c.lsq_per_thread,
        c.phys_int,
        c.phys_fp,
        c.frontend_depth,
        c.hierarchy.l2_hit_latency,
        c.hierarchy.memory_latency,
        c.gshare.table_entries,
        c.gshare.history_bits,
        c.btb.entries,
        c.btb.ways,
    )
}

/// Tables 2–4: the simulated workload mixes.
fn mixes_tables() -> String {
    let mut out = String::new();
    for table in [MixTable::FourThread, MixTable::TwoThread, MixTable::ThreeThread] {
        out.push_str(&format!("{}\n", table.table_name()));
        for m in mixes_for(table) {
            out.push_str(&format!(
                "  {:<8} {:<26} {}\n",
                m.name,
                m.classification,
                m.benchmarks.join(", ")
            ));
        }
        out.push('\n');
    }
    out
}

/// Figure 2: the NDI/HDI classification example, demonstrated live through
/// the dispatch planner.
fn figure2_demo() -> String {
    use smt_core::{plan_thread, BufView, PhysReg};
    use smt_isa::RegClass;
    let preg = |i| PhysReg { class: RegClass::Int, index: i };
    // I2 has two non-ready sources (an NDI under 2OP_BLOCK); I3 is
    // independent of I2; I4 reads I2's destination.
    let i2 = BufView {
        trace_idx: 2,
        non_ready: 2,
        nonready_srcs: [Some(preg(1)), Some(preg(2))],
        dest: Some(preg(3)),
        is_rob_oldest: false,
    };
    let i3 = BufView {
        trace_idx: 3,
        non_ready: 0,
        nonready_srcs: [None, None],
        dest: Some(preg(4)),
        is_rob_oldest: false,
    };
    let i4 = BufView {
        trace_idx: 4,
        non_ready: 1,
        nonready_srcs: [Some(preg(3)), None],
        dest: Some(preg(5)),
        is_rob_oldest: false,
    };
    let ooo = plan_thread(&[i2, i3, i4], DispatchPolicy::TwoOpBlockOoo, 8);
    let blocked = plan_thread(&[i2, i3, i4], DispatchPolicy::TwoOpBlock, 8);
    let order: Vec<String> = ooo.candidates.iter().map(|c| format!("I{}", c.trace_idx)).collect();
    format!(
        "Figure 2: NDI/HDI classification example\n  \
         program: I2 (2 non-ready sources, NDI), I3 (independent DI), I4 (DI reading I2)\n  \
         2OP_BLOCK:          dispatches nothing (thread blocked by I2): blocked={}\n  \
         2OP_BLOCK+OOO:      dispatches {} ahead of I2 — both HDIs enter the IQ first\n  \
         I4 flagged NDI-dependent: {} (paper: such HDIs are ~10%% and not worth filtering)\n",
        blocked.ndi_blocked,
        order.join(", "),
        ooo.candidates.iter().any(|c| c.ndi_dependent),
    )
}
