//! Randomized fault-injection fuzzer for the recovery paths.
//!
//! Runs many short randomized simulations with one (or all) fault classes
//! enabled and checks that the pipeline always recovers: every run must end
//! in `TargetReached` or `AllFinished` — a single `Wedged` outcome fails the
//! fuzz. Half the scenarios run under a randomized finite non-blocking
//! memory configuration (few MSHRs, a slow bus, a small write buffer) so
//! faults also land while memory resources are under pressure.
//! Periodically it also replays a run from its recorded fault log and
//! asserts the replay is bit-identical (same fault log, same counters),
//! which is the determinism contract of `smt_core::faults`.
//!
//! Usage:
//!   faultfuzz [--iters N] [--class NAME|all] [--seed S] [--jobs N]
//!             [--json FILE]
//!
//! `NAME` is one of: wakeup-drop, issue-defer, cache-miss-extra,
//! predictor-flush. `--jobs N` shards iterations across worker threads:
//! scenarios are pre-drawn from the fuzz RNG serially, so the set of
//! scenarios — and therefore every wedge, replay check, and the final
//! verdict — is identical at any job count. `--json` writes a
//! machine-readable outcome summary (used as the CI artifact on failure).
//! Exits 1 on any wedge or replay divergence.

use std::io::Write as _;

use smt_core::{
    DeadlockMode, DispatchPolicy, FaultClass, FaultConfig, RunOutcome, SimConfig, Simulator,
};
use smt_mem::{MemModel, NonBlockingConfig};
use smt_sweep::thread_seed;
use smt_workload::{benchmark, benchmark_names, InstGenerator, SyntheticGen};

/// Minimal xorshift64 generator — keeps the fuzzer free of the `rand`
/// dependency (a dev-dependency elsewhere in the workspace).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: faultfuzz [--iters N] [--class wakeup-drop|issue-defer|cache-miss-extra|\
         predictor-flush|all] [--seed S] [--jobs N] [--json FILE]"
    );
    std::process::exit(2);
}

/// One randomized scenario, fully determined by the fuzzer's RNG state.
struct Scenario {
    benches: Vec<String>,
    iq_size: usize,
    commit_target: u64,
    workload_seed: u64,
    fault_seed: u64,
    /// Finite non-blocking memory configuration for half the scenarios, so
    /// faults also land while MSHRs, the bus, and the write buffer are
    /// under pressure; `None` runs the flat-latency model.
    mem: Option<NonBlockingConfig>,
}

impl Scenario {
    fn draw(rng: &mut XorShift) -> Self {
        let names = benchmark_names();
        let iqs = [8usize, 16, 32, 48];
        let benches =
            (0..2).map(|_| names[rng.below(names.len() as u64) as usize].to_string()).collect();
        let mem = if rng.below(2) == 1 {
            let mshrs = [1u32, 2, 4][rng.below(3) as usize];
            Some(NonBlockingConfig {
                l1i_mshrs: mshrs,
                l1d_mshrs: mshrs,
                l2_mshrs: mshrs * 2,
                bus_cycles_per_transfer: [0u32, 4, 16][rng.below(3) as usize],
                write_buffer_entries: [0u32, 2][rng.below(2) as usize],
                write_buffer_drain_per_cycle: 1,
            })
        } else {
            None
        };
        Scenario {
            benches,
            iq_size: iqs[rng.below(iqs.len() as u64) as usize],
            commit_target: 200 + rng.below(201),
            workload_seed: rng.next(),
            fault_seed: rng.next(),
            mem,
        }
    }

    fn config(&self, faults: FaultConfig) -> SimConfig {
        let mut cfg = SimConfig::paper(self.iq_size, DispatchPolicy::TwoOpBlockOoo);
        // The smallest DAB exercises the recovery path hardest: a single
        // injected stall can fill it, so draining must actually work.
        cfg.deadlock = DeadlockMode::Dab { size: 2 };
        cfg.max_cycles = 2_000_000;
        cfg.faults = faults;
        if let Some(nb) = self.mem {
            cfg.hierarchy.model = MemModel::NonBlocking(nb);
        }
        cfg
    }

    fn build(&self, faults: FaultConfig) -> Simulator {
        let streams: Vec<Box<dyn InstGenerator>> = self
            .benches
            .iter()
            .enumerate()
            .map(|(t, b)| {
                Box::new(SyntheticGen::new(benchmark(b), t, thread_seed(self.workload_seed, b, t)))
                    as Box<dyn InstGenerator>
            })
            .collect();
        Simulator::new(self.config(faults), streams)
    }

    fn describe(&self) -> String {
        let mem = match self.mem {
            Some(nb) => format!(
                "mshrs={}/{}/{} bus={} wb={}",
                nb.l1i_mshrs,
                nb.l1d_mshrs,
                nb.l2_mshrs,
                nb.bus_cycles_per_transfer,
                nb.write_buffer_entries
            ),
            None => "flat".to_string(),
        };
        format!(
            "benches={:?} iq={} target={} workload_seed={:#x} fault_seed={:#x} mem={}",
            self.benches,
            self.iq_size,
            self.commit_target,
            self.workload_seed,
            self.fault_seed,
            mem
        )
    }
}

fn fault_config_for(class_arg: &str, seed: u64) -> FaultConfig {
    if class_arg == "all" {
        FaultConfig::all_classes(seed)
    } else {
        let class = FaultClass::from_name(class_arg)
            .unwrap_or_else(|| panic!("unknown fault class '{class_arg}'"));
        FaultConfig::single(class, seed)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters: u64 = 1_000;
    let mut class_arg = String::from("all");
    let mut fuzz_seed: u64 = 0xFA0175;
    let mut jobs: usize = 1;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iters = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--class" => {
                i += 1;
                class_arg = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                fuzz_seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--jobs" => {
                i += 1;
                jobs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                json_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    // Validate the class name up front so a typo fails fast.
    let _ = fault_config_for(&class_arg, 0);

    // Pre-draw every scenario from the single fuzz RNG: each draw consumes
    // RNG state in sequence, so the scenario list — and everything derived
    // from it — is independent of how iterations are later sharded.
    let mut rng = XorShift::new(fuzz_seed);
    let scenarios: Vec<(u64, Scenario)> =
        (0..iters).map(|iter| (iter, Scenario::draw(&mut rng))).collect();

    /// Outcome of one fuzz iteration, merged back in iteration order.
    struct IterOutcome {
        wedge: Option<String>,
        replay_mismatch: Option<String>,
        injected: u64,
        replay_checked: bool,
    }

    let progress = std::sync::atomic::AtomicU64::new(0);
    let class_arg_ref = &class_arg;
    let outcomes = smt_sweep::ordered_par_map(jobs, scenarios, |(iter, sc)| {
        let done = progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if iters >= 1_000 && done.is_multiple_of(1_000) {
            eprint!("\r  [{done}/{iters}]");
            let _ = std::io::stderr().flush();
        }
        let faults = fault_config_for(class_arg_ref, sc.fault_seed);
        let mut sim = sc.build(faults);
        let outcome = sim.run(sc.commit_target);
        let mut out =
            IterOutcome { wedge: None, replay_mismatch: None, injected: 0, replay_checked: false };
        match outcome {
            RunOutcome::TargetReached | RunOutcome::AllFinished => {}
            RunOutcome::Wedged(report) => {
                eprintln!("iter {iter} WEDGED: {}\n{report}", sc.describe());
                out.wedge = Some(format!("iter {iter}: {}: {}", sc.describe(), report.summary()));
                return out;
            }
            RunOutcome::Aborted => unreachable!("no abort predicate installed"),
        }
        out.injected = sim.counters().faults.total_injected();

        // Determinism contract: replaying the recorded fault log must
        // reproduce the run exactly — same fault log, same counters.
        if iter % 50 == 0 {
            out.replay_checked = true;
            let log = sim.fault_log().to_vec();
            let mut replay = sc.build(faults);
            replay.set_fault_replay(log.clone());
            let replay_outcome = replay.run(sc.commit_target);
            let outcomes_match = matches!(
                (&outcome, &replay_outcome),
                (RunOutcome::TargetReached, RunOutcome::TargetReached)
                    | (RunOutcome::AllFinished, RunOutcome::AllFinished)
            );
            if !outcomes_match
                || replay.fault_log() != log.as_slice()
                || replay.counters() != sim.counters()
            {
                eprintln!("iter {iter} REPLAY DIVERGED: {}", sc.describe());
                out.replay_mismatch = Some(format!("iter {iter}: {}", sc.describe()));
            }
        }
        out
    });
    if iters >= 1_000 {
        eprintln!();
    }

    let mut wedges: Vec<String> = Vec::new();
    let mut replay_mismatches: Vec<String> = Vec::new();
    let mut total_injected: u64 = 0;
    let mut replay_checks: u64 = 0;
    for out in outcomes {
        wedges.extend(out.wedge);
        replay_mismatches.extend(out.replay_mismatch);
        total_injected += out.injected;
        replay_checks += u64::from(out.replay_checked);
    }

    let pass = wedges.is_empty() && replay_mismatches.is_empty();
    eprintln!(
        "faultfuzz: {iters} iters, class={class_arg}, seed={fuzz_seed}: \
         {} injected faults, {} replay checks, {} wedges, {} replay mismatches -> {}",
        total_injected,
        replay_checks,
        wedges.len(),
        replay_mismatches.len(),
        if pass { "PASS" } else { "FAIL" }
    );

    if let Some(path) = json_out {
        let payload = serde_json::json!({
            "iters": iters,
            "class": class_arg,
            "seed": fuzz_seed,
            "total_injected": total_injected,
            "replay_checks": replay_checks,
            "wedges": wedges,
            "replay_mismatches": replay_mismatches,
            "pass": pass,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&payload).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    std::process::exit(if pass { 0 } else { 1 });
}
