//! `smtsim` — run one SMT simulation from the command line.
//!
//! The general-purpose front door for downstream users: pick benchmarks, a
//! dispatch policy, queue sizes and a fetch policy; get the full statistics
//! as text or JSON.
//!
//! ```sh
//! smtsim --benchmarks gcc,art --policy ooo --iq 64 --target 20000
//! smtsim --benchmarks swim,gap,mesa --policy 2op --iq 32 --fetch-policy flush --json stats.json
//! ```

use smt_core::config::FetchPolicy;
use smt_core::{DispatchPolicy, SimConfig};
use smt_sweep::runner::{run_spec_with_config, RunSpec};

struct Args {
    benchmarks: Vec<String>,
    policy: DispatchPolicy,
    fetch_policy: FetchPolicy,
    iq: usize,
    target: u64,
    warmup: Option<u64>,
    seed: u64,
    wrong_path: bool,
    rob: Option<usize>,
    lsq: Option<usize>,
    dispatch_buffer: Option<usize>,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: smtsim --benchmarks a,b[,c,d] [--policy trad|2op|ooo|filtered|tagelim|halfprice|packed]\n\
         \x20             [--fetch-policy icount|rr|stall|flush] [--iq N] [--target N] [--warmup N]\n\
         \x20             [--seed N] [--wrong-path] [--rob N] [--lsq N] [--dispatch-buffer N] [--json FILE]\n\
         benchmarks: {}",
        smt_workload::benchmark_names().join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        benchmarks: vec![],
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch_policy: FetchPolicy::ICount,
        iq: 64,
        target: 20_000,
        warmup: None,
        seed: 1,
        wrong_path: false,
        rob: None,
        lsq: None,
        dispatch_buffer: None,
        json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--benchmarks" => {
                args.benchmarks =
                    value(&argv, &mut i).split(',').map(|s| s.trim().to_string()).collect()
            }
            "--policy" => {
                args.policy = match value(&argv, &mut i).as_str() {
                    "trad" | "traditional" => DispatchPolicy::Traditional,
                    "2op" | "2opblock" => DispatchPolicy::TwoOpBlock,
                    "ooo" => DispatchPolicy::TwoOpBlockOoo,
                    "filtered" => DispatchPolicy::TwoOpBlockOooFiltered,
                    "tagelim" => DispatchPolicy::TagEliminated,
                    "halfprice" => DispatchPolicy::HalfPrice,
                    "packed" => DispatchPolicy::Packed,
                    _ => usage(),
                }
            }
            "--fetch-policy" => {
                args.fetch_policy = match value(&argv, &mut i).as_str() {
                    "icount" => FetchPolicy::ICount,
                    "rr" | "round-robin" => FetchPolicy::RoundRobin,
                    "stall" => FetchPolicy::Stall,
                    "flush" => FetchPolicy::Flush,
                    _ => usage(),
                }
            }
            "--iq" => args.iq = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--target" => args.target = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => {
                args.warmup = Some(value(&argv, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => args.seed = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--wrong-path" => args.wrong_path = true,
            "--rob" => args.rob = Some(value(&argv, &mut i).parse().unwrap_or_else(|_| usage())),
            "--lsq" => args.lsq = Some(value(&argv, &mut i).parse().unwrap_or_else(|_| usage())),
            "--dispatch-buffer" => {
                args.dispatch_buffer =
                    Some(value(&argv, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--json" => args.json = Some(value(&argv, &mut i)),
            _ => usage(),
        }
        i += 1;
    }
    if args.benchmarks.is_empty() {
        usage();
    }
    args
}

fn main() {
    let a = parse_args();
    let mut spec = RunSpec::new(&a.benchmarks, a.iq, a.policy, a.target, a.seed);
    if let Some(w) = a.warmup {
        spec = spec.with_warmup(w);
    }
    let mut cfg = SimConfig::paper(a.iq, a.policy);
    cfg.fetch_policy = a.fetch_policy;
    cfg.wrong_path = a.wrong_path;
    if let Some(v) = a.rob {
        cfg.rob_per_thread = v;
    }
    if let Some(v) = a.lsq {
        cfg.lsq_per_thread = v;
    }
    if let Some(v) = a.dispatch_buffer {
        cfg.dispatch_buffer_cap = v;
    }

    let r = run_spec_with_config(&spec, cfg);

    println!(
        "workload: {}  policy: {}  fetch: {}  IQ: {}",
        a.benchmarks.join(", "),
        a.policy.name(),
        a.fetch_policy.name(),
        a.iq
    );
    println!("cycles: {}   throughput IPC: {:.3}", r.cycles, r.ipc);
    for (t, (b, ipc)) in a.benchmarks.iter().zip(&r.per_thread_ipc).enumerate() {
        let tc = &r.counters.threads[t];
        println!(
            "  t{t} {b:<10} IPC {ipc:.3}  committed {:>8}  mispredict {:>5.1}%  IQ-wait {:>5.1} cyc",
            tc.committed,
            tc.mispredict_rate() * 100.0,
            tc.mean_iq_residency(),
        );
    }
    println!(
        "IQ occupancy {:.1}, all-thread NDI stalls {:.2}%, HDIs dispatched {}",
        r.mean_iq_occupancy,
        r.all_stall_frac * 100.0,
        r.counters.threads.iter().map(|t| t.hdis_dispatched).sum::<u64>(),
    );
    if let Some(path) = a.json {
        std::fs::write(&path, serde_json::to_string_pretty(&r.counters).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
