//! Memoized, parallel execution of simulation runs.
//!
//! Several of the paper's figures share underlying sweeps (e.g. the
//! traditional-scheduler runs serve as the baseline of Figures 1 and 3–8
//! and as the denominator of the fairness metric). [`ResultsDb`] computes
//! each distinct [`RunSpec`] exactly once, fanning batches out over rayon.

use crate::runner::{run_spec, RunResult, RunSpec};
use parking_lot::Mutex;
use rayon::prelude::*;
use smt_core::DispatchPolicy;
use std::collections::HashMap;
use std::sync::Arc;

/// A concurrent memo table of simulation results.
#[derive(Default)]
pub struct ResultsDb {
    results: Mutex<HashMap<RunSpec, Arc<RunResult>>>,
    /// Progress callback invoked after each completed run with
    /// (completed, total) of the current batch.
    progress: Option<Box<dyn Fn(usize, usize) + Send + Sync>>,
}

impl ResultsDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a progress callback (e.g. printing to stderr).
    pub fn with_progress(mut self, f: impl Fn(usize, usize) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Number of memoized results.
    pub fn len(&self) -> usize {
        self.results.lock().len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.results.lock().is_empty()
    }

    /// Ensure every spec in `specs` has been run, in parallel; then return
    /// results in order.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<Arc<RunResult>> {
        let missing: Vec<RunSpec> = {
            let map = self.results.lock();
            specs.iter().filter(|s| !map.contains_key(*s)).cloned().collect()
        };
        // Deduplicate while preserving determinism.
        let mut todo: Vec<RunSpec> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for s in missing {
                if seen.insert(s.clone()) {
                    todo.push(s);
                }
            }
        }
        let total = todo.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let fresh: Vec<(RunSpec, Arc<RunResult>)> = todo
            .into_par_iter()
            .map(|spec| {
                let result = Arc::new(run_spec(&spec));
                let d = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if let Some(cb) = &self.progress {
                    cb(d, total);
                }
                (spec, result)
            })
            .collect();
        {
            let mut map = self.results.lock();
            for (spec, result) in fresh {
                map.insert(spec, result);
            }
        }
        let map = self.results.lock();
        specs.iter().map(|s| Arc::clone(&map[s])).collect()
    }

    /// Run (or fetch) a single spec.
    pub fn get(&self, spec: &RunSpec) -> Arc<RunResult> {
        self.run_all(std::slice::from_ref(spec)).pop().unwrap()
    }

    /// Single-thread reference IPC of `bench` on a traditional scheduler of
    /// `iq_size` entries — the denominator of the paper's weighted-IPC
    /// fairness metric.
    pub fn single_thread_ipc(
        &self,
        bench: &str,
        iq_size: usize,
        commit_target: u64,
        seed: u64,
    ) -> f64 {
        let spec =
            RunSpec::new(&[bench], iq_size, DispatchPolicy::Traditional, commit_target, seed);
        self.get(&spec).ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_identical_arc() {
        let db = ResultsDb::new();
        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let a = db.get(&spec);
        let b = db.get(&spec);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be memoized");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn run_all_preserves_order_and_dedups() {
        let db = ResultsDb::new();
        let s1 = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let s2 = RunSpec::new(&["art"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let out = db.run_all(&[s1.clone(), s2.clone(), s1.clone()]);
        assert_eq!(out.len(), 3);
        assert!(Arc::ptr_eq(&out[0], &out[2]));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn single_thread_reference_is_positive() {
        let db = ResultsDb::new();
        let ipc = db.single_thread_ipc("crafty", 64, 1_000, 1);
        assert!(ipc > 0.2, "reference IPC {ipc}");
    }
}
