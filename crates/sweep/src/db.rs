//! Memoized, parallel, failure-tolerant execution of simulation runs.
//!
//! Several of the paper's figures share underlying sweeps (e.g. the
//! traditional-scheduler runs serve as the baseline of Figures 1 and 3–8
//! and as the denominator of the fairness metric). [`ResultsDb`] computes
//! each distinct [`RunSpec`] exactly once, fanning batches out over rayon.
//!
//! Every run is isolated: a wedge, a panic, or an expired wall-clock budget
//! produces a [`RunRecord`] with a non-[`RunStatus::Ok`] status instead of
//! taking the whole sweep down. A wedged run is retried once (keeping the
//! first [`DeadlockReport`] either way) so a transient host hiccup cannot
//! masquerade as a simulator deadlock. With [`ResultsDb::with_journal`],
//! completed records are appended to a JSONL checkpoint and reloaded on the
//! next construction, so a killed sweep resumes without re-running finished
//! specs.

use crate::runner::{run_spec_budgeted, RunFailure, RunResult, RunSpec};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use smt_core::{DeadlockReport, DispatchPolicy, SimConfig};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Terminal status of one attempted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The run finished and its metrics are usable.
    Ok,
    /// The pipeline stopped making forward progress on both attempts.
    Wedged,
    /// The run panicked; `panic_msg` holds the payload.
    Panicked,
    /// The per-run wall-clock budget expired.
    TimedOut,
}

impl RunStatus {
    /// Lower-case name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Wedged => "wedged",
            RunStatus::Panicked => "panicked",
            RunStatus::TimedOut => "timed-out",
        }
    }
}

/// Everything the database remembers about one attempted spec.
#[derive(Debug)]
pub struct RunRecord {
    /// The spec that was run.
    pub spec: RunSpec,
    /// How the (final) attempt ended.
    pub status: RunStatus,
    /// Measured metrics; [`RunResult::failed`] zeros unless `status` is
    /// [`RunStatus::Ok`].
    pub metrics: Arc<RunResult>,
    /// Deadlock diagnosis from the *first* wedged attempt, kept even when a
    /// retry succeeded (`status` then remains [`RunStatus::Ok`]).
    pub report: Option<Box<DeadlockReport>>,
    /// Panic payload when `status` is [`RunStatus::Panicked`].
    pub panic_msg: Option<String>,
    /// Attempts made (2 when a wedge triggered the retry).
    pub attempts: u32,
    /// Wall-clock time across all attempts, in milliseconds.
    pub wall_ms: u64,
}

/// Serialized form of a [`RunRecord`] for the JSONL journal.
#[derive(Serialize, Deserialize)]
struct JournalEntry {
    spec: RunSpec,
    status: RunStatus,
    metrics: RunResult,
    report: Option<DeadlockReport>,
    panic_msg: Option<String>,
    attempts: u32,
    wall_ms: u64,
}

impl JournalEntry {
    fn from_record(r: &RunRecord) -> Self {
        JournalEntry {
            spec: r.spec.clone(),
            status: r.status,
            metrics: (*r.metrics).clone(),
            report: r.report.as_deref().cloned(),
            panic_msg: r.panic_msg.clone(),
            attempts: r.attempts,
            wall_ms: r.wall_ms,
        }
    }

    fn into_record(self) -> RunRecord {
        RunRecord {
            spec: self.spec,
            status: self.status,
            metrics: Arc::new(self.metrics),
            report: self.report.map(Box::new),
            panic_msg: self.panic_msg,
            attempts: self.attempts,
            wall_ms: self.wall_ms,
        }
    }
}

/// A concurrent memo table of simulation results.
#[derive(Default)]
pub struct ResultsDb {
    records: Mutex<HashMap<RunSpec, Arc<RunRecord>>>,
    /// Progress callback invoked after each completed run with
    /// (completed, total) of the current batch.
    progress: Option<Box<dyn Fn(usize, usize) + Send + Sync>>,
    /// Open checkpoint journal, appended to after every completed run.
    journal: Option<Mutex<std::fs::File>>,
    /// Per-run wall-clock budget; `None` = unbounded.
    budget: Option<Duration>,
}

impl ResultsDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a progress callback (e.g. printing to stderr).
    pub fn with_progress(mut self, f: impl Fn(usize, usize) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Bound every individual run to `budget` of wall-clock time; an
    /// expired run is recorded as [`RunStatus::TimedOut`].
    pub fn with_wall_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attach a JSONL checkpoint journal at `path`. Records already present
    /// in the file are loaded (so their specs will not be re-run) and every
    /// newly completed record is appended, making a killed-and-restarted
    /// sweep resume where it left off. Unparseable lines — e.g. a partial
    /// line from a crash mid-write — are skipped.
    pub fn with_journal(mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Ok(f) = std::fs::File::open(path) {
            let mut map = self.records.lock();
            for line in std::io::BufReader::new(f).lines() {
                let Ok(line) = line else { break };
                if let Ok(entry) = serde_json::from_str::<JournalEntry>(&line) {
                    let rec = entry.into_record();
                    map.insert(rec.spec.clone(), Arc::new(rec));
                }
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        self.journal = Some(Mutex::new(file));
        Ok(self)
    }

    /// Number of memoized records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Execute one spec with full isolation: panics are caught, the
    /// wall-clock budget is enforced, and a wedge is retried once with the
    /// first report kept.
    fn execute_spec(&self, spec: &RunSpec) -> RunRecord {
        let started = Instant::now();
        let deadline = self.budget.map(|b| started + b);
        let n = spec.benchmarks.len();
        let mut first_report: Option<Box<DeadlockReport>> = None;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let cfg = SimConfig::paper(spec.iq_size, spec.policy);
            let outcome = catch_unwind(AssertUnwindSafe(|| run_spec_budgeted(spec, cfg, deadline)));
            let wall_ms = started.elapsed().as_millis() as u64;
            let fail = |status, report, panic_msg| RunRecord {
                spec: spec.clone(),
                status,
                metrics: Arc::new(RunResult::failed(n)),
                report,
                panic_msg,
                attempts,
                wall_ms,
            };
            match outcome {
                Ok(Ok(result)) => {
                    return RunRecord {
                        spec: spec.clone(),
                        status: RunStatus::Ok,
                        metrics: Arc::new(result),
                        report: first_report,
                        panic_msg: None,
                        attempts,
                        wall_ms,
                    }
                }
                Ok(Err(RunFailure::Wedged(report))) => {
                    if first_report.is_none() {
                        // First wedge: keep the diagnosis and retry once.
                        first_report = Some(report);
                        continue;
                    }
                    return fail(RunStatus::Wedged, first_report, None);
                }
                Ok(Err(RunFailure::TimedOut)) => {
                    return fail(RunStatus::TimedOut, first_report, None)
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    return fail(RunStatus::Panicked, first_report, Some(msg));
                }
            }
        }
    }

    fn append_to_journal(&self, record: &RunRecord) {
        if let Some(journal) = &self.journal {
            if let Ok(line) = serde_json::to_string(&JournalEntry::from_record(record)) {
                let mut f = journal.lock();
                // Best-effort: a full disk should not kill the sweep.
                let _ = writeln!(f, "{line}");
                let _ = f.flush();
            }
        }
    }

    /// Ensure every spec in `specs` has been attempted, in parallel; then
    /// return records in order. Failed runs are returned like any other —
    /// check [`RunRecord::status`] before using their metrics.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<Arc<RunRecord>> {
        let missing: Vec<RunSpec> = {
            let map = self.records.lock();
            specs.iter().filter(|s| !map.contains_key(*s)).cloned().collect()
        };
        // Deduplicate while preserving determinism.
        let mut todo: Vec<RunSpec> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for s in missing {
                if seen.insert(s.clone()) {
                    todo.push(s);
                }
            }
        }
        let total = todo.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let fresh: Vec<Arc<RunRecord>> = todo
            .into_par_iter()
            .map(|spec| {
                let record = Arc::new(self.execute_spec(&spec));
                self.append_to_journal(&record);
                let d = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if let Some(cb) = &self.progress {
                    cb(d, total);
                }
                record
            })
            .collect();
        {
            let mut map = self.records.lock();
            for record in fresh {
                map.insert(record.spec.clone(), record);
            }
        }
        let map = self.records.lock();
        specs.iter().map(|s| Arc::clone(&map[s])).collect()
    }

    /// Run (or fetch) a single spec and return its metrics. Failed runs
    /// yield [`RunResult::failed`] zeros; use [`ResultsDb::record`] when the
    /// status matters.
    pub fn get(&self, spec: &RunSpec) -> Arc<RunResult> {
        self.record(spec).metrics.clone()
    }

    /// Run (or fetch) a single spec and return its full record.
    pub fn record(&self, spec: &RunSpec) -> Arc<RunRecord> {
        self.run_all(std::slice::from_ref(spec)).pop().unwrap()
    }

    /// Every record, ordered deterministically (by spec debug format) for
    /// stable JSON output.
    pub fn outcomes(&self) -> Vec<Arc<RunRecord>> {
        let map = self.records.lock();
        let mut all: Vec<Arc<RunRecord>> = map.values().cloned().collect();
        all.sort_by_key(|r| format!("{:?}", r.spec));
        all
    }

    /// Records whose status is not [`RunStatus::Ok`], same ordering as
    /// [`ResultsDb::outcomes`].
    pub fn failures(&self) -> Vec<Arc<RunRecord>> {
        self.outcomes().into_iter().filter(|r| r.status != RunStatus::Ok).collect()
    }

    /// Single-thread reference IPC of `bench` on a traditional scheduler of
    /// `iq_size` entries — the denominator of the paper's weighted-IPC
    /// fairness metric.
    pub fn single_thread_ipc(
        &self,
        bench: &str,
        iq_size: usize,
        commit_target: u64,
        seed: u64,
    ) -> f64 {
        let spec =
            RunSpec::new(&[bench], iq_size, DispatchPolicy::Traditional, commit_target, seed);
        self.get(&spec).ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wedging_spec() -> RunSpec {
        // A 50-cycle ceiling cannot retire 1M instructions, so the run
        // always ends in a wedge diagnosis.
        RunSpec::new(&["gcc", "art"], 64, DispatchPolicy::Traditional, 1_000_000, 1)
            .with_warmup(0)
            .with_max_cycles(50)
    }

    #[test]
    fn memoization_returns_identical_arc() {
        let db = ResultsDb::new();
        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let a = db.get(&spec);
        let b = db.get(&spec);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be memoized");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn run_all_preserves_order_and_dedups() {
        let db = ResultsDb::new();
        let s1 = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let s2 = RunSpec::new(&["art"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let out = db.run_all(&[s1.clone(), s2.clone(), s1.clone()]);
        assert_eq!(out.len(), 3);
        assert!(Arc::ptr_eq(&out[0], &out[2]));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn single_thread_reference_is_positive() {
        let db = ResultsDb::new();
        let ipc = db.single_thread_ipc("crafty", 64, 1_000, 1);
        assert!(ipc > 0.2, "reference IPC {ipc}");
    }

    #[test]
    fn a_wedged_run_is_recorded_and_the_sweep_continues() {
        let db = ResultsDb::new();
        let good = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let out = db.run_all(&[wedging_spec(), good.clone()]);
        assert_eq!(out[0].status, RunStatus::Wedged);
        assert_eq!(out[0].attempts, 2, "a wedge must be retried once");
        let report = out[0].report.as_ref().expect("wedge must carry its report");
        assert_eq!(report.threads.len(), 2);
        assert_eq!(out[0].metrics.ipc, 0.0);
        assert_eq!(out[1].status, RunStatus::Ok, "later specs must still run");
        assert!(out[1].metrics.ipc > 0.1);
        assert_eq!(db.failures().len(), 1);
    }

    #[test]
    fn zero_wall_budget_times_runs_out() {
        let db = ResultsDb::new().with_wall_budget(Duration::ZERO);
        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000_000, 1);
        let rec = db.record(&spec);
        assert_eq!(rec.status, RunStatus::TimedOut);
        assert!(!rec.metrics.outcome_target_reached);
    }

    #[test]
    fn journal_resumes_without_rerunning_completed_specs() {
        let dir = std::env::temp_dir().join(format!("smt-sweep-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let first = {
            let db = ResultsDb::new().with_journal(&path).unwrap();
            assert!(db.is_empty(), "fresh journal must start empty");
            let r = db.record(&spec);
            // The wedge record round-trips too (report and all).
            let w = db.record(&wedging_spec());
            assert_eq!(w.status, RunStatus::Wedged);
            r
        };

        // "Restart": a new db on the same journal must already hold both
        // records, and get() must not re-run (ptr_eq to the loaded Arc).
        let db = ResultsDb::new().with_journal(&path).unwrap();
        assert_eq!(db.len(), 2, "journal must restore both records");
        let resumed = db.record(&spec);
        assert_eq!(resumed.status, RunStatus::Ok);
        assert_eq!(resumed.metrics.ipc, first.metrics.ipc);
        assert!(
            Arc::ptr_eq(&db.record(&spec).metrics, &resumed.metrics),
            "resumed spec must come from the journal, not a re-run"
        );
        let wedge = db.record(&wedging_spec());
        assert_eq!(wedge.status, RunStatus::Wedged);
        assert!(wedge.report.is_some(), "deadlock report must survive the journal");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
