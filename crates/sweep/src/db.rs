//! Memoized, parallel, failure-tolerant execution of simulation runs.
//!
//! Several of the paper's figures share underlying sweeps (e.g. the
//! traditional-scheduler runs serve as the baseline of Figures 1 and 3–8
//! and as the denominator of the fairness metric). [`ResultsDb`] computes
//! each distinct [`RunSpec`] exactly once, sharding batches across a
//! [`SweepPool`] when one is attached ([`ResultsDb::with_jobs`] /
//! [`ResultsDb::with_pool`]).
//!
//! **Scheduling never leaks into results.** Runs are deterministic given
//! their spec, and completed records are merged back into the database and
//! the journal **in spec order** — an out-of-order completion waits in a
//! reorder buffer until every earlier spec has been emitted. The database
//! contents, the journal bytes, and everything rendered from them are
//! therefore bit-identical whether a batch ran on one worker or sixteen
//! (pinned by `tests/parallel_determinism.rs`).
//!
//! Every run is isolated: a wedge, a panic, or an expired wall-clock budget
//! produces a [`RunRecord`] with a non-[`RunStatus::Ok`] status instead of
//! taking the whole sweep down. A wedged run is retried once (keeping the
//! first [`DeadlockReport`] either way) so a transient host hiccup cannot
//! masquerade as a simulator deadlock. Panics inside an isolated run are
//! kept quiet — the payload travels through the record's `panic_msg`, not
//! through a backtrace interleaved across worker threads — while panics
//! anywhere else (tests, the `diag` tool) stay loud.
//!
//! With [`ResultsDb::with_journal`], completed records are appended to a
//! JSONL checkpoint and reloaded on the next construction, so a killed
//! sweep resumes without re-running finished specs. Each record is written
//! as one `write_all` of a complete `line\n` and flushed, so a crash can
//! torn-write at most the final line; the loader detects such a torn tail,
//! truncates it (with a warning) and resumes from the clean prefix.

use crate::pool::SweepPool;
use crate::runner::{run_spec_supervised, RunFailure, RunResult, RunSpec};
use crate::supervise::CancelToken;
use serde::{Deserialize, Serialize};
use smt_core::{DeadlockReport, DispatchPolicy, SimConfig};
use std::cell::Cell;
use std::collections::HashMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};

/// Terminal status of one attempted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The run finished and its metrics are usable.
    Ok,
    /// The pipeline stopped making forward progress on both attempts.
    Wedged,
    /// The run panicked; `panic_msg` holds the payload.
    Panicked,
    /// The per-run wall-clock budget expired.
    TimedOut,
    /// The sweep's cancel token fired before (or while) this spec ran.
    /// Cancelled records are ephemeral: never journaled, never memoized —
    /// a resumed sweep re-runs the spec as if it had never been attempted.
    Cancelled,
}

impl RunStatus {
    /// Lower-case name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Wedged => "wedged",
            RunStatus::Panicked => "panicked",
            RunStatus::TimedOut => "timed-out",
            RunStatus::Cancelled => "cancelled",
        }
    }
}

/// Everything the database remembers about one attempted spec.
#[derive(Debug)]
pub struct RunRecord {
    /// The spec that was run.
    pub spec: RunSpec,
    /// How the (final) attempt ended.
    pub status: RunStatus,
    /// Measured metrics; [`RunResult::failed`] zeros unless `status` is
    /// [`RunStatus::Ok`].
    pub metrics: Arc<RunResult>,
    /// Deadlock diagnosis from the *first* wedged attempt, kept even when a
    /// retry succeeded (`status` then remains [`RunStatus::Ok`]).
    pub report: Option<Box<DeadlockReport>>,
    /// Panic payload when `status` is [`RunStatus::Panicked`].
    pub panic_msg: Option<String>,
    /// Attempts made (2 when a wedge triggered the retry).
    pub attempts: u32,
    /// Wall-clock time across all attempts, in milliseconds. In-memory
    /// only: wall time varies run to run, so it is deliberately excluded
    /// from the journal and every byte-stable output (`--json`, reports).
    /// Records resumed from a journal report 0.
    pub wall_ms: u64,
}

/// Serialized form of a [`RunRecord`] for the JSONL journal. Contains no
/// wall-clock (or otherwise nondeterministic) fields: the journal written
/// by a parallel sweep must be byte-identical to a serial one.
#[derive(Serialize, Deserialize)]
struct JournalEntry {
    spec: RunSpec,
    status: RunStatus,
    metrics: RunResult,
    report: Option<DeadlockReport>,
    panic_msg: Option<String>,
    attempts: u32,
}

impl JournalEntry {
    fn from_record(r: &RunRecord) -> Self {
        JournalEntry {
            spec: r.spec.clone(),
            status: r.status,
            metrics: (*r.metrics).clone(),
            report: r.report.as_deref().cloned(),
            panic_msg: r.panic_msg.clone(),
            attempts: r.attempts,
        }
    }

    fn into_record(self) -> RunRecord {
        RunRecord {
            spec: self.spec,
            status: self.status,
            metrics: Arc::new(self.metrics),
            report: self.report.map(Box::new),
            panic_msg: self.panic_msg,
            attempts: self.attempts,
            wall_ms: 0,
        }
    }
}

// Marks the current thread as executing an isolated run: panics are
// swallowed by the hook (their payload is captured via `catch_unwind`
// into the record) instead of spraying backtraces across worker threads.
thread_local! {
    static IN_ISOLATED_RUN: Cell<bool> = const { Cell::new(false) };
}

static ISOLATION_HOOK: Once = Once::new();

/// Install (once, process-wide) a panic hook that stays silent for panics
/// raised inside an isolated run and delegates to the previous hook for
/// everything else — so `cargo test` assertions and the `diag` tool remain
/// as loud as ever, while a 16-worker sweep with a panicking config prints
/// nothing but its own status column.
fn install_isolation_hook() {
    ISOLATION_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_ISOLATED_RUN.with(Cell::get) {
                return;
            }
            previous(info);
        }));
    });
}

struct IsolationGuard;

impl IsolationGuard {
    fn enter() -> Self {
        install_isolation_hook();
        IN_ISOLATED_RUN.with(|f| f.set(true));
        IsolationGuard
    }
}

impl Drop for IsolationGuard {
    fn drop(&mut self) {
        IN_ISOLATED_RUN.with(|f| f.set(false));
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fresh ephemeral record for a spec the cancel token kept from running
/// (or aborted mid-flight). `attempts` records how many were actually made.
fn cancelled_record(spec: &RunSpec, attempts: u32, wall_ms: u64) -> RunRecord {
    RunRecord {
        spec: spec.clone(),
        status: RunStatus::Cancelled,
        metrics: Arc::new(RunResult::failed(spec.benchmarks.len())),
        report: None,
        panic_msg: None,
        attempts,
        wall_ms,
    }
}

/// Execute one spec with full isolation: panics are caught (quietly — see
/// [`install_isolation_hook`]), the wall-clock budget is enforced, the
/// sweep's cancel token (if any) is polled inside the run loop, and a
/// wedge is retried once with the first report kept. Free function so pool
/// workers can run it without borrowing the database.
fn execute_spec(
    spec: &RunSpec,
    budget: Option<Duration>,
    cancel: Option<&CancelToken>,
) -> RunRecord {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        // Already-cancelled sweeps skip the spec entirely: queued pool jobs
        // drain in microseconds instead of each simulating to completion.
        return cancelled_record(spec, 0, 0);
    }
    let started = Instant::now();
    let deadline = budget.map(|b| started + b);
    let n = spec.benchmarks.len();
    let mut first_report: Option<Box<DeadlockReport>> = None;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let cfg = SimConfig::paper(spec.iq_size, spec.policy);
        let outcome = {
            let _quiet = IsolationGuard::enter();
            catch_unwind(AssertUnwindSafe(|| run_spec_supervised(spec, cfg, deadline, cancel)))
        };
        let wall_ms = started.elapsed().as_millis() as u64;
        let fail = |status, report, panic_msg| RunRecord {
            spec: spec.clone(),
            status,
            metrics: Arc::new(RunResult::failed(n)),
            report,
            panic_msg,
            attempts,
            wall_ms,
        };
        match outcome {
            Ok(Ok(result)) => {
                return RunRecord {
                    spec: spec.clone(),
                    status: RunStatus::Ok,
                    metrics: Arc::new(result),
                    report: first_report,
                    panic_msg: None,
                    attempts,
                    wall_ms,
                }
            }
            Ok(Err(RunFailure::Wedged(report))) => {
                if first_report.is_none() {
                    // First wedge: keep the diagnosis and retry once.
                    first_report = Some(report);
                    continue;
                }
                return fail(RunStatus::Wedged, first_report, None);
            }
            Ok(Err(RunFailure::TimedOut)) => return fail(RunStatus::TimedOut, first_report, None),
            Ok(Err(RunFailure::Cancelled)) => return cancelled_record(spec, attempts, wall_ms),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return fail(RunStatus::Panicked, first_report, Some(msg));
            }
        }
    }
}

/// A concurrent memo table of simulation results.
#[derive(Default)]
pub struct ResultsDb {
    records: Mutex<HashMap<RunSpec, Arc<RunRecord>>>,
    /// Progress callback invoked as records are merged (in spec order)
    /// with (merged, total) of the current batch.
    progress: Option<Box<dyn Fn(usize, usize) + Send + Sync>>,
    /// Open checkpoint journal, appended to as each record is merged.
    journal: Option<Mutex<std::fs::File>>,
    /// Per-run wall-clock budget; `None` = unbounded.
    budget: Option<Duration>,
    /// Worker pool for sharded batch execution; `None` = serial.
    pool: Option<Arc<SweepPool>>,
    /// Sweep-wide cooperative cancellation; `None` = never cancelled.
    cancel: Option<CancelToken>,
}

impl ResultsDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a progress callback (e.g. printing to stderr).
    pub fn with_progress(mut self, f: impl Fn(usize, usize) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Bound every individual run to `budget` of wall-clock time; an
    /// expired run is recorded as [`RunStatus::TimedOut`].
    pub fn with_wall_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Shard batch execution across `jobs` worker threads. `jobs <= 1`
    /// keeps the serial path. Results are independent of `jobs` down to
    /// the byte (see the module docs).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.pool = if jobs > 1 { Some(SweepPool::shared(jobs)) } else { None };
        self
    }

    /// Shard batch execution across an existing (possibly shared) pool.
    pub fn with_pool(mut self, pool: Arc<SweepPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attach a cooperative cancellation token. Once it fires, in-flight
    /// runs abort at the next abort poll and unstarted specs are skipped;
    /// every affected spec yields an ephemeral [`RunStatus::Cancelled`]
    /// record that is neither journaled nor memoized, so the journal's
    /// clean prefix is exactly what a resumed sweep picks up.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Has this database's cancel token fired?
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Attach a JSONL checkpoint journal at `path`. Records already present
    /// in the file are loaded (so their specs will not be re-run) and every
    /// newly completed record is appended, making a killed-and-restarted
    /// sweep resume where it left off.
    ///
    /// Crash consistency: appends are single whole-line writes, so the only
    /// damage a kill can inflict is a truncated *final* line. Such a torn
    /// tail is detected (it has no terminating newline), warned about, and
    /// truncated away so the next append starts on a clean line instead of
    /// gluing two records together. A complete-but-unparseable line (hand
    /// edits, version skew) is warned about and skipped, but kept in the
    /// file.
    pub fn with_journal(mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Ok(data) = std::fs::read(path) {
            let mut map = lock(&self.records);
            let mut pos = 0usize;
            let mut clean_len = 0usize;
            while pos < data.len() {
                match data[pos..].iter().position(|&b| b == b'\n') {
                    Some(rel) => {
                        let line = &data[pos..pos + rel];
                        match std::str::from_utf8(line)
                            .ok()
                            .and_then(|s| serde_json::from_str::<JournalEntry>(s).ok())
                        {
                            Some(entry) => {
                                let rec = entry.into_record();
                                map.insert(rec.spec.clone(), Arc::new(rec));
                            }
                            None => {
                                if !line.is_empty() {
                                    eprintln!(
                                        "warning: journal {}: skipping unparseable line at byte {pos}",
                                        path.display()
                                    );
                                }
                            }
                        }
                        pos += rel + 1;
                        clean_len = pos;
                    }
                    None => {
                        eprintln!(
                            "warning: journal {}: dropping torn trailing line ({} bytes) — \
                             likely a crash mid-append; its spec will be re-run",
                            path.display(),
                            data.len() - pos
                        );
                        break;
                    }
                }
            }
            drop(map);
            if clean_len < data.len() {
                // Truncate the torn tail so future appends cannot merge
                // into it and poison *two* records instead of none.
                let f = std::fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(clean_len as u64)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        self.journal = Some(Mutex::new(file));
        Ok(self)
    }

    /// Number of memoized records.
    pub fn len(&self) -> usize {
        lock(&self.records).len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        lock(&self.records).is_empty()
    }

    fn append_to_journal(&self, record: &RunRecord) {
        if let Some(journal) = &self.journal {
            if let Ok(mut line) = serde_json::to_string(&JournalEntry::from_record(record)) {
                line.push('\n');
                let mut f = lock(journal);
                // One write_all per record: a kill can truncate the last
                // line but never interleave two. Best-effort beyond that —
                // a full disk should not kill the sweep.
                let _ = f.write_all(line.as_bytes());
                let _ = f.flush();
            }
        }
    }

    /// Journal, memoize, and report one freshly computed record. The merge
    /// order across a batch is the caller's responsibility (spec order).
    ///
    /// Cancelled records are deliberately dropped on the floor: nothing is
    /// journaled (the journal must end at a clean completed-record
    /// boundary), nothing is memoized (a later sweep must re-run the spec),
    /// and no progress is reported (the run did not complete).
    fn commit(&self, record: Arc<RunRecord>, merged: usize, total: usize) {
        if record.status == RunStatus::Cancelled {
            return;
        }
        self.append_to_journal(&record);
        lock(&self.records).insert(record.spec.clone(), record);
        if let Some(cb) = &self.progress {
            cb(merged, total);
        }
    }

    /// Ensure every spec in `specs` has been attempted, then return records
    /// in order. Batches are sharded across the attached pool (if any) and
    /// merged back in spec order, so database and journal contents do not
    /// depend on scheduling. Failed runs are returned like any other —
    /// check [`RunRecord::status`] before using their metrics.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<Arc<RunRecord>> {
        let missing: Vec<RunSpec> = {
            let map = lock(&self.records);
            specs.iter().filter(|s| !map.contains_key(*s)).cloned().collect()
        };
        // Deduplicate while preserving spec order.
        let mut todo: Vec<RunSpec> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for s in missing {
                if seen.insert(s.clone()) {
                    todo.push(s);
                }
            }
        }
        let total = todo.len();
        match self.pool.as_ref().filter(|p| p.jobs() > 1 && total > 1) {
            None => {
                for (i, spec) in todo.iter().enumerate() {
                    let record = Arc::new(execute_spec(spec, self.budget, self.cancel.as_ref()));
                    self.commit(record, i + 1, total);
                }
            }
            Some(pool) => {
                let (tx, rx) = channel::<(usize, RunRecord)>();
                for (idx, spec) in todo.into_iter().enumerate() {
                    let tx = tx.clone();
                    let budget = self.budget;
                    let cancel = self.cancel.clone();
                    pool.spawn(move || {
                        let record = execute_spec(&spec, budget, cancel.as_ref());
                        let _ = tx.send((idx, record));
                    });
                }
                drop(tx);
                // Reorder buffer: completions arrive in any order; records
                // are committed strictly in spec order.
                let mut slots: Vec<Option<RunRecord>> = (0..total).map(|_| None).collect();
                let mut next_emit = 0usize;
                for (idx, record) in rx.iter() {
                    slots[idx] = Some(record);
                    while next_emit < total {
                        let Some(record) = slots[next_emit].take() else { break };
                        self.commit(Arc::new(record), next_emit + 1, total);
                        next_emit += 1;
                    }
                }
                assert_eq!(next_emit, total, "a sweep worker died without delivering its record");
            }
        }
        // Cancelled specs never reach the memo table; hand their callers an
        // ephemeral placeholder so a cancelled batch still has the right
        // shape (consumers check `status` before using metrics).
        let map = lock(&self.records);
        specs
            .iter()
            .map(|s| match map.get(s) {
                Some(r) => Arc::clone(r),
                None => Arc::new(cancelled_record(s, 0, 0)),
            })
            .collect()
    }

    /// Run (or fetch) a single spec and return its metrics. Failed runs
    /// yield [`RunResult::failed`] zeros; use [`ResultsDb::record`] when the
    /// status matters.
    pub fn get(&self, spec: &RunSpec) -> Arc<RunResult> {
        self.record(spec).metrics.clone()
    }

    /// Run (or fetch) a single spec and return its full record — by
    /// construction, without round-tripping through a batch whose result
    /// vector could be mis-shaped.
    ///
    /// Fresh single-spec runs report progress like batched ones, except the
    /// batch size is unknown: the callback receives `(records so far, 0)`,
    /// `total = 0` meaning "open-ended". This is what lets a served sweep of
    /// a trickle-style experiment (every figure runs spec-by-spec through
    /// here) still stream checkpoints and show live progress in `status`.
    pub fn record(&self, spec: &RunSpec) -> Arc<RunRecord> {
        if let Some(existing) = lock(&self.records).get(spec) {
            return Arc::clone(existing);
        }
        let record = Arc::new(execute_spec(spec, self.budget, self.cancel.as_ref()));
        if record.status == RunStatus::Cancelled {
            // Ephemeral: see `commit` — the spec must look un-attempted to
            // any later (or resumed) sweep.
            return record;
        }
        self.append_to_journal(&record);
        let (result, merged) = {
            let mut map = lock(&self.records);
            // A concurrent caller may have raced us here; keep the first
            // insertion so memoization stays Arc-identical (and report
            // progress only for the insertion that won).
            let won = !map.contains_key(spec);
            let result = Arc::clone(map.entry(spec.clone()).or_insert(record));
            (result, won.then_some(map.len()))
        };
        if let (Some(merged), Some(cb)) = (merged, &self.progress) {
            cb(merged, 0);
        }
        result
    }

    /// Every record, ordered deterministically (by spec debug format) for
    /// stable JSON output.
    pub fn outcomes(&self) -> Vec<Arc<RunRecord>> {
        let map = lock(&self.records);
        let mut all: Vec<Arc<RunRecord>> = map.values().cloned().collect();
        all.sort_by_key(|r| format!("{:?}", r.spec));
        all
    }

    /// Records whose status is not [`RunStatus::Ok`], same ordering as
    /// [`ResultsDb::outcomes`].
    pub fn failures(&self) -> Vec<Arc<RunRecord>> {
        self.outcomes().into_iter().filter(|r| r.status != RunStatus::Ok).collect()
    }

    /// Single-thread reference IPC of `bench` on a traditional scheduler of
    /// `iq_size` entries — the denominator of the paper's weighted-IPC
    /// fairness metric.
    pub fn single_thread_ipc(
        &self,
        bench: &str,
        iq_size: usize,
        commit_target: u64,
        seed: u64,
    ) -> f64 {
        let spec =
            RunSpec::new(&[bench], iq_size, DispatchPolicy::Traditional, commit_target, seed);
        self.get(&spec).ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wedging_spec() -> RunSpec {
        // A 50-cycle ceiling cannot retire 1M instructions, so the run
        // always ends in a wedge diagnosis.
        RunSpec::new(&["gcc", "art"], 64, DispatchPolicy::Traditional, 1_000_000, 1)
            .with_warmup(0)
            .with_max_cycles(50)
    }

    #[test]
    fn memoization_returns_identical_arc() {
        let db = ResultsDb::new();
        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let a = db.get(&spec);
        let b = db.get(&spec);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be memoized");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn run_all_preserves_order_and_dedups() {
        let db = ResultsDb::new();
        let s1 = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let s2 = RunSpec::new(&["art"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let out = db.run_all(&[s1.clone(), s2.clone(), s1.clone()]);
        assert_eq!(out.len(), 3);
        assert!(Arc::ptr_eq(&out[0], &out[2]));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn sharded_run_all_matches_serial_records() {
        let mut specs = Vec::new();
        for iq in [32usize, 48, 64] {
            for seed in [1u64, 2] {
                specs.push(RunSpec::new(&["gcc"], iq, DispatchPolicy::Traditional, 800, seed));
            }
        }
        let serial = ResultsDb::new();
        let serial_out = serial.run_all(&specs);
        let sharded = ResultsDb::new().with_jobs(4);
        let sharded_out = sharded.run_all(&specs);
        for (a, b) in serial_out.iter().zip(&sharded_out) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.status, b.status);
            assert_eq!(a.metrics.counters, b.metrics.counters, "spec {:?}", a.spec);
        }
    }

    #[test]
    fn progress_reports_in_spec_order_when_sharded() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let db = ResultsDb::new().with_jobs(4).with_progress(move |done, total| {
            lock(&seen2).push((done, total));
        });
        let specs: Vec<RunSpec> = (1..=6)
            .map(|s| RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 800, s))
            .collect();
        db.run_all(&specs);
        let calls = lock(&seen).clone();
        assert_eq!(calls, (1..=6).map(|i| (i, 6)).collect::<Vec<_>>());
    }

    #[test]
    fn single_spec_runs_report_open_ended_progress() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let db = ResultsDb::new().with_progress(move |done, total| {
            lock(&seen2).push((done, total));
        });
        let spec = |s| RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 800, s);
        db.record(&spec(1));
        db.record(&spec(2));
        db.record(&spec(1)); // memoized: no progress
        assert_eq!(
            lock(&seen).clone(),
            vec![(1, 0), (2, 0)],
            "trickle runs must report a cumulative count with an open-ended total"
        );
    }

    #[test]
    fn single_thread_reference_is_positive() {
        let db = ResultsDb::new();
        let ipc = db.single_thread_ipc("crafty", 64, 1_000, 1);
        assert!(ipc > 0.2, "reference IPC {ipc}");
    }

    #[test]
    fn a_wedged_run_is_recorded_and_the_sweep_continues() {
        let db = ResultsDb::new();
        let good = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let out = db.run_all(&[wedging_spec(), good.clone()]);
        assert_eq!(out[0].status, RunStatus::Wedged);
        assert_eq!(out[0].attempts, 2, "a wedge must be retried once");
        let report = out[0].report.as_ref().expect("wedge must carry its report");
        assert_eq!(report.threads.len(), 2);
        assert_eq!(out[0].metrics.ipc, 0.0);
        assert_eq!(out[1].status, RunStatus::Ok, "later specs must still run");
        assert!(out[1].metrics.ipc > 0.1);
        assert_eq!(db.failures().len(), 1);
    }

    #[test]
    fn zero_wall_budget_times_runs_out() {
        let db = ResultsDb::new().with_wall_budget(Duration::ZERO);
        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000_000, 1);
        let rec = db.record(&spec);
        assert_eq!(rec.status, RunStatus::TimedOut);
        assert!(!rec.metrics.outcome_target_reached);
    }

    #[test]
    fn journal_resumes_without_rerunning_completed_specs() {
        let dir = std::env::temp_dir().join(format!("smt-sweep-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let first = {
            let db = ResultsDb::new().with_journal(&path).unwrap();
            assert!(db.is_empty(), "fresh journal must start empty");
            let r = db.record(&spec);
            // The wedge record round-trips too (report and all).
            let w = db.record(&wedging_spec());
            assert_eq!(w.status, RunStatus::Wedged);
            r
        };

        // "Restart": a new db on the same journal must already hold both
        // records, and get() must not re-run (ptr_eq to the loaded Arc).
        let db = ResultsDb::new().with_journal(&path).unwrap();
        assert_eq!(db.len(), 2, "journal must restore both records");
        let resumed = db.record(&spec);
        assert_eq!(resumed.status, RunStatus::Ok);
        assert_eq!(resumed.metrics.ipc, first.metrics.ipc);
        assert!(
            Arc::ptr_eq(&db.record(&spec).metrics, &resumed.metrics),
            "resumed spec must come from the journal, not a re-run"
        );
        let wedge = db.record(&wedging_spec());
        assert_eq!(wedge.status, RunStatus::Wedged);
        assert!(wedge.report.is_some(), "deadlock report must survive the journal");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn torn_trailing_line_is_truncated_and_rerun() {
        let dir = std::env::temp_dir().join(format!("smt-sweep-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let s1 = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, 1);
        let s2 = RunSpec::new(&["art"], 32, DispatchPolicy::Traditional, 1_000, 1);
        {
            let db = ResultsDb::new().with_journal(&path).unwrap();
            db.run_all(&[s1.clone(), s2.clone()]);
        }
        // Simulate a SIGKILL mid-append: chop the final record in half, so
        // the file ends in a syntactically broken, newline-less line.
        let data = std::fs::read(&path).unwrap();
        let first_line_end = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        assert!(data.len() > first_line_end + 10, "need two records to tear one");
        let torn_len = first_line_end + (data.len() - first_line_end) / 2;
        let torn = &data[..torn_len];
        assert_ne!(torn.last(), Some(&b'\n'), "the tear must leave no trailing newline");
        std::fs::write(&path, torn).unwrap();

        // Resume: the intact first record loads; the torn second is
        // truncated away and re-runs cleanly.
        let db = ResultsDb::new().with_journal(&path).unwrap();
        assert_eq!(db.len(), 1, "only the intact record may survive the tear");
        let out = db.run_all(&[s1.clone(), s2.clone()]);
        assert_eq!(out[0].status, RunStatus::Ok);
        assert_eq!(out[1].status, RunStatus::Ok);

        // The re-run's append must start on a fresh line: the journal now
        // holds exactly two parseable records (no glued-together garbage).
        let db2 = ResultsDb::new().with_journal(&path).unwrap();
        assert_eq!(db2.len(), 2, "journal must hold both records after the repair");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn journal_bytes_do_not_depend_on_job_count() {
        let dir = std::env::temp_dir().join(format!("smt-sweep-jdiff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut specs = vec![wedging_spec()];
        for seed in 1..=5u64 {
            specs.push(RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 800, seed));
        }
        let mut journals = Vec::new();
        for jobs in [1usize, 4] {
            let path = dir.join(format!("journal-{jobs}.jsonl"));
            let _ = std::fs::remove_file(&path);
            let db = ResultsDb::new().with_jobs(jobs).with_journal(&path).unwrap();
            db.run_all(&specs);
            journals.push(std::fs::read(&path).unwrap());
            let _ = std::fs::remove_file(&path);
        }
        assert!(!journals[0].is_empty());
        assert_eq!(journals[0], journals[1], "journal bytes must not depend on --jobs");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn fired_cancel_token_skips_specs_without_journaling() {
        let token = CancelToken::new();
        token.cancel();
        let db = ResultsDb::new().with_cancel(token);
        let specs: Vec<RunSpec> = (1..=3u64)
            .map(|s| RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000, s))
            .collect();
        let started = Instant::now();
        let out = db.run_all(&specs);
        assert!(started.elapsed() < Duration::from_secs(2), "cancelled specs must not simulate");
        assert_eq!(out.len(), 3);
        for r in &out {
            assert_eq!(r.status, RunStatus::Cancelled);
        }
        assert!(db.is_empty(), "cancelled records must never be memoized");
        assert_eq!(db.record(&specs[0]).status, RunStatus::Cancelled);
    }

    #[test]
    fn mid_sweep_cancel_leaves_a_clean_resumable_journal_prefix() {
        let dir = std::env::temp_dir().join(format!("smt-sweep-cancel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let specs: Vec<RunSpec> = (1..=6u64)
            .map(|s| RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 800, s))
            .collect();
        let token = CancelToken::new();
        {
            // Fire the token from the progress callback after two merges:
            // deterministic mid-sweep cancellation on the serial path.
            let t = token.clone();
            let db = ResultsDb::new()
                .with_journal(&path)
                .unwrap()
                .with_cancel(token.clone())
                .with_progress(move |done, _| {
                    if done >= 2 {
                        t.cancel();
                    }
                });
            let out = db.run_all(&specs);
            assert_eq!(out[0].status, RunStatus::Ok);
            assert_eq!(out[1].status, RunStatus::Ok);
            assert!(
                out.iter().any(|r| r.status == RunStatus::Cancelled),
                "the tail of the batch must have been cancelled"
            );
        }
        // The journal holds exactly the completed prefix, every line whole.
        let data = std::fs::read(&path).unwrap();
        assert_eq!(data.last(), Some(&b'\n'), "journal must end on a record boundary");
        let lines = data.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
        assert_eq!(lines, 2, "exactly the two completed runs may be journaled");

        // Resume: the two completed specs load; only the rest re-run.
        let fresh = Arc::new(Mutex::new(0usize));
        let f2 = Arc::clone(&fresh);
        let db = ResultsDb::new()
            .with_journal(&path)
            .unwrap()
            .with_progress(move |_, _| *lock(&f2) += 1);
        assert_eq!(db.len(), 2);
        let out = db.run_all(&specs);
        assert!(out.iter().all(|r| r.status == RunStatus::Ok));
        assert_eq!(*lock(&fresh), 4, "resume must execute only the four missing specs");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn deadline_token_cancels_rather_than_times_out() {
        // A token deadline and a wall budget are different outcomes: the
        // token yields an ephemeral Cancelled (re-run on resume), the
        // budget a journaled TimedOut.
        let db = ResultsDb::new().with_cancel(CancelToken::with_deadline(Duration::ZERO));
        let spec = RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000_000, 1);
        let rec = db.record(&spec);
        assert_eq!(rec.status, RunStatus::Cancelled);
        assert!(db.is_empty());
    }

    #[test]
    fn panicking_run_is_recorded_quietly() {
        // An impossible configuration: SimConfig::paper validates inside
        // Simulator::new and panics. The isolation hook keeps the panic
        // out of stderr; the payload must still reach the record.
        let db = ResultsDb::new();
        let spec = RunSpec::new(&[] as &[&str], 64, DispatchPolicy::Traditional, 1_000, 1);
        let rec = db.record(&spec);
        assert_eq!(rec.status, RunStatus::Panicked);
        assert!(rec.panic_msg.is_some(), "panic payload must be captured");
    }
}
