//! Experiment harness for the ICPP'06 out-of-order dispatch paper.
//!
//! The [`runner`] module executes individual simulations; [`db`] memoizes
//! results across experiments (several figures share the same underlying
//! sweeps); [`pool`] shards batches across worker threads without letting
//! scheduling leak into results; [`experiments`] regenerates every table
//! and figure of the paper; [`drive`] maps experiment names to those
//! generators (shared by the `paperbench` CLI and `paperbench serve`);
//! [`serve`] is the persistent sweep service; [`supervise`] provides its
//! cancellation tokens, admission control, and drain/introspection state;
//! [`report`] renders tables.

pub mod db;
pub mod drive;
pub mod experiments;
pub mod pool;
pub mod report;
pub mod runner;
pub mod serve;
pub mod supervise;

pub use db::ResultsDb;
pub use pool::{ordered_par_map, SweepPool};
pub use runner::{
    run_machine_spec_recorded, run_machine_spec_supervised, run_machine_spec_with_config, run_spec,
    run_spec_supervised, run_spec_with_config, run_spec_with_config_recorded, thread_seed,
    try_run_machine_spec_with_config, try_run_spec_with_config, RecordedRun, RunResult, RunSpec,
};
pub use supervise::{CancelToken, Supervisor};

/// The IQ sizes swept by the paper's evaluation (Figures 1, 3–8).
pub const IQ_SIZES: [usize; 5] = [32, 48, 64, 96, 128];
