//! Experiment harness for the ICPP'06 out-of-order dispatch paper.
//!
//! The [`runner`] module executes individual simulations; [`db`] memoizes
//! results across experiments (several figures share the same underlying
//! sweeps); [`experiments`] regenerates every table and figure of the
//! paper; [`report`] renders them as text tables.

pub mod db;
pub mod experiments;
pub mod report;
pub mod runner;

pub use db::ResultsDb;
pub use runner::{
    run_spec, run_spec_with_config, run_spec_with_config_recorded, thread_seed,
    try_run_spec_with_config, RecordedRun, RunResult, RunSpec,
};

/// The IQ sizes swept by the paper's evaluation (Figures 1, 3–8).
pub const IQ_SIZES: [usize; 5] = [32, 48, 64, 96, 128];
