//! Experiment dispatch: map an experiment name to its regenerated sections.
//!
//! Shared by the `paperbench` CLI and `paperbench serve`, so a sweep
//! submitted over the service protocol produces byte-for-byte the sections
//! the CLI would print. Rendering is a pure function of the [`ResultsDb`]
//! contents and [`ExpParams`], both of which are scheduling-independent, so
//! the output does not depend on `--jobs` either.

use crate::db::ResultsDb;
use crate::experiments::{self as exp, ExpParams};
use crate::report;
use smt_workload::MixTable;

/// The output of one experiment: rendered text sections plus structured
/// payloads for JSON consumers, both keyed by section name.
#[derive(Debug, Default)]
pub struct Rendered {
    /// `(name, rendered text)` in print order.
    pub sections: Vec<(String, String)>,
    /// Structured (non-rendered) payloads keyed like `sections`.
    pub data: Vec<(String, serde_json::Value)>,
}

/// Every experiment name accepted by [`run_experiment`], in `all` order.
pub const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "stalls",
    "stallattr",
    "hdi",
    "residency",
    "filter",
    "table1",
    "mixes",
    "classify",
    "ablation",
    "fetchpol",
    "hetero",
    "wrongpath",
    "convergence",
    "mixdetail",
    "mlp",
    "alloc",
    "all",
];

/// Regenerate experiment `name` against `db`, returning its sections, or
/// `None` when the name is unknown.
pub fn run_experiment(db: &ResultsDb, name: &str, params: ExpParams) -> Option<Rendered> {
    let mut out = Rendered::default();
    let ok = dispatch(db, name, params, &mut out);
    ok.then_some(out)
}

fn add_figure(out: &mut Rendered, name: &str, fig: exp::Figure) {
    out.sections.push((name.to_string(), report::render_figure(&fig)));
}

fn fairness_figure(db: &ResultsDb, out: &mut Rendered, name: &str, table: MixTable, p: ExpParams) {
    out.data.push((name.into(), serde_json::json!(exp::fairness_detail(db, table, p))));
    add_figure(out, name, exp::figure_fairness(db, table, p));
}

fn dispatch(db: &ResultsDb, name: &str, params: ExpParams, out: &mut Rendered) -> bool {
    match name {
        "fig1" => add_figure(out, "fig1", exp::figure1(db, params)),
        "fig2" => out.sections.push(("fig2".into(), report::render_figure2_demo())),
        "fig3" => add_figure(out, "fig3", exp::figure_throughput(db, MixTable::TwoThread, params)),
        "fig4" => fairness_figure(db, out, "fig4", MixTable::TwoThread, params),
        "fig5" => {
            add_figure(out, "fig5", exp::figure_throughput(db, MixTable::ThreeThread, params))
        }
        "fig6" => fairness_figure(db, out, "fig6", MixTable::ThreeThread, params),
        "fig7" => add_figure(out, "fig7", exp::figure_throughput(db, MixTable::FourThread, params)),
        "fig8" => fairness_figure(db, out, "fig8", MixTable::FourThread, params),
        "stalls" => out
            .sections
            .push(("stalls".into(), report::render_stalls(&exp::stall_stats(db, params)))),
        "stallattr" => {
            let attr = exp::stall_attribution(db, params);
            out.data.push(("stallattr".into(), serde_json::json!(attr)));
            out.sections.push(("stallattr".into(), report::render_stall_attribution(&attr)));
        }
        "hdi" => out.sections.push(("hdi".into(), report::render_hdi(&exp::hdi_stats(db, params)))),
        "residency" => out.sections.push((
            "residency".into(),
            report::render_residency(&exp::residency_stats(db, params)),
        )),
        "filter" => out
            .sections
            .push(("filter".into(), report::render_filter(exp::filter_gain(db, params)))),
        "mlp" => {
            let rows = exp::mlp_contention(params);
            out.data.push(("mlp".into(), serde_json::json!(rows)));
            out.sections.push(("mlp".into(), report::render_mlp(&rows)));
        }
        "alloc" => {
            let rows = exp::alloc_matrix(params);
            out.data.push(("alloc".into(), serde_json::json!(rows)));
            out.sections.push(("alloc".into(), report::render_alloc(&rows)));
        }
        "table1" => out.sections.push(("table1".into(), report::render_table1())),
        "mixes" => out.sections.push(("mixes".into(), report::render_mixes_tables())),
        "classify" => out
            .sections
            .push(("classify".into(), report::render_classify(&exp::classify(db, params)))),
        "ablation" => {
            out.sections.push(("ablation".into(), report::render_ablation(&exp::ablation(params))))
        }
        "fetchpol" => {
            out.sections.push((
                "fetchpol".into(),
                report::render_fetch_policies(&exp::fetch_policies(params)),
            ));
            let rows = exp::fetchpol_matrix(params);
            out.data.push(("fetchpol-matrix".into(), serde_json::json!(rows)));
            out.sections.push(("fetchpol-matrix".into(), report::render_fetchpol_matrix(&rows)));
        }
        "hetero" => out
            .sections
            .push(("hetero".into(), report::render_hetero(&exp::hetero_comparison(params)))),
        "wrongpath" => out.sections.push((
            "wrongpath".into(),
            report::render_wrongpath(&exp::wrongpath_sensitivity(params)),
        )),
        "convergence" => out.sections.push((
            "convergence".into(),
            report::render_convergence(&exp::convergence(db, params)),
        )),
        "mixdetail" => {
            for (name, table) in [
                ("Table 3 (2-threaded)", MixTable::TwoThread),
                ("Table 4 (3-threaded)", MixTable::ThreeThread),
                ("Table 2 (4-threaded)", MixTable::FourThread),
            ] {
                out.sections.push((
                    format!("mixdetail-{}", table.num_threads()),
                    report::render_mix_detail(name, 64, &exp::mix_detail(db, table, 64, params)),
                ));
            }
        }
        "all" => {
            exp::prewarm(db, params);
            // A cancelled sweep stops growing sections at experiment
            // boundaries: everything after the token fires would render
            // from zeroed placeholder records anyway, and the serve layer
            // discards the output wholesale. The checks are free when no
            // token is attached.
            out.sections.push(("table1".into(), report::render_table1()));
            out.sections.push(("mixes".into(), report::render_mixes_tables()));
            if db.is_cancelled() {
                return true;
            }
            add_figure(out, "fig1", exp::figure1(db, params));
            out.sections.push(("fig2".into(), report::render_figure2_demo()));
            for (name, table) in [
                ("fig3", MixTable::TwoThread),
                ("fig5", MixTable::ThreeThread),
                ("fig7", MixTable::FourThread),
            ] {
                if db.is_cancelled() {
                    return true;
                }
                add_figure(out, name, exp::figure_throughput(db, table, params));
            }
            for (name, table) in [
                ("fig4", MixTable::TwoThread),
                ("fig6", MixTable::ThreeThread),
                ("fig8", MixTable::FourThread),
            ] {
                if db.is_cancelled() {
                    return true;
                }
                fairness_figure(db, out, name, table, params);
            }
            if db.is_cancelled() {
                return true;
            }
            out.sections
                .push(("stalls".into(), report::render_stalls(&exp::stall_stats(db, params))));
            let attr = exp::stall_attribution(db, params);
            out.data.push(("stallattr".into(), serde_json::json!(attr)));
            out.sections.push(("stallattr".into(), report::render_stall_attribution(&attr)));
            out.sections.push(("hdi".into(), report::render_hdi(&exp::hdi_stats(db, params))));
            out.sections.push((
                "residency".into(),
                report::render_residency(&exp::residency_stats(db, params)),
            ));
            out.sections
                .push(("filter".into(), report::render_filter(exp::filter_gain(db, params))));
            out.sections
                .push(("classify".into(), report::render_classify(&exp::classify(db, params))));
            out.sections.push(("ablation".into(), report::render_ablation(&exp::ablation(params))));
            out.sections.push((
                "fetchpol".into(),
                report::render_fetch_policies(&exp::fetch_policies(params)),
            ));
            let fetchpol_rows = exp::fetchpol_matrix(params);
            out.data.push(("fetchpol-matrix".into(), serde_json::json!(fetchpol_rows)));
            out.sections
                .push(("fetchpol-matrix".into(), report::render_fetchpol_matrix(&fetchpol_rows)));
            out.sections
                .push(("hetero".into(), report::render_hetero(&exp::hetero_comparison(params))));
            out.sections.push((
                "wrongpath".into(),
                report::render_wrongpath(&exp::wrongpath_sensitivity(params)),
            ));
            let mlp_rows = exp::mlp_contention(params);
            out.data.push(("mlp".into(), serde_json::json!(mlp_rows)));
            out.sections.push(("mlp".into(), report::render_mlp(&mlp_rows)));
            if db.is_cancelled() {
                return true;
            }
            let alloc_rows = exp::alloc_matrix(params);
            out.data.push(("alloc".into(), serde_json::json!(alloc_rows)));
            out.sections.push(("alloc".into(), report::render_alloc(&alloc_rows)));
        }
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams { commit_target: 800, seed: 1, jobs: 2 }
    }

    #[test]
    fn unknown_experiment_is_rejected() {
        let db = ResultsDb::new();
        assert!(run_experiment(&db, "fig9", tiny()).is_none());
    }

    #[test]
    fn static_experiments_render_without_runs() {
        let db = ResultsDb::new();
        for name in ["table1", "mixes", "fig2"] {
            let r = run_experiment(&db, name, tiny()).unwrap();
            assert_eq!(r.sections.len(), 1, "{name}");
            assert!(!r.sections[0].1.is_empty(), "{name}");
        }
        assert!(db.is_empty(), "static sections must not trigger runs");
    }

    #[test]
    fn fetchpol_renders_identically_across_job_counts() {
        let serial = run_experiment(
            &ResultsDb::new(),
            "fetchpol",
            ExpParams { commit_target: 800, seed: 1, jobs: 1 },
        )
        .unwrap();
        let sharded = run_experiment(
            &ResultsDb::new().with_jobs(4),
            "fetchpol",
            ExpParams { commit_target: 800, seed: 1, jobs: 4 },
        )
        .unwrap();
        assert_eq!(serial.sections, sharded.sections);
        // The structured payload must match too (serve/submit consumers).
        let ser: Vec<String> = serial
            .data
            .iter()
            .map(|(k, v)| format!("{k}={}", serde_json::to_string(v).unwrap()))
            .collect();
        let sha: Vec<String> = sharded
            .data
            .iter()
            .map(|(k, v)| format!("{k}={}", serde_json::to_string(v).unwrap()))
            .collect();
        assert_eq!(ser, sha);
        // Both the legacy table and the new matrix section render.
        let names: Vec<&str> = serial.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["fetchpol", "fetchpol-matrix"]);
        assert!(serial.sections[1].1.contains("OOO-dispatch IPC delta"));
    }

    #[test]
    fn fig1_renders_identically_across_job_counts() {
        let serial = run_experiment(
            &ResultsDb::new(),
            "fig1",
            ExpParams { commit_target: 800, seed: 1, jobs: 1 },
        )
        .unwrap();
        let sharded = run_experiment(
            &ResultsDb::new().with_jobs(4),
            "fig1",
            ExpParams { commit_target: 800, seed: 1, jobs: 4 },
        )
        .unwrap();
        assert_eq!(serial.sections, sharded.sections);
    }
}
