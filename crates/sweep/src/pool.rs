//! Shared worker-thread pool for sharded sweep execution.
//!
//! Two entry points, one philosophy: *scheduling must never leak into
//! results*. Runs are independent and deterministic (workloads are seeded
//! per thread-slot by [`crate::runner::thread_seed`]), so any assignment of
//! runs to OS threads computes the same records; consumers are responsible
//! for merging completions back **in submission order** so journals, the
//! results db, and reports are bit-identical to a serial execution.
//!
//! - [`SweepPool`] owns long-lived workers fed `'static` jobs over a
//!   channel. [`crate::ResultsDb`] shards batches across it, and
//!   `paperbench serve` multiplexes every concurrent sweep session over a
//!   single shared pool (wrapped in an [`std::sync::Arc`]).
//! - [`ordered_par_map`] is the scoped, borrowing variant for experiment
//!   tables that map a job list straight to rows without a db: it fans the
//!   items across short-lived scoped threads and returns results in input
//!   order.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs.
///
/// Dropping the pool closes the queue and joins every worker; jobs already
/// queued still run to completion. A job that panics kills nobody but its
/// own task: the worker catches the unwind and moves on, so one poisoned
/// run costs one job slot, never the pool (and never a served session).
pub struct SweepPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    jobs: usize,
}

impl SweepPool {
    /// A pool of `jobs` workers (floored at 1).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..jobs)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{i}"))
                    .spawn(move || Self::worker_loop(rx))
                    .expect("spawning sweep worker")
            })
            .collect();
        SweepPool { tx: Some(tx), workers, jobs }
    }

    /// Shared handle sized to the host's parallelism, for services that
    /// multiplex many sweeps over one pool.
    pub fn shared(jobs: usize) -> Arc<Self> {
        Arc::new(Self::new(jobs))
    }

    /// Worker count this pool was built with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
        loop {
            // Hold the lock only while receiving, never while running.
            let job = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => return,
            };
            match job {
                Ok(job) => {
                    // A panicking job must not take the worker down: the
                    // submitter sees the panic through its own result
                    // channel (a dropped Sender), not through pool death.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                }
                Err(_) => return, // queue closed
            }
        }
    }

    /// Queue a job. Panics if the pool is shutting down (it only shuts
    /// down on drop, so a live reference can always submit).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("pool workers exited early");
    }
}

impl Drop for SweepPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Map `f` over `items` with up to `jobs` scoped worker threads, returning
/// results **in input order** regardless of completion order. With
/// `jobs <= 1` (or one item) this degenerates to a plain serial map, which
/// the parallel path is bit-identical to: `f` must be a pure function of
/// its item (all sweep runs are — see [`crate::runner::thread_seed`]).
///
/// Panics propagate: if `f` panics on any item, the whole map panics after
/// the scope unwinds, like the serial loop would.
pub fn ordered_par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let total = items.len();
    let jobs = jobs.max(1).min(total.max(1));
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let (tx, rx) = channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let queue = &queue;
            let f = &f;
            let tx = tx.clone();
            scope.spawn(move || loop {
                let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match next {
                    Some((idx, item)) => {
                        let r = f(item);
                        if tx.send((idx, r)).is_err() {
                            return;
                        }
                    }
                    None => return,
                }
            });
        }
        drop(tx);
        for (idx, r) in rx.iter() {
            slots[idx] = Some(r);
        }
    });
    slots.into_iter().map(|s| s.expect("worker panicked before producing its result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job() {
        let pool = SweepPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 64);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = SweepPool::new(2);
        pool.spawn(|| panic!("poisoned job"));
        let (tx, rx) = channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.spawn(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_par_map_matches_serial_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8] {
            let par = ordered_par_map(jobs, items.clone(), |x| x * x);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn ordered_par_map_handles_empty_input() {
        let out: Vec<u32> = ordered_par_map(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
