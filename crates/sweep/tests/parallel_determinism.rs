//! The tentpole invariant of the sharded sweep engine: **scheduling never
//! leaks into results**. The same spec list must produce byte-identical
//! journals, databases, and reports at any `--jobs` count — including when
//! the batch contains a wedging spec and when the per-run wall budget has
//! expired (both statuses round-trip through the ordered merge like any
//! other record).

use smt_sweep::db::RunStatus;
use smt_sweep::runner::RunSpec;
use smt_sweep::ResultsDb;
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use smt_core::DispatchPolicy;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-pardet-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A spec that always wedges: a 60-cycle ceiling cannot retire 1M
/// instructions.
fn wedging_spec() -> RunSpec {
    RunSpec::new(&["gcc", "art"], 64, DispatchPolicy::Traditional, 1_000_000, 1)
        .with_warmup(0)
        .with_max_cycles(60)
}

fn spec_matrix() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    // The wedge first, so its retry and report exercise the merge path
    // while later specs are still completing out of order behind it.
    specs.push(wedging_spec());
    for policy in [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlockOoo] {
        for iq in [32usize, 64] {
            for seed in [1u64, 2, 3] {
                specs.push(RunSpec::new(&["gcc", "art"], iq, policy, 800, seed));
            }
        }
    }
    specs
}

/// Journal bytes and record statuses are identical at jobs = 1, 2, and 8,
/// with a wedging spec in the batch.
#[test]
fn journal_and_records_are_identical_across_job_counts() {
    let dir = tmp_dir("lib");
    let specs = spec_matrix();
    let mut journals: Vec<Vec<u8>> = Vec::new();
    let mut statuses: Vec<Vec<(RunSpec, RunStatus, u32)>> = Vec::new();
    for jobs in [1usize, 2, 8] {
        let path = dir.join(format!("j{jobs}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let db = ResultsDb::new().with_jobs(jobs).with_journal(&path).unwrap();
        let out = db.run_all(&specs);
        journals.push(std::fs::read(&path).unwrap());
        statuses.push(out.iter().map(|r| (r.spec.clone(), r.status, r.attempts)).collect());
        let _ = std::fs::remove_file(&path);
    }
    assert!(!journals[0].is_empty());
    assert_eq!(journals[0], journals[1], "journal bytes differ: jobs 1 vs 2");
    assert_eq!(journals[0], journals[2], "journal bytes differ: jobs 1 vs 8");
    assert_eq!(statuses[0], statuses[1]);
    assert_eq!(statuses[0], statuses[2]);
    assert_eq!(statuses[0][0].1, RunStatus::Wedged, "the injected wedge must be recorded");
    assert_eq!(statuses[0][0].2, 2, "the wedge must have been retried once");
    let _ = std::fs::remove_dir(&dir);
}

/// An expired wall budget (every run times out instantly) is just as
/// deterministic: timed-out records journal identically at any job count.
#[test]
fn expired_budget_journals_identically_across_job_counts() {
    let dir = tmp_dir("budget");
    let specs: Vec<RunSpec> = (1..=6u64)
        .map(|s| RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 1_000_000, s))
        .collect();
    let mut journals: Vec<Vec<u8>> = Vec::new();
    for jobs in [1usize, 8] {
        let path = dir.join(format!("b{jobs}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let db = ResultsDb::new()
            .with_jobs(jobs)
            .with_wall_budget(Duration::ZERO)
            .with_journal(&path)
            .unwrap();
        let out = db.run_all(&specs);
        assert!(out.iter().all(|r| r.status == RunStatus::TimedOut));
        journals.push(std::fs::read(&path).unwrap());
        let _ = std::fs::remove_file(&path);
    }
    assert!(!journals[0].is_empty());
    assert_eq!(journals[0], journals[1], "timed-out journals differ across job counts");
    let _ = std::fs::remove_dir(&dir);
}

/// Memoized records are shared Arcs even when computed by pool workers.
#[test]
fn sharded_records_are_memoized_as_shared_arcs() {
    let db = ResultsDb::new().with_jobs(4);
    let specs: Vec<RunSpec> = (1..=4u64)
        .map(|s| RunSpec::new(&["gcc"], 32, DispatchPolicy::Traditional, 800, s))
        .collect();
    let first = db.run_all(&specs);
    let second = db.run_all(&specs);
    for (a, b) in first.iter().zip(&second) {
        assert!(Arc::ptr_eq(a, b), "second batch must be memoized, not re-run");
    }
}

/// End-to-end through the binary: `paperbench fig3 --jobs 8` writes the
/// same `--json` payload and the same journal, byte for byte, as
/// `--jobs 1`. This is the user-visible contract the CI smoke job diffs.
#[test]
fn paperbench_json_and_journal_are_jobs_invariant() {
    let dir = tmp_dir("cli");
    let mut artifacts: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for jobs in [1usize, 8] {
        let json = dir.join(format!("out{jobs}.json"));
        let journal = dir.join(format!("out{jobs}.jsonl"));
        let _ = std::fs::remove_file(&json);
        let _ = std::fs::remove_file(&journal);
        let status = Command::new(env!("CARGO_BIN_EXE_paperbench"))
            .args([
                "fig3",
                "--target",
                "800",
                "--jobs",
                &jobs.to_string(),
                "--json",
                json.to_str().unwrap(),
                "--journal",
                journal.to_str().unwrap(),
            ])
            .status()
            .expect("running paperbench");
        assert!(status.success(), "paperbench --jobs {jobs} failed");
        artifacts.push((std::fs::read(&json).unwrap(), std::fs::read(&journal).unwrap()));
        let _ = std::fs::remove_file(&json);
        let _ = std::fs::remove_file(&journal);
    }
    assert!(!artifacts[0].0.is_empty() && !artifacts[0].1.is_empty());
    assert_eq!(artifacts[0].0, artifacts[1].0, "--json bytes differ between --jobs 1 and 8");
    assert_eq!(artifacts[0].1, artifacts[1].1, "journal bytes differ between --jobs 1 and 8");
    let _ = std::fs::remove_dir(&dir);
}
