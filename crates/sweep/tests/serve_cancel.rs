//! Robustness tests for the supervised sweep service: cooperative
//! cancellation with resumable journals, admission control under flood,
//! line-atomic event interleaving across concurrent sweeps, and the
//! SIGTERM graceful drain of the real `paperbench serve` binary.

use smt_sweep::drive;
use smt_sweep::experiments::ExpParams;
use smt_sweep::serve::{serve_with, ServeOptions};
use smt_sweep::{ResultsDb, Supervisor, SweepPool};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn an in-process service over a socketpair; returns the client end.
fn spawn_service(
    jobs: usize,
    max_inflight: usize,
) -> (UnixStream, std::thread::JoinHandle<std::io::Result<()>>) {
    let (client, server) = UnixStream::pair().unwrap();
    let pool = SweepPool::shared(jobs);
    let supervisor = Supervisor::new(jobs, max_inflight);
    let handle = std::thread::spawn(move || {
        let input = BufReader::new(server.try_clone().unwrap());
        serve_with(input, server, pool, supervisor, &ServeOptions::default())
    });
    (client, handle)
}

fn send(client: &UnixStream, line: &str) {
    let mut w = client.try_clone().unwrap();
    w.write_all(line.as_bytes()).unwrap();
    w.write_all(b"\n").unwrap();
}

fn event_str<'a>(e: &'a serde_json::Value, key: &str) -> &'a str {
    e.get(key).and_then(|v| v.as_str()).unwrap_or("")
}

/// Assert `journal` is torn-line-free: non-empty, every line is complete
/// (trailing newline included) and parses as a JSON object. Returns the
/// record count.
fn assert_clean_journal(journal: &Path) -> usize {
    let raw = std::fs::read_to_string(journal).unwrap();
    assert!(!raw.is_empty(), "journal must not be empty");
    assert!(
        raw.ends_with('\n'),
        "journal must end on a record boundary, got {:?}",
        &raw[raw.len().saturating_sub(40)..]
    );
    let mut count = 0;
    for line in raw.lines() {
        let parsed: serde_json::Value =
            serde_json::from_str(line).expect("every journal line must be intact JSON");
        assert!(parsed.get("spec").is_some(), "journal line must be a run record");
        count += 1;
    }
    count
}

/// Resume `journal` by re-running `experiment` on a fresh db and return how
/// many *new* runs that needed (counted via the progress callback, which
/// only fires for freshly executed merges, never for resumed records).
fn fresh_runs_on_resume(journal: &Path, experiment: &str, target: u64) -> usize {
    let fresh = Arc::new(AtomicUsize::new(0));
    let db = ResultsDb::new().with_journal(journal).unwrap().with_progress({
        let fresh = Arc::clone(&fresh);
        move |_done, _total| {
            fresh.fetch_add(1, Ordering::SeqCst);
        }
    });
    drive::run_experiment(&db, experiment, ExpParams { commit_target: target, seed: 1, jobs: 2 })
        .expect("experiment must render on resume");
    fresh.load(Ordering::SeqCst)
}

/// Acceptance: cancel an in-flight fig1 sweep → a `cancelled` event with
/// progress counts, a torn-line-free journal, and a resume that executes
/// exactly the missing runs (completed prefix + fresh runs = full sweep).
#[test]
fn cancel_mid_fig1_yields_cancelled_event_and_resumable_journal() {
    let dir = temp_dir("cancel");
    let journal = dir.join("fig1.jsonl");
    let _ = std::fs::remove_file(&journal);

    let (client, handle) = spawn_service(2, 0);
    // A big commit target keeps individual runs slow enough that the cancel
    // (sent after the second checkpoint) lands long before the sweep's
    // dozens of runs complete.
    send(
        &client,
        &format!(
            "{{\"cmd\":\"sweep\",\"id\":1,\"experiment\":\"fig1\",\"target\":20000,\
             \"journal\":{:?}}}",
            journal.to_str().unwrap()
        ),
    );
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let mut checkpoints = 0;
    let mut cancel_sent = false;
    let cancelled = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "service must not hang up mid-sweep");
        let event: serde_json::Value = serde_json::from_str(&line).unwrap();
        match event_str(&event, "event") {
            "checkpoint" => {
                checkpoints += 1;
                if checkpoints == 2 && !cancel_sent {
                    cancel_sent = true;
                    send(&client, "{\"cmd\":\"cancel\",\"id\":1}");
                }
            }
            "cancelled" => break event,
            "done" => panic!("sweep must be cancelled, not run to completion"),
            _ => {}
        }
    };
    send(&client, "{\"cmd\":\"shutdown\"}");
    handle.join().unwrap().unwrap();

    assert_eq!(cancelled.get("id").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(event_str(&cancelled, "reason"), "cancel");
    let runs_done = cancelled.get("runs_done").and_then(|v| v.as_u64()).unwrap();
    assert!(runs_done >= 2, "the two checkpointed runs must be counted, got {runs_done}");

    // The journal holds exactly the completed prefix, every line whole.
    let prefix = assert_clean_journal(&journal);
    assert!(prefix >= 2, "the checkpointed runs must have been journaled");

    // Resume executes exactly the missing runs — the prefix is trusted.
    let fresh = fresh_runs_on_resume(&journal, "fig1", 20000);
    assert!(fresh > 0, "the cancelled sweep must have left work to resume");
    let total = assert_clean_journal(&journal);
    assert_eq!(
        prefix + fresh,
        total,
        "completed prefix ({prefix}) + fresh runs ({fresh}) must equal the full sweep ({total})"
    );

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir(&dir);
}

/// Acceptance: flood the service with pool_jobs×4 sweeps → the excess
/// beyond the admission bound is shed with `busy` (carrying a retry hint),
/// and the in-flight table never grows past the bound.
#[test]
fn flood_beyond_admission_bound_sheds_busy_without_thread_growth() {
    let (client, handle) = spawn_service(1, 0); // bound = 2 × 1 = 2
    for i in 0..4u64 {
        send(
            &client,
            &format!("{{\"cmd\":\"sweep\",\"id\":{i},\"experiment\":\"fig1\",\"target\":20000}}"),
        );
    }
    // Requests on one connection are handled strictly in order, so by the
    // time status is answered the flood has fully landed.
    send(&client, "{\"cmd\":\"status\",\"id\":99}");
    send(&client, "{\"cmd\":\"cancel\",\"id\":0}");
    send(&client, "{\"cmd\":\"cancel\",\"id\":1}");
    send(&client, "{\"cmd\":\"shutdown\"}");
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut client.try_clone().unwrap(), &mut raw).unwrap();
    handle.join().unwrap().unwrap();

    let events: Vec<serde_json::Value> =
        raw.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
    let busy: Vec<_> = events.iter().filter(|e| event_str(e, "event") == "busy").collect();
    assert_eq!(busy.len(), 2, "2 of 4 flooded sweeps must be shed at bound 2:\n{raw}");
    for b in &busy {
        assert!(
            b.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "busy must carry a retry hint"
        );
    }
    let status =
        events.iter().find(|e| event_str(e, "event") == "status").expect("status must answer");
    let inflight = status.get("inflight").and_then(|v| v.as_array()).unwrap();
    assert_eq!(inflight.len(), 2, "in-flight table must be pinned at the admission bound");
    assert_eq!(status.get("shed").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        events.iter().filter(|e| event_str(e, "event") == "cancelled").count(),
        2,
        "both admitted sweeps must report their cancellation:\n{raw}"
    );
}

/// Satellite: two concurrent sweeps on one connection interleave whole
/// lines only — every line parses, every event carries the right id, and
/// both journals are complete (a resume needs zero new runs).
#[test]
fn concurrent_sweeps_interleave_line_atomically_with_complete_journals() {
    let dir = temp_dir("interleave");
    let j1 = dir.join("table1-side.jsonl");
    let j2 = dir.join("fig1-side.jsonl");
    let _ = std::fs::remove_file(&j1);
    let _ = std::fs::remove_file(&j2);

    let (client, handle) = spawn_service(4, 0);
    // Two real sweeps race on the shared pool; small targets keep the test
    // quick while still producing dozens of interleaved events each.
    send(
        &client,
        &format!(
            "{{\"cmd\":\"sweep\",\"id\":1,\"experiment\":\"fig1\",\"target\":800,\
             \"journal\":{:?}}}",
            j1.to_str().unwrap()
        ),
    );
    send(
        &client,
        &format!(
            "{{\"cmd\":\"sweep\",\"id\":2,\"experiment\":\"fig3\",\"target\":800,\
             \"journal\":{:?}}}",
            j2.to_str().unwrap()
        ),
    );
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let mut done = [false, false];
    let mut events = 0u32;
    while !(done[0] && done[1]) {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "service must not hang up");
        // Line-atomicity: every read line is one complete JSON event.
        let event: serde_json::Value = serde_json::from_str(line.trim_end())
            .unwrap_or_else(|e| panic!("interleaved event must be intact JSON ({e}): {line:?}"));
        events += 1;
        let id = event.get("id").and_then(|v| v.as_u64());
        assert!(
            matches!(id, Some(1) | Some(2)),
            "every event of this session must carry one of the two sweep ids: {line:?}"
        );
        match (event_str(&event, "event"), id) {
            ("done", Some(1)) => done[0] = true,
            ("done", Some(2)) => done[1] = true,
            ("error", _) | ("cancelled", _) => panic!("both sweeps must succeed: {line:?}"),
            _ => {}
        }
    }
    send(&client, "{\"cmd\":\"shutdown\"}");
    handle.join().unwrap().unwrap();
    assert!(events > 10, "two sweeps must stream a real event volume, got {events}");

    // Both journals complete: a resume re-renders without a single new run.
    assert_clean_journal(&j1);
    assert_clean_journal(&j2);
    assert_eq!(fresh_runs_on_resume(&j1, "fig1", 800), 0, "journal 1 must be complete");
    assert_eq!(fresh_runs_on_resume(&j2, "fig3", 800), 0, "journal 2 must be complete");

    let _ = std::fs::remove_file(&j1);
    let _ = std::fs::remove_file(&j2);
    let _ = std::fs::remove_dir(&dir);
}

/// Acceptance: SIGTERM mid-sweep gracefully drains the real binary — the
/// client sees `cancelled`, the process exits 0 within the grace period,
/// and the journal is a clean resumable prefix.
#[test]
fn sigterm_mid_sweep_drains_exits_zero_and_leaves_resumable_journal() {
    let dir = temp_dir("sigterm");
    let socket = dir.join("serve.sock");
    let journal = dir.join("fig1.jsonl");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&journal);

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_paperbench"))
        .args(["serve", "--jobs", "2", "--socket", socket.to_str().unwrap(), "--grace", "30"])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawning paperbench serve");

    // Wait for the listener to come up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let client = loop {
        match UnixStream::connect(&socket) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("service never bound {}: {e}", socket.display()),
        }
    };
    send(
        &client,
        &format!(
            "{{\"cmd\":\"sweep\",\"id\":1,\"experiment\":\"fig1\",\"target\":20000,\
             \"journal\":{:?}}}",
            journal.to_str().unwrap()
        ),
    );
    // Let the sweep make real progress (2 checkpoints = 2 journaled runs),
    // then deliver SIGTERM.
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let mut checkpoints = 0;
    while checkpoints < 2 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "service died before progressing");
        let event: serde_json::Value = serde_json::from_str(&line).unwrap();
        if event_str(&event, "event") == "checkpoint" {
            checkpoints += 1;
        }
    }
    let killed = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("running kill");
    assert!(killed.success(), "kill -TERM must be delivered");

    // The drain must reach this client: cancelled for its sweep, then the
    // service-wide bye, then EOF as the process exits.
    let mut saw_cancelled = false;
    let mut saw_bye = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let event: serde_json::Value = serde_json::from_str(&line).unwrap();
        match event_str(&event, "event") {
            "cancelled" => saw_cancelled = true,
            "bye" => saw_bye = true,
            _ => {}
        }
    }
    assert!(saw_cancelled, "the drained sweep must report cancelled to its client");
    assert!(saw_bye, "the drain must broadcast bye before exit");

    let status = child.wait().expect("waiting for serve");
    assert!(status.success(), "SIGTERM drain must exit 0, got {status:?}");

    // The journal the drain left behind is a clean, resumable prefix.
    let prefix = assert_clean_journal(&journal);
    assert!(prefix >= 2, "the checkpointed runs must be journaled, got {prefix}");
    let fresh = fresh_runs_on_resume(&journal, "fig1", 20000);
    let total = assert_clean_journal(&journal);
    assert_eq!(prefix + fresh, total, "resume must fill in exactly the missing runs");

    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir(&dir);
}
