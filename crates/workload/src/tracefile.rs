//! Recording and replaying instruction traces.
//!
//! A [`Recorder`] wraps any [`InstGenerator`] and tees the stream it
//! produces; the recording can be saved as JSON-lines and replayed later
//! with [`TraceFileReplay`]. This enables:
//!
//! * sharing exact workloads between machines/runs regardless of generator
//!   versions;
//! * regression pinning (a saved trace never changes even if the synthetic
//!   models are retuned);
//! * importing externally produced traces into the simulator (any tool
//!   able to emit the JSON-lines schema of [`smt_isa::TraceInst`]).

use crate::trace::InstGenerator;
use smt_isa::TraceInst;
use std::io::{self, BufRead, Write};

/// Wraps a generator, recording every instruction it emits.
pub struct Recorder<G: InstGenerator> {
    inner: G,
    recorded: Vec<TraceInst>,
    /// Stop recording (but keep generating) after this many instructions;
    /// `None` records everything.
    limit: Option<usize>,
}

impl<G: InstGenerator> Recorder<G> {
    /// Record every instruction `inner` produces.
    pub fn new(inner: G) -> Self {
        Recorder { inner, recorded: Vec::new(), limit: None }
    }

    /// Record at most `limit` instructions (generation continues past it).
    pub fn with_limit(inner: G, limit: usize) -> Self {
        Recorder { inner, recorded: Vec::new(), limit: Some(limit) }
    }

    /// Instructions recorded so far.
    pub fn recorded(&self) -> &[TraceInst] {
        &self.recorded
    }

    /// Consume the recorder, returning the recording.
    pub fn into_recording(self) -> Vec<TraceInst> {
        self.recorded
    }

    /// Serialize the recording as JSON lines.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for inst in &self.recorded {
            let line = serde_json::to_string(inst)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

impl<G: InstGenerator> InstGenerator for Recorder<G> {
    fn next_inst(&mut self) -> Option<TraceInst> {
        let inst = self.inner.next_inst();
        if let Some(i) = inst {
            if self.limit.map(|l| self.recorded.len() < l).unwrap_or(true) {
                self.recorded.push(i);
            }
        }
        inst
    }
}

/// Replays a JSON-lines trace as an [`InstGenerator`].
#[derive(Debug, Clone)]
pub struct TraceFileReplay {
    insts: Vec<TraceInst>,
    idx: usize,
}

impl TraceFileReplay {
    /// Parse a JSON-lines trace. Every instruction is validated; parse or
    /// validation failures report the offending line number.
    pub fn from_jsonl<R: BufRead>(r: R) -> io::Result<Self> {
        let mut insts = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let inst: TraceInst = serde_json::from_str(&line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line {}: {e}", lineno + 1),
                )
            })?;
            inst.validate().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line {}: invalid instruction: {e}", lineno + 1),
                )
            })?;
            insts.push(inst);
        }
        Ok(TraceFileReplay { insts, idx: 0 })
    }

    /// Wrap an in-memory recording directly.
    pub fn from_recording(insts: Vec<TraceInst>) -> Self {
        TraceFileReplay { insts, idx: 0 }
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

impl InstGenerator for TraceFileReplay {
    fn next_inst(&mut self) -> Option<TraceInst> {
        let inst = self.insts.get(self.idx).copied();
        if inst.is_some() {
            self.idx += 1;
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticGen;
    use crate::spec::benchmark;

    #[test]
    fn recorder_tees_the_stream() {
        let gen = SyntheticGen::new(benchmark("gcc"), 0, 9);
        let mut rec = Recorder::new(gen);
        let direct: Vec<TraceInst> = (0..100).map(|_| rec.next_inst().unwrap()).collect();
        assert_eq!(rec.recorded(), &direct[..]);
    }

    #[test]
    fn limit_caps_recording_but_not_generation() {
        let gen = SyntheticGen::new(benchmark("gcc"), 0, 9);
        let mut rec = Recorder::with_limit(gen, 10);
        for _ in 0..50 {
            assert!(rec.next_inst().is_some());
        }
        assert_eq!(rec.recorded().len(), 10);
    }

    #[test]
    fn jsonl_roundtrip_preserves_trace() {
        let gen = SyntheticGen::new(benchmark("art"), 1, 3);
        let mut rec = Recorder::new(gen);
        let original: Vec<TraceInst> = (0..200).map(|_| rec.next_inst().unwrap()).collect();

        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let mut replay = TraceFileReplay::from_jsonl(buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 200);
        let replayed: Vec<TraceInst> = (0..200).map(|_| replay.next_inst().unwrap()).collect();
        assert_eq!(original, replayed);
        assert!(replay.next_inst().is_none(), "replay ends with the trace");
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let data = b"{\"bad\": true}\n";
        let err = TraceFileReplay::from_jsonl(&data[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn invalid_instruction_rejected() {
        // A load without memory info violates structural invariants.
        let mut inst = smt_isa::TraceInst::alu(0, smt_isa::ArchReg::int(1), None, None);
        inst.op = smt_isa::OpClass::Load;
        let line = serde_json::to_string(&inst).unwrap();
        let err = TraceFileReplay::from_jsonl(line.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid instruction"), "{err}");
    }

    #[test]
    fn empty_lines_are_skipped() {
        let gen = SyntheticGen::new(benchmark("gcc"), 0, 9);
        let mut rec = Recorder::new(gen);
        let _ = rec.next_inst();
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let replay = TraceFileReplay::from_jsonl(buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 1);
    }
}
