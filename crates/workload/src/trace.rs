//! Trace sources: random-access windows over instruction generators.
//!
//! The pipeline consumes instructions by **global index** so that a
//! watchdog-timer flush (paper §4) can rewind fetch to the oldest
//! uncommitted instruction. [`TraceSource`] keeps a sliding window of
//! generated-but-not-retired instructions to make that rewind cheap.

use smt_isa::TraceInst;
use std::collections::VecDeque;

/// A source of dynamic instructions for one thread.
pub trait InstGenerator: Send {
    /// The next instruction, or `None` when the program ends.
    fn next_inst(&mut self) -> Option<TraceInst>;
}

/// A fixed program, optionally repeated — the workhorse for unit tests and
/// hand-written microbenchmarks (e.g. the Figure 2 code segment).
pub struct ProgramTrace {
    insts: Vec<TraceInst>,
    idx: usize,
    repeat: bool,
}

impl ProgramTrace {
    /// A program that runs once and ends.
    pub fn once(insts: Vec<TraceInst>) -> Self {
        ProgramTrace { insts, idx: 0, repeat: false }
    }

    /// A program repeated forever.
    pub fn looped(insts: Vec<TraceInst>) -> Self {
        assert!(!insts.is_empty(), "cannot loop an empty program");
        ProgramTrace { insts, idx: 0, repeat: true }
    }
}

impl InstGenerator for ProgramTrace {
    fn next_inst(&mut self) -> Option<TraceInst> {
        if self.idx >= self.insts.len() {
            if !self.repeat {
                return None;
            }
            self.idx = 0;
        }
        let inst = self.insts[self.idx];
        self.idx += 1;
        Some(inst)
    }
}

/// A sliding random-access window over an [`InstGenerator`].
///
/// * [`TraceSource::get`] returns the instruction at a global index,
///   generating forward as needed.
/// * [`TraceSource::retire_up_to`] drops instructions below an index once
///   they can never be re-fetched (i.e. they committed).
pub struct TraceSource {
    gen: Box<dyn InstGenerator>,
    window: VecDeque<TraceInst>,
    /// Global index of `window[0]`.
    base: u64,
    /// Set when the generator has ended; no indices >= `end` exist.
    end: Option<u64>,
}

impl TraceSource {
    /// Wrap a generator.
    pub fn new(gen: Box<dyn InstGenerator>) -> Self {
        TraceSource { gen, window: VecDeque::new(), base: 0, end: None }
    }

    /// The instruction at global index `idx`, or `None` past the end of the
    /// program. Panics if `idx` has already been retired.
    pub fn get(&mut self, idx: u64) -> Option<TraceInst> {
        assert!(idx >= self.base, "index {idx} already retired (base {})", self.base);
        if let Some(end) = self.end {
            if idx >= end {
                return None;
            }
        }
        while self.base + (self.window.len() as u64) <= idx {
            match self.gen.next_inst() {
                Some(inst) => self.window.push_back(inst),
                None => {
                    self.end = Some(self.base + self.window.len() as u64);
                    return None;
                }
            }
        }
        Some(self.window[(idx - self.base) as usize])
    }

    /// Drop all instructions with index `< idx`. Call as instructions
    /// commit; keeps the window bounded by the in-flight instruction count.
    pub fn retire_up_to(&mut self, idx: u64) {
        while self.base < idx && !self.window.is_empty() {
            self.window.pop_front();
            self.base += 1;
        }
        // Allow retiring past generated state even if nothing was fetched.
        if self.window.is_empty() && self.base < idx {
            self.base = idx.min(self.end.unwrap_or(idx));
        }
    }

    /// Number of buffered (generated but unretired) instructions.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Has the program definitely ended at or before `idx`?
    pub fn ended_at(&self, idx: u64) -> bool {
        self.end.map(|e| idx >= e).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::ArchReg;

    fn prog(n: usize) -> Vec<TraceInst> {
        (0..n).map(|i| TraceInst::alu(i as u64 * 4, ArchReg::int(1), None, None)).collect()
    }

    #[test]
    fn once_ends() {
        let mut t = ProgramTrace::once(prog(3));
        assert!(t.next_inst().is_some());
        assert!(t.next_inst().is_some());
        assert!(t.next_inst().is_some());
        assert!(t.next_inst().is_none());
        assert!(t.next_inst().is_none());
    }

    #[test]
    fn looped_repeats() {
        let mut t = ProgramTrace::looped(prog(2));
        let a = t.next_inst().unwrap();
        let _ = t.next_inst().unwrap();
        let c = t.next_inst().unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn source_random_access_within_window() {
        let mut s = TraceSource::new(Box::new(ProgramTrace::once(prog(10))));
        let i5 = s.get(5).unwrap();
        let i2 = s.get(2).unwrap(); // backwards within window
        assert_eq!(i2.pc, 8);
        assert_eq!(i5.pc, 20);
        assert_eq!(s.window_len(), 6);
    }

    #[test]
    fn source_end_detection() {
        let mut s = TraceSource::new(Box::new(ProgramTrace::once(prog(3))));
        assert!(s.get(2).is_some());
        assert!(s.get(3).is_none());
        assert!(s.ended_at(3));
        assert!(!s.ended_at(2));
    }

    #[test]
    fn retire_shrinks_window() {
        let mut s = TraceSource::new(Box::new(ProgramTrace::once(prog(10))));
        let _ = s.get(7);
        assert_eq!(s.window_len(), 8);
        s.retire_up_to(5);
        assert_eq!(s.window_len(), 3);
        assert_eq!(s.get(5).unwrap().pc, 20);
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn retired_access_panics() {
        let mut s = TraceSource::new(Box::new(ProgramTrace::once(prog(10))));
        let _ = s.get(5);
        s.retire_up_to(3);
        let _ = s.get(2);
    }

    #[test]
    fn rewind_after_partial_retire_matches() {
        // Simulates a watchdog flush: re-read an index still in the window.
        let mut s = TraceSource::new(Box::new(ProgramTrace::once(prog(20))));
        let first = s.get(10).unwrap();
        s.retire_up_to(4);
        let again = s.get(10).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    #[should_panic(expected = "empty program")]
    fn empty_loop_panics() {
        let _ = ProgramTrace::looped(vec![]);
    }
}
