//! The synthetic instruction-stream generator.

use crate::profile::BenchmarkProfile;
use crate::trace::InstGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smt_isa::{ArchReg, BranchInfo, MemInfo, OpClass, TraceInst};
use std::collections::VecDeque;

/// Number of recent destination registers remembered for dependency-distance
/// sampling.
const RECENT_WINDOW: usize = 64;

/// Size of the hot data region each thread's hot-tier accesses walk —
/// small enough to be L1-resident, modelling loop-local/stack locality.
const HOT_REGION_BYTES: u64 = 16 * 1024;

/// Size of the L2-resident access region: larger than the L1 D-cache,
/// comfortably smaller than the L2.
const L2_REGION_BYTES: u64 = 64 * 1024;

/// Locality tier of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrTier {
    /// L1-resident hot set.
    Hot,
    /// L2-resident region (L1 misses).
    L2,
    /// Full working set (memory misses when the working set exceeds L2).
    Mem,
}

/// How many general-purpose registers the generator cycles through as
/// destinations (r1..=r24, leaving a few "long-lived" registers that are
/// written rarely and therefore almost always ready).
const DEST_POOL: u8 = 24;

/// A deterministic synthetic instruction stream for one benchmark model.
///
/// The generated program behaves like a loop nest: the PC walks a loop body
/// of `code_footprint / 4` instruction slots, with statically placed
/// conditional branches (each with its own taken bias) and a loop-back
/// branch at the end of the body. Data accesses mix sequential strides with
/// random accesses over the benchmark's working set; a configurable
/// fraction of loads are pointer-chasing (their address register is the
/// previous load's destination), which serialises cache misses exactly like
/// linked-data-structure traversal in the memory-bound SPEC codes.
pub struct SyntheticGen {
    profile: BenchmarkProfile,
    rng: StdRng,
    /// Position within the loop body, in instruction slots.
    pos: u64,
    body_len: u64,
    /// Base of this thread's code region (disjoint per thread).
    code_base: u64,
    /// Base of this thread's data region.
    data_base: u64,
    /// Destinations of recent instructions, most recent at the back.
    recent_int: VecDeque<ArchReg>,
    recent_fp: VecDeque<ArchReg>,
    last_load_dest: Option<ArchReg>,
    /// Sequential-access pointer within the working set.
    seq_addr: u64,
    /// Per-static-branch taken bias, indexed by branch slot.
    branch_bias: Vec<f64>,
    /// Branches occur every `branch_interval` slots.
    branch_interval: u64,
    next_dest_int: u8,
    next_dest_fp: u8,
    generated: u64,
}

impl SyntheticGen {
    /// Create a generator for `profile`, seeded with `seed`, using address
    /// regions derived from `thread_id` so SMT threads never alias.
    pub fn new(profile: BenchmarkProfile, thread_id: usize, seed: u64) -> Self {
        profile.validate().expect("invalid benchmark profile");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5151_7ea1_c0de_0000);
        let body_len = (profile.code_footprint / 4).max(16);
        let branch_interval = ((1.0 / profile.frac_branch).round() as u64).clamp(2, body_len);
        let n_branches = body_len.div_ceil(branch_interval);
        // Each static branch gets its own bias centred on the profile's
        // mean: some branches are near-always-taken loop branches, others
        // are data-dependent and noisier.
        let branch_bias: Vec<f64> = (0..n_branches)
            .map(|_| {
                let spread: f64 = rng.gen_range(-0.04..0.04);
                (profile.branch_bias + spread).clamp(0.55, 0.999)
            })
            .collect();
        SyntheticGen {
            rng,
            pos: 0,
            body_len,
            // Stagger thread code regions across cache sets (real programs
            // are not all loaded at the same virtual offset; without this,
            // SMT threads alias pathologically in the L1I).
            code_base: 0x0040_0000 + ((thread_id as u64) << 32) + (thread_id as u64) * 0x2480,
            data_base: 0x1000_0000 + ((thread_id as u64) << 40),
            recent_int: VecDeque::with_capacity(RECENT_WINDOW),
            recent_fp: VecDeque::with_capacity(RECENT_WINDOW),
            last_load_dest: None,
            seq_addr: 0,
            branch_bias,
            branch_interval,
            next_dest_int: 1,
            next_dest_fp: 1,
            generated: 0,
            profile,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Base address of this thread's code region.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// Base address of this thread's data region.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Number of instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Sample a register dependency distance (>= 1) with the profile's mean,
    /// geometrically distributed.
    fn sample_dep_distance(&mut self) -> usize {
        let p = 1.0 / self.profile.mean_dep_distance;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let d = 1.0 + (u.ln() / (1.0 - p).ln());
        d as usize
    }

    /// Pick a source register `distance` producers back in the given ring;
    /// far distances fall off the ring and resolve to a long-lived register
    /// (r25.. / f25..), which is almost always ready.
    fn src_at_distance(&mut self, fp: bool) -> ArchReg {
        let d = self.sample_dep_distance();
        let ring = if fp { &self.recent_fp } else { &self.recent_int };
        if d <= ring.len() {
            ring[ring.len() - d]
        } else {
            self.long_lived_src(fp)
        }
    }

    /// A long-lived register (r25+/f25+): written so rarely that it is
    /// almost always ready — the model of loop invariants, base pointers
    /// and immediates materialized long ago.
    fn long_lived_src(&mut self, fp: bool) -> ArchReg {
        let idx = DEST_POOL + 1 + self.rng.gen_range(0..5u8);
        if fp {
            ArchReg::fp(idx)
        } else {
            ArchReg::int(idx)
        }
    }

    /// Second source operand of a two-source instruction: real code pairs a
    /// freshly produced value with an older one (loop invariant, induction
    /// base) about half the time, which keeps runs of
    /// two-non-ready-source instructions rare.
    fn second_src(&mut self, fp: bool) -> ArchReg {
        if self.rng.gen_bool(0.7) {
            self.long_lived_src(fp)
        } else {
            self.src_at_distance(fp)
        }
    }

    fn alloc_dest(&mut self, fp: bool) -> ArchReg {
        let reg = if fp {
            let r = ArchReg::fp(self.next_dest_fp);
            self.next_dest_fp =
                if self.next_dest_fp >= DEST_POOL { 1 } else { self.next_dest_fp + 1 };
            r
        } else {
            let r = ArchReg::int(self.next_dest_int);
            self.next_dest_int =
                if self.next_dest_int >= DEST_POOL { 1 } else { self.next_dest_int + 1 };
            r
        };
        let ring = if fp { &mut self.recent_fp } else { &mut self.recent_int };
        if ring.len() == RECENT_WINDOW {
            ring.pop_front();
        }
        ring.push_back(reg);
        reg
    }

    /// Pick the locality tier of the next data access.
    fn draw_tier(&mut self) -> AddrTier {
        let x: f64 = self.rng.gen_range(0.0..1.0);
        if x < self.profile.mem_access_frac {
            AddrTier::Mem
        } else if x < self.profile.mem_access_frac + self.profile.l2_access_frac {
            AddrTier::L2
        } else {
            AddrTier::Hot
        }
    }

    /// Tier used by pointer-chasing loads: truly memory-bound codes chase
    /// through their full working set; cache-resident codes chase
    /// L2-resident structures.
    fn chase_tier(&self) -> AddrTier {
        if self.profile.mem_access_frac > 0.05 {
            AddrTier::Mem
        } else {
            AddrTier::L2
        }
    }

    /// Generate a data address in the given locality tier.
    ///
    /// * `Hot` — sequential walk over a small L1-resident region
    ///   (stack/loop-local locality);
    /// * `L2` — uniform over a ~64 KB region: misses L1, hits L2 once warm;
    /// * `Mem` — uniform over the full working set: for memory-bound
    ///   working sets these are the main-memory misses.
    fn data_addr(&mut self, tier: AddrTier) -> u64 {
        let ws = self.profile.working_set;
        match tier {
            AddrTier::Hot => {
                let hot = ws.min(HOT_REGION_BYTES);
                self.seq_addr = (self.seq_addr + 8) % hot;
                self.data_base + self.seq_addr
            }
            AddrTier::L2 => {
                let region = ws.min(L2_REGION_BYTES);
                self.data_base + self.rng.gen_range(0..region / 8) * 8
            }
            AddrTier::Mem => self.data_base + self.rng.gen_range(0..ws / 8) * 8,
        }
    }

    /// Draw a non-branch operation class from the profile's mix.
    fn draw_op(&mut self) -> OpClass {
        let p = &self.profile;
        // Branch probability is handled positionally; renormalize the rest.
        let non_branch = 1.0 - p.frac_branch;
        let mut x: f64 = self.rng.gen_range(0.0..non_branch);
        for (frac, op) in [
            (p.frac_load, OpClass::Load),
            (p.frac_store, OpClass::Store),
            (p.frac_int_mult, OpClass::IntMult),
            (p.frac_int_div, OpClass::IntDiv),
            (p.frac_fp_add, OpClass::FpAdd),
            (p.frac_fp_mult, OpClass::FpMult),
            (p.frac_fp_div, OpClass::FpDiv),
            (p.frac_fp_sqrt, OpClass::FpSqrt),
        ] {
            if x < frac {
                return op;
            }
            x -= frac;
        }
        OpClass::IntAlu
    }

    fn gen_inst(&mut self) -> TraceInst {
        let pc = self.code_base + self.pos * 4;
        let is_branch_slot = self.pos % self.branch_interval == self.branch_interval - 1
            || self.pos == self.body_len - 1;

        let inst = if is_branch_slot {
            let slot = (self.pos / self.branch_interval) as usize;
            let is_loop_back = self.pos == self.body_len - 1;
            // Loop-back branches are taken with high probability; forward
            // conditionals mostly fall through (their *predictability* is
            // the per-branch bias — gShare learns the dominant direction
            // either way).
            let taken_prob = if is_loop_back {
                0.985
            } else {
                1.0 - self.branch_bias[slot.min(self.branch_bias.len() - 1)]
            };
            let taken = self.rng.gen_bool(taken_prob);
            let target = if is_loop_back {
                self.code_base
            } else {
                // Short forward skip.
                pc + 4 * (2 + self.rng.gen_range(0..6u64))
            };
            // Branch conditions are mostly induction variables or short ALU
            // results (quick to resolve even on a mispredict); only a
            // minority test freshly loaded data.
            let cond = if self.rng.gen_bool(0.6) {
                Some(self.long_lived_src(false))
            } else {
                Some(self.src_at_distance(false))
            };
            // Advance the PC: taken forward branches skip slots.
            if is_loop_back {
                self.pos = 0;
            } else if taken {
                self.pos = ((target - self.code_base) / 4).min(self.body_len - 1);
            } else {
                self.pos += 1;
            }
            TraceInst {
                pc,
                op: OpClass::Branch,
                srcs: [cond, None],
                dest: None,
                mem: None,
                branch: Some(BranchInfo { taken, target, unconditional: false }),
            }
        } else {
            self.pos += 1;
            let op = self.draw_op();
            match op {
                OpClass::Load => {
                    let chase = self.rng.gen_bool(self.profile.pointer_chase_frac);
                    let base = if chase {
                        self.last_load_dest.unwrap_or_else(|| ArchReg::int(26))
                    } else {
                        self.src_at_distance(false)
                    };
                    let tier = if chase { self.chase_tier() } else { self.draw_tier() };
                    let addr = self.data_addr(tier);
                    let fp_dest = self.profile.is_fp && self.rng.gen_bool(0.5);
                    let dest = self.alloc_dest(fp_dest);
                    if !fp_dest {
                        self.last_load_dest = Some(dest);
                    }
                    TraceInst {
                        pc,
                        op,
                        srcs: [Some(base), None],
                        dest: Some(dest),
                        mem: Some(MemInfo { addr, size: 8 }),
                        branch: None,
                    }
                }
                OpClass::Store => {
                    let data_fp = self.profile.is_fp && self.rng.gen_bool(0.5);
                    let data = self.src_at_distance(data_fp);
                    let base = self.src_at_distance(false);
                    let tier = self.draw_tier();
                    let addr = self.data_addr(tier);
                    TraceInst {
                        pc,
                        op,
                        srcs: [Some(data), Some(base)],
                        dest: None,
                        mem: Some(MemInfo { addr, size: 8 }),
                        branch: None,
                    }
                }
                OpClass::FpAdd | OpClass::FpMult | OpClass::FpDiv | OpClass::FpSqrt => {
                    let s1 = self.src_at_distance(true);
                    let s2 = if self.rng.gen_bool(self.profile.two_src_frac) {
                        Some(self.second_src(true))
                    } else {
                        None
                    };
                    let dest = self.alloc_dest(true);
                    TraceInst {
                        pc,
                        op,
                        srcs: [Some(s1), s2],
                        dest: Some(dest),
                        mem: None,
                        branch: None,
                    }
                }
                _ => {
                    let s1 = self.src_at_distance(false);
                    let s2 = if self.rng.gen_bool(self.profile.two_src_frac) {
                        Some(self.second_src(false))
                    } else {
                        None
                    };
                    let dest = self.alloc_dest(false);
                    TraceInst {
                        pc,
                        op,
                        srcs: [Some(s1), s2],
                        dest: Some(dest),
                        mem: None,
                        branch: None,
                    }
                }
            }
        };
        self.generated += 1;
        debug_assert!(inst.validate().is_ok(), "{:?}", inst.validate());
        inst
    }
}

impl InstGenerator for SyntheticGen {
    fn next_inst(&mut self) -> Option<TraceInst> {
        Some(self.gen_inst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;

    fn collect(name: &str, n: usize) -> Vec<TraceInst> {
        let mut g = SyntheticGen::new(benchmark(name), 0, 42);
        (0..n).map(|_| g.next_inst().unwrap()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let a = collect("gcc", 5000);
        let b = collect("gcc", 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut g1 = SyntheticGen::new(benchmark("gcc"), 0, 1);
        let mut g2 = SyntheticGen::new(benchmark("gcc"), 0, 2);
        let a: Vec<_> = (0..1000).map(|_| g1.next_inst().unwrap()).collect();
        let b: Vec<_> = (0..1000).map(|_| g2.next_inst().unwrap()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn all_instructions_validate() {
        for inst in collect("art", 20_000) {
            inst.validate().unwrap();
        }
    }

    #[test]
    fn mix_fractions_approximately_match_profile() {
        let p = benchmark("gcc");
        let insts = collect("gcc", 100_000);
        let n = insts.len() as f64;
        let loads = insts.iter().filter(|i| i.op == OpClass::Load).count() as f64 / n;
        let stores = insts.iter().filter(|i| i.op == OpClass::Store).count() as f64 / n;
        let branches = insts.iter().filter(|i| i.op == OpClass::Branch).count() as f64 / n;
        assert!((loads - p.frac_load).abs() < 0.05, "load frac {loads} vs {}", p.frac_load);
        assert!((stores - p.frac_store).abs() < 0.05, "store frac {stores} vs {}", p.frac_store);
        assert!(
            (branches - p.frac_branch).abs() < 0.06,
            "branch frac {branches} vs {}",
            p.frac_branch
        );
    }

    #[test]
    fn addresses_stay_in_thread_region() {
        let p = benchmark("art");
        let ws = p.working_set;
        let mut g = SyntheticGen::new(p, 3, 42);
        for _ in 0..20_000 {
            let i = g.next_inst().unwrap();
            if let Some(m) = i.mem {
                let base = 0x1000_0000 + (3u64 << 40);
                assert!(m.addr >= base && m.addr < base + ws, "addr {:#x} outside region", m.addr);
            }
        }
    }

    #[test]
    fn pcs_stay_in_code_footprint() {
        let p = benchmark("crafty");
        let footprint = p.code_footprint;
        let g0 = SyntheticGen::new(p.clone(), 1, 7);
        let code_base = g0.code_base();
        let mut g = g0;
        for _ in 0..20_000 {
            let i = g.next_inst().unwrap();
            assert!(
                i.pc >= code_base && i.pc < code_base + footprint,
                "pc {:#x} outside code region",
                i.pc
            );
        }
    }

    #[test]
    fn branch_slots_recur_at_same_pcs() {
        // gShare needs recurring static branches.
        let insts = collect("twolf", 50_000);
        let mut branch_pcs = std::collections::HashMap::new();
        for i in &insts {
            if i.op == OpClass::Branch {
                *branch_pcs.entry(i.pc).or_insert(0u32) += 1;
            }
        }
        assert!(!branch_pcs.is_empty());
        let max_count = branch_pcs.values().max().copied().unwrap();
        assert!(max_count > 10, "static branches must re-execute, max count {max_count}");
    }

    #[test]
    fn low_ilp_has_shorter_dep_distances_than_high() {
        // Measure realized mean dependency distance through the register
        // stream: distance between an instruction and the most recent
        // producer of its first source.
        fn realized_mean(name: &str) -> f64 {
            let insts = collect(name, 30_000);
            let mut last_writer = std::collections::HashMap::new();
            let mut dists = vec![];
            for (idx, i) in insts.iter().enumerate() {
                if let Some(src) = i.real_srcs().next() {
                    if let Some(&w) = last_writer.get(&src) {
                        dists.push((idx - w) as f64);
                    }
                }
                if let Some(d) = i.real_dest() {
                    last_writer.insert(d, idx);
                }
            }
            dists.iter().sum::<f64>() / dists.len() as f64
        }
        let low = realized_mean("art");
        let high = realized_mean("crafty");
        assert!(
            low < high,
            "memory-bound benchmark should have shorter dependency distances: {low} vs {high}"
        );
    }

    #[test]
    fn two_source_instructions_exist() {
        let insts = collect("gcc", 10_000);
        let two_src = insts.iter().filter(|i| i.num_real_srcs() == 2).count();
        assert!(two_src > 500, "expected a healthy fraction of 2-source instructions");
    }

    #[test]
    fn fp_benchmark_emits_fp_ops() {
        let insts = collect("swim", 10_000);
        assert!(insts.iter().any(|i| i.op.is_fp()));
        let int_only = collect("gzip", 10_000);
        assert!(!int_only.iter().any(|i| i.op.is_fp()));
    }
}
