//! Synthetic workload models for the SMT simulator.
//!
//! The paper evaluates on SPEC CPU2000 Alpha binaries fast-forwarded with
//! SimPoints. Neither the binaries nor an Alpha functional front end are
//! available here, so each benchmark is modelled as a **deterministic
//! synthetic instruction-stream generator** parameterised by the
//! microarchitectural characteristics the paper's methodology keys on:
//!
//! * **ILP class** (low = memory-bound, medium, high = execution-bound) —
//!   the classification the paper itself uses to build its mixes;
//! * instruction-class mix (loads / stores / branches / int / fp);
//! * register **dependency-distance** distribution (short distances ⇒
//!   serial chains ⇒ low ILP and frequent two-non-ready-source NDIs);
//! * **working-set size** and access pattern (drives L1D/L2 miss rates,
//!   which determine how long blocked operands stay non-ready);
//! * pointer-chase fraction (loads whose address depends on a prior load);
//! * branch-outcome predictability.
//!
//! See DESIGN.md §3 for why this substitution preserves the phenomena the
//! paper studies.
//!
//! ```
//! use smt_workload::{benchmark, mixes_for, InstGenerator, MixTable, SyntheticGen};
//!
//! // Table 3, Mix 10 of the paper: equake + gcc.
//! let mix = &mixes_for(MixTable::TwoThread)[9];
//! assert_eq!(mix.benchmarks, ["equake", "gcc"]);
//!
//! // Deterministic instruction stream for one thread of the mix.
//! let mut gen = SyntheticGen::new(benchmark(&mix.benchmarks[0]), 0, 42);
//! let inst = gen.next_inst().unwrap();
//! assert!(inst.validate().is_ok());
//! ```

pub mod generator;
pub mod mixes;
pub mod profile;
pub mod spec;
pub mod trace;
pub mod tracefile;

pub use generator::SyntheticGen;
pub use mixes::{mixes_for, Mix, MixTable};
pub use profile::{BenchmarkProfile, IlpClass};
pub use spec::{benchmark, benchmark_names, spec2000};
pub use trace::{InstGenerator, ProgramTrace, TraceSource};
pub use tracefile::{Recorder, TraceFileReplay};
