//! Synthetic models of the SPEC CPU2000 benchmarks used by the paper.
//!
//! Each benchmark gets a profile derived from its ILP-class template (the
//! classification the paper's methodology uses in §2) plus a small
//! deterministic per-benchmark perturbation so that different benchmarks of
//! the same class still behave differently. The class assignments below are
//! reconstructed from the classification columns of Tables 2–4.

use crate::profile::{BenchmarkProfile, IlpClass};

/// All benchmarks appearing in Tables 2–4 of the paper, with ILP class and
/// integer/floating-point designation.
const BENCHMARKS: &[(&str, IlpClass, bool)] = &[
    // LOW ILP — memory-bound.
    ("art", IlpClass::Low, true),
    ("lucas", IlpClass::Low, true),
    ("equake", IlpClass::Low, true),
    ("swim", IlpClass::Low, true),
    ("twolf", IlpClass::Low, false),
    ("vpr", IlpClass::Low, false),
    ("parser", IlpClass::Low, false),
    // MED ILP.
    ("gcc", IlpClass::Med, false),
    ("bzip2", IlpClass::Med, false),
    ("mgrid", IlpClass::Med, true),
    ("galgel", IlpClass::Med, true),
    ("applu", IlpClass::Med, true),
    ("ammp", IlpClass::Med, true),
    ("wupwise", IlpClass::Med, true),
    ("gzip", IlpClass::Med, false),
    // HIGH ILP — execution-bound.
    ("crafty", IlpClass::High, false),
    ("perlbmk", IlpClass::High, false),
    ("gap", IlpClass::High, false),
    ("vortex", IlpClass::High, false),
    ("eon", IlpClass::High, false),
    ("mesa", IlpClass::High, true),
    ("facerec", IlpClass::High, true),
    ("apsi", IlpClass::High, true),
    ("fma3d", IlpClass::High, true),
];

/// Deterministic 64-bit hash of a benchmark name (FNV-1a), used to derive
/// stable per-benchmark parameter jitter.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Jitter `base` by up to ±`pct` using bits `lane` of the hash.
fn jitter(base: f64, pct: f64, hash: u64, lane: u32) -> f64 {
    let bits = (hash >> (lane * 8)) & 0xFF;
    let unit = (bits as f64 / 255.0) * 2.0 - 1.0; // [-1, 1]
    base * (1.0 + pct * unit)
}

/// Class template for profile construction.
fn class_template(name: &str, ilp: IlpClass, is_fp: bool) -> BenchmarkProfile {
    let h = name_hash(name);
    #[allow(clippy::type_complexity)]
    let (loads, stores, branches, dep, two_src, ws, chase, l2f, memf, bias, code): (
        f64,
        f64,
        f64,
        f64,
        f64,
        u64,
        f64,
        f64,
        f64,
        f64,
        u64,
    ) = match ilp {
        // Memory bound: working set far beyond L2, heavy pointer chasing,
        // short dependency chains, noisier branches.
        IlpClass::Low => (0.30, 0.12, 0.13, 4.0, 0.34, 16 << 20, 0.08, 0.22, 0.08, 0.91, 16 * 1024),
        // Intermediate: mostly cache-resident with an L2-hit tier and rare
        // memory misses.
        IlpClass::Med => (0.27, 0.11, 0.12, 6.0, 0.38, 1 << 20, 0.05, 0.15, 0.010, 0.945, 8 * 1024),
        // Execution bound: cache-resident, long dependency distances,
        // predictable branches.
        IlpClass::High => {
            (0.22, 0.10, 0.10, 12.0, 0.35, 24 * 1024, 0.02, 0.04, 0.002, 0.97, 4 * 1024)
        }
    };

    // Floating-point benchmarks shift a chunk of the ALU remainder into the
    // FP pipelines and have slightly more predictable (loopier) branches.
    let (fp_add, fp_mult, fp_div, fp_sqrt, branch_adj, bias_adj) = if is_fp {
        (0.18, 0.11, 0.008, 0.002, -0.03, 0.02)
    } else {
        (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    };

    let profile = BenchmarkProfile {
        name: name.to_string(),
        ilp,
        is_fp,
        frac_load: jitter(loads, 0.12, h, 0),
        frac_store: jitter(stores, 0.12, h, 1),
        frac_branch: (jitter(branches, 0.12, h, 2) + branch_adj).max(0.04),
        frac_int_mult: if is_fp { 0.002 } else { 0.012 },
        frac_int_div: if is_fp { 0.0005 } else { 0.0015 },
        frac_fp_add: fp_add,
        frac_fp_mult: fp_mult,
        frac_fp_div: fp_div,
        frac_fp_sqrt: fp_sqrt,
        mean_dep_distance: jitter(dep, 0.20, h, 3).max(1.5),
        two_src_frac: jitter(two_src, 0.10, h, 4).clamp(0.0, 1.0),
        working_set: ((jitter(ws as f64, 0.25, h, 5) as u64) / 4096).max(1) * 4096,
        pointer_chase_frac: jitter(chase, 0.25, h, 6).clamp(0.0, 1.0),
        l2_access_frac: jitter(l2f, 0.20, h, 7).clamp(0.0, 0.5),
        mem_access_frac: jitter(memf, 0.20, h, 2).clamp(0.0, 0.5),
        branch_bias: (jitter(bias, 0.03, h, 0) + bias_adj).clamp(0.55, 0.995),
        code_footprint: ((code + (h % 16) * 256) / 4) * 4,
    };
    debug_assert!(profile.validate().is_ok(), "{:?}", profile.validate());
    profile
}

/// The profile of one named benchmark. Panics on an unknown name.
pub fn benchmark(name: &str) -> BenchmarkProfile {
    let (n, ilp, is_fp) = BENCHMARKS
        .iter()
        .find(|(n, _, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'"));
    class_template(n, *ilp, *is_fp)
}

/// Names of all modelled benchmarks.
pub fn benchmark_names() -> Vec<&'static str> {
    BENCHMARKS.iter().map(|(n, _, _)| *n).collect()
}

/// Profiles for all modelled benchmarks.
pub fn spec2000() -> Vec<BenchmarkProfile> {
    BENCHMARKS.iter().map(|(n, ilp, fp)| class_template(n, *ilp, *fp)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in spec2000() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn classes_have_expected_ordering() {
        // Dependency distance and working set should order by class.
        let low = benchmark("art");
        let med = benchmark("gcc");
        let high = benchmark("crafty");
        assert!(low.mean_dep_distance < med.mean_dep_distance);
        assert!(med.mean_dep_distance < high.mean_dep_distance);
        assert!(low.working_set > med.working_set);
        assert!(med.working_set > high.working_set);
        assert!(low.pointer_chase_frac > high.pointer_chase_frac);
        assert!(low.branch_bias < high.branch_bias);
    }

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(benchmark("gcc"), benchmark("gcc"));
        assert_eq!(spec2000(), spec2000());
    }

    #[test]
    fn same_class_benchmarks_differ() {
        let a = benchmark("art");
        let b = benchmark("lucas");
        assert_eq!(a.ilp, b.ilp);
        assert_ne!(a.frac_load, b.frac_load, "per-benchmark jitter must differentiate profiles");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = benchmark("doom3");
    }

    #[test]
    fn fp_benchmarks_have_fp_fraction() {
        for p in spec2000() {
            if p.is_fp {
                assert!(p.frac_fp_add > 0.0, "{} should issue FP ops", p.name);
            } else {
                assert_eq!(p.frac_fp_add, 0.0, "{} should not issue FP ops", p.name);
            }
        }
    }

    #[test]
    fn every_table_benchmark_is_modelled() {
        // Every name in Tables 2-4 of the paper must resolve.
        for name in [
            "mgrid", "equake", "art", "lucas", "twolf", "vpr", "swim", "parser", "applu", "ammp",
            "galgel", "gcc", "bzip2", "eon", "apsi", "facerec", "crafty", "perlbmk", "gap",
            "wupwise", "gzip", "vortex", "mesa", "fma3d",
        ] {
            let _ = benchmark(name);
        }
    }

    #[test]
    fn class_counts() {
        let profs = spec2000();
        let low = profs.iter().filter(|p| p.ilp == IlpClass::Low).count();
        let med = profs.iter().filter(|p| p.ilp == IlpClass::Med).count();
        let high = profs.iter().filter(|p| p.ilp == IlpClass::High).count();
        assert_eq!((low, med, high), (7, 8, 9));
    }
}
