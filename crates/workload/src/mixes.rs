//! The multithreaded workloads of Tables 2–4 of the paper.
//!
//! "In total, we simulated 12 4-threaded workloads, 12 3-threaded workloads
//! and 12 2-threaded workloads. All workloads were created by mixing the
//! benchmarks with different ILP levels in various ways." (§2)

use crate::profile::BenchmarkProfile;
use crate::spec::benchmark;
use serde::{Deserialize, Serialize};

/// Which of the paper's mix tables a workload comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MixTable {
    /// Table 3: 2-threaded workloads.
    TwoThread,
    /// Table 4: 3-threaded workloads.
    ThreeThread,
    /// Table 2: 4-threaded workloads.
    FourThread,
}

impl MixTable {
    /// Number of threads in every mix of this table.
    pub fn num_threads(self) -> usize {
        match self {
            MixTable::TwoThread => 2,
            MixTable::ThreeThread => 3,
            MixTable::FourThread => 4,
        }
    }

    /// Human-readable table name as used in the paper.
    pub fn table_name(self) -> &'static str {
        match self {
            MixTable::TwoThread => "Table 3 (2-threaded)",
            MixTable::ThreeThread => "Table 4 (3-threaded)",
            MixTable::FourThread => "Table 2 (4-threaded)",
        }
    }
}

/// One multithreaded workload: a named set of co-scheduled benchmarks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mix {
    /// Mix name as in the paper ("Mix 1" … "Mix 12").
    pub name: String,
    /// ILP-level classification string from the table.
    pub classification: String,
    /// Benchmarks, one per hardware thread.
    pub benchmarks: Vec<String>,
}

impl Mix {
    fn new(n: u32, classification: &str, benches: &[&str]) -> Self {
        Mix {
            name: format!("Mix {n}"),
            classification: classification.to_string(),
            benchmarks: benches.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Profiles for every thread of this mix.
    pub fn profiles(&self) -> Vec<BenchmarkProfile> {
        self.benchmarks.iter().map(|b| benchmark(b)).collect()
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.benchmarks.len()
    }
}

/// Table 2: the twelve 4-threaded workloads.
fn four_thread_mixes() -> Vec<Mix> {
    vec![
        Mix::new(1, "4 LOW ILP", &["mgrid", "equake", "art", "lucas"]),
        Mix::new(2, "4 LOW ILP", &["twolf", "vpr", "swim", "parser"]),
        Mix::new(3, "4 MED ILP", &["applu", "ammp", "mgrid", "galgel"]),
        Mix::new(4, "4 MED ILP", &["gcc", "bzip2", "eon", "apsi"]),
        Mix::new(5, "4 HIGH ILP", &["facerec", "crafty", "perlbmk", "gap"]),
        Mix::new(6, "4 HIGH ILP", &["wupwise", "gzip", "vortex", "mesa"]),
        Mix::new(7, "2 LOW ILP + 2 HIGH ILP", &["parser", "equake", "mesa", "vortex"]),
        Mix::new(8, "2 LOW ILP + 2 HIGH ILP", &["parser", "swim", "crafty", "perlbmk"]),
        Mix::new(9, "2 LOW ILP + 2 MED ILP", &["art", "lucas", "galgel", "gcc"]),
        Mix::new(10, "2 LOW ILP + 2 MED ILP", &["parser", "swim", "gcc", "bzip2"]),
        Mix::new(11, "2 MED ILP + 2 HIGH ILP", &["gzip", "wupwise", "fma3d", "apsi"]),
        Mix::new(12, "2 MED ILP + 2 HIGH ILP", &["vortex", "mesa", "mgrid", "eon"]),
    ]
}

/// Table 3: the twelve 2-threaded workloads.
fn two_thread_mixes() -> Vec<Mix> {
    vec![
        Mix::new(1, "2 LOW ILP", &["equake", "lucas"]),
        Mix::new(2, "2 LOW ILP", &["twolf", "vpr"]),
        Mix::new(3, "2 MED ILP", &["gcc", "bzip2"]),
        Mix::new(4, "2 MED ILP", &["mgrid", "galgel"]),
        Mix::new(5, "2 HIGH ILP", &["facerec", "wupwise"]),
        Mix::new(6, "2 HIGH ILP", &["crafty", "gzip"]),
        Mix::new(7, "1 LOW ILP + 1 HIGH ILP", &["parser", "vortex"]),
        Mix::new(8, "1 LOW ILP + 1 HIGH ILP", &["swim", "gap"]),
        Mix::new(9, "1 LOW ILP + 1 MED ILP", &["twolf", "bzip2"]),
        Mix::new(10, "1 LOW ILP + 1 MED ILP", &["equake", "gcc"]),
        Mix::new(11, "1 MED ILP + 1 HIGH ILP", &["applu", "mesa"]),
        Mix::new(12, "1 MED ILP + 1 HIGH ILP", &["ammp", "gzip"]),
    ]
}

/// Table 4: the twelve 3-threaded workloads.
fn three_thread_mixes() -> Vec<Mix> {
    vec![
        Mix::new(1, "3 LOW ILP", &["mgrid", "equake", "art"]),
        Mix::new(2, "3 LOW ILP", &["twolf", "vpr", "swim"]),
        Mix::new(3, "3 MED ILP", &["applu", "ammp", "mgrid"]),
        Mix::new(4, "3 MED ILP", &["gcc", "bzip2", "eon"]),
        Mix::new(5, "3 HIGH ILP", &["facerec", "crafty", "perlbmk"]),
        Mix::new(6, "3 HIGH ILP", &["wupwise", "gzip", "vortex"]),
        Mix::new(7, "2 LOW ILP + 1 HIGH ILP", &["parser", "equake", "mesa"]),
        Mix::new(8, "1 LOW ILP + 2 HIGH ILP", &["perlbmk", "parser", "crafty"]),
        Mix::new(9, "2 LOW ILP + 1 MED ILP", &["art", "lucas", "galgel"]),
        Mix::new(10, "1 LOW ILP + 2 MED ILP", &["parser", "bzip2", "gcc"]),
        Mix::new(11, "2 MED ILP + 1 HIGH ILP", &["gzip", "wupwise", "fma3d"]),
        Mix::new(12, "1 MED ILP + 2 HIGH ILP", &["vortex", "eon", "mgrid"]),
    ]
}

/// The twelve mixes of the requested table.
pub fn mixes_for(table: MixTable) -> Vec<Mix> {
    match table {
        MixTable::TwoThread => two_thread_mixes(),
        MixTable::ThreeThread => three_thread_mixes(),
        MixTable::FourThread => four_thread_mixes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_mixes_per_table() {
        for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
            let mixes = mixes_for(table);
            assert_eq!(mixes.len(), 12, "{}", table.table_name());
            for m in &mixes {
                assert_eq!(
                    m.num_threads(),
                    table.num_threads(),
                    "{} {} thread count",
                    table.table_name(),
                    m.name
                );
            }
        }
    }

    #[test]
    fn every_mix_resolves_to_profiles() {
        for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
            for m in mixes_for(table) {
                let profiles = m.profiles();
                assert_eq!(profiles.len(), m.num_threads());
                for p in profiles {
                    p.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn table2_mix1_matches_paper() {
        let m = &mixes_for(MixTable::FourThread)[0];
        assert_eq!(m.benchmarks, ["mgrid", "equake", "art", "lucas"]);
    }

    #[test]
    fn table3_mix7_matches_paper() {
        let m = &mixes_for(MixTable::TwoThread)[6];
        assert_eq!(m.benchmarks, ["parser", "vortex"]);
        assert_eq!(m.classification, "1 LOW ILP + 1 HIGH ILP");
    }

    #[test]
    fn table4_mix11_matches_paper() {
        let m = &mixes_for(MixTable::ThreeThread)[10];
        assert_eq!(m.benchmarks, ["gzip", "wupwise", "fma3d"]);
    }

    #[test]
    fn mix_names_are_sequential() {
        for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
            for (i, m) in mixes_for(table).iter().enumerate() {
                assert_eq!(m.name, format!("Mix {}", i + 1));
            }
        }
    }
}
