//! Benchmark behaviour profiles.

use serde::{Deserialize, Serialize};

/// The paper's three-way benchmark classification: "we … used these results
/// to classify them as low, medium, and high ILP, where the low ILP
/// benchmarks are memory bound and the high ILP benchmarks are execution
/// bound" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IlpClass {
    /// Memory-bound: large working sets, pointer chasing, short dependency
    /// distances.
    Low,
    /// Intermediate behaviour.
    Med,
    /// Execution-bound: cache-resident working sets, long dependency
    /// distances, predictable branches.
    High,
}

impl IlpClass {
    /// Short label used in mix tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            IlpClass::Low => "LOW",
            IlpClass::Med => "MED",
            IlpClass::High => "HIGH",
        }
    }
}

/// Microarchitectural behaviour model of one benchmark.
///
/// All probabilities are in `[0,1]`. Instruction-class fractions must sum
/// to at most 1; the remainder becomes plain integer-ALU operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (e.g. `"gcc"`).
    pub name: String,
    /// ILP classification used to build the paper's mixes.
    pub ilp: IlpClass,
    /// Is this a floating-point benchmark (SPEC CFP2000)?
    pub is_fp: bool,
    /// Fraction of dynamic instructions that are loads.
    pub frac_load: f64,
    /// Fraction that are stores.
    pub frac_store: f64,
    /// Fraction that are conditional branches.
    pub frac_branch: f64,
    /// Fraction that are integer multiplies.
    pub frac_int_mult: f64,
    /// Fraction that are integer divides.
    pub frac_int_div: f64,
    /// Fraction that are FP adds (FP benchmarks only, typically).
    pub frac_fp_add: f64,
    /// Fraction that are FP multiplies.
    pub frac_fp_mult: f64,
    /// Fraction that are FP divides.
    pub frac_fp_div: f64,
    /// Fraction that are FP square roots.
    pub frac_fp_sqrt: f64,
    /// Mean register dependency distance (instructions between a value's
    /// producer and its consumer). Small ⇒ serial chains ⇒ low ILP.
    pub mean_dep_distance: f64,
    /// Probability that a two-operand instruction actually names two real
    /// (dependency-creating) register sources.
    pub two_src_frac: f64,
    /// Data working-set size in bytes. Larger than L2 ⇒ memory-bound.
    pub working_set: u64,
    /// Fraction of loads whose address register is the destination of the
    /// most recent load (pointer chasing: serialises misses).
    pub pointer_chase_frac: f64,
    /// Fraction of data accesses that hit the L2-resident tier (random
    /// within a ~64 KB region: misses L1, hits L2 once warm).
    pub l2_access_frac: f64,
    /// Fraction of data accesses uniform over the full working set — for a
    /// memory-bound working set these are the main-memory misses.
    pub mem_access_frac: f64,
    /// Mean per-branch taken bias; higher ⇒ more predictable branches.
    pub branch_bias: f64,
    /// Static code footprint in bytes (loop body length × 4).
    pub code_footprint: u64,
}

impl BenchmarkProfile {
    /// Fraction of instructions that fall through to plain integer ALU ops.
    pub fn frac_int_alu(&self) -> f64 {
        1.0 - (self.frac_load
            + self.frac_store
            + self.frac_branch
            + self.frac_int_mult
            + self.frac_int_div
            + self.frac_fp_add
            + self.frac_fp_mult
            + self.frac_fp_div
            + self.frac_fp_sqrt)
    }

    /// Validate the profile's internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, f64); 7] = [
            ("frac_load", self.frac_load),
            ("frac_store", self.frac_store),
            ("frac_branch", self.frac_branch),
            ("two_src_frac", self.two_src_frac),
            ("pointer_chase_frac", self.pointer_chase_frac),
            ("l2_access_frac", self.l2_access_frac),
            ("mem_access_frac", self.mem_access_frac),
        ];
        for (name, v) in checks {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} out of [0,1] for {}", self.name));
            }
        }
        if self.frac_int_alu() < 0.0 {
            return Err(format!("instruction-class fractions exceed 1 for {}", self.name));
        }
        if self.l2_access_frac + self.mem_access_frac > 1.0 {
            return Err(format!("access-tier fractions exceed 1 for {}", self.name));
        }
        if self.mean_dep_distance < 1.0 {
            return Err(format!("mean_dep_distance must be >= 1 for {}", self.name));
        }
        if !(0.5..=1.0).contains(&self.branch_bias) {
            return Err(format!("branch_bias must be in [0.5,1] for {}", self.name));
        }
        if self.working_set < 4096 {
            return Err(format!("working set too small for {}", self.name));
        }
        if self.code_footprint < 64 || !self.code_footprint.is_multiple_of(4) {
            return Err(format!("bad code footprint for {}", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "test".into(),
            ilp: IlpClass::Med,
            is_fp: false,
            frac_load: 0.25,
            frac_store: 0.1,
            frac_branch: 0.12,
            frac_int_mult: 0.01,
            frac_int_div: 0.001,
            frac_fp_add: 0.0,
            frac_fp_mult: 0.0,
            frac_fp_div: 0.0,
            frac_fp_sqrt: 0.0,
            mean_dep_distance: 5.0,
            two_src_frac: 0.4,
            working_set: 1 << 20,
            pointer_chase_frac: 0.1,
            l2_access_frac: 0.15,
            mem_access_frac: 0.01,
            branch_bias: 0.9,
            code_footprint: 4096,
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn alu_fraction_is_remainder() {
        let p = base();
        let expected = 1.0 - 0.25 - 0.1 - 0.12 - 0.01 - 0.001;
        assert!((p.frac_int_alu() - expected).abs() < 1e-12);
    }

    #[test]
    fn overfull_mix_rejected() {
        let mut p = base();
        p.frac_load = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_bias_rejected() {
        let mut p = base();
        p.branch_bias = 0.3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_dep_distance_rejected() {
        let mut p = base();
        p.mean_dep_distance = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_labels() {
        assert_eq!(IlpClass::Low.label(), "LOW");
        assert_eq!(IlpClass::Med.label(), "MED");
        assert_eq!(IlpClass::High.label(), "HIGH");
    }
}
