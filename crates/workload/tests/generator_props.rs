//! Property tests over the synthetic workload generator: arbitrary valid
//! profiles must always produce valid, well-contained instruction streams.

use proptest::prelude::*;
use smt_workload::{BenchmarkProfile, IlpClass, InstGenerator, SyntheticGen};

fn arb_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.05f64..0.4,  // loads
        0.01f64..0.15, // stores
        0.05f64..0.2,  // branches
        1.5f64..20.0,  // dep distance
        0.0f64..0.8,   // two-src fraction
        0u8..3,        // ilp class selector
        any::<bool>(), // fp?
        0.0f64..0.5,   // chase
        0.0f64..0.4,   // l2 frac
        0.0f64..0.4,   // mem frac
        0.56f64..0.99, // bias
    )
        .prop_map(|(loads, stores, branches, dep, two_src, ilp, is_fp, chase, l2f, memf, bias)| {
            let (fp_add, fp_mult) = if is_fp { (0.12, 0.08) } else { (0.0, 0.0) };
            BenchmarkProfile {
                name: "prop".into(),
                ilp: match ilp {
                    0 => IlpClass::Low,
                    1 => IlpClass::Med,
                    _ => IlpClass::High,
                },
                is_fp,
                frac_load: loads,
                frac_store: stores,
                frac_branch: branches,
                frac_int_mult: 0.01,
                frac_int_div: 0.001,
                frac_fp_add: fp_add,
                frac_fp_mult: fp_mult,
                frac_fp_div: 0.0,
                frac_fp_sqrt: 0.0,
                mean_dep_distance: dep,
                two_src_frac: two_src,
                working_set: 1 << 20,
                pointer_chase_frac: chase,
                l2_access_frac: l2f.min(1.0 - memf),
                mem_access_frac: memf,
                branch_bias: bias,
                code_footprint: 4096,
            }
        })
        .prop_filter("profile must validate", |p| p.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn generated_instructions_always_validate(profile in arb_profile(), seed in any::<u64>()) {
        let mut g = SyntheticGen::new(profile, 0, seed);
        for _ in 0..2_000 {
            let inst = g.next_inst().expect("synthetic streams are infinite");
            prop_assert!(inst.validate().is_ok(), "{:?}", inst.validate());
        }
    }

    #[test]
    fn addresses_and_pcs_stay_in_bounds(profile in arb_profile(), seed in any::<u64>()) {
        let ws = profile.working_set;
        let footprint = profile.code_footprint;
        let mut g = SyntheticGen::new(profile, 2, seed);
        let code_base = g.code_base();
        let data_base = g.data_base();
        for _ in 0..2_000 {
            let inst = g.next_inst().unwrap();
            prop_assert!(inst.pc >= code_base && inst.pc < code_base + footprint);
            if let Some(m) = inst.mem {
                prop_assert!(m.addr >= data_base && m.addr < data_base + ws);
            }
        }
    }

    #[test]
    fn streams_are_reproducible(profile in arb_profile(), seed in any::<u64>()) {
        let mut a = SyntheticGen::new(profile.clone(), 1, seed);
        let mut b = SyntheticGen::new(profile, 1, seed);
        for _ in 0..500 {
            prop_assert_eq!(a.next_inst(), b.next_inst());
        }
    }
}
