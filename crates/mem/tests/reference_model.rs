//! Property test: the optimized set-associative cache must behave exactly
//! like a straightforward reference implementation (per-set LRU lists).

use proptest::prelude::*;
use smt_mem::{Cache, CacheConfig};
use std::collections::VecDeque;

/// The obviously-correct model: one LRU-ordered list of tags per set.
struct RefCache {
    sets: Vec<VecDeque<u64>>, // most-recent at the front
    ways: usize,
    line_shift: u32,
    set_bits: u32,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets() as usize;
        RefCache {
            sets: vec![VecDeque::new(); sets],
            ways: cfg.ways as usize,
            line_shift: cfg.line_size.trailing_zeros(),
            set_bits: cfg.num_sets().trailing_zeros(),
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & ((1 << self.set_bits) - 1)) as usize, line >> self.set_bits)
    }

    fn probe(&mut self, addr: u64) -> bool {
        let (s, tag) = self.set_and_tag(addr);
        if let Some(pos) = self.sets[s].iter().position(|&t| t == tag) {
            self.sets[s].remove(pos);
            self.sets[s].push_front(tag);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64) {
        let (s, tag) = self.set_and_tag(addr);
        if let Some(pos) = self.sets[s].iter().position(|&t| t == tag) {
            self.sets[s].remove(pos);
        } else if self.sets[s].len() == self.ways {
            self.sets[s].pop_back();
        }
        self.sets[s].push_front(tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn cache_matches_reference_model(
        addrs in proptest::collection::vec(0u64..(1 << 14), 1..600),
    ) {
        // 4 sets x 2 ways x 64B: small enough that random addresses
        // exercise eviction constantly.
        let cfg = CacheConfig::new(512, 2, 64);
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &addr) in addrs.iter().enumerate() {
            let got = cache.probe(addr);
            let want = reference.probe(addr);
            prop_assert_eq!(got, want, "probe divergence at access {} addr {:#x}", i, addr);
            if !got {
                cache.fill(addr);
                reference.fill(addr);
            }
        }
    }

    #[test]
    fn cache_matches_reference_with_interleaved_fills(
        ops in proptest::collection::vec((0u64..(1 << 13), any::<bool>()), 1..400),
    ) {
        let cfg = CacheConfig::new(1024, 4, 32);
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &(addr, is_fill)) in ops.iter().enumerate() {
            if is_fill {
                cache.fill(addr);
                reference.fill(addr);
            } else {
                let got = cache.probe(addr);
                let want = reference.probe(addr);
                prop_assert_eq!(got, want, "divergence at op {} addr {:#x}", i, addr);
                // Keep the two models in the same state after a miss.
                if !got {
                    cache.fill(addr);
                    reference.fill(addr);
                }
            }
        }
    }

    #[test]
    fn valid_line_count_never_exceeds_capacity(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..300),
    ) {
        let cfg = CacheConfig::new(512, 2, 64);
        let mut cache = Cache::new(cfg);
        for &addr in &addrs {
            if !cache.probe(addr) {
                cache.fill(addr);
            }
            prop_assert!(cache.valid_lines() <= 8);
        }
    }
}
