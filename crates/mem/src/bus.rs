//! A finite-bandwidth memory bus.
//!
//! The bus is a single FIFO server: each memory transaction occupies it for
//! `cycles_per_transfer` cycles, and a transaction arriving while the bus is
//! busy queues behind the in-flight ones. Because service is strictly FIFO
//! and the service time is constant, the start cycle of a transaction is
//! known analytically at enqueue time — later arrivals can never change it —
//! which is what lets the simulator schedule fill events eagerly.

use serde::{Deserialize, Serialize};

/// Running statistics for the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Transactions that went over the bus.
    pub transactions: u64,
    /// Total cycles transactions spent waiting for the bus to free up.
    pub queue_delay_sum: u64,
}

/// Single-server FIFO memory bus with constant per-transaction occupancy.
///
/// `cycles_per_transfer == 0` means infinite bandwidth: every transaction
/// starts immediately and the bus never queues (the degenerate configuration
/// used for flat-model equivalence).
#[derive(Debug, Clone)]
pub struct MemoryBus {
    cycles_per_transfer: u32,
    /// First cycle at which the bus is free again.
    next_free: u64,
    stats: BusStats,
}

impl MemoryBus {
    /// Build an idle bus.
    pub fn new(cycles_per_transfer: u32) -> Self {
        MemoryBus { cycles_per_transfer, next_free: 0, stats: BusStats::default() }
    }

    /// Enqueue a transaction at cycle `now`. Returns `(start, queue_delay)`:
    /// the cycle the transfer begins and how long it waited for the bus.
    pub fn enqueue(&mut self, now: u64) -> (u64, u64) {
        self.stats.transactions += 1;
        if self.cycles_per_transfer == 0 {
            return (now, 0);
        }
        let start = self.next_free.max(now);
        self.next_free = start + u64::from(self.cycles_per_transfer);
        let delay = start - now;
        self.stats.queue_delay_sum += delay;
        (start, delay)
    }

    /// When the bus next becomes free (for diagnosis snapshots).
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Cycles each transaction occupies the bus (0 = infinite bandwidth).
    pub fn cycles_per_transfer(&self) -> u32 {
        self.cycles_per_transfer
    }

    /// Running statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Clear counters but keep the occupancy horizon (warm-up handling).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_never_queues() {
        let mut bus = MemoryBus::new(0);
        for now in [5, 5, 5, 6] {
            assert_eq!(bus.enqueue(now), (now, 0));
        }
        assert_eq!(bus.stats().transactions, 4);
        assert_eq!(bus.stats().queue_delay_sum, 0);
    }

    #[test]
    fn back_to_back_transactions_serialise() {
        let mut bus = MemoryBus::new(10);
        assert_eq!(bus.enqueue(100), (100, 0));
        assert_eq!(bus.enqueue(100), (110, 10));
        assert_eq!(bus.enqueue(105), (120, 15));
        assert_eq!(bus.stats().queue_delay_sum, 25);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_credit() {
        let mut bus = MemoryBus::new(4);
        bus.enqueue(0); // busy until 4
        assert_eq!(bus.enqueue(50), (50, 0), "a long-idle bus starts immediately");
        assert_eq!(bus.next_free(), 54);
    }

    #[test]
    fn reset_stats_keeps_occupancy() {
        let mut bus = MemoryBus::new(8);
        bus.enqueue(0);
        bus.reset_stats();
        assert_eq!(bus.stats(), BusStats::default());
        assert_eq!(bus.enqueue(0), (8, 8), "occupancy horizon survives the reset");
    }
}
