//! Miss Status Holding Registers: outstanding-miss tracking for one cache
//! level.
//!
//! An MSHR entry tracks one in-flight line fill. A *primary* miss allocates
//! an entry; a *secondary* miss to the same line merges onto the existing
//! entry (no new entry, no new bus transaction) and only extends the entry's
//! release time. When no entry is free and the line is not already in
//! flight, the miss cannot be accepted and the requester must stall and
//! retry — the simulator surfaces that as a diagnosable MSHR-full stall.
//!
//! Waiter tokens record who is sleeping on each fill, in arrival order.
//! The cycle-level simulator schedules its own wakeup events analytically
//! (see `bus.rs`), so it does not consume the tokens; they exist for unit
//! tests and for deadlock-diagnosis snapshots.

use serde::{Deserialize, Serialize};

/// Identifies a sleeper on an in-flight fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Waiter {
    /// Requesting thread context.
    pub thread: usize,
    /// Caller-defined token (e.g. a trace index or PC).
    pub token: u64,
}

/// How a miss was absorbed by the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A fresh entry was allocated; the caller owns the bus transaction.
    Primary,
    /// Merged onto an in-flight entry for the same line.
    Merged,
}

/// A completed fill popped by [`MshrFile::pop_due`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fill {
    /// Line address (already shifted; see the owning hierarchy level).
    pub line: u64,
    /// Cycle the fill completed.
    pub fill_at: u64,
    /// Sleepers in arrival order (primary first).
    pub waiters: Vec<Waiter>,
}

/// Running statistics for one MSHR file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MshrStats {
    /// Primary misses that allocated an entry.
    pub allocs: u64,
    /// Secondary misses merged onto an in-flight entry.
    pub merges: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    line: u64,
    fill_at: u64,
    alloc_order: u64,
    waiters: Vec<Waiter>,
}

/// The MSHR file of a single cache level.
///
/// `entries == 0` means unlimited (the degenerate configuration used for
/// flat-model equivalence): every miss is accepted.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: u32,
    in_flight: Vec<Entry>,
    next_alloc_order: u64,
    stats: MshrStats,
}

impl MshrFile {
    /// Build an empty file with `entries` registers (0 = unlimited).
    pub fn new(entries: u32) -> Self {
        MshrFile {
            entries,
            in_flight: Vec::new(),
            next_alloc_order: 0,
            stats: MshrStats::default(),
        }
    }

    /// Would a miss on `line` be accepted right now? Non-mutating.
    pub fn can_accept(&self, line: u64) -> bool {
        self.entries == 0 || self.can_merge(line) || self.in_flight.len() < self.entries as usize
    }

    /// Is `line` already in flight (so a new miss would merge rather than
    /// allocate)? Non-mutating.
    pub fn can_merge(&self, line: u64) -> bool {
        self.in_flight.iter().any(|e| e.line == line)
    }

    /// Record a miss on `line` completing at `fill_at`.
    ///
    /// Panics if the miss is not admissible — callers must gate on
    /// [`can_accept`](Self::can_accept) first (the simulator checks
    /// admissibility and the allocation in the same loop iteration, so the
    /// answer cannot go stale).
    pub fn allocate_or_merge(&mut self, line: u64, fill_at: u64, waiter: Waiter) -> MshrOutcome {
        if let Some(e) = self.in_flight.iter_mut().find(|e| e.line == line) {
            // Secondary miss: the merged request is timed by its own probe;
            // the entry just stays live until the last sleeper's fill.
            e.fill_at = e.fill_at.max(fill_at);
            e.waiters.push(waiter);
            self.stats.merges += 1;
            return MshrOutcome::Merged;
        }
        assert!(
            self.entries == 0 || self.in_flight.len() < self.entries as usize,
            "MSHR allocation without an admissibility check"
        );
        self.in_flight.push(Entry {
            line,
            fill_at,
            alloc_order: self.next_alloc_order,
            waiters: vec![waiter],
        });
        self.next_alloc_order += 1;
        self.stats.allocs += 1;
        MshrOutcome::Primary
    }

    /// Release every entry whose fill completed by `now`, in (fill time,
    /// allocation order) — the order fills physically return.
    pub fn pop_due(&mut self, now: u64) -> Vec<Fill> {
        let mut due: Vec<Entry> = Vec::new();
        self.in_flight.retain_mut(|e| {
            if e.fill_at <= now {
                due.push(Entry {
                    line: e.line,
                    fill_at: e.fill_at,
                    alloc_order: e.alloc_order,
                    waiters: std::mem::take(&mut e.waiters),
                });
                false
            } else {
                true
            }
        });
        due.sort_by_key(|e| (e.fill_at, e.alloc_order));
        due.into_iter()
            .map(|e| Fill { line: e.line, fill_at: e.fill_at, waiters: e.waiters })
            .collect()
    }

    /// Entries currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The earliest fill time of any in-flight entry, if any. Lets the
    /// idle-cycle fast-forward bound a skip window without releasing
    /// entries.
    pub fn next_fill_at(&self) -> Option<u64> {
        self.in_flight.iter().map(|e| e.fill_at).min()
    }

    /// Line addresses currently in flight with their fill times (for
    /// diagnosis snapshots), in allocation order.
    pub fn in_flight_lines(&self) -> Vec<(u64, u64)> {
        self.in_flight.iter().map(|e| (e.line, e.fill_at)).collect()
    }

    /// Configured capacity (0 = unlimited).
    pub fn capacity(&self) -> u32 {
        self.entries
    }

    /// Running statistics.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Clear counters but keep in-flight entries (warm-up handling: the
    /// misses themselves are machine state, not statistics).
    pub fn reset_stats(&mut self) {
        self.stats = MshrStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(thread: usize, token: u64) -> Waiter {
        Waiter { thread, token }
    }

    #[test]
    fn secondary_miss_merges_without_new_entry() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate_or_merge(0x10, 160, w(0, 1)), MshrOutcome::Primary);
        assert_eq!(m.allocate_or_merge(0x10, 40, w(1, 2)), MshrOutcome::Merged);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.stats(), MshrStats { allocs: 1, merges: 1 });
        // The merge with an earlier completion does not shorten the entry.
        let fills = m.pop_due(159);
        assert!(fills.is_empty());
        let fills = m.pop_due(160);
        assert_eq!(fills.len(), 1);
        assert_eq!(fills[0].waiters, vec![w(0, 1), w(1, 2)], "waiters kept in arrival order");
    }

    #[test]
    fn merge_extends_release_to_latest_fill() {
        let mut m = MshrFile::new(1);
        m.allocate_or_merge(0x20, 100, w(0, 1));
        m.allocate_or_merge(0x20, 250, w(0, 2));
        assert!(m.pop_due(200).is_empty(), "entry must stay live for the later sleeper");
        assert_eq!(m.pop_due(250).len(), 1);
    }

    #[test]
    fn full_file_rejects_new_lines_but_accepts_merges() {
        let mut m = MshrFile::new(2);
        m.allocate_or_merge(0x1, 100, w(0, 1));
        m.allocate_or_merge(0x2, 100, w(0, 2));
        assert!(!m.can_accept(0x3), "no free entry and line not in flight");
        assert!(m.can_accept(0x1), "merge onto an in-flight line is always admissible");
        // After the fills drain, capacity frees up.
        m.pop_due(100);
        assert!(m.can_accept(0x3));
    }

    #[test]
    fn zero_entries_means_unlimited() {
        let mut m = MshrFile::new(0);
        for line in 0..64 {
            assert!(m.can_accept(line));
            assert_eq!(m.allocate_or_merge(line, 10, w(0, line)), MshrOutcome::Primary);
        }
        assert_eq!(m.in_flight(), 64);
    }

    #[test]
    fn fills_pop_in_fill_time_then_allocation_order() {
        let mut m = MshrFile::new(0);
        m.allocate_or_merge(0xa, 50, w(0, 0)); // later fill, earlier alloc
        m.allocate_or_merge(0xb, 20, w(0, 1));
        m.allocate_or_merge(0xc, 50, w(0, 2)); // ties with 0xa on time
        let fills = m.pop_due(60);
        let lines: Vec<u64> = fills.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![0xb, 0xa, 0xc]);
    }

    #[test]
    #[should_panic(expected = "admissibility")]
    fn unchecked_allocation_on_a_full_file_panics() {
        let mut m = MshrFile::new(1);
        m.allocate_or_merge(0x1, 10, w(0, 0));
        m.allocate_or_merge(0x2, 10, w(0, 1));
    }
}
