//! The two-level cache hierarchy plus main memory.

use crate::bus::{BusStats, MemoryBus};
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::{MshrFile, MshrStats, Waiter};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What kind of access is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch (L1I → L2 → memory).
    Fetch,
    /// Data load (L1D → L2 → memory).
    Load,
    /// Data store (write-allocate into L1D at commit time).
    Store,
}

/// Resource limits of the non-blocking memory model. Everywhere, `0` means
/// "unlimited / infinite bandwidth", so the all-zero default is the
/// degenerate configuration that reproduces the flat-latency model
/// bit-for-bit (see `tests/mem_model_differential.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NonBlockingConfig {
    /// L1 I-cache MSHR entries (outstanding fetch-miss lines).
    #[serde(default)]
    pub l1i_mshrs: u32,
    /// L1 D-cache MSHR entries (outstanding load/store-miss lines).
    #[serde(default)]
    pub l1d_mshrs: u32,
    /// L2 MSHR entries (outstanding memory-bound lines).
    #[serde(default)]
    pub l2_mshrs: u32,
    /// Cycles each memory transaction occupies the bus (0 = infinite
    /// bandwidth). Only L2-missing primaries use the bus.
    #[serde(default)]
    pub bus_cycles_per_transfer: u32,
    /// Commit-time store write-buffer entries. 0 together with a drain rate
    /// of 0 means stores retire into the cache instantly at commit.
    #[serde(default)]
    pub write_buffer_entries: u32,
    /// Stores drained from the write buffer per cycle (0 = unlimited).
    #[serde(default)]
    pub write_buffer_drain_per_cycle: u32,
}

impl NonBlockingConfig {
    /// Is this the all-zero configuration (unlimited MSHRs, infinite bus,
    /// instant store retirement) that matches the flat model exactly?
    pub fn is_degenerate(&self) -> bool {
        *self == NonBlockingConfig::default()
    }
}

/// Which memory-timing model the hierarchy runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemModel {
    /// Pre-MSHR scalar model: every access returns its full extra latency
    /// synchronously from [`Hierarchy::access`], with unlimited concurrency.
    Flat,
    /// Non-blocking model: misses allocate MSHRs, memory transactions queue
    /// on a finite bus, stores drain through a write buffer.
    NonBlocking(NonBlockingConfig),
}

impl Default for MemModel {
    fn default() -> Self {
        MemModel::NonBlocking(NonBlockingConfig::default())
    }
}

/// Latencies and geometries of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L2 hit latency in cycles (charged on an L1 miss that hits in L2).
    pub l2_hit_latency: u32,
    /// Main-memory access latency in cycles (charged on an L2 miss).
    pub memory_latency: u32,
    /// Memory-timing model. Defaults to the degenerate non-blocking model
    /// (identical timing to `Flat`), so configs serialized before this
    /// field existed keep their behaviour.
    #[serde(default)]
    pub model: MemModel,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper()
    }
}

impl HierarchyConfig {
    /// Table 1 of the paper: L1I 64KB/2w/128B, L1D 32KB/4w/256B,
    /// L2 2MB/8w/512B with a 10-cycle hit, memory 150 cycles.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(64 * 1024, 2, 128),
            l1d: CacheConfig::new(32 * 1024, 4, 256),
            l2: CacheConfig::new(2 * 1024 * 1024, 8, 512),
            l2_hit_latency: 10,
            memory_latency: 150,
            model: MemModel::default(),
        }
    }
}

/// Aggregate statistics over all levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// L1 data-cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Number of accesses that went all the way to memory.
    pub memory_accesses: u64,
}

/// Statistics of the non-blocking machinery (MSHRs, bus, write buffer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1I MSHR allocations/merges.
    pub l1i_mshr: MshrStats,
    /// L1D MSHR allocations/merges.
    pub l1d_mshr: MshrStats,
    /// L2 MSHR allocations/merges.
    pub l2_mshr: MshrStats,
    /// Bus transactions and queueing.
    pub bus: BusStats,
    /// Sum over stepped cycles of in-flight L1I MSHR entries.
    pub l1i_mshr_occupancy_sum: u64,
    /// Sum over stepped cycles of in-flight L1D MSHR entries.
    pub l1d_mshr_occupancy_sum: u64,
    /// Sum over stepped cycles of in-flight L2 MSHR entries.
    pub l2_mshr_occupancy_sum: u64,
    /// Stores accepted into the write buffer (excludes instant-drain mode).
    pub wb_enqueued: u64,
    /// Stores drained from the write buffer into the cache.
    pub wb_drained: u64,
    /// Sum over stepped cycles of write-buffer occupancy.
    pub wb_occupancy_sum: u64,
}

/// Which level serviced a request — the unit of per-thread attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitLevel {
    /// L1 tag hit (includes hits forwarded from an in-flight fill).
    L1,
    /// L1 miss that hit in the unified L2.
    L2,
    /// Missed both levels; went to main memory.
    Memory,
}

impl HitLevel {
    /// Infer the level from a flat-model extra latency. Only exact under
    /// the paper-style configuration where `l2_hit_latency` and the memory
    /// latency are distinct and non-zero, which is how the flat path
    /// attributes per-thread hit/miss counters.
    pub fn from_flat_extra(extra: u32, l2_hit_latency: u32) -> HitLevel {
        if extra == 0 {
            HitLevel::L1
        } else if extra == l2_hit_latency {
            HitLevel::L2
        } else {
            HitLevel::Memory
        }
    }
}

/// The outcome of a non-blocking [`Hierarchy::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// The flat extra latency of this access (identical to what
    /// [`Hierarchy::access`] would have returned), excluding bus queueing
    /// and injected fault latency.
    pub extra: u32,
    /// Cycle the data is available: `now + extra + injected` plus any bus
    /// queue delay.
    pub fill_at: u64,
    /// Which level serviced the request.
    pub level: HitLevel,
    /// Cycles spent waiting for the memory bus (0 unless an L2-missing
    /// primary found the bus busy).
    pub queue_delay: u64,
}

/// A store drained from the write buffer this cycle, for per-core /
/// per-thread attribution of the cache traffic it caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreDrain {
    /// Core that committed the store (0 on a single-core hierarchy).
    pub core: usize,
    /// Thread (core-local context index) that committed the store.
    pub thread: usize,
    /// Level that serviced it.
    pub level: HitLevel,
}

/// Occupancy snapshot of the non-blocking machinery, for deadlock-diagnosis
/// reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSnapshot {
    /// In-flight L1I MSHR entries.
    pub l1i_mshrs_in_flight: usize,
    /// Configured L1I MSHR capacity (0 = unlimited).
    pub l1i_mshr_capacity: u32,
    /// In-flight L1D MSHR entries.
    pub l1d_mshrs_in_flight: usize,
    /// Configured L1D MSHR capacity (0 = unlimited).
    pub l1d_mshr_capacity: u32,
    /// In-flight L2 MSHR entries.
    pub l2_mshrs_in_flight: usize,
    /// Configured L2 MSHR capacity (0 = unlimited).
    pub l2_mshr_capacity: u32,
    /// First cycle the memory bus is free again.
    pub bus_next_free: u64,
    /// Cycles each bus transaction occupies (0 = infinite bandwidth).
    pub bus_cycles_per_transfer: u32,
    /// Stores waiting in the write buffer.
    pub wb_occupancy: usize,
    /// Configured write-buffer capacity (0 = unlimited/instant).
    pub wb_capacity: u32,
}

/// The cache hierarchy shared by all SMT thread contexts.
///
/// Two timing models share the tag arrays:
///
/// * [`Hierarchy::access`] is the flat scalar model: it returns the
///   *additional* latency of an access beyond the fixed L1 pipeline latency
///   (0 for an L1 hit, the L2 hit latency for an L1 miss/L2 hit, the memory
///   latency for an L2 miss), with unlimited concurrency and immediate
///   fills.
/// * [`Hierarchy::request`] is the non-blocking model: misses allocate an
///   MSHR at the missing level, memory-bound primaries queue on a
///   finite-bandwidth bus, and the caller sleeps until the returned
///   `fill_at` cycle. [`Hierarchy::step`] must be called once per cycle to
///   release completed fills and drain the commit-time store write buffer.
///
/// Both models fill tag arrays eagerly at request time (a documented
/// simplification: a later access to a line whose fill is still in flight
/// hits the tags and is treated as forwarded from the MSHR). Under the
/// all-zero degenerate [`NonBlockingConfig`], `request` produces exactly
/// the same latency, tag, and statistics stream as `access`.
///
/// # Multi-requestor operation
///
/// The hierarchy serves N cores ([`Hierarchy::new_multi`]): each core owns
/// private L1 caches and L1 MSHR files, while the L2, the L2 MSHR file, the
/// memory bus, and the commit-time store write buffer are shared. Every
/// accessor has a `*_for(core, ..)` form; the original single-core methods
/// delegate to core 0 so a one-core hierarchy is exactly the old one.
/// Traffic through the shared back side is attributed to the requesting
/// core ([`Hierarchy::mem_stats_for`]).
#[derive(Debug, Clone)]
struct CoreSide {
    l1i: Cache,
    l1d: Cache,
    l1i_mshrs: MshrFile,
    l1d_mshrs: MshrFile,
    /// This core's attribution slice. L1-side fields are authoritative;
    /// L2-MSHR / bus / write-buffer fields count only this core's share of
    /// the shared machinery. Occupancy sums of *shared* structures are kept
    /// globally and patched in by [`Hierarchy::mem_stats_for`].
    stats: MemStats,
}

impl CoreSide {
    fn new(cfg: &HierarchyConfig, nb: NonBlockingConfig) -> Self {
        CoreSide {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l1i_mshrs: MshrFile::new(nb.l1i_mshrs),
            l1d_mshrs: MshrFile::new(nb.l1d_mshrs),
            stats: MemStats::default(),
        }
    }
}

/// See the module docs: per-core private L1 front sides over a shared
/// L2 / bus / write-buffer back side.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    // Non-blocking machinery (inert under MemModel::Flat).
    nb: NonBlockingConfig,
    /// Per-core private front side (L1I/L1D caches + their MSHR files).
    cores: Vec<CoreSide>,
    // Shared back side.
    l2: Cache,
    l2_mshrs: MshrFile,
    bus: MemoryBus,
    /// FIFO of committed stores awaiting drain: `(core, thread, addr)`.
    write_buffer: VecDeque<(usize, usize, u64)>,
    memory_accesses: u64,
    /// Per-cycle occupancy samples of the shared L2 MSHR file.
    l2_mshr_occupancy_sum: u64,
    /// Per-cycle occupancy samples of the shared write buffer.
    wb_occupancy_sum: u64,
}

impl Hierarchy {
    /// Build an empty single-core hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy::new_multi(cfg, 1)
    }

    /// Build an empty hierarchy serving `n_cores` requestors: private L1s
    /// per core, shared L2 / L2 MSHRs / bus / write buffer.
    pub fn new_multi(cfg: HierarchyConfig, n_cores: usize) -> Self {
        assert!(n_cores >= 1, "a hierarchy needs at least one core");
        let nb = match cfg.model {
            MemModel::Flat => NonBlockingConfig::default(),
            MemModel::NonBlocking(nb) => nb,
        };
        Hierarchy {
            cfg,
            nb,
            cores: (0..n_cores).map(|_| CoreSide::new(&cfg, nb)).collect(),
            l2: Cache::new(cfg.l2),
            l2_mshrs: MshrFile::new(nb.l2_mshrs),
            bus: MemoryBus::new(nb.bus_cycles_per_transfer),
            write_buffer: VecDeque::new(),
            memory_accesses: 0,
            l2_mshr_occupancy_sum: 0,
            wb_occupancy_sum: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Number of cores (requestors) this hierarchy serves.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Is the hierarchy running the non-blocking model?
    pub fn is_nonblocking(&self) -> bool {
        matches!(self.cfg.model, MemModel::NonBlocking(_))
    }

    /// Perform a flat-model access from core 0 and return the added latency
    /// in cycles (0 = L1 hit).
    pub fn access(&mut self, kind: AccessKind, addr: u64) -> u32 {
        self.access_for(0, kind, addr)
    }

    /// Perform a flat-model access from `core` and return the added latency
    /// in cycles (0 = L1 hit).
    pub fn access_for(&mut self, core: usize, kind: AccessKind, addr: u64) -> u32 {
        let c = &mut self.cores[core];
        let l1 = match kind {
            AccessKind::Fetch => &mut c.l1i,
            AccessKind::Load | AccessKind::Store => &mut c.l1d,
        };
        if l1.probe(addr) {
            return 0;
        }
        // L1 miss: probe the shared L2.
        let latency = if self.l2.probe(addr) {
            self.cfg.l2_hit_latency
        } else {
            self.memory_accesses += 1;
            self.l2.fill(addr);
            self.cfg.l2_hit_latency + self.cfg.memory_latency
        };
        l1.fill(addr);
        latency
    }

    /// Would a non-blocking request of `kind` to `addr` from core 0 be
    /// accepted right now? See [`Hierarchy::admissible_for`].
    pub fn admissible(&self, kind: AccessKind, addr: u64) -> bool {
        self.admissible_for(0, kind, addr)
    }

    /// Would a non-blocking request of `kind` to `addr` from `core` be
    /// accepted right now? Non-mutating (no LRU ticks, no statistics). A
    /// request is inadmissible only when a needed MSHR file is full and the
    /// line is not already in flight there; the bus never rejects (it only
    /// queues).
    ///
    /// The answer is only guaranteed for a [`Hierarchy::request_for`] made
    /// in the same cycle, before any other request.
    pub fn admissible_for(&self, core: usize, kind: AccessKind, addr: u64) -> bool {
        let c = &self.cores[core];
        let (l1, l1_mshrs) = match kind {
            AccessKind::Fetch => (&c.l1i, &c.l1i_mshrs),
            AccessKind::Load | AccessKind::Store => (&c.l1d, &c.l1d_mshrs),
        };
        if l1.contains(addr) {
            return true;
        }
        if !l1_mshrs.can_accept(l1.line_addr(addr)) {
            return false;
        }
        if self.l2.contains(addr) {
            return true;
        }
        self.l2_mshrs.can_accept(self.l2.line_addr(addr))
    }

    /// Non-blocking access from core 0. See [`Hierarchy::request_for`].
    pub fn request(
        &mut self,
        kind: AccessKind,
        addr: u64,
        now: u64,
        injected: u64,
        waiter: Waiter,
    ) -> MemRequest {
        self.request_for(0, kind, addr, now, injected, waiter)
    }

    /// Perform a non-blocking access from `core`: probe the hierarchy,
    /// allocate or merge MSHRs for misses, queue memory-bound primaries on
    /// the shared bus, and return when the data will be available.
    /// `injected` is extra fault latency added to the completion time (it
    /// does not occupy the bus).
    ///
    /// The probe/fill sequence is identical to [`Hierarchy::access_for`],
    /// so tag state and [`HierarchyStats`] evolve the same way under both
    /// models. Callers must gate on [`Hierarchy::admissible_for`] in the
    /// same cycle; an inadmissible request panics in the MSHR file. Shared
    /// back-side traffic (L2 MSHR allocations/merges, bus transactions and
    /// queueing) is attributed to `core`.
    pub fn request_for(
        &mut self,
        core: usize,
        kind: AccessKind,
        addr: u64,
        now: u64,
        injected: u64,
        waiter: Waiter,
    ) -> MemRequest {
        let CoreSide { l1i, l1d, l1i_mshrs, l1d_mshrs, stats } = &mut self.cores[core];
        let (l1, l1_mshrs) = match kind {
            AccessKind::Fetch => (l1i, l1i_mshrs),
            AccessKind::Load | AccessKind::Store => (l1d, l1d_mshrs),
        };
        if l1.probe(addr) {
            // Tag hit — real or forwarded from an in-flight fill. A fault
            // that injects latency on a hit becomes a bare timed fill with
            // no MSHR (it can never be rejected).
            return MemRequest {
                extra: 0,
                fill_at: now + injected,
                level: HitLevel::L1,
                queue_delay: 0,
            };
        }
        let l1_line = l1.line_addr(addr);
        let (extra, level, fill_at, queue_delay);
        if self.l2.probe(addr) {
            extra = self.cfg.l2_hit_latency;
            level = HitLevel::L2;
            fill_at = now + u64::from(extra) + injected;
            queue_delay = 0;
        } else {
            self.memory_accesses += 1;
            self.l2.fill(addr);
            extra = self.cfg.l2_hit_latency + self.cfg.memory_latency;
            level = HitLevel::Memory;
            let l2_line = self.l2.line_addr(addr);
            if self.l2_mshrs.can_merge(l2_line) {
                // Secondary miss at L2: no new bus transaction. The merged
                // request is timed by its own probe, so the degenerate
                // configuration stays flat-identical.
                fill_at = now + u64::from(extra) + injected;
                queue_delay = 0;
                stats.l2_mshr.merges += 1;
            } else {
                let (start, delay) = self.bus.enqueue(now);
                fill_at = start + u64::from(extra) + injected;
                queue_delay = delay;
                stats.l2_mshr.allocs += 1;
                stats.bus.transactions += 1;
                stats.bus.queue_delay_sum += delay;
            }
            self.l2_mshrs.allocate_or_merge(l2_line, fill_at, waiter);
        }
        l1_mshrs.allocate_or_merge(l1_line, fill_at, waiter);
        match kind {
            AccessKind::Fetch => stats.l1i_mshr = l1_mshrs.stats(),
            AccessKind::Load | AccessKind::Store => stats.l1d_mshr = l1_mshrs.stats(),
        }
        l1.fill(addr);
        MemRequest { extra, fill_at, level, queue_delay }
    }

    /// Can a committed store be accepted right now? Always true in instant
    /// or unlimited write-buffer configurations.
    pub fn wb_can_push(&self) -> bool {
        self.nb.write_buffer_entries == 0
            || self.write_buffer.len() < self.nb.write_buffer_entries as usize
    }

    /// Retire a committed store from core 0. See
    /// [`Hierarchy::push_store_for`].
    pub fn push_store(&mut self, thread: usize, addr: u64, now: u64) -> Option<StoreDrain> {
        self.push_store_for(0, thread, addr, now)
    }

    /// Retire a committed store from `core`. In the degenerate
    /// configuration (no entries, no drain limit) the store writes into the
    /// cache instantly — same cycle, same call site as the flat model — and
    /// its attribution is returned immediately. Otherwise it is queued in
    /// the shared write buffer and drained by [`Hierarchy::step`]. Callers
    /// must gate on [`Hierarchy::wb_can_push`].
    pub fn push_store_for(
        &mut self,
        core: usize,
        thread: usize,
        addr: u64,
        now: u64,
    ) -> Option<StoreDrain> {
        if self.nb.write_buffer_entries == 0 && self.nb.write_buffer_drain_per_cycle == 0 {
            // Instant drain. Must happen here, not in step(): commit runs
            // before issue within a cycle, and deferring the cache
            // mutation would reorder it against same-cycle loads.
            let extra = self.access_for(core, AccessKind::Store, addr);
            let _ = now;
            return Some(StoreDrain {
                core,
                thread,
                level: HitLevel::from_flat_extra(extra, self.cfg.l2_hit_latency),
            });
        }
        assert!(self.wb_can_push(), "store pushed into a full write buffer");
        self.write_buffer.push_back((core, thread, addr));
        self.cores[core].stats.wb_enqueued += 1;
        None
    }

    /// Advance the non-blocking machinery one cycle: release MSHR entries
    /// whose fills completed by `now` (every core's L1 files plus the
    /// shared L2 file), drain the shared store write buffer (up to the
    /// configured rate, stopping at the first store whose miss is
    /// inadmissible at its own core), and sample occupancies. Returns the
    /// per-core / per-thread attribution of stores drained this cycle.
    pub fn step(&mut self, now: u64) -> Vec<StoreDrain> {
        // Fill completions free MSHR entries before new work claims them.
        // The simulator schedules its own wakeups analytically, so the
        // waiter lists are dropped here.
        for c in &mut self.cores {
            let _ = c.l1i_mshrs.pop_due(now);
            let _ = c.l1d_mshrs.pop_due(now);
        }
        let _ = self.l2_mshrs.pop_due(now);
        let mut drained = Vec::new();
        let max_drain = match self.nb.write_buffer_drain_per_cycle {
            0 => usize::MAX,
            n => n as usize,
        };
        while drained.len() < max_drain {
            let Some(&(core, thread, addr)) = self.write_buffer.front() else { break };
            if !self.admissible_for(core, AccessKind::Store, addr) {
                break;
            }
            let req = self.request_for(
                core,
                AccessKind::Store,
                addr,
                now,
                0,
                Waiter { thread, token: addr },
            );
            drained.push(StoreDrain { core, thread, level: req.level });
            self.write_buffer.pop_front();
            self.cores[core].stats.wb_drained += 1;
        }
        for c in &mut self.cores {
            c.stats.l1i_mshr_occupancy_sum += c.l1i_mshrs.in_flight() as u64;
            c.stats.l1d_mshr_occupancy_sum += c.l1d_mshrs.in_flight() as u64;
        }
        self.l2_mshr_occupancy_sum += self.l2_mshrs.in_flight() as u64;
        self.wb_occupancy_sum += self.write_buffer.len() as u64;
        drained
    }

    /// The earliest cycle any in-flight MSHR fill (at any level, any core)
    /// completes, if one is outstanding. Non-mutating; bounds the
    /// idle-cycle fast-forward's skip window.
    pub fn next_fill_at(&self) -> Option<u64> {
        self.cores
            .iter()
            .flat_map(|c| [c.l1i_mshrs.next_fill_at(), c.l1d_mshrs.next_fill_at()])
            .chain([self.l2_mshrs.next_fill_at()])
            .flatten()
            .min()
    }

    /// The earliest future cycle at which the non-blocking machinery can
    /// change state on its own: the next MSHR fill at any level, or
    /// `now + 1` when the write buffer holds a store it can drain next
    /// cycle. A *stuck* write buffer (see [`Hierarchy::wb_head_stuck`])
    /// contributes nothing of its own — it can only move after a fill
    /// frees an MSHR, and the fill time already bounds the window. This
    /// is the hierarchy's entry in the event-driven loop's calendar.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        let fill = self.next_fill_at();
        if !self.write_buffer.is_empty() && !self.wb_head_stuck() {
            return Some(fill.map_or(now + 1, |c| c.min(now + 1)));
        }
        fill
    }

    /// Is the write buffer non-empty with a head store that cannot drain
    /// (its miss is inadmissible at its own core — the MSHR file it needs
    /// is full)? Such a store stays exactly where it is until an in-flight
    /// fill frees an entry, so cycles spent behind it are replicas: the
    /// drain loop in [`Hierarchy::step`] stops at the head without mutating
    /// anything. A full MSHR file implies in-flight entries, so
    /// [`Hierarchy::next_fill_at`] is always `Some` when this holds.
    pub fn wb_head_stuck(&self) -> bool {
        self.write_buffer
            .front()
            .is_some_and(|&(core, _, addr)| !self.admissible_for(core, AccessKind::Store, addr))
    }

    /// Account `k` skipped idle cycles into the per-cycle occupancy sums
    /// that [`Hierarchy::step`] would have sampled — the in-flight MSHR
    /// population and write-buffer length are constant across cycles in
    /// which `step` releases nothing and drains nothing, so the samples are
    /// exactly `occupancy × k`.
    pub fn account_idle_cycles(&mut self, k: u64) {
        for c in &mut self.cores {
            c.stats.l1i_mshr_occupancy_sum += c.l1i_mshrs.in_flight() as u64 * k;
            c.stats.l1d_mshr_occupancy_sum += c.l1d_mshrs.in_flight() as u64 * k;
        }
        self.l2_mshr_occupancy_sum += self.l2_mshrs.in_flight() as u64 * k;
        self.wb_occupancy_sum += self.write_buffer.len() as u64 * k;
    }

    /// Stores parked in the shared commit-side write buffer. Cheap
    /// idle-detection probe.
    pub fn wb_len(&self) -> usize {
        self.write_buffer.len()
    }

    /// Total in-flight MSHR entries across all levels and cores. Cheap
    /// idle-detection probe.
    pub fn mshr_in_flight_total(&self) -> usize {
        self.cores.iter().map(|c| c.l1i_mshrs.in_flight() + c.l1d_mshrs.in_flight()).sum::<usize>()
            + self.l2_mshrs.in_flight()
    }

    /// Would a load of `addr` hit in core 0's L1 D-cache right now?
    /// Non-mutating.
    pub fn l1d_would_hit(&self, addr: u64) -> bool {
        self.l1d_would_hit_for(0, addr)
    }

    /// Would a load of `addr` hit in `core`'s L1 D-cache right now?
    /// Non-mutating.
    pub fn l1d_would_hit_for(&self, core: usize, addr: u64) -> bool {
        self.cores[core].l1d.contains(addr)
    }

    /// Evict the line containing `addr` from core 0's L1 of `kind`. See
    /// [`Hierarchy::evict_l1_for`].
    pub fn evict_l1(&mut self, kind: AccessKind, addr: u64) -> bool {
        self.evict_l1_for(0, kind, addr)
    }

    /// Evict the line containing `addr` from `core`'s L1 of `kind` (the
    /// shared L2 keeps its copy, so the next access pays an L2 hit, not a
    /// memory round trip). Returns whether a line was actually evicted.
    /// Used by fault injection to model a spurious single-line loss.
    pub fn evict_l1_for(&mut self, core: usize, kind: AccessKind, addr: u64) -> bool {
        let c = &mut self.cores[core];
        match kind {
            AccessKind::Fetch => c.l1i.invalidate(addr),
            AccessKind::Load | AccessKind::Store => c.l1d.invalidate(addr),
        }
    }

    /// Statistics for every level, as seen from core 0 (the shared L2 and
    /// memory counters are whole-hierarchy).
    pub fn stats(&self) -> HierarchyStats {
        self.stats_for(0)
    }

    /// Statistics for every level as seen from `core`: that core's private
    /// L1s plus the shared L2 and memory-access counters.
    pub fn stats_for(&self, core: usize) -> HierarchyStats {
        HierarchyStats {
            l1i: self.cores[core].l1i.stats(),
            l1d: self.cores[core].l1d.stats(),
            l2: self.l2.stats(),
            memory_accesses: self.memory_accesses,
        }
    }

    /// Aggregate statistics of the non-blocking machinery across all cores
    /// (all zero under `Flat`). On a one-core hierarchy this is identical
    /// to [`Hierarchy::mem_stats_for`]`(0)`.
    pub fn mem_stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for c in &self.cores {
            let s = &c.stats;
            total.l1i_mshr.allocs += s.l1i_mshr.allocs;
            total.l1i_mshr.merges += s.l1i_mshr.merges;
            total.l1d_mshr.allocs += s.l1d_mshr.allocs;
            total.l1d_mshr.merges += s.l1d_mshr.merges;
            total.l2_mshr.allocs += s.l2_mshr.allocs;
            total.l2_mshr.merges += s.l2_mshr.merges;
            total.bus.transactions += s.bus.transactions;
            total.bus.queue_delay_sum += s.bus.queue_delay_sum;
            total.l1i_mshr_occupancy_sum += s.l1i_mshr_occupancy_sum;
            total.l1d_mshr_occupancy_sum += s.l1d_mshr_occupancy_sum;
            total.wb_enqueued += s.wb_enqueued;
            total.wb_drained += s.wb_drained;
        }
        total.l2_mshr_occupancy_sum = self.l2_mshr_occupancy_sum;
        total.wb_occupancy_sum = self.wb_occupancy_sum;
        total
    }

    /// Statistics of the non-blocking machinery attributed to `core`:
    /// L1-side counters are the core's own, shared-side counters (L2 MSHR,
    /// bus, write buffer) count only this core's traffic, and occupancy
    /// sums of the shared structures are the global per-cycle samples.
    pub fn mem_stats_for(&self, core: usize) -> MemStats {
        let mut s = self.cores[core].stats;
        s.l2_mshr_occupancy_sum = self.l2_mshr_occupancy_sum;
        s.wb_occupancy_sum = self.wb_occupancy_sum;
        s
    }

    /// Occupancy snapshot for deadlock-diagnosis reports, as seen from
    /// core 0.
    pub fn snapshot(&self) -> MemSnapshot {
        self.snapshot_for(0)
    }

    /// Occupancy snapshot for deadlock-diagnosis reports: `core`'s private
    /// L1 MSHR files plus the shared L2 MSHRs, bus, and write buffer.
    pub fn snapshot_for(&self, core: usize) -> MemSnapshot {
        let c = &self.cores[core];
        MemSnapshot {
            l1i_mshrs_in_flight: c.l1i_mshrs.in_flight(),
            l1i_mshr_capacity: c.l1i_mshrs.capacity(),
            l1d_mshrs_in_flight: c.l1d_mshrs.in_flight(),
            l1d_mshr_capacity: c.l1d_mshrs.capacity(),
            l2_mshrs_in_flight: self.l2_mshrs.in_flight(),
            l2_mshr_capacity: self.l2_mshrs.capacity(),
            bus_next_free: self.bus.next_free(),
            bus_cycles_per_transfer: self.bus.cycles_per_transfer(),
            wb_occupancy: self.write_buffer.len(),
            wb_capacity: self.nb.write_buffer_entries,
        }
    }

    /// Clear counters but keep cache contents and in-flight miss state
    /// (for warm-up handling: outstanding misses are machine state, not
    /// statistics).
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.l1i.reset_stats();
            c.l1d.reset_stats();
            c.l1i_mshrs.reset_stats();
            c.l1d_mshrs.reset_stats();
            c.stats = MemStats::default();
        }
        self.l2.reset_stats();
        self.memory_accesses = 0;
        self.l2_mshrs.reset_stats();
        self.bus.reset_stats();
        self.l2_mshr_occupancy_sum = 0;
        self.wb_occupancy_sum = 0;
    }

    /// Invalidate all levels, drop in-flight miss and write-buffer state,
    /// and clear counters.
    pub fn flush(&mut self) {
        for c in &mut self.cores {
            c.l1i.flush();
            c.l1d.flush();
            c.l1i_mshrs = MshrFile::new(self.nb.l1i_mshrs);
            c.l1d_mshrs = MshrFile::new(self.nb.l1d_mshrs);
        }
        self.l2.flush();
        self.l2_mshrs = MshrFile::new(self.nb.l2_mshrs);
        self.bus = MemoryBus::new(self.nb.bus_cycles_per_transfer);
        self.write_buffer.clear();
        self.reset_stats();
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Hierarchy::new(HierarchyConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_load_costs_l2_plus_memory() {
        let mut h = Hierarchy::default();
        let lat = h.access(AccessKind::Load, 0x10_0000);
        assert_eq!(lat, 10 + 150);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn warm_load_is_free() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x10_0000);
        let lat = h.access(AccessKind::Load, 0x10_0000);
        assert_eq!(lat, 0);
        assert_eq!(h.stats().l1d.hits, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = HierarchyConfig {
            // Tiny L1D: 2 sets x 1 way x 64B.
            l1d: CacheConfig::new(128, 1, 64),
            ..HierarchyConfig::paper()
        };
        let mut h = Hierarchy::new(cfg);
        h.access(AccessKind::Load, 0x0000); // cold: L2+mem
        h.access(AccessKind::Load, 0x0080); // same L1 set, evicts 0x0
        let lat = h.access(AccessKind::Load, 0x0000);
        assert_eq!(lat, 10, "should hit in L2 after L1 eviction");
    }

    #[test]
    fn fetch_and_load_use_separate_l1s() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Fetch, 0x4000);
        // The same address as a load must still miss L1D (but hit L2).
        let lat = h.access(AccessKind::Load, 0x4000);
        assert_eq!(lat, 10);
    }

    #[test]
    fn stores_allocate_in_l1d() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Store, 0x8000);
        assert_eq!(h.access(AccessKind::Load, 0x8000), 0);
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x0);
        h.access(AccessKind::Load, 0x0);
        h.access(AccessKind::Fetch, 0x0);
        let s = h.stats();
        assert_eq!(s.l1d.accesses(), 2);
        assert_eq!(s.l1i.accesses(), 1);
        assert_eq!(s.l2.accesses(), 2); // one per L1 miss
    }

    #[test]
    fn evict_l1_costs_an_l2_hit_not_a_memory_trip() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x123456); // cold fill of L1D and L2
        assert!(h.evict_l1(AccessKind::Load, 0x123456));
        assert_eq!(h.access(AccessKind::Load, 0x123456), 10, "L2 retains the line");
        assert!(!h.evict_l1(AccessKind::Fetch, 0x123456), "L1I never held it");
    }

    #[test]
    fn flush_restores_cold_behaviour() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x123456);
        h.flush();
        assert_eq!(h.access(AccessKind::Load, 0x123456), 160);
    }

    #[test]
    fn l1d_would_hit_is_side_effect_free() {
        let mut h = Hierarchy::default();
        assert!(!h.l1d_would_hit(0x77_0000));
        let before = h.stats();
        let _ = h.l1d_would_hit(0x77_0000);
        assert_eq!(h.stats(), before);
        h.access(AccessKind::Load, 0x77_0000);
        assert!(h.l1d_would_hit(0x77_0000));
    }

    // --- non-blocking model ---

    fn nb_cfg(nb: NonBlockingConfig) -> HierarchyConfig {
        HierarchyConfig { model: MemModel::NonBlocking(nb), ..HierarchyConfig::paper() }
    }

    fn w0() -> Waiter {
        Waiter { thread: 0, token: 0 }
    }

    #[test]
    fn degenerate_request_matches_flat_access_stream() {
        let mut flat =
            Hierarchy::new(HierarchyConfig { model: MemModel::Flat, ..Default::default() });
        let mut nb = Hierarchy::new(nb_cfg(NonBlockingConfig::default()));
        let accesses = [
            (AccessKind::Load, 0x10_0000u64),
            (AccessKind::Load, 0x10_0000),
            (AccessKind::Fetch, 0x4000),
            (AccessKind::Load, 0x4000),
            (AccessKind::Store, 0x8000),
            (AccessKind::Load, 0x8000),
        ];
        for (cycle, &(kind, addr)) in accesses.iter().enumerate() {
            let now = cycle as u64 * 7;
            let extra = flat.access(kind, addr);
            assert!(nb.admissible(kind, addr));
            let req = nb.request(kind, addr, now, 0, w0());
            assert_eq!(req.extra, extra, "degenerate extra must match flat for {kind:?} {addr:#x}");
            assert_eq!(req.fill_at, now + u64::from(extra));
            assert_eq!(req.queue_delay, 0);
        }
        assert_eq!(flat.stats(), nb.stats(), "tag statistics must evolve identically");
    }

    #[test]
    fn finite_bus_queues_memory_primaries() {
        let nb = NonBlockingConfig { bus_cycles_per_transfer: 20, ..Default::default() };
        let mut h = Hierarchy::new(nb_cfg(nb));
        // Two cold misses to different L2 lines in the same cycle: the
        // second queues behind the first.
        let a = h.request(AccessKind::Load, 0x10_0000, 5, 0, w0());
        let b = h.request(AccessKind::Load, 0x20_0000, 5, 0, w0());
        assert_eq!(a.fill_at, 5 + 160);
        assert_eq!(a.queue_delay, 0);
        assert_eq!(b.fill_at, 25 + 160);
        assert_eq!(b.queue_delay, 20);
        assert_eq!(h.mem_stats().bus.transactions, 2);
        assert_eq!(h.mem_stats().bus.queue_delay_sum, 20);
    }

    #[test]
    fn l2_hits_skip_the_bus() {
        let nb = NonBlockingConfig { bus_cycles_per_transfer: 50, ..Default::default() };
        let cfg = HierarchyConfig {
            l1d: CacheConfig::new(128, 1, 64),
            model: MemModel::NonBlocking(nb),
            ..HierarchyConfig::paper()
        };
        let mut h = Hierarchy::new(cfg);
        h.request(AccessKind::Load, 0x0000, 0, 0, w0());
        // Same L1D set, different L2 line: evicts 0x0 from L1D only.
        h.request(AccessKind::Load, 0x0200, 0, 0, w0());
        let req = h.request(AccessKind::Load, 0x0000, 400, 0, w0());
        assert_eq!(req.level, HitLevel::L2);
        assert_eq!(req.fill_at, 410, "an L2 hit never waits for the bus");
        assert_eq!(h.mem_stats().bus.transactions, 2, "only the two cold misses used the bus");
    }

    #[test]
    fn full_l1d_mshrs_make_misses_inadmissible_until_fill() {
        let nb = NonBlockingConfig { l1d_mshrs: 1, ..Default::default() };
        let mut h = Hierarchy::new(nb_cfg(nb));
        assert!(h.admissible(AccessKind::Load, 0x10_0000));
        let req = h.request(AccessKind::Load, 0x10_0000, 0, 0, w0());
        assert!(
            !h.admissible(AccessKind::Load, 0x20_0000),
            "one MSHR, one miss in flight: a new line must stall"
        );
        assert!(
            h.admissible(AccessKind::Load, 0x10_0000),
            "the in-flight line itself stays admissible (tag forward)"
        );
        h.step(req.fill_at);
        assert!(h.admissible(AccessKind::Load, 0x20_0000), "the fill freed the entry");
    }

    #[test]
    fn instant_write_buffer_attributes_and_writes_through() {
        let mut h = Hierarchy::new(nb_cfg(NonBlockingConfig::default()));
        let drain = h.push_store(1, 0x8000, 3).expect("degenerate write buffer is instant");
        assert_eq!(drain, StoreDrain { core: 0, thread: 1, level: HitLevel::Memory });
        assert_eq!(h.access(AccessKind::Load, 0x8000), 0, "store allocated into L1D");
        assert_eq!(h.mem_stats().wb_enqueued, 0);
    }

    #[test]
    fn finite_write_buffer_queues_and_drains_at_rate() {
        let nb = NonBlockingConfig {
            write_buffer_entries: 2,
            write_buffer_drain_per_cycle: 1,
            ..Default::default()
        };
        let mut h = Hierarchy::new(nb_cfg(nb));
        assert!(h.push_store(0, 0x1000, 0).is_none());
        assert!(h.push_store(1, 0x2000, 0).is_none());
        assert!(!h.wb_can_push(), "two entries, two stores queued");
        let d1 = h.step(1);
        assert_eq!(d1.len(), 1, "drain rate is one store per cycle");
        assert_eq!(d1[0].thread, 0, "FIFO order");
        assert!(h.wb_can_push());
        let d2 = h.step(2);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].thread, 1);
        assert_eq!(h.mem_stats().wb_enqueued, 2);
        assert_eq!(h.mem_stats().wb_drained, 2);
    }

    #[test]
    fn drain_stalls_on_inadmissible_store_miss() {
        let nb = NonBlockingConfig { l1d_mshrs: 1, write_buffer_entries: 4, ..Default::default() };
        let mut h = Hierarchy::new(nb_cfg(nb));
        // Occupy the only L1D MSHR with a load miss completing at 160.
        let req = h.request(AccessKind::Load, 0x10_0000, 0, 0, w0());
        h.push_store(0, 0x20_0000, 0);
        assert!(h.step(1).is_empty(), "store miss cannot allocate an MSHR yet");
        assert_eq!(h.snapshot().wb_occupancy, 1);
        let drained = h.step(req.fill_at);
        assert_eq!(drained.len(), 1, "fill freed the MSHR; the store drains");
    }

    #[test]
    fn secondary_l2_miss_merges_without_second_bus_transaction() {
        let nb = NonBlockingConfig { bus_cycles_per_transfer: 30, ..Default::default() };
        // Tiny L1D so the line leaves L1 while the L2 line is in flight;
        // L2 keeps lines resident, so evict via a fresh hierarchy trick:
        // use two addresses in the same 512-byte L2 line but different
        // 64-byte L1D lines.
        let cfg = HierarchyConfig {
            l1d: CacheConfig::new(128, 1, 64),
            model: MemModel::NonBlocking(nb),
            ..HierarchyConfig::paper()
        };
        let mut h = Hierarchy::new(cfg);
        let a = h.request(AccessKind::Load, 0x10_0000, 0, 0, w0());
        assert_eq!(a.level, HitLevel::Memory);
        // 0x10_0040: same L2 line (512B), different L1D line (64B). The L2
        // probe hits (eager fill), so this is an L2 hit, not a merge...
        let b = h.request(AccessKind::Load, 0x10_0040, 0, 0, w0());
        assert_eq!(b.level, HitLevel::L2, "eager L2 tag fill forwards the in-flight line");
        assert_eq!(h.mem_stats().bus.transactions, 1);
        assert_eq!(h.mem_stats().l1d_mshr.allocs, 2);
    }

    #[test]
    fn mshr_merge_keeps_entry_until_last_fill() {
        let nb = NonBlockingConfig { l1d_mshrs: 1, ..Default::default() };
        let cfg = HierarchyConfig {
            l1d: CacheConfig::new(128, 1, 64),
            model: MemModel::NonBlocking(nb),
            ..HierarchyConfig::paper()
        };
        let mut h = Hierarchy::new(cfg);
        let a = h.request(AccessKind::Load, 0x0000, 0, 0, w0());
        // Evict 0x0 from L1D while its MSHR is still in flight, then
        // re-request it: the tag misses, but the line merges onto the
        // in-flight entry (no second allocation).
        h.evict_l1(AccessKind::Load, 0x0000);
        assert!(h.admissible(AccessKind::Load, 0x0000));
        let b = h.request(AccessKind::Load, 0x0000, 10, 0, w0());
        assert_eq!(b.level, HitLevel::L2, "L2 retains the eagerly filled line");
        assert_eq!(h.mem_stats().l1d_mshr.allocs, 1);
        assert_eq!(h.mem_stats().l1d_mshr.merges, 1);
        let _ = a;
        assert_eq!(h.snapshot().l1d_mshrs_in_flight, 1);
    }

    #[test]
    fn reset_stats_keeps_in_flight_state() {
        let nb = NonBlockingConfig { l1d_mshrs: 2, ..Default::default() };
        let mut h = Hierarchy::new(nb_cfg(nb));
        h.request(AccessKind::Load, 0x10_0000, 0, 0, w0());
        h.reset_stats();
        assert_eq!(h.mem_stats(), MemStats::default());
        assert_eq!(h.snapshot().l1d_mshrs_in_flight, 1, "in-flight misses are machine state");
    }

    // --- multi-requestor operation ---

    #[test]
    fn cores_have_private_l1s_but_share_the_l2() {
        let mut h = Hierarchy::new_multi(HierarchyConfig::paper(), 2);
        assert_eq!(h.num_cores(), 2);
        assert_eq!(h.access_for(0, AccessKind::Load, 0x10_0000), 160, "cold on core 0");
        assert_eq!(
            h.access_for(1, AccessKind::Load, 0x10_0000),
            10,
            "core 1 misses its private L1D but hits the shared L2"
        );
        assert_eq!(h.access_for(0, AccessKind::Load, 0x10_0000), 0, "core 0 L1D retains it");
        assert_eq!(h.stats_for(0).l1d.accesses(), 2);
        assert_eq!(h.stats_for(1).l1d.accesses(), 1);
        assert_eq!(h.stats_for(1).memory_accesses, 1, "memory traffic is whole-hierarchy");
    }

    #[test]
    fn shared_bus_queues_across_cores_with_per_core_attribution() {
        let nb = NonBlockingConfig { bus_cycles_per_transfer: 20, ..Default::default() };
        let mut h = Hierarchy::new_multi(nb_cfg(nb), 2);
        let a = h.request_for(0, AccessKind::Load, 0x10_0000, 5, 0, w0());
        let b = h.request_for(1, AccessKind::Load, 0x20_0000, 5, 0, w0());
        assert_eq!(a.queue_delay, 0);
        assert_eq!(b.queue_delay, 20, "core 1's miss queues behind core 0's on the shared bus");
        assert_eq!(h.mem_stats_for(0).bus.transactions, 1);
        assert_eq!(h.mem_stats_for(1).bus.transactions, 1);
        assert_eq!(h.mem_stats_for(0).bus.queue_delay_sum, 0);
        assert_eq!(h.mem_stats_for(1).bus.queue_delay_sum, 20);
        assert_eq!(h.mem_stats().bus.transactions, 2, "aggregate sums the per-core shares");
    }

    #[test]
    fn per_core_l1_mshrs_do_not_contend() {
        let nb = NonBlockingConfig { l1d_mshrs: 1, ..Default::default() };
        let mut h = Hierarchy::new_multi(nb_cfg(nb), 2);
        let _ = h.request_for(0, AccessKind::Load, 0x10_0000, 0, 0, w0());
        assert!(
            !h.admissible_for(0, AccessKind::Load, 0x20_0000),
            "core 0's single L1D MSHR is occupied"
        );
        assert!(
            h.admissible_for(1, AccessKind::Load, 0x20_0000),
            "core 1's private MSHR file is empty"
        );
    }

    #[test]
    fn write_buffer_drains_attribute_to_the_owning_core() {
        let nb = NonBlockingConfig {
            write_buffer_entries: 4,
            write_buffer_drain_per_cycle: 2,
            ..Default::default()
        };
        let mut h = Hierarchy::new_multi(nb_cfg(nb), 2);
        assert!(h.push_store_for(1, 0, 0x1000, 0).is_none());
        assert!(h.push_store_for(0, 2, 0x2000, 0).is_none());
        let d = h.step(1);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].core, d[0].thread), (1, 0), "FIFO order, core attribution intact");
        assert_eq!((d[1].core, d[1].thread), (0, 2));
        assert_eq!(h.mem_stats_for(1).wb_enqueued, 1);
        assert_eq!(h.mem_stats_for(0).wb_enqueued, 1);
        assert_eq!(h.mem_stats().wb_drained, 2);
    }

    #[test]
    fn one_core_multi_constructor_matches_the_legacy_single_core_api() {
        let nb = NonBlockingConfig { bus_cycles_per_transfer: 8, ..Default::default() };
        let mut a = Hierarchy::new(nb_cfg(nb));
        let mut b = Hierarchy::new_multi(nb_cfg(nb), 1);
        for (i, addr) in [0x10_0000u64, 0x20_0000, 0x10_0000, 0x4000].into_iter().enumerate() {
            let now = i as u64 * 3;
            let ra = a.request(AccessKind::Load, addr, now, 0, w0());
            let rb = b.request_for(0, AccessKind::Load, addr, now, 0, w0());
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats(), b.stats_for(0));
        assert_eq!(a.mem_stats(), b.mem_stats_for(0));
        assert_eq!(a.mem_stats(), b.mem_stats());
    }

    #[test]
    fn default_model_is_the_degenerate_nonblocking_one() {
        // `HierarchyConfig.model` is `#[serde(default)]`, so configs
        // serialized before the field existed resolve to this default —
        // which must be timing-identical to the old flat model.
        assert!(matches!(MemModel::default(), MemModel::NonBlocking(nb) if nb.is_degenerate()));
        assert_eq!(HierarchyConfig::paper().model, MemModel::default());
    }
}
