//! The two-level cache hierarchy plus main memory.

use crate::cache::{Cache, CacheConfig, CacheStats};
use serde::{Deserialize, Serialize};

/// What kind of access is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch (L1I → L2 → memory).
    Fetch,
    /// Data load (L1D → L2 → memory).
    Load,
    /// Data store (write-allocate into L1D at commit time).
    Store,
}

/// Latencies and geometries of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L2 hit latency in cycles (charged on an L1 miss that hits in L2).
    pub l2_hit_latency: u32,
    /// Main-memory access latency in cycles (charged on an L2 miss).
    pub memory_latency: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper()
    }
}

impl HierarchyConfig {
    /// Table 1 of the paper: L1I 64KB/2w/128B, L1D 32KB/4w/256B,
    /// L2 2MB/8w/512B with a 10-cycle hit, memory 150 cycles.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(64 * 1024, 2, 128),
            l1d: CacheConfig::new(32 * 1024, 4, 256),
            l2: CacheConfig::new(2 * 1024 * 1024, 8, 512),
            l2_hit_latency: 10,
            memory_latency: 150,
        }
    }
}

/// Aggregate statistics over all levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// L1 data-cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Number of accesses that went all the way to memory.
    pub memory_accesses: u64,
}

/// The cache hierarchy shared by all SMT thread contexts.
///
/// `access` returns the *additional* latency of an access beyond the fixed
/// L1 pipeline latency that the execution model already charges: 0 for an
/// L1 hit, the L2 hit latency for an L1 miss/L2 hit, and the memory latency
/// for an L2 miss. Fills happen immediately (no MSHR modelling), matching
/// the SimpleScalar-style latency model M-Sim inherits.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    memory_accesses: u64,
}

impl Hierarchy {
    /// Build an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            cfg,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            memory_accesses: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Perform an access and return the added latency in cycles
    /// (0 = L1 hit).
    pub fn access(&mut self, kind: AccessKind, addr: u64) -> u32 {
        let (l1, cfg) = match kind {
            AccessKind::Fetch => (&mut self.l1i, &self.cfg),
            AccessKind::Load | AccessKind::Store => (&mut self.l1d, &self.cfg),
        };
        if l1.probe(addr) {
            return 0;
        }
        // L1 miss: probe L2.
        let latency = if self.l2.probe(addr) {
            cfg.l2_hit_latency
        } else {
            self.memory_accesses += 1;
            self.l2.fill(addr);
            cfg.l2_hit_latency + cfg.memory_latency
        };
        l1.fill(addr);
        latency
    }

    /// Would a load of `addr` hit in the L1 D-cache right now? Non-mutating.
    pub fn l1d_would_hit(&self, addr: u64) -> bool {
        self.l1d.contains(addr)
    }

    /// Evict the line containing `addr` from the L1 of `kind` (L2 keeps its
    /// copy, so the next access pays an L2 hit, not a memory round trip).
    /// Returns whether a line was actually evicted. Used by fault injection
    /// to model a spurious single-line loss.
    pub fn evict_l1(&mut self, kind: AccessKind, addr: u64) -> bool {
        match kind {
            AccessKind::Fetch => self.l1i.invalidate(addr),
            AccessKind::Load | AccessKind::Store => self.l1d.invalidate(addr),
        }
    }

    /// Statistics for every level.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            memory_accesses: self.memory_accesses,
        }
    }

    /// Clear counters but keep cache contents (for warm-up handling).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.memory_accesses = 0;
    }

    /// Invalidate all levels and clear counters.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.reset_stats();
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Hierarchy::new(HierarchyConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_load_costs_l2_plus_memory() {
        let mut h = Hierarchy::default();
        let lat = h.access(AccessKind::Load, 0x10_0000);
        assert_eq!(lat, 10 + 150);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn warm_load_is_free() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x10_0000);
        let lat = h.access(AccessKind::Load, 0x10_0000);
        assert_eq!(lat, 0);
        assert_eq!(h.stats().l1d.hits, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = HierarchyConfig {
            // Tiny L1D: 2 sets x 1 way x 64B.
            l1d: CacheConfig::new(128, 1, 64),
            ..HierarchyConfig::paper()
        };
        let mut h = Hierarchy::new(cfg);
        h.access(AccessKind::Load, 0x0000); // cold: L2+mem
        h.access(AccessKind::Load, 0x0080); // same L1 set, evicts 0x0
        let lat = h.access(AccessKind::Load, 0x0000);
        assert_eq!(lat, 10, "should hit in L2 after L1 eviction");
    }

    #[test]
    fn fetch_and_load_use_separate_l1s() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Fetch, 0x4000);
        // The same address as a load must still miss L1D (but hit L2).
        let lat = h.access(AccessKind::Load, 0x4000);
        assert_eq!(lat, 10);
    }

    #[test]
    fn stores_allocate_in_l1d() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Store, 0x8000);
        assert_eq!(h.access(AccessKind::Load, 0x8000), 0);
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x0);
        h.access(AccessKind::Load, 0x0);
        h.access(AccessKind::Fetch, 0x0);
        let s = h.stats();
        assert_eq!(s.l1d.accesses(), 2);
        assert_eq!(s.l1i.accesses(), 1);
        assert_eq!(s.l2.accesses(), 2); // one per L1 miss
    }

    #[test]
    fn evict_l1_costs_an_l2_hit_not_a_memory_trip() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x123456); // cold fill of L1D and L2
        assert!(h.evict_l1(AccessKind::Load, 0x123456));
        assert_eq!(h.access(AccessKind::Load, 0x123456), 10, "L2 retains the line");
        assert!(!h.evict_l1(AccessKind::Fetch, 0x123456), "L1I never held it");
    }

    #[test]
    fn flush_restores_cold_behaviour() {
        let mut h = Hierarchy::default();
        h.access(AccessKind::Load, 0x123456);
        h.flush();
        assert_eq!(h.access(AccessKind::Load, 0x123456), 160);
    }

    #[test]
    fn l1d_would_hit_is_side_effect_free() {
        let mut h = Hierarchy::default();
        assert!(!h.l1d_would_hit(0x77_0000));
        let before = h.stats();
        let _ = h.l1d_would_hit(0x77_0000);
        assert_eq!(h.stats(), before);
        h.access(AccessKind::Load, 0x77_0000);
        assert!(h.l1d_would_hit(0x77_0000));
    }
}
