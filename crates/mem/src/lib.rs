//! Cache-hierarchy model for the SMT simulator.
//!
//! The hierarchy mirrors Table 1 of Sharkey & Ponomarev (ICPP 2006):
//!
//! * L1 I-cache: 64 KB, 2-way, 128-byte lines
//! * L1 D-cache: 32 KB, 4-way, 256-byte lines
//! * Unified L2: 2 MB, 8-way, 512-byte lines, 10-cycle hit
//! * Memory: 150-cycle access latency
//!
//! Two timing models share the tag arrays:
//!
//! * The *flat* model ([`Hierarchy::access`]): each access probes the
//!   hierarchy, updates replacement state, fills lines on the way back, and
//!   synchronously returns the number of cycles the access takes beyond the
//!   L1 pipeline latency already charged by the execution model — unlimited
//!   concurrency, no contention (the SimpleScalar-style model M-Sim
//!   inherits).
//! * The *non-blocking* model ([`Hierarchy::request`]): misses allocate an
//!   MSHR ([`mshr`]) at the missing level, secondary misses merge onto the
//!   in-flight entry, memory-bound primaries queue on a finite-bandwidth
//!   bus ([`bus`]), and committed stores drain through a write buffer. With
//!   all resource limits at 0 (unlimited) it reproduces the flat model
//!   bit-for-bit.

pub mod bus;
pub mod cache;
pub mod hierarchy;
pub mod mshr;

pub use bus::{BusStats, MemoryBus};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{
    AccessKind, Hierarchy, HierarchyConfig, HierarchyStats, HitLevel, MemModel, MemRequest,
    MemSnapshot, MemStats, NonBlockingConfig, StoreDrain,
};
pub use mshr::{Fill, MshrFile, MshrOutcome, MshrStats, Waiter};
