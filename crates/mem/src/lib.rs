//! Cache-hierarchy model for the SMT simulator.
//!
//! The hierarchy mirrors Table 1 of Sharkey & Ponomarev (ICPP 2006):
//!
//! * L1 I-cache: 64 KB, 2-way, 128-byte lines
//! * L1 D-cache: 32 KB, 4-way, 256-byte lines
//! * Unified L2: 2 MB, 8-way, 512-byte lines, 10-cycle hit
//! * Memory: 150-cycle access latency
//!
//! The model is a *latency* model: each access probes the hierarchy, updates
//! replacement state and fills lines on the way back, and returns the number
//! of cycles the access takes beyond the L1 pipeline latency already charged
//! by the execution model. Outstanding-miss tracking (MSHRs) is not
//! modelled; the original SimpleScalar cache module the paper's M-Sim builds
//! on behaves the same way.

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessKind, Hierarchy, HierarchyConfig, HierarchyStats};
