//! A single set-associative cache with true-LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `sets * ways * line_size`.
    pub size_bytes: u64,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_size: u32,
}

impl CacheConfig {
    /// Construct and validate a configuration.
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size or
    /// a capacity that does not divide evenly into sets).
    pub fn new(size_bytes: u64, ways: u32, line_size: u32) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1, "associativity must be at least 1");
        let cfg = CacheConfig { size_bytes, ways, line_size };
        let sets = cfg.num_sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "number of sets must be a power of two");
        assert_eq!(
            sets * ways as u64 * line_size as u64,
            size_bytes,
            "size must equal sets * ways * line_size"
        );
        cfg
    }

    /// Number of sets implied by the geometry.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_size as u64)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when no accesses were made.
    #[inline]
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// One way of one set: a valid tag plus an LRU stamp.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// Monotonic last-use stamp; larger = more recently used.
    lru: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// The cache stores tags only — the simulator is a timing model, so no data
/// is held. `probe` is the read path; `fill` installs a line after a miss is
/// serviced by the next level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        Cache {
            cfg,
            lines: vec![Line { tag: 0, valid: false, lru: 0 }; (sets * cfg.ways as u64) as usize],
            set_mask: sets - 1,
            line_shift: cfg.line_size.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Hit/miss counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The line address (byte address with the offset bits dropped) that
    /// `addr` falls in. MSHR files key in-flight misses by this.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.set_mask.count_ones()
    }

    #[inline]
    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let ways = self.cfg.ways as usize;
        &mut self.lines[set * ways..(set + 1) * ways]
    }

    /// Access the cache at `addr`. Returns `true` on a hit. Updates LRU
    /// state on hits and counts the access; a miss does **not** allocate —
    /// call [`Cache::fill`] once the next level has serviced it.
    pub fn probe(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        for line in self.set_slice(set) {
            if line.valid && line.tag == tag {
                line.lru = tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Non-mutating lookup: would `addr` hit right now? Does not touch LRU
    /// state or statistics. Useful for tests and occupancy inspection.
    pub fn contains(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        let ways = self.cfg.ways as usize;
        self.lines[set * ways..(set + 1) * ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Install the line containing `addr`, evicting the LRU way if the set
    /// is full. Returns the address of an evicted valid line, if any
    /// (line-aligned), so callers can model write-back traffic.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        let line_shift = self.line_shift;
        let set_bits = self.set_mask.count_ones();

        // Already present (e.g. two misses to the same line back-to-back):
        // refresh LRU and return.
        let slice = self.set_slice(set);
        if let Some(line) = slice.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            return None;
        }
        // Prefer an invalid way.
        if let Some(line) = slice.iter_mut().find(|l| !l.valid) {
            *line = Line { tag, valid: true, lru: tick };
            return None;
        }
        // Evict true-LRU.
        let victim = slice.iter_mut().min_by_key(|l| l.lru).expect("non-zero associativity");
        let evicted_addr = (victim.tag << set_bits | set as u64) << line_shift;
        *victim = Line { tag, valid: true, lru: tick };
        Some(evicted_addr)
    }

    /// Invalidate the single line containing `addr`, if present. Returns
    /// whether a line was evicted. Does not touch statistics.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        for line in self.set_slice(set) {
            if line.valid && line.tag == tag {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidate every line (e.g. between simulation runs).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }

    /// Number of currently valid lines (for occupancy assertions in tests).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = tiny();
        assert!(!c.probe(0x1000));
        c.fill(0x1000);
        assert!(c.probe(0x1000));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = tiny();
        c.fill(0x1000);
        assert!(c.probe(0x1004));
        assert!(c.probe(0x103F));
        assert!(!c.probe(0x1040)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 64B = 256B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.fill(a);
        c.fill(b);
        c.probe(a); // a is now MRU
        let evicted = c.fill(d); // must evict b
        assert_eq!(evicted, Some(b));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn fill_is_idempotent_for_present_line() {
        let mut c = tiny();
        c.fill(0x40);
        let before = c.valid_lines();
        assert_eq!(c.fill(0x40), None);
        assert_eq!(c.valid_lines(), before);
    }

    #[test]
    fn eviction_returns_line_aligned_address() {
        let mut c = tiny();
        c.fill(0x1008); // offset within line
        c.fill(0x1108);
        let evicted = c.fill(0x1208).expect("set full, must evict");
        assert_eq!(evicted % 64, 0, "evicted address must be line-aligned");
        // The evicted line must be one of the two we inserted, aligned down.
        assert!(evicted == 0x1000 || evicted == 0x1100);
    }

    #[test]
    fn invalidate_removes_only_the_target_line() {
        let mut c = tiny();
        c.fill(0x0);
        c.fill(0x40);
        assert!(c.invalidate(0x0));
        assert!(!c.contains(0x0));
        assert!(c.contains(0x40));
        assert!(!c.invalidate(0x0), "already gone");
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = tiny();
        c.fill(0x0);
        c.fill(0x40);
        assert!(c.valid_lines() > 0);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.probe(0x0));
    }

    #[test]
    fn paper_geometries_validate() {
        // L1I 64KB 2-way 128B; L1D 32KB 4-way 256B; L2 2MB 8-way 512B.
        let l1i = CacheConfig::new(64 * 1024, 2, 128);
        assert_eq!(l1i.num_sets(), 256);
        let l1d = CacheConfig::new(32 * 1024, 4, 256);
        assert_eq!(l1d.num_sets(), 32);
        let l2 = CacheConfig::new(2 * 1024 * 1024, 8, 512);
        assert_eq!(l2.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        let _ = CacheConfig::new(512, 2, 48);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.probe(0x0);
        c.fill(0x0);
        c.probe(0x0);
        c.probe(0x0);
        let s = c.stats();
        assert_eq!(s.accesses(), 3);
        assert!((s.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.probe(i * 64);
            c.fill(i * 64);
        }
        assert!(c.valid_lines() <= 8, "4 sets x 2 ways = 8 lines max");
    }
}
