//! Raw event counters updated by the pipeline model.

use serde::{Deserialize, Serialize};

/// Per-thread counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadCounters {
    /// Instructions fetched into the front end.
    pub fetched: u64,
    /// Instructions dispatched into the IQ (or DAB).
    pub dispatched: u64,
    /// Instructions issued to function units.
    pub issued: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted branches resolved.
    pub mispredicts: u64,
    /// Of the mispredicts, how many were wrong-direction predictions.
    pub dir_mispredicts: u64,
    /// Of the mispredicts, how many were correct-direction taken branches
    /// whose target the BTB could not supply.
    pub btb_mispredicts: u64,
    /// Cycles this thread had instructions waiting but was blocked by the
    /// non-dispatchable-instruction condition.
    pub ndi_blocked_cycles: u64,
    /// Cycles this thread had instructions waiting but the IQ was full.
    pub iq_full_cycles: u64,
    /// Cycles this thread's rename was blocked (and nothing renamed)
    /// because its reorder buffer was full.
    pub rob_full_cycles: u64,
    /// Cycles this thread's rename was blocked (and nothing renamed)
    /// because its load/store queue was full.
    pub lsq_full_cycles: u64,
    /// Sum over issued instructions of (issue cycle − dispatch cycle):
    /// total IQ residency, for the paper's mean-residency statistic.
    pub iq_residency_sum: u64,
    /// Instructions that entered the IQ *out of program order* (dispatched
    /// past at least one older, not-yet-dispatched instruction) — the HDIs
    /// actually exploited by the out-of-order dispatch mechanism.
    pub hdis_dispatched: u64,
    /// Of `hdis_dispatched`, how many depended (directly or transitively,
    /// within the dispatch buffer) on an older NDI they bypassed.
    pub hdis_dependent_on_ndi: u64,
    /// Instructions entering the IQ with 0/1/2 non-ready sources.
    pub dispatched_by_nonready: [u64; 3],
    /// Instructions placed in the deadlock-avoidance buffer.
    pub dab_dispatches: u64,
    /// Sum of this thread's IQ occupancy sampled once per cycle.
    pub iq_occupancy_sum: u64,
    /// Synthetic wrong-path instructions fetched after mispredictions
    /// (never committed; squashed at branch resolution).
    pub wrong_path_fetched: u64,
    /// Data-side L1D hits attributed to this thread (loads at issue plus
    /// committed stores when they drain into the cache).
    #[serde(default)]
    pub l1d_hits: u64,
    /// Data-side L1D misses attributed to this thread.
    #[serde(default)]
    pub l1d_misses: u64,
    /// Of the L1D misses, those serviced by the unified L2.
    #[serde(default)]
    pub l2_hits: u64,
    /// Of the L1D misses, those that went to main memory.
    #[serde(default)]
    pub l2_misses: u64,
    /// Sum over cycles with at least one of this thread's memory misses
    /// outstanding of the number outstanding — numerator of the thread's
    /// memory-level parallelism.
    #[serde(default)]
    pub mlp_sum: u64,
    /// Cycles with at least one of this thread's memory misses outstanding
    /// — denominator of the thread's memory-level parallelism.
    #[serde(default)]
    pub mem_busy_cycles: u64,
    /// Ready loads whose issue was deferred because the L1D MSHR file (or
    /// the L2's, for a memory-bound miss) could not accept the miss.
    #[serde(default)]
    pub mshr_full_defers: u64,
    /// Cycles this thread's fetch stalled because the I-side miss could not
    /// allocate an MSHR.
    #[serde(default)]
    pub fetch_mshr_stall_cycles: u64,
    /// Cycles this thread's commit was blocked by a full store write
    /// buffer.
    #[serde(default)]
    pub wb_full_stall_cycles: u64,
    /// Cycles the MLP-GATE fetch policy held this thread's fetch while a
    /// long-latency miss was outstanding.
    #[serde(default)]
    pub mlp_gate_cycles: u64,
    /// ILP-YIELD scoring windows closed for this thread (denominator of
    /// the mean per-window yield).
    #[serde(default)]
    pub yield_windows: u64,
    /// Sum of the per-window issue-slot yields over `yield_windows`.
    #[serde(default)]
    pub yield_sum: u64,
}

/// `field += (field - before) * k`: replay the last cycle's delta `k` more
/// times. The idle-cycle fast-forward uses this after proving (by counter
/// equality across one representative cycle) that every per-cycle delta is
/// constant while the machine idles.
fn rep(field: &mut u64, before: u64, k: u64) {
    *field += (*field - before) * k;
}

impl ThreadCounters {
    /// Replicate the per-cycle deltas relative to `before` `k` more times
    /// (see [`SimCounters::replicate_idle_deltas`]). The exhaustive
    /// destructuring is deliberate: adding a counter field without deciding
    /// its fast-forward story must break this function's compilation.
    pub fn replicate_idle_deltas(&mut self, before: &ThreadCounters, k: u64) {
        let ThreadCounters {
            fetched,
            dispatched,
            issued,
            committed,
            branches,
            mispredicts,
            dir_mispredicts,
            btb_mispredicts,
            ndi_blocked_cycles,
            iq_full_cycles,
            rob_full_cycles,
            lsq_full_cycles,
            iq_residency_sum,
            hdis_dispatched,
            hdis_dependent_on_ndi,
            dispatched_by_nonready,
            dab_dispatches,
            iq_occupancy_sum,
            wrong_path_fetched,
            l1d_hits,
            l1d_misses,
            l2_hits,
            l2_misses,
            mlp_sum,
            mem_busy_cycles,
            mshr_full_defers,
            fetch_mshr_stall_cycles,
            wb_full_stall_cycles,
            mlp_gate_cycles,
            yield_windows,
            yield_sum,
        } = before;
        rep(&mut self.fetched, *fetched, k);
        rep(&mut self.dispatched, *dispatched, k);
        rep(&mut self.issued, *issued, k);
        rep(&mut self.committed, *committed, k);
        rep(&mut self.branches, *branches, k);
        rep(&mut self.mispredicts, *mispredicts, k);
        rep(&mut self.dir_mispredicts, *dir_mispredicts, k);
        rep(&mut self.btb_mispredicts, *btb_mispredicts, k);
        rep(&mut self.ndi_blocked_cycles, *ndi_blocked_cycles, k);
        rep(&mut self.iq_full_cycles, *iq_full_cycles, k);
        rep(&mut self.rob_full_cycles, *rob_full_cycles, k);
        rep(&mut self.lsq_full_cycles, *lsq_full_cycles, k);
        rep(&mut self.iq_residency_sum, *iq_residency_sum, k);
        rep(&mut self.hdis_dispatched, *hdis_dispatched, k);
        rep(&mut self.hdis_dependent_on_ndi, *hdis_dependent_on_ndi, k);
        for (cur, &prev) in self.dispatched_by_nonready.iter_mut().zip(dispatched_by_nonready) {
            rep(cur, prev, k);
        }
        rep(&mut self.dab_dispatches, *dab_dispatches, k);
        rep(&mut self.iq_occupancy_sum, *iq_occupancy_sum, k);
        rep(&mut self.wrong_path_fetched, *wrong_path_fetched, k);
        rep(&mut self.l1d_hits, *l1d_hits, k);
        rep(&mut self.l1d_misses, *l1d_misses, k);
        rep(&mut self.l2_hits, *l2_hits, k);
        rep(&mut self.l2_misses, *l2_misses, k);
        rep(&mut self.mlp_sum, *mlp_sum, k);
        rep(&mut self.mem_busy_cycles, *mem_busy_cycles, k);
        rep(&mut self.mshr_full_defers, *mshr_full_defers, k);
        rep(&mut self.fetch_mshr_stall_cycles, *fetch_mshr_stall_cycles, k);
        rep(&mut self.wb_full_stall_cycles, *wb_full_stall_cycles, k);
        // The gate state is constant across a proven-idle stretch (its
        // release is a calendar stop), so the per-cycle gated delta
        // replays; yield windows only roll on fetch-eligible cycles, so
        // their idle delta is provably zero and `rep` is a no-op.
        rep(&mut self.mlp_gate_cycles, *mlp_gate_cycles, k);
        rep(&mut self.yield_windows, *yield_windows, k);
        rep(&mut self.yield_sum, *yield_sum, k);
    }

    /// Field-wise accumulate `other` into `self` — the per-thread unit of
    /// the multi-core rollup. The exhaustive destructuring is deliberate:
    /// adding a counter field without deciding its rollup story must break
    /// this function's compilation.
    pub fn absorb(&mut self, other: &ThreadCounters) {
        let ThreadCounters {
            fetched,
            dispatched,
            issued,
            committed,
            branches,
            mispredicts,
            dir_mispredicts,
            btb_mispredicts,
            ndi_blocked_cycles,
            iq_full_cycles,
            rob_full_cycles,
            lsq_full_cycles,
            iq_residency_sum,
            hdis_dispatched,
            hdis_dependent_on_ndi,
            dispatched_by_nonready,
            dab_dispatches,
            iq_occupancy_sum,
            wrong_path_fetched,
            l1d_hits,
            l1d_misses,
            l2_hits,
            l2_misses,
            mlp_sum,
            mem_busy_cycles,
            mshr_full_defers,
            fetch_mshr_stall_cycles,
            wb_full_stall_cycles,
            mlp_gate_cycles,
            yield_windows,
            yield_sum,
        } = other;
        self.fetched += fetched;
        self.dispatched += dispatched;
        self.issued += issued;
        self.committed += committed;
        self.branches += branches;
        self.mispredicts += mispredicts;
        self.dir_mispredicts += dir_mispredicts;
        self.btb_mispredicts += btb_mispredicts;
        self.ndi_blocked_cycles += ndi_blocked_cycles;
        self.iq_full_cycles += iq_full_cycles;
        self.rob_full_cycles += rob_full_cycles;
        self.lsq_full_cycles += lsq_full_cycles;
        self.iq_residency_sum += iq_residency_sum;
        self.hdis_dispatched += hdis_dispatched;
        self.hdis_dependent_on_ndi += hdis_dependent_on_ndi;
        for (cur, prev) in self.dispatched_by_nonready.iter_mut().zip(dispatched_by_nonready) {
            *cur += prev;
        }
        self.dab_dispatches += dab_dispatches;
        self.iq_occupancy_sum += iq_occupancy_sum;
        self.wrong_path_fetched += wrong_path_fetched;
        self.l1d_hits += l1d_hits;
        self.l1d_misses += l1d_misses;
        self.l2_hits += l2_hits;
        self.l2_misses += l2_misses;
        self.mlp_sum += mlp_sum;
        self.mem_busy_cycles += mem_busy_cycles;
        self.mshr_full_defers += mshr_full_defers;
        self.fetch_mshr_stall_cycles += fetch_mshr_stall_cycles;
        self.wb_full_stall_cycles += wb_full_stall_cycles;
        self.mlp_gate_cycles += mlp_gate_cycles;
        self.yield_windows += yield_windows;
        self.yield_sum += yield_sum;
    }

    /// Branch misprediction rate over committed branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Mean cycles an instruction of this thread spent in the IQ before
    /// issuing.
    pub fn mean_iq_residency(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.iq_residency_sum as f64 / self.issued as f64
        }
    }

    /// Total per-stage stall cycles attributed to this thread: dispatch
    /// blocked by the NDI condition or a full IQ, plus rename blocked by a
    /// full ROB or LSQ. Each individual counter is bumped at most once per
    /// cycle, and the two rename reasons are mutually exclusive, so every
    /// component is bounded by the elapsed cycle count.
    pub fn dispatch_stall_cycles(&self) -> u64 {
        self.ndi_blocked_cycles + self.iq_full_cycles + self.rob_full_cycles + self.lsq_full_cycles
    }

    /// Memory-level parallelism: mean outstanding memory misses over the
    /// cycles in which this thread had at least one outstanding.
    pub fn mlp(&self) -> f64 {
        if self.mem_busy_cycles == 0 {
            0.0
        } else {
            self.mlp_sum as f64 / self.mem_busy_cycles as f64
        }
    }

    /// Data-side L1D miss rate attributed to this thread.
    pub fn l1d_miss_rate(&self) -> f64 {
        let accesses = self.l1d_hits + self.l1d_misses;
        if accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / accesses as f64
        }
    }

    /// Mean issue-slot yield per closed ILP-YIELD scoring window (zero
    /// when the policy never rolled a window for this thread).
    pub fn mean_yield(&self) -> f64 {
        if self.yield_windows == 0 {
            0.0
        } else {
            self.yield_sum as f64 / self.yield_windows as f64
        }
    }
}

/// Injected-fault and recovery counters (fault-injection runs only; all
/// zero in normal operation). `wakeup_drops` vs `wakeup_redeliveries`
/// tells how many suppressed broadcasts were later re-delivered; together
/// with `watchdog_flushes` these show which mechanism absorbed each stall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Wakeup broadcasts suppressed on the IQ tag bus.
    pub wakeup_drops: u64,
    /// Delayed re-broadcasts actually delivered to the IQ.
    pub wakeup_redeliveries: u64,
    /// Issue grants revoked (instruction deferred a cycle).
    pub issue_defers: u64,
    /// Loads charged spurious extra miss latency.
    pub cache_extra_injected: u64,
    /// Forced predictor (gShare + BTB) flushes.
    pub predictor_flushes_injected: u64,
}

impl FaultCounters {
    /// Replicate the per-cycle deltas relative to `before` `k` more times
    /// (see [`SimCounters::replicate_idle_deltas`]).
    pub fn replicate_idle_deltas(&mut self, before: &FaultCounters, k: u64) {
        let FaultCounters {
            wakeup_drops,
            wakeup_redeliveries,
            issue_defers,
            cache_extra_injected,
            predictor_flushes_injected,
        } = before;
        rep(&mut self.wakeup_drops, *wakeup_drops, k);
        rep(&mut self.wakeup_redeliveries, *wakeup_redeliveries, k);
        rep(&mut self.issue_defers, *issue_defers, k);
        rep(&mut self.cache_extra_injected, *cache_extra_injected, k);
        rep(&mut self.predictor_flushes_injected, *predictor_flushes_injected, k);
    }

    /// Field-wise accumulate `other` into `self` (multi-core rollup).
    pub fn absorb(&mut self, other: &FaultCounters) {
        let FaultCounters {
            wakeup_drops,
            wakeup_redeliveries,
            issue_defers,
            cache_extra_injected,
            predictor_flushes_injected,
        } = other;
        self.wakeup_drops += wakeup_drops;
        self.wakeup_redeliveries += wakeup_redeliveries;
        self.issue_defers += issue_defers;
        self.cache_extra_injected += cache_extra_injected;
        self.predictor_flushes_injected += predictor_flushes_injected;
    }

    /// Total injected perturbations (re-deliveries are recovery actions,
    /// not injections, and are excluded).
    pub fn total_injected(&self) -> u64 {
        self.wakeup_drops
            + self.issue_defers
            + self.cache_extra_injected
            + self.predictor_flushes_injected
    }
}

/// Non-blocking memory-model counters (all zero under the flat model and
/// largely zero under the degenerate non-blocking configuration, whose
/// unlimited resources never queue or reject). Synced once per cycle from
/// the hierarchy's own statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemCounters {
    /// L1I MSHR entries allocated (primary fetch misses).
    pub l1i_mshr_allocs: u64,
    /// Secondary fetch misses merged onto an in-flight L1I entry.
    pub l1i_mshr_merges: u64,
    /// L1D MSHR entries allocated (primary load/store misses).
    pub l1d_mshr_allocs: u64,
    /// Secondary load/store misses merged onto an in-flight L1D entry.
    pub l1d_mshr_merges: u64,
    /// L2 MSHR entries allocated (memory-bound primaries).
    pub l2_mshr_allocs: u64,
    /// Secondary L2 misses merged onto an in-flight L2 entry.
    pub l2_mshr_merges: u64,
    /// Transactions that went over the memory bus.
    pub bus_transactions: u64,
    /// Total cycles transactions waited for the bus.
    pub bus_queue_delay_sum: u64,
    /// Sum over cycles of in-flight L1I MSHR entries.
    pub l1i_mshr_occupancy_sum: u64,
    /// Sum over cycles of in-flight L1D MSHR entries.
    pub l1d_mshr_occupancy_sum: u64,
    /// Sum over cycles of in-flight L2 MSHR entries.
    pub l2_mshr_occupancy_sum: u64,
    /// Stores accepted into the commit-time write buffer.
    pub wb_enqueued: u64,
    /// Stores drained from the write buffer into the cache.
    pub wb_drained: u64,
    /// Sum over cycles of write-buffer occupancy.
    pub wb_occupancy_sum: u64,
}

impl MemCounters {
    /// Mean bus queue delay per transaction.
    pub fn mean_bus_queue_delay(&self) -> f64 {
        if self.bus_transactions == 0 {
            0.0
        } else {
            self.bus_queue_delay_sum as f64 / self.bus_transactions as f64
        }
    }
}

/// Whole-simulation counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimCounters {
    /// Elapsed cycles.
    pub cycles: u64,
    /// One entry per hardware thread context.
    pub threads: Vec<ThreadCounters>,
    /// Cycles in which *every* thread that had instructions waiting to
    /// dispatch was blocked by the non-dispatchable condition and nothing
    /// was dispatched — the paper's "percentage of cycles when the dispatch
    /// of all threads stalls due to the conditions imposed by 2OP_BLOCK".
    pub all_threads_ndi_stall_cycles: u64,
    /// Cycles in which at least one thread had instructions waiting to
    /// dispatch (denominator companion for stall percentages, and for
    /// sanity checks).
    pub cycles_with_dispatch_work: u64,
    /// Samples of the pile-up statistic: every cycle a thread's dispatch is
    /// blocked by an NDI at the buffer head, the instructions queued behind
    /// it are classified. `pileup_total` counts them all,
    /// `pileup_hdis` counts those that were dispatchable (≤1 non-ready
    /// source) — the paper's "almost 90% of instructions piled up behind
    /// the NDIs can be classified as HDIs".
    pub pileup_total: u64,
    /// See [`SimCounters::pileup_total`].
    pub pileup_hdis: u64,
    /// Sum of IQ occupancy sampled once per cycle.
    pub iq_occupancy_sum: u64,
    /// Number of pipeline flushes triggered by the watchdog timer.
    pub watchdog_flushes: u64,
    /// Number of partial flushes triggered by the FLUSH fetch policy.
    pub fetch_policy_flushes: u64,
    /// Injected-fault and recovery counters (see [`FaultCounters`]).
    #[serde(default)]
    pub faults: FaultCounters,
    /// Non-blocking memory-model counters (see [`MemCounters`]).
    #[serde(default)]
    pub mem: MemCounters,
}

impl SimCounters {
    /// Create counters for `n` threads.
    pub fn new(n: usize) -> Self {
        SimCounters { threads: vec![ThreadCounters::default(); n], ..Default::default() }
    }

    /// Total committed instructions across threads.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Replay the per-cycle counter deltas relative to the snapshot
    /// `before` (taken one cycle earlier) `k` more times: every `u64`
    /// counter becomes what `k` further identical cycles would have left
    /// it at. The idle-cycle fast-forward calls this after establishing
    /// that the machine state driving those deltas cannot change during
    /// the skipped window, so the replay is exact, not approximate.
    ///
    /// `mem` is deliberately **not** replicated: it mirrors the memory
    /// hierarchy's own statistics, which the simulator re-syncs after
    /// advancing the hierarchy's idle accounting.
    pub fn replicate_idle_deltas(&mut self, before: &SimCounters, k: u64) {
        let SimCounters {
            cycles,
            threads,
            all_threads_ndi_stall_cycles,
            cycles_with_dispatch_work,
            pileup_total,
            pileup_hdis,
            iq_occupancy_sum,
            watchdog_flushes,
            fetch_policy_flushes,
            faults,
            mem: _,
        } = before;
        rep(&mut self.cycles, *cycles, k);
        debug_assert_eq!(self.threads.len(), threads.len());
        for (t, b) in self.threads.iter_mut().zip(threads) {
            t.replicate_idle_deltas(b, k);
        }
        rep(&mut self.all_threads_ndi_stall_cycles, *all_threads_ndi_stall_cycles, k);
        rep(&mut self.cycles_with_dispatch_work, *cycles_with_dispatch_work, k);
        rep(&mut self.pileup_total, *pileup_total, k);
        rep(&mut self.pileup_hdis, *pileup_hdis, k);
        rep(&mut self.iq_occupancy_sum, *iq_occupancy_sum, k);
        rep(&mut self.watchdog_flushes, *watchdog_flushes, k);
        rep(&mut self.fetch_policy_flushes, *fetch_policy_flushes, k);
        self.faults.replicate_idle_deltas(faults, k);
    }

    /// Fold one core's counters into a machine-level aggregate whose
    /// `threads` vector is indexed by *global* thread id: `rows[i]` names
    /// the aggregate row core-local thread `i` lands on (`None` for sealed
    /// placeholder slots left behind by migration). Cores share one clock,
    /// so `cycles` takes the max rather than the sum. `mem` is deliberately
    /// **not** folded: each core's view mirrors the *shared* hierarchy's
    /// occupancy statistics, so summing the views would double-count them —
    /// the caller syncs the aggregate straight from the hierarchy instead.
    pub fn absorb_core(&mut self, core: &SimCounters, rows: &[Option<usize>]) {
        let SimCounters {
            cycles,
            threads,
            all_threads_ndi_stall_cycles,
            cycles_with_dispatch_work,
            pileup_total,
            pileup_hdis,
            iq_occupancy_sum,
            watchdog_flushes,
            fetch_policy_flushes,
            faults,
            mem: _,
        } = core;
        self.cycles = self.cycles.max(*cycles);
        for (i, b) in threads.iter().enumerate() {
            if let Some(g) = rows.get(i).copied().flatten() {
                self.threads[g].absorb(b);
            }
        }
        self.all_threads_ndi_stall_cycles += all_threads_ndi_stall_cycles;
        self.cycles_with_dispatch_work += cycles_with_dispatch_work;
        self.pileup_total += pileup_total;
        self.pileup_hdis += pileup_hdis;
        self.iq_occupancy_sum += iq_occupancy_sum;
        self.watchdog_flushes += watchdog_flushes;
        self.fetch_policy_flushes += fetch_policy_flushes;
        self.faults.absorb(faults);
    }

    /// Total dispatched instructions across threads.
    pub fn total_dispatched(&self) -> u64 {
        self.threads.iter().map(|t| t.dispatched).sum()
    }

    /// Throughput IPC across all threads.
    pub fn throughput_ipc(&self) -> f64 {
        crate::metrics::throughput_ipc(self.total_committed(), self.cycles)
    }

    /// Per-thread IPCs.
    pub fn per_thread_ipc(&self) -> Vec<f64> {
        self.threads
            .iter()
            .map(|t| if self.cycles == 0 { 0.0 } else { t.committed as f64 / self.cycles as f64 })
            .collect()
    }

    /// Fraction of all cycles in which every thread with dispatch work was
    /// NDI-blocked (the paper's §3 statistic: 43%/17%/7% at 64 entries for
    /// 2/3/4-thread workloads under 2OP_BLOCK).
    pub fn all_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.all_threads_ndi_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of piled-up instructions that were hidden dispatchable
    /// instructions (paper: ~90%).
    pub fn hdi_pileup_fraction(&self) -> f64 {
        if self.pileup_total == 0 {
            0.0
        } else {
            self.pileup_hdis as f64 / self.pileup_total as f64
        }
    }

    /// Fraction of OOO-dispatched HDIs that depended on a bypassed NDI
    /// (paper: ~10%).
    pub fn hdi_ndi_dependence_fraction(&self) -> f64 {
        let hdis: u64 = self.threads.iter().map(|t| t.hdis_dispatched).sum();
        if hdis == 0 {
            0.0
        } else {
            let dep: u64 = self.threads.iter().map(|t| t.hdis_dependent_on_ndi).sum();
            dep as f64 / hdis as f64
        }
    }

    /// Mean IQ residency (cycles from dispatch to issue) across threads.
    pub fn mean_iq_residency(&self) -> f64 {
        let issued: u64 = self.threads.iter().map(|t| t.issued).sum();
        if issued == 0 {
            0.0
        } else {
            let sum: u64 = self.threads.iter().map(|t| t.iq_residency_sum).sum();
            sum as f64 / issued as f64
        }
    }

    /// Mean IQ occupancy per cycle.
    pub fn mean_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ipc() {
        let mut c = SimCounters::new(2);
        c.cycles = 100;
        c.threads[0].committed = 120;
        c.threads[1].committed = 80;
        assert_eq!(c.total_committed(), 200);
        assert!((c.throughput_ipc() - 2.0).abs() < 1e-12);
        assert_eq!(c.per_thread_ipc(), vec![1.2, 0.8]);
    }

    #[test]
    fn stall_fraction() {
        let mut c = SimCounters::new(2);
        c.cycles = 200;
        c.all_threads_ndi_stall_cycles = 86;
        assert!((c.all_stall_fraction() - 0.43).abs() < 1e-12);
    }

    #[test]
    fn hdi_fractions() {
        let mut c = SimCounters::new(1);
        c.pileup_total = 100;
        c.pileup_hdis = 90;
        assert!((c.hdi_pileup_fraction() - 0.9).abs() < 1e-12);
        c.threads[0].hdis_dispatched = 50;
        c.threads[0].hdis_dependent_on_ndi = 5;
        assert!((c.hdi_ndi_dependence_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn residency_means() {
        let mut c = SimCounters::new(2);
        c.threads[0].issued = 10;
        c.threads[0].iq_residency_sum = 210;
        c.threads[1].issued = 10;
        c.threads[1].iq_residency_sum = 90;
        assert!((c.mean_iq_residency() - 15.0).abs() < 1e-12);
        assert!((c.threads[0].mean_iq_residency() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_guards() {
        let c = SimCounters::new(1);
        assert_eq!(c.throughput_ipc(), 0.0);
        assert_eq!(c.all_stall_fraction(), 0.0);
        assert_eq!(c.mean_iq_residency(), 0.0);
        assert_eq!(c.mean_iq_occupancy(), 0.0);
        assert_eq!(c.hdi_pileup_fraction(), 0.0);
        assert_eq!(c.hdi_ndi_dependence_fraction(), 0.0);
    }

    #[test]
    fn thread_counter_rates() {
        let t = ThreadCounters { branches: 100, mispredicts: 7, ..Default::default() };
        assert!((t.mispredict_rate() - 0.07).abs() < 1e-12);
        let t0 = ThreadCounters::default();
        assert_eq!(t0.mispredict_rate(), 0.0);
        assert_eq!(t0.mean_iq_residency(), 0.0);
    }

    #[test]
    fn mlp_and_miss_rate_helpers() {
        let t = ThreadCounters {
            l1d_hits: 90,
            l1d_misses: 10,
            l2_hits: 6,
            l2_misses: 4,
            mlp_sum: 30,
            mem_busy_cycles: 12,
            ..Default::default()
        };
        assert!((t.mlp() - 2.5).abs() < 1e-12);
        assert!((t.l1d_miss_rate() - 0.1).abs() < 1e-12);
        let t0 = ThreadCounters::default();
        assert_eq!(t0.mlp(), 0.0);
        assert_eq!(t0.l1d_miss_rate(), 0.0);
    }

    #[test]
    fn mem_counter_bus_delay_mean() {
        let m = MemCounters { bus_transactions: 4, bus_queue_delay_sum: 10, ..Default::default() };
        assert!((m.mean_bus_queue_delay() - 2.5).abs() < 1e-12);
        assert_eq!(MemCounters::default().mean_bus_queue_delay(), 0.0);
    }

    #[test]
    fn mean_yield_helper() {
        let t = ThreadCounters { yield_windows: 4, yield_sum: 10, ..Default::default() };
        assert!((t.mean_yield() - 2.5).abs() < 1e-12);
        assert_eq!(ThreadCounters::default().mean_yield(), 0.0);
    }

    #[test]
    fn fetch_policy_counters_replicate_and_absorb() {
        let before = ThreadCounters {
            mlp_gate_cycles: 5,
            yield_windows: 3,
            yield_sum: 9,
            ..Default::default()
        };
        // One representative cycle gated the thread once and rolled no
        // window; replaying it k=10 more times must scale only the gate.
        let mut cur = before.clone();
        cur.mlp_gate_cycles += 1;
        cur.replicate_idle_deltas(&before, 10);
        assert_eq!(cur.mlp_gate_cycles, 16);
        assert_eq!(cur.yield_windows, 3);
        assert_eq!(cur.yield_sum, 9);
        let mut sum = ThreadCounters::default();
        sum.absorb(&before);
        sum.absorb(&before);
        assert_eq!(sum.mlp_gate_cycles, 10);
        assert_eq!(sum.yield_windows, 6);
        assert_eq!(sum.yield_sum, 18);
    }

    #[test]
    fn dispatch_stall_cycles_sums_all_attributions() {
        let t = ThreadCounters {
            ndi_blocked_cycles: 10,
            iq_full_cycles: 20,
            rob_full_cycles: 5,
            lsq_full_cycles: 2,
            ..Default::default()
        };
        assert_eq!(t.dispatch_stall_cycles(), 37);
        assert_eq!(ThreadCounters::default().dispatch_stall_cycles(), 0);
    }
}
