//! Metrics and statistics for the SMT simulator.
//!
//! The paper evaluates designs with two headline metrics:
//!
//! * **throughput IPC** — total committed instructions across all threads
//!   divided by cycles;
//! * **fairness** — the *harmonic mean of weighted IPCs* of Luo et al.,
//!   where each thread's SMT-mode IPC is divided by its single-threaded IPC
//!   on the same machine.
//!
//! Results across multi-programmed mixes are summarized with harmonic means,
//! matching the paper's "harmonic means across the simulated multithreaded
//! mixes".

pub mod counters;
pub mod metrics;

pub use counters::{FaultCounters, MemCounters, SimCounters, ThreadCounters};
pub use metrics::{
    fairness, fairness_hmean_weighted_ipc, geometric_mean, harmonic_mean, speedup, throughput_ipc,
    Fairness,
};
