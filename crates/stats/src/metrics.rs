//! Aggregate metric functions.

/// Harmonic mean of a sequence of positive values.
///
/// Returns `None` for an empty input or if any value is non-positive
/// (the harmonic mean is undefined there).
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let sum_recip: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / sum_recip)
}

/// Geometric mean of a sequence of positive values.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Total throughput IPC: committed instructions across all threads per cycle.
pub fn throughput_ipc(total_commits: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        total_commits as f64 / cycles as f64
    }
}

/// Outcome of the fairness metric on *valid* inputs: either a value, or
/// the meaningful degenerate case of a thread measured at exactly zero
/// IPC (starved — the harmonic mean's limit is 0, and reporting it as
/// "metric undefined" used to hide precisely the runs where fairness
/// matters most).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fairness {
    /// Harmonic mean of the per-thread weighted IPCs.
    Value(f64),
    /// At least one thread committed nothing in the measurement window.
    Starved,
}

impl Fairness {
    /// The metric as a number: `Starved` is the harmonic mean's limit, 0.
    pub fn as_f64(self) -> f64 {
        match self {
            Fairness::Value(v) => v,
            Fairness::Starved => 0.0,
        }
    }
}

/// The paper's fairness metric: harmonic mean of weighted IPCs,
/// `hmean_i(ipc_smt[i] / ipc_single[i])` (Luo et al. [8], Tullsen [16]).
///
/// Distinguishes *invalid inputs* (`None`: empty or mismatched slices, a
/// non-positive or non-finite single-thread baseline, a negative or
/// non-finite SMT IPC) from the *valid but degenerate* measurement of a
/// starved thread (`Some(Fairness::Starved)`: some SMT IPC is exactly 0).
pub fn fairness(ipc_smt: &[f64], ipc_single: &[f64]) -> Option<Fairness> {
    if ipc_smt.len() != ipc_single.len() || ipc_smt.is_empty() {
        return None;
    }
    if ipc_single.iter().any(|&a| a <= 0.0 || !a.is_finite()) {
        return None;
    }
    if ipc_smt.iter().any(|&s| s < 0.0 || !s.is_finite()) {
        return None;
    }
    if ipc_smt.contains(&0.0) {
        return Some(Fairness::Starved);
    }
    let weighted: Vec<f64> = ipc_smt.iter().zip(ipc_single).map(|(&s, &a)| s / a).collect();
    harmonic_mean(&weighted).map(Fairness::Value)
}

/// [`fairness`] flattened to a number: `Starved` reports as `Some(0.0)`,
/// invalid inputs stay `None`. Kept for callers that plot or tabulate the
/// metric directly.
pub fn fairness_hmean_weighted_ipc(ipc_smt: &[f64], ipc_single: &[f64]) -> Option<f64> {
    fairness(ipc_smt, ipc_single).map(Fairness::as_f64)
}

/// Relative speedup of `new` over `baseline` (1.0 = parity).
pub fn speedup(new: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        new / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[2.0]), Some(2.0));
        let h = harmonic_mean(&[1.0, 2.0]).unwrap();
        assert!((h - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn harmonic_le_geometric() {
        let vals = [0.5, 1.3, 2.7, 0.9];
        let h = harmonic_mean(&vals).unwrap();
        let g = geometric_mean(&vals).unwrap();
        assert!(h <= g + 1e-12, "AM-GM-HM inequality violated: {h} > {g}");
    }

    #[test]
    fn throughput_ipc_basics() {
        assert_eq!(throughput_ipc(100, 50), 2.0);
        assert_eq!(throughput_ipc(100, 0), 0.0);
    }

    #[test]
    fn fairness_is_one_for_identical_performance() {
        let f = fairness_hmean_weighted_ipc(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_penalizes_starved_thread() {
        // Thread 1 at full speed, thread 2 starved to 10%:
        // hmean(1.0, 0.1) ≈ 0.18 — far below the arithmetic mean of 0.55.
        let f = fairness_hmean_weighted_ipc(&[1.0, 0.1], &[1.0, 1.0]).unwrap();
        assert!(f < 0.2, "fairness should be dominated by the slow thread, got {f}");
    }

    #[test]
    fn fairness_rejects_degenerate_inputs() {
        assert_eq!(fairness_hmean_weighted_ipc(&[], &[]), None);
        assert_eq!(fairness_hmean_weighted_ipc(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(fairness_hmean_weighted_ipc(&[1.0], &[0.0]), None);
        assert_eq!(fairness(&[1.0], &[f64::NAN]), None);
        assert_eq!(fairness(&[f64::INFINITY], &[1.0]), None);
        assert_eq!(fairness(&[-0.5], &[1.0]), None);
    }

    #[test]
    fn fairness_reports_a_starved_thread_as_zero_not_undefined() {
        // Regression: a thread measured at exactly 0 IPC is a *valid*
        // observation — total starvation, the worst possible fairness —
        // and used to be conflated with invalid inputs (`None`), hiding
        // the runs where the metric matters most.
        assert_eq!(fairness(&[1.0, 0.0], &[1.0, 1.0]), Some(Fairness::Starved));
        assert_eq!(fairness_hmean_weighted_ipc(&[1.0, 0.0], &[1.0, 1.0]), Some(0.0));
        // A merely slow thread still yields a value.
        match fairness(&[1.0, 0.1], &[1.0, 1.0]) {
            Some(Fairness::Value(v)) => assert!(v > 0.0 && v < 0.2),
            other => panic!("expected a small value, got {other:?}"),
        }
        assert_eq!(Fairness::Starved.as_f64(), 0.0);
    }

    #[test]
    fn speedup_basics() {
        assert_eq!(speedup(2.0, 1.0), 2.0);
        assert_eq!(speedup(1.0, 2.0), 0.5);
        assert_eq!(speedup(1.0, 0.0), 0.0);
    }
}
