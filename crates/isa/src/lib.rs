//! Instruction-set and machine model for the SMT simulator.
//!
//! This crate defines the *architectural* vocabulary shared by every other
//! crate in the workspace:
//!
//! * [`OpClass`] — the operation classes of the simulated RISC ISA (an
//!   Alpha-like machine with at most two register sources and one register
//!   destination per instruction, the property the 2OP_BLOCK scheduler of
//!   Sharkey & Ponomarev relies on);
//! * [`ArchReg`] — architectural registers (separate integer and
//!   floating-point files);
//! * [`TraceInst`] — one dynamic instruction as produced by a workload
//!   generator;
//! * [`MachineDesc`] — the function-unit inventory and latencies of Table 1
//!   of the paper.

pub mod inst;
pub mod machine;
pub mod op;
pub mod reg;

pub use inst::{BranchInfo, MemInfo, TraceInst};
pub use machine::{FuDesc, FuKind, MachineDesc};
pub use op::OpClass;
pub use reg::{ArchReg, RegClass, NUM_ARCH_FP, NUM_ARCH_INT};
