//! Architectural register model.
//!
//! The simulated ISA has separate integer and floating-point architectural
//! register files (32 registers each, Alpha-style). Register `r31`/`f31` is
//! the hard-wired zero register: it is always ready, never renamed, and
//! writes to it are discarded.

use serde::{Deserialize, Serialize};

/// Number of integer architectural registers (including the zero register).
pub const NUM_ARCH_INT: u8 = 32;
/// Number of floating-point architectural registers (including the zero register).
pub const NUM_ARCH_FP: u8 = 32;

/// Register file class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

/// An architectural register: a class plus an index within that class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchReg {
    /// Which register file this register belongs to.
    pub class: RegClass,
    /// Index within the register file, `0..NUM_ARCH_*`.
    pub index: u8,
}

impl ArchReg {
    /// An integer register. Panics if `index` is out of range.
    #[inline]
    pub fn int(index: u8) -> Self {
        assert!(index < NUM_ARCH_INT, "integer register index {index} out of range");
        ArchReg { class: RegClass::Int, index }
    }

    /// A floating-point register. Panics if `index` is out of range.
    #[inline]
    pub fn fp(index: u8) -> Self {
        assert!(index < NUM_ARCH_FP, "fp register index {index} out of range");
        ArchReg { class: RegClass::Fp, index }
    }

    /// The integer zero register (`r31`): always ready, never renamed.
    #[inline]
    pub fn zero_int() -> Self {
        ArchReg { class: RegClass::Int, index: NUM_ARCH_INT - 1 }
    }

    /// The floating-point zero register (`f31`).
    #[inline]
    pub fn zero_fp() -> Self {
        ArchReg { class: RegClass::Fp, index: NUM_ARCH_FP - 1 }
    }

    /// Is this one of the hard-wired zero registers?
    #[inline]
    pub fn is_zero(self) -> bool {
        match self.class {
            RegClass::Int => self.index == NUM_ARCH_INT - 1,
            RegClass::Fp => self.index == NUM_ARCH_FP - 1,
        }
    }

    /// Flat index over both register files: integer registers first.
    ///
    /// Useful for per-thread rename-table storage.
    #[inline]
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_ARCH_INT as usize + self.index as usize,
        }
    }

    /// Total number of architectural registers across both files.
    pub const FLAT_COUNT: usize = NUM_ARCH_INT as usize + NUM_ARCH_FP as usize;
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_bijective() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..NUM_ARCH_INT {
            assert!(seen.insert(ArchReg::int(i).flat_index()));
        }
        for i in 0..NUM_ARCH_FP {
            assert!(seen.insert(ArchReg::fp(i).flat_index()));
        }
        assert_eq!(seen.len(), ArchReg::FLAT_COUNT);
        assert!(seen.iter().all(|&x| x < ArchReg::FLAT_COUNT));
    }

    #[test]
    fn zero_registers() {
        assert!(ArchReg::zero_int().is_zero());
        assert!(ArchReg::zero_fp().is_zero());
        assert!(!ArchReg::int(0).is_zero());
        assert!(!ArchReg::fp(30).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_bounds_checked() {
        let _ = ArchReg::int(NUM_ARCH_INT);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_index_bounds_checked() {
        let _ = ArchReg::fp(NUM_ARCH_FP);
    }

    #[test]
    fn display_format() {
        assert_eq!(ArchReg::int(5).to_string(), "r5");
        assert_eq!(ArchReg::fp(12).to_string(), "f12");
    }
}
