//! Dynamic-instruction representation.
//!
//! Workload generators emit a stream of [`TraceInst`] values — the dynamic
//! (post-control-flow) instruction trace of one thread. The pipeline model
//! consumes these, renames the architectural registers they name, and tracks
//! them through the machine.

use crate::op::OpClass;
use crate::reg::ArchReg;
use serde::{Deserialize, Serialize};

/// Memory behaviour of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemInfo {
    /// Effective virtual address of the access.
    pub addr: u64,
    /// Access size in bytes (informational; the cache model works on lines).
    pub size: u8,
}

/// Control-flow behaviour of a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Actual (trace) outcome: taken or not taken.
    pub taken: bool,
    /// Actual target if taken.
    pub target: u64,
    /// Whether the branch is unconditional (always taken, direction trivially
    /// predictable; only the target needs the BTB).
    pub unconditional: bool,
}

/// One dynamic instruction of a thread's trace.
///
/// At most two register sources and at most one register destination — the
/// structural property that lets a 2OP_BLOCK issue queue get away with a
/// single tag comparator per entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceInst {
    /// Program counter of this instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Register sources (zero registers and `None` are always ready).
    pub srcs: [Option<ArchReg>; 2],
    /// Register destination, if any.
    pub dest: Option<ArchReg>,
    /// Memory access, for loads and stores.
    pub mem: Option<MemInfo>,
    /// Branch behaviour, for control-transfer instructions.
    pub branch: Option<BranchInfo>,
}

impl TraceInst {
    /// A simple integer ALU op `dest <- src1 op src2` at `pc`.
    pub fn alu(pc: u64, dest: ArchReg, src1: Option<ArchReg>, src2: Option<ArchReg>) -> Self {
        TraceInst {
            pc,
            op: OpClass::IntAlu,
            srcs: [src1, src2],
            dest: Some(dest),
            mem: None,
            branch: None,
        }
    }

    /// A load `dest <- [addr_base]`.
    pub fn load(pc: u64, dest: ArchReg, base: Option<ArchReg>, addr: u64) -> Self {
        TraceInst {
            pc,
            op: OpClass::Load,
            srcs: [base, None],
            dest: Some(dest),
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// A store `[addr_base] <- data`.
    pub fn store(pc: u64, data: Option<ArchReg>, base: Option<ArchReg>, addr: u64) -> Self {
        TraceInst {
            pc,
            op: OpClass::Store,
            srcs: [data, base],
            dest: None,
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// A conditional branch on `cond`.
    pub fn branch(pc: u64, cond: Option<ArchReg>, taken: bool, target: u64) -> Self {
        TraceInst {
            pc,
            op: OpClass::Branch,
            srcs: [cond, None],
            dest: None,
            mem: None,
            branch: Some(BranchInfo { taken, target, unconditional: false }),
        }
    }

    /// Number of register sources that are real (present and not the zero
    /// register) — the quantity the dispatch stage counts ready bits for.
    #[inline]
    pub fn num_real_srcs(&self) -> usize {
        self.srcs.iter().filter(|s| s.map(|r| !r.is_zero()).unwrap_or(false)).count()
    }

    /// Iterator over the real (non-zero, present) source registers.
    #[inline]
    pub fn real_srcs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied().filter(|r| !r.is_zero())
    }

    /// The real destination register, if the instruction writes one.
    ///
    /// Writes to the zero register are architectural no-ops and are treated
    /// as having no destination.
    #[inline]
    pub fn real_dest(&self) -> Option<ArchReg> {
        self.dest.filter(|r| !r.is_zero())
    }

    /// Sanity-check structural invariants of the instruction.
    ///
    /// Returns an error string describing the first violated invariant, if
    /// any. Used by the workload generators' self-tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.op.is_mem() && self.mem.is_none() {
            return Err(format!("{} instruction without mem info at pc {:#x}", self.op, self.pc));
        }
        if !self.op.is_mem() && self.mem.is_some() {
            return Err(format!("{} instruction with mem info at pc {:#x}", self.op, self.pc));
        }
        if self.op.is_branch() != self.branch.is_some() {
            return Err(format!("branch info mismatch for {} at pc {:#x}", self.op, self.pc));
        }
        if self.op.is_branch() && self.dest.is_some() {
            return Err(format!("branch with destination at pc {:#x}", self.pc));
        }
        if self.op.is_store() && self.dest.is_some() {
            return Err(format!("store with destination at pc {:#x}", self.pc));
        }
        if !self.op.is_store()
            && !self.op.is_branch()
            && self.real_dest().is_none()
            && self.dest.is_none()
        {
            // Destination-less ALU ops are permitted (e.g. effectful nops),
            // but loads must produce a value.
            if self.op.is_load() {
                return Err(format!("load without destination at pc {:#x}", self.pc));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    #[test]
    fn real_src_counting_ignores_zero_and_none() {
        let i = TraceInst::alu(0, ArchReg::int(1), Some(ArchReg::int(2)), None);
        assert_eq!(i.num_real_srcs(), 1);
        let j =
            TraceInst::alu(0, ArchReg::int(1), Some(ArchReg::zero_int()), Some(ArchReg::int(3)));
        assert_eq!(j.num_real_srcs(), 1);
        let k = TraceInst::alu(0, ArchReg::int(1), Some(ArchReg::int(2)), Some(ArchReg::int(3)));
        assert_eq!(k.num_real_srcs(), 2);
    }

    #[test]
    fn real_dest_filters_zero() {
        let i = TraceInst::alu(0, ArchReg::zero_int(), Some(ArchReg::int(2)), None);
        assert_eq!(i.real_dest(), None);
        let j = TraceInst::alu(0, ArchReg::int(4), None, None);
        assert_eq!(j.real_dest(), Some(ArchReg::int(4)));
    }

    #[test]
    fn constructors_validate() {
        assert!(TraceInst::alu(0, ArchReg::int(1), None, None).validate().is_ok());
        assert!(TraceInst::load(4, ArchReg::int(1), Some(ArchReg::int(2)), 0x1000)
            .validate()
            .is_ok());
        assert!(TraceInst::store(8, Some(ArchReg::int(1)), Some(ArchReg::int(2)), 0x1000)
            .validate()
            .is_ok());
        assert!(TraceInst::branch(12, Some(ArchReg::int(1)), true, 0x40).validate().is_ok());
    }

    #[test]
    fn validate_rejects_malformed() {
        let mut i = TraceInst::alu(0, ArchReg::int(1), None, None);
        i.mem = Some(MemInfo { addr: 0, size: 8 });
        assert!(i.validate().is_err());

        let mut j = TraceInst::load(0, ArchReg::int(1), None, 0);
        j.mem = None;
        assert!(j.validate().is_err());

        let mut k = TraceInst::branch(0, None, true, 0);
        k.dest = Some(ArchReg::int(1));
        assert!(k.validate().is_err());
    }

    #[test]
    fn store_has_no_dest() {
        let s = TraceInst::store(0, Some(ArchReg::int(1)), Some(ArchReg::int(2)), 0x100);
        assert_eq!(s.real_dest(), None);
        assert_eq!(s.num_real_srcs(), 2);
    }
}
