//! Function-unit inventory and latency table (Table 1 of the paper).

use crate::op::OpClass;
use serde::{Deserialize, Serialize};

/// A function-unit pool kind.
///
/// Units within one pool are interchangeable; an operation class maps to
/// exactly one pool. The pools correspond to the "Function Units and Lat"
/// row of Table 1:
///
/// * 8 integer ALUs (add 1/1)
/// * 4 integer multiply/divide units (mult 3/1, div 20/19)
/// * 4 load/store ports (2/1)
/// * 8 FP adders (2/1)
/// * 4 FP multiply/divide/sqrt units (mult 4/1, div 12/12, sqrt 24/24)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Integer ALU pool (also executes branches).
    IntAlu,
    /// Integer multiply/divide pool.
    IntMultDiv,
    /// Load/store port pool.
    LdSt,
    /// Floating-point adder pool.
    FpAdd,
    /// Floating-point multiply/divide/sqrt pool.
    FpMultDivSqrt,
}

impl FuKind {
    /// All pool kinds, in a fixed order usable as an array index.
    pub const ALL: [FuKind; 5] =
        [FuKind::IntAlu, FuKind::IntMultDiv, FuKind::LdSt, FuKind::FpAdd, FuKind::FpMultDivSqrt];

    /// Dense index of this pool kind.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMultDiv => 1,
            FuKind::LdSt => 2,
            FuKind::FpAdd => 3,
            FuKind::FpMultDivSqrt => 4,
        }
    }
}

/// Latency/occupancy descriptor for one operation class on its pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuDesc {
    /// Pool that executes this operation class.
    pub kind: FuKind,
    /// Result latency in cycles (issue → result available for dependents).
    /// For loads this is the *address-generation plus L1-hit* latency; cache
    /// misses extend it dynamically.
    pub latency: u32,
    /// Issue interval: cycles the unit stays busy before accepting another
    /// operation (1 = fully pipelined).
    pub issue_interval: u32,
}

/// The machine's function-unit inventory, Table 1 defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineDesc {
    /// Number of units in each pool, indexed by [`FuKind::index`].
    pub pool_sizes: [u32; 5],
}

impl Default for MachineDesc {
    fn default() -> Self {
        MachineDesc::paper()
    }
}

impl MachineDesc {
    /// The configuration of Table 1: 8 IntAlu, 4 IntMult/Div, 4 Ld/St ports,
    /// 8 FpAdd, 4 FpMult/Div/Sqrt.
    pub fn paper() -> Self {
        MachineDesc { pool_sizes: [8, 4, 4, 8, 4] }
    }

    /// Units available in the pool executing `kind`.
    #[inline]
    pub fn pool_size(&self, kind: FuKind) -> u32 {
        self.pool_sizes[kind.index()]
    }

    /// Latency/occupancy descriptor for an operation class (Table 1).
    ///
    /// The load descriptor covers address generation and the L1 hit path
    /// ("4 Load/Store (2/1)"); the dynamic memory latency from the cache
    /// hierarchy is added by the execution model.
    pub fn fu_desc(op: OpClass) -> FuDesc {
        match op {
            OpClass::IntAlu => FuDesc { kind: FuKind::IntAlu, latency: 1, issue_interval: 1 },
            OpClass::Branch => FuDesc { kind: FuKind::IntAlu, latency: 1, issue_interval: 1 },
            OpClass::IntMult => FuDesc { kind: FuKind::IntMultDiv, latency: 3, issue_interval: 1 },
            OpClass::IntDiv => FuDesc { kind: FuKind::IntMultDiv, latency: 20, issue_interval: 19 },
            OpClass::Load => FuDesc { kind: FuKind::LdSt, latency: 2, issue_interval: 1 },
            OpClass::Store => FuDesc { kind: FuKind::LdSt, latency: 2, issue_interval: 1 },
            OpClass::FpAdd => FuDesc { kind: FuKind::FpAdd, latency: 2, issue_interval: 1 },
            OpClass::FpMult => {
                FuDesc { kind: FuKind::FpMultDivSqrt, latency: 4, issue_interval: 1 }
            }
            OpClass::FpDiv => {
                FuDesc { kind: FuKind::FpMultDivSqrt, latency: 12, issue_interval: 12 }
            }
            OpClass::FpSqrt => {
                FuDesc { kind: FuKind::FpMultDivSqrt, latency: 24, issue_interval: 24 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pool_sizes_match_table1() {
        let m = MachineDesc::paper();
        assert_eq!(m.pool_size(FuKind::IntAlu), 8);
        assert_eq!(m.pool_size(FuKind::IntMultDiv), 4);
        assert_eq!(m.pool_size(FuKind::LdSt), 4);
        assert_eq!(m.pool_size(FuKind::FpAdd), 8);
        assert_eq!(m.pool_size(FuKind::FpMultDivSqrt), 4);
    }

    #[test]
    fn latencies_match_table1() {
        assert_eq!(MachineDesc::fu_desc(OpClass::IntAlu).latency, 1);
        assert_eq!(MachineDesc::fu_desc(OpClass::IntMult).latency, 3);
        let idiv = MachineDesc::fu_desc(OpClass::IntDiv);
        assert_eq!((idiv.latency, idiv.issue_interval), (20, 19));
        assert_eq!(MachineDesc::fu_desc(OpClass::Load).latency, 2);
        assert_eq!(MachineDesc::fu_desc(OpClass::FpAdd).latency, 2);
        assert_eq!(MachineDesc::fu_desc(OpClass::FpMult).latency, 4);
        let fdiv = MachineDesc::fu_desc(OpClass::FpDiv);
        assert_eq!((fdiv.latency, fdiv.issue_interval), (12, 12));
        let fsqrt = MachineDesc::fu_desc(OpClass::FpSqrt);
        assert_eq!((fsqrt.latency, fsqrt.issue_interval), (24, 24));
    }

    #[test]
    fn every_op_class_has_a_pool() {
        for op in OpClass::ALL {
            let d = MachineDesc::fu_desc(op);
            assert!(d.latency >= 1, "{op} latency");
            assert!(d.issue_interval >= 1, "{op} issue interval");
            assert!(MachineDesc::paper().pool_size(d.kind) > 0, "{op} pool empty");
        }
    }

    #[test]
    fn fukind_index_is_dense_and_consistent() {
        for (i, k) in FuKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn branches_use_int_alu() {
        assert_eq!(MachineDesc::fu_desc(OpClass::Branch).kind, FuKind::IntAlu);
    }
}
