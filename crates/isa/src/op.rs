//! Operation classes of the simulated ISA.

use serde::{Deserialize, Serialize};

/// The operation class of a dynamic instruction.
///
/// Classes map 1:1 onto the function-unit/latency rows of Table 1 in the
/// paper. The ISA has at most **two** register source operands per
/// instruction — the property the 2OP_BLOCK issue queue (one tag comparator
/// per entry) depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer add/logical/shift/compare. Latency 1, fully pipelined.
    IntAlu,
    /// Integer multiply. Latency 3, issue interval 1.
    IntMult,
    /// Integer divide. Latency 20, issue interval 19 (mostly unpipelined).
    IntDiv,
    /// Memory load. Address generation + cache access; latency is dynamic.
    Load,
    /// Memory store. Address generation at issue; data written at commit.
    Store,
    /// Floating-point add/sub/convert. Latency 2, pipelined.
    FpAdd,
    /// Floating-point multiply. Latency 4, issue interval 1.
    FpMult,
    /// Floating-point divide. Latency 12, issue interval 12 (unpipelined).
    FpDiv,
    /// Floating-point square root. Latency 24, issue interval 24.
    FpSqrt,
    /// Conditional or unconditional control transfer. Executes on an integer
    /// ALU with latency 1; resolution redirects fetch on a misprediction.
    Branch,
}

impl OpClass {
    /// All operation classes, useful for exhaustive tests and tables.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMult,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::FpAdd,
        OpClass::FpMult,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Branch,
    ];

    /// Does this instruction reference data memory?
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Is this a load?
    #[inline]
    pub fn is_load(self) -> bool {
        self == OpClass::Load
    }

    /// Is this a store?
    #[inline]
    pub fn is_store(self) -> bool {
        self == OpClass::Store
    }

    /// Is this a control-transfer instruction?
    #[inline]
    pub fn is_branch(self) -> bool {
        self == OpClass::Branch
    }

    /// Does this class produce a floating-point result?
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMult | OpClass::FpDiv | OpClass::FpSqrt)
    }

    /// Short mnemonic used in debug dumps and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMult => "imul",
            OpClass::IntDiv => "idiv",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::FpAdd => "fadd",
            OpClass::FpMult => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::FpSqrt => "fsqrt",
            OpClass::Branch => "br",
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(OpClass::Load.is_load());
        assert!(!OpClass::Load.is_store());
        assert!(OpClass::Store.is_store());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn branch_classification() {
        assert!(OpClass::Branch.is_branch());
        for op in OpClass::ALL {
            if op != OpClass::Branch {
                assert!(!op.is_branch(), "{op} misclassified as branch");
            }
        }
    }

    #[test]
    fn fp_classification() {
        let fp = [OpClass::FpAdd, OpClass::FpMult, OpClass::FpDiv, OpClass::FpSqrt];
        for op in OpClass::ALL {
            assert_eq!(op.is_fp(), fp.contains(&op), "{op}");
        }
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
        }
    }

    #[test]
    fn all_is_exhaustive_and_duplicate_free() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            assert!(seen.insert(op), "duplicate entry {op}");
        }
        assert_eq!(seen.len(), OpClass::ALL.len());
    }
}
