//! Full-pipeline throughput: simulated instructions per second of host time
//! across thread counts and dispatch policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smt_core::{DispatchPolicy, SimConfig, Simulator};
use smt_workload::{benchmark, InstGenerator, SyntheticGen};

const COMMITS: u64 = 2_000;

fn build(benches: &[&str], policy: DispatchPolicy) -> Simulator {
    let mut cfg = SimConfig::paper(64, policy);
    cfg.max_cycles = 0;
    let streams: Vec<Box<dyn InstGenerator>> = benches
        .iter()
        .enumerate()
        .map(|(t, b)| Box::new(SyntheticGen::new(benchmark(b), t, 1)) as Box<dyn InstGenerator>)
        .collect();
    Simulator::new(cfg, streams)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_threads");
    g.sample_size(10);
    g.throughput(Throughput::Elements(COMMITS));
    let configs: [(&str, Vec<&str>); 3] = [
        ("1T", vec!["gcc"]),
        ("2T", vec!["gcc", "mesa"]),
        ("4T", vec!["gcc", "mesa", "equake", "vortex"]),
    ];
    for (label, benches) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(label), &benches, |b, benches| {
            b.iter(|| {
                let mut sim = build(benches, DispatchPolicy::Traditional);
                sim.run(COMMITS)
            })
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_policies");
    g.sample_size(10);
    g.throughput(Throughput::Elements(COMMITS));
    for policy in [
        DispatchPolicy::Traditional,
        DispatchPolicy::TwoOpBlock,
        DispatchPolicy::TwoOpBlockOoo,
        DispatchPolicy::TwoOpBlockOooFiltered,
    ] {
        g.bench_function(policy.name(), |b| {
            b.iter(|| {
                let mut sim = build(&["gcc", "equake"], policy);
                sim.run(COMMITS)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_policies);
criterion_main!(benches);
