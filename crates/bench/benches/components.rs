//! Microbenchmarks of the simulator's building blocks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smt_core::issue_queue::{IqEntry, IssueQueue};
use smt_core::{plan_thread, BufView, DispatchPolicy, PhysReg};
use smt_isa::{FuKind, RegClass};
use smt_mem::{AccessKind, Hierarchy};
use smt_predictor::{Btb, GShare, GShareConfig};
use smt_workload::{benchmark, InstGenerator, SyntheticGen};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let mut rng = StdRng::seed_from_u64(1);
    let addrs: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..(4u64 << 20))).collect();
    let mut h = Hierarchy::default();
    let mut i = 0;
    g.bench_function("hierarchy_load", |b| {
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(h.access(AccessKind::Load, addrs[i]))
        })
    });
    let mut hot = Hierarchy::default();
    hot.access(AccessKind::Load, 0x1000);
    g.bench_function("hierarchy_load_hot", |b| {
        b.iter(|| black_box(hot.access(AccessKind::Load, 0x1000)))
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(1));
    let mut gs = GShare::new(GShareConfig::paper());
    let mut i = 0u64;
    g.bench_function("gshare_predict_train", |b| {
        b.iter(|| {
            i += 1;
            black_box(gs.predict_and_train(0x4000 + (i % 64) * 4, !i.is_multiple_of(3)))
        })
    });
    let mut btb = Btb::default();
    for pc in 0..512u64 {
        btb.update(pc * 4, pc * 8);
    }
    let mut j = 0u64;
    g.bench_function("btb_lookup", |b| {
        b.iter(|| {
            j += 1;
            black_box(btb.lookup((j % 512) * 4))
        })
    });
    g.finish();
}

fn bench_issue_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("issue_queue");
    g.throughput(Throughput::Elements(1));
    let flat = |r: PhysReg| r.flat(256);
    g.bench_function("insert_wakeup_select_remove", |b| {
        let mut iq = IssueQueue::new(64, 2, 4, 512);
        let mut age = 0u64;
        b.iter(|| {
            age += 1;
            let tag = PhysReg { class: RegClass::Int, index: (age % 200) as u16 };
            let slot = iq.insert(
                IqEntry {
                    thread: (age % 4) as usize,
                    trace_idx: age,
                    age,
                    fu: FuKind::IntAlu,
                    waiting: [Some(tag), None],
                },
                flat,
            );
            iq.wakeup(tag, flat(tag));
            let (s, _) = iq.pop_ready().expect("woken entry must be ready");
            assert_eq!(s, slot);
            iq.remove(s);
        })
    });
    g.finish();
}

fn bench_dispatch_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_plan");
    g.throughput(Throughput::Elements(1));
    let preg = |i: u16| PhysReg { class: RegClass::Int, index: i };
    // A 24-deep buffer with interleaved NDIs — the OOO scan's worst case.
    let views: Vec<BufView> = (0..24)
        .map(|i| BufView {
            trace_idx: i,
            non_ready: if i % 3 == 0 { 2 } else { 1 },
            nonready_srcs: [Some(preg(100 + i as u16)), Some(preg(200 + i as u16))],
            dest: Some(preg(i as u16)),
            is_rob_oldest: i == 0,
        })
        .collect();
    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        g.bench_function(policy.name(), |b| {
            b.iter(|| black_box(plan_thread(black_box(&views), policy, 8)))
        });
    }
    g.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    g.throughput(Throughput::Elements(1));
    for name in ["gcc", "art", "crafty"] {
        let mut gen = SyntheticGen::new(benchmark(name), 0, 1);
        g.bench_function(name, |b| b.iter(|| black_box(gen.next_inst())));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_predictors,
    bench_issue_queue,
    bench_dispatch_planning,
    bench_workload_gen
);
criterion_main!(benches);
