//! One benchmark per paper artifact: each bench executes a representative
//! sweep slice of the corresponding figure or in-text statistic, so `cargo
//! bench` exercises every experiment's code path. Full-size regeneration of
//! the actual tables/series is done by the `paperbench` binary
//! (`cargo run --release -p smt-sweep --bin paperbench -- all`).

use criterion::{criterion_group, criterion_main, Criterion};
use smt_bench::BENCH_COMMITS;
use smt_core::DispatchPolicy;
use smt_sweep::{run_spec, RunSpec};
use smt_workload::{mixes_for, MixTable};

fn slice_spec(table: MixTable, mix_idx: usize, iq: usize, policy: DispatchPolicy) -> RunSpec {
    let mix = &mixes_for(table)[mix_idx];
    RunSpec::new(&mix.benchmarks, iq, policy, BENCH_COMMITS, 1).with_warmup(1_000)
}

/// Figure 1: 2OP_BLOCK vs traditional, one mix per thread count.
fn fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_2opblock_vs_traditional");
    g.sample_size(10);
    for (label, table) in
        [("2T", MixTable::TwoThread), ("3T", MixTable::ThreeThread), ("4T", MixTable::FourThread)]
    {
        g.bench_function(label, |b| {
            b.iter(|| {
                let blocked = run_spec(&slice_spec(table, 0, 64, DispatchPolicy::TwoOpBlock));
                let trad = run_spec(&slice_spec(table, 0, 64, DispatchPolicy::Traditional));
                blocked.ipc / trad.ipc
            })
        });
    }
    g.finish();
}

/// Figures 3/5/7 (throughput) and 4/6/8 (fairness): three-policy slice.
fn figs_3_to_8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figs3_8_policy_sweep");
    g.sample_size(10);
    for (label, table) in [
        ("fig3_fig4_2T", MixTable::TwoThread),
        ("fig5_fig6_3T", MixTable::ThreeThread),
        ("fig7_fig8_4T", MixTable::FourThread),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut total = 0.0;
                for policy in [
                    DispatchPolicy::Traditional,
                    DispatchPolicy::TwoOpBlock,
                    DispatchPolicy::TwoOpBlockOoo,
                ] {
                    total += run_spec(&slice_spec(table, 6, 48, policy)).ipc;
                }
                total
            })
        });
    }
    g.finish();
}

/// §3/§5 statistic: all-thread NDI dispatch stalls.
fn stat_stalls(c: &mut Criterion) {
    let mut g = c.benchmark_group("stat_stalls");
    g.sample_size(10);
    g.bench_function("2T_64_2opblock", |b| {
        b.iter(|| {
            run_spec(&slice_spec(MixTable::TwoThread, 0, 64, DispatchPolicy::TwoOpBlock))
                .all_stall_frac
        })
    });
    g.finish();
}

/// §4 statistics: HDI pile-up / NDI-dependence, and the idealized filter.
fn stat_hdi_and_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("stat_hdi_filter");
    g.sample_size(10);
    g.bench_function("hdi_fractions", |b| {
        b.iter(|| {
            let r =
                run_spec(&slice_spec(MixTable::TwoThread, 9, 64, DispatchPolicy::TwoOpBlockOoo));
            (r.hdi_pileup_frac, r.hdi_ndi_dep_frac)
        })
    });
    g.bench_function("idealized_filter", |b| {
        b.iter(|| {
            run_spec(&slice_spec(MixTable::TwoThread, 9, 64, DispatchPolicy::TwoOpBlockOooFiltered))
                .ipc
        })
    });
    g.finish();
}

/// §5 statistic: mean IQ residency.
fn stat_residency(c: &mut Criterion) {
    let mut g = c.benchmark_group("stat_residency");
    g.sample_size(10);
    g.bench_function("2T_64", |b| {
        b.iter(|| {
            run_spec(&slice_spec(MixTable::TwoThread, 8, 64, DispatchPolicy::TwoOpBlockOoo))
                .mean_iq_residency
        })
    });
    g.finish();
}

criterion_group!(benches, fig1, figs_3_to_8, stat_stalls, stat_hdi_and_filter, stat_residency);
criterion_main!(benches);
