//! Benchmark support crate.
//!
//! The interesting content lives in `benches/`:
//!
//! * `components` — microbenchmarks of the cache hierarchy, branch
//!   predictors, issue-queue wakeup/select, dispatch planning, and the
//!   synthetic workload generator;
//! * `pipeline` — full-simulator throughput (simulated instructions per
//!   second of host time) across thread counts and dispatch policies;
//! * `figures` — one representative sweep slice per paper figure/statistic
//!   (Figure 1, Figures 3–8, and the §3–§5 in-text statistics), so `cargo
//!   bench` exercises every experiment's code path end to end. Full-size
//!   regeneration of the paper's tables is `paperbench`'s job (see the
//!   `smt-sweep` crate).

/// Commit budget used by the per-figure bench slices: large enough to
/// exercise steady-state behaviour, small enough for `cargo bench`.
pub const BENCH_COMMITS: u64 = 2_000;
