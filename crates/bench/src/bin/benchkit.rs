//! `benchkit` — the repo's perf-regression harness.
//!
//! Runs a fixed "quick" profile (per-policy pipeline throughput in
//! simulated kilo-instructions per host second, plus one wall-clock slice
//! per paper-figure family) and emits a schema-stable JSON report
//! (`BENCH_10.json` at the repo root is the committed baseline). The same
//! binary compares a fresh run against a baseline file and fails on
//! regression beyond a tolerance — that is the CI perf-smoke gate.
//!
//! Usage:
//!   benchkit [--out FILE] [--compare BASELINE] [--tolerance PCT]
//!            [--target N] [--require PREFIX:MIN_KIPS]
//!
//! `--target` scales every scenario's per-thread commit budget (default
//! 20000). Host-speed numbers (`wall_ms`, `sim_kips`) vary with the
//! machine; the simulated numbers (`committed`, `cycles`,
//! `ff_skipped_cycles`) are deterministic for a given target and must not
//! change between runs on the same tree. `--compare` only judges
//! `sim_kips`, with a generous default tolerance (35%) so CI machine
//! jitter does not fail the gate. `--require` (repeatable) additionally
//! asserts an absolute floor: every scenario whose name starts with
//! `PREFIX` must reach `MIN_KIPS` — the ratchet CI uses to keep the
//! event-driven loop's membound wins from silently eroding.
//!
//! The JSON schema (see EXPERIMENTS.md):
//! ```json
//! {
//!   "schema": "smt-bench/2",
//!   "bench_id": 10,
//!   "profile": "quick",
//!   "target": 20000,
//!   "scenarios": [
//!     { "name": "...", "policy": "...", "committed": 0, "cycles": 0,
//!       "ff_skipped_cycles": 0, "fast_forward": true, "wall_ms": 0.0,
//!       "sim_kips": 0.0 }
//!   ]
//! }
//! ```

use smt_core::{AllocConfig, AllocPolicy, DispatchPolicy, FetchPolicy, SimConfig};
use smt_sweep::{run_machine_spec_with_config, run_spec_with_config, RunSpec};
use std::time::Instant;

/// One fixed benchmark scenario of the quick profile.
struct Scenario {
    name: &'static str,
    benches: &'static [&'static str],
    iq_size: usize,
    policy: DispatchPolicy,
    /// Fetch policy for the run. STALL and MLP-GATE make memory-bound
    /// mixes maximally idle (threads park during outstanding misses),
    /// which is where the event-driven loop's fast-forward has the most
    /// to win — and therefore the most to lose to a regression.
    fetch: FetchPolicy,
    /// `Some((cores, alloc))` runs through the multi-core `Machine` with
    /// that thread-to-core allocation policy; `None` runs the single-core
    /// simulator path.
    multicore: Option<(usize, AllocPolicy)>,
}

/// The quick profile: per-policy throughput on a mixed ILP workload, two
/// deliberately memory-bound scenarios (where idle-cycle fast-forward has
/// the most to win), and one slice per paper-figure family.
const QUICK: &[Scenario] = &[
    Scenario {
        name: "policy_traditional",
        benches: &["gcc", "art"],
        iq_size: 48,
        policy: DispatchPolicy::Traditional,
        fetch: FetchPolicy::ICount,
        multicore: None,
    },
    Scenario {
        name: "policy_2op_block",
        benches: &["gcc", "art"],
        iq_size: 48,
        policy: DispatchPolicy::TwoOpBlock,
        fetch: FetchPolicy::ICount,
        multicore: None,
    },
    Scenario {
        name: "policy_ooo_dispatch",
        benches: &["gcc", "art"],
        iq_size: 48,
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch: FetchPolicy::ICount,
        multicore: None,
    },
    Scenario {
        name: "membound_stall_art_twolf",
        benches: &["art", "twolf"],
        iq_size: 48,
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch: FetchPolicy::Stall,
        multicore: None,
    },
    Scenario {
        name: "membound_mlpgate_art_twolf",
        benches: &["art", "twolf"],
        iq_size: 48,
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch: FetchPolicy::MlpGate,
        multicore: None,
    },
    Scenario {
        name: "membound_stall_art_1t",
        benches: &["art"],
        iq_size: 48,
        policy: DispatchPolicy::Traditional,
        fetch: FetchPolicy::Stall,
        multicore: None,
    },
    Scenario {
        name: "fig1_slice_iq32_4t",
        benches: &["gcc", "art", "crafty", "mesa"],
        iq_size: 32,
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch: FetchPolicy::ICount,
        multicore: None,
    },
    Scenario {
        name: "fig3_slice_2t",
        benches: &["twolf", "mesa"],
        iq_size: 64,
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch: FetchPolicy::ICount,
        multicore: None,
    },
    Scenario {
        name: "fig5_slice_3t",
        benches: &["gcc", "art", "crafty"],
        iq_size: 64,
        policy: DispatchPolicy::TwoOpBlock,
        fetch: FetchPolicy::ICount,
        multicore: None,
    },
    Scenario {
        name: "fig7_slice_4t",
        benches: &["gcc", "art", "crafty", "mesa"],
        iq_size: 64,
        policy: DispatchPolicy::Traditional,
        fetch: FetchPolicy::ICount,
        multicore: None,
    },
    Scenario {
        name: "mc2_rr_static_4t",
        benches: &["gcc", "art", "crafty", "mesa"],
        iq_size: 48,
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch: FetchPolicy::ICount,
        multicore: Some((2, AllocPolicy::RoundRobin)),
    },
    Scenario {
        name: "mc2_mlp_dynamic_4t",
        benches: &["art", "art", "twolf", "equake"],
        iq_size: 48,
        policy: DispatchPolicy::TwoOpBlockOoo,
        fetch: FetchPolicy::ICount,
        multicore: Some((2, AllocPolicy::MlpBalanced)),
    },
];

struct Measured {
    name: String,
    policy: String,
    committed: u64,
    cycles: u64,
    wall_ms: f64,
    sim_kips: f64,
    /// Cycles the event-driven loop's calendar jumps skipped (deterministic
    /// for a given target, like `cycles`): `cycles - ff_skipped_cycles`
    /// cycles actually executed, which is what the wall clock paid for.
    ff_skipped_cycles: u64,
    /// Whether idle-cycle fast-forward was enabled for the run (it now
    /// covers every fetch policy, round-robin included; surfacing it keeps
    /// kIPS numbers honest about what they measured).
    fast_forward: bool,
}

fn run_scenario(s: &Scenario, target: u64) -> Measured {
    let spec = RunSpec::new(s.benches, s.iq_size, s.policy, target, 1);
    let mut cfg = SimConfig::paper(s.iq_size, s.policy);
    cfg.fetch_policy = s.fetch;
    let start = Instant::now();
    let r = match s.multicore {
        Some((cores, policy)) => {
            let alloc = AllocConfig { policy, epoch_cycles: 1_000, ..AllocConfig::default() };
            run_machine_spec_with_config(&spec, cfg, cores, alloc)
        }
        None => run_spec_with_config(&spec, cfg),
    };
    let wall = start.elapsed().as_secs_f64();
    let committed = r.counters.total_committed();
    Measured {
        name: s.name.to_string(),
        policy: format!("{:?}", s.policy),
        committed,
        cycles: r.cycles,
        wall_ms: wall * 1e3,
        sim_kips: if wall > 0.0 { committed as f64 / wall / 1e3 } else { 0.0 },
        ff_skipped_cycles: r.ff_skipped_cycles,
        fast_forward: r.fast_forward,
    }
}

/// Serialize the report. Hand-rolled (the bench crate deliberately does
/// not depend on serde): the schema is flat enough that stable formatting
/// is easier to guarantee by construction.
fn to_json(target: u64, rows: &[Measured]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"smt-bench/2\",\n");
    out.push_str("  \"bench_id\": 10,\n");
    out.push_str("  \"profile\": \"quick\",\n");
    out.push_str(&format!("  \"target\": {target},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"policy\": \"{}\", \"committed\": {}, \
             \"cycles\": {}, \"ff_skipped_cycles\": {}, \"fast_forward\": {}, \
             \"wall_ms\": {:.3}, \"sim_kips\": {:.1} }}{}\n",
            r.name,
            r.policy,
            r.committed,
            r.cycles,
            r.ff_skipped_cycles,
            r.fast_forward,
            r.wall_ms,
            r.sim_kips,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(name, sim_kips)` pairs from a report emitted by [`to_json`].
/// A minimal self-schema parser: one scenario object per line, fields in
/// fixed order — intentionally strict so schema drift fails loudly.
fn parse_kips(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else { continue };
        let Some(kips) = field_num(line, "sim_kips") else {
            panic!("baseline scenario {name:?} has no sim_kips field — schema drift?");
        };
        out.push((name, kips));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let tail = &line[start..];
    let end = tail.find([',', ' ', '}']).unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn usage() -> ! {
    eprintln!(
        "usage: benchkit [--out FILE] [--compare BASELINE] [--tolerance PCT] [--target N] \
         [--require PREFIX:MIN_KIPS]"
    );
    std::process::exit(2);
}

/// Parse a `--require` argument of the form `PREFIX:MIN_KIPS`.
fn parse_require(arg: &str) -> Option<(String, f64)> {
    let (prefix, min) = arg.rsplit_once(':')?;
    if prefix.is_empty() {
        return None;
    }
    Some((prefix.to_string(), min.parse().ok()?))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut tolerance_pct: f64 = 35.0;
    let mut target: u64 = 20_000;
    let mut requires: Vec<(String, f64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                i += 1;
                let arg = args.get(i).cloned().unwrap_or_else(|| usage());
                requires.push(parse_require(&arg).unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--compare" => {
                i += 1;
                compare_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--tolerance" => {
                i += 1;
                tolerance_pct = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--target" => {
                i += 1;
                target = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let mut rows = Vec::with_capacity(QUICK.len());
    for s in QUICK {
        let m = run_scenario(s, target);
        eprintln!(
            "  {:<28} {:>9} inst {:>10} cyc {:>9.1} ms {:>9.1} kIPS{}",
            m.name,
            m.committed,
            m.cycles,
            m.wall_ms,
            m.sim_kips,
            if m.fast_forward { "" } else { "  [no fast-forward]" }
        );
        rows.push(m);
    }
    let json = to_json(target, &rows);

    if let Some(path) = &out_path {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = &compare_path {
        let base = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let base_kips = parse_kips(&base);
        if base_kips.is_empty() {
            panic!("baseline {path} contains no scenarios — schema drift?");
        }
        let mut failed = false;
        for (name, old) in &base_kips {
            let Some(new) = rows.iter().find(|r| &r.name == name) else {
                eprintln!("MISSING  {name}: present in baseline, not in this run");
                failed = true;
                continue;
            };
            let floor = old * (1.0 - tolerance_pct / 100.0);
            let delta = (new.sim_kips / old - 1.0) * 100.0;
            if new.sim_kips < floor {
                eprintln!(
                    "REGRESS  {name}: {:.1} kIPS vs baseline {old:.1} ({delta:+.1}%, \
                     tolerance -{tolerance_pct}%)",
                    new.sim_kips
                );
                failed = true;
            } else {
                eprintln!("ok       {name}: {:.1} kIPS vs {old:.1} ({delta:+.1}%)", new.sim_kips);
            }
        }
        if failed {
            eprintln!("perf regression beyond {tolerance_pct}% tolerance vs {path}");
            std::process::exit(1);
        }
        eprintln!("all scenarios within {tolerance_pct}% of {path}");
    }

    if !requires.is_empty() {
        let mut failed = false;
        for (prefix, min) in &requires {
            let mut matched = false;
            for r in rows.iter().filter(|r| r.name.starts_with(prefix.as_str())) {
                matched = true;
                if r.sim_kips < *min {
                    eprintln!("BELOW    {}: {:.1} kIPS < required {min:.1}", r.name, r.sim_kips);
                    failed = true;
                } else {
                    eprintln!("ok       {}: {:.1} kIPS >= required {min:.1}", r.name, r.sim_kips);
                }
            }
            if !matched {
                eprintln!("MISSING  --require {prefix}: no scenario matches the prefix");
                failed = true;
            }
        }
        if failed {
            eprintln!("absolute kIPS floor not met");
            std::process::exit(1);
        }
    }
}
