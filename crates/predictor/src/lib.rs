//! Branch prediction for the SMT simulator.
//!
//! Per Table 1 of the paper every thread has a private **2K-entry gShare**
//! predictor with a 10-bit global history, and the machine has a shared
//! **2048-entry, 2-way set-associative BTB**.

pub mod btb;
pub mod gshare;

pub use btb::{Btb, BtbConfig};
pub use gshare::{GShare, GShareConfig, PredictorStats};
