//! gShare direction predictor with 2-bit saturating counters.

use serde::{Deserialize, Serialize};

/// Geometry of the gShare predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GShareConfig {
    /// Number of 2-bit counters in the pattern history table (power of two).
    pub table_entries: u32,
    /// Number of global-history bits XORed into the index.
    pub history_bits: u32,
}

impl GShareConfig {
    /// Table 1: "Per thread 2K entry gShare with 10-bit global history".
    pub fn paper() -> Self {
        GShareConfig { table_entries: 2048, history_bits: 10 }
    }
}

impl Default for GShareConfig {
    fn default() -> Self {
        GShareConfig::paper()
    }
}

/// Prediction accuracy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Number of direction predictions made.
    pub predictions: u64,
    /// Number of correct direction predictions.
    pub correct: u64,
}

impl PredictorStats {
    /// Fraction of correct predictions; 1.0 when none were made.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// A gShare predictor: PHT of 2-bit counters indexed by `pc ^ history`.
#[derive(Debug, Clone)]
pub struct GShare {
    cfg: GShareConfig,
    /// 2-bit saturating counters, initialized weakly-taken (2).
    pht: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
    stats: PredictorStats,
}

impl GShare {
    /// Build a predictor with all counters weakly taken and empty history.
    pub fn new(cfg: GShareConfig) -> Self {
        assert!(cfg.table_entries.is_power_of_two(), "PHT size must be a power of two");
        assert!(cfg.history_bits <= 32, "history too long");
        GShare {
            cfg,
            pht: vec![2u8; cfg.table_entries as usize],
            history: 0,
            history_mask: (1u64 << cfg.history_bits) - 1,
            index_mask: (cfg.table_entries - 1) as u64,
            stats: PredictorStats::default(),
        }
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> GShareConfig {
        self.cfg
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        // Drop the 2 low (always-zero) instruction-alignment bits of the PC.
        (((pc >> 2) ^ self.history) & self.index_mask) as usize
    }

    /// Predict the direction of the branch at `pc` without updating state.
    #[inline]
    pub fn predict(&self, pc: u64) -> bool {
        self.pht[self.index(pc)] >= 2
    }

    /// Predict and immediately train with the actual `taken` outcome,
    /// updating the PHT counter and shifting the global history.
    ///
    /// Returns the prediction that was made (before training). The simulator
    /// calls this at fetch time: trace-driven operation knows the real
    /// outcome immediately, while the *cost* of a misprediction is charged
    /// when the branch resolves in the pipeline.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let pred = self.pht[idx] >= 2;
        // Train the 2-bit counter.
        if taken {
            if self.pht[idx] < 3 {
                self.pht[idx] += 1;
            }
        } else if self.pht[idx] > 0 {
            self.pht[idx] -= 1;
        }
        // Shift history.
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
        self.stats.predictions += 1;
        if pred == taken {
            self.stats.correct += 1;
        }
        pred
    }

    /// Accuracy counters.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Reset counters but keep learned state.
    pub fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    /// Forget all learned state (counters back to weakly taken, history
    /// cleared) while keeping accuracy statistics — a cold restart, as a
    /// context switch or an injected fault would cause.
    pub fn flush(&mut self) {
        self.pht.fill(2);
        self.history = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut g = GShare::new(GShareConfig::paper());
        for _ in 0..100 {
            g.predict_and_train(0x400000, true);
        }
        assert!(g.predict(0x400000));
        assert!(g.stats().accuracy() > 0.9);
    }

    #[test]
    fn learns_always_not_taken() {
        let mut g = GShare::new(GShareConfig::paper());
        for _ in 0..100 {
            g.predict_and_train(0x400000, false);
        }
        assert!(!g.predict(0x400000));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut g = GShare::new(GShareConfig::paper());
        let mut taken = false;
        // Warm up: after the history register captures the period-2 pattern,
        // predictions should become near-perfect.
        for _ in 0..64 {
            g.predict_and_train(0x1000, taken);
            taken = !taken;
        }
        g.reset_stats();
        for _ in 0..200 {
            g.predict_and_train(0x1000, taken);
            taken = !taken;
        }
        assert!(
            g.stats().accuracy() > 0.95,
            "gShare should capture period-2 pattern, got {}",
            g.stats().accuracy()
        );
    }

    #[test]
    fn random_branches_predict_near_chance() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut g = GShare::new(GShareConfig::paper());
        for _ in 0..20_000 {
            let pc = 0x2000 + 4 * (rng.gen_range(0..16u64));
            g.predict_and_train(pc, rng.gen_bool(0.5));
        }
        let acc = g.stats().accuracy();
        assert!((0.40..0.60).contains(&acc), "random stream accuracy {acc}");
    }

    #[test]
    fn biased_branches_predict_near_bias() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut g = GShare::new(GShareConfig::paper());
        for _ in 0..20_000 {
            let pc = 0x3000 + 4 * (rng.gen_range(0..64u64));
            g.predict_and_train(pc, rng.gen_bool(0.9));
        }
        let acc = g.stats().accuracy();
        assert!(acc > 0.80, "strongly biased stream should exceed 80%, got {acc}");
    }

    #[test]
    fn flush_forgets_learned_state_but_keeps_stats() {
        let mut g = GShare::new(GShareConfig::paper());
        for _ in 0..100 {
            g.predict_and_train(0x400000, false);
        }
        assert!(!g.predict(0x400000));
        let stats_before = g.stats();
        g.flush();
        assert!(g.predict(0x400000), "flushed PHT must be back to weakly taken");
        assert_eq!(g.stats(), stats_before);
    }

    #[test]
    fn accuracy_with_no_predictions_is_one() {
        let g = GShare::new(GShareConfig::paper());
        assert_eq!(g.stats().accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_table() {
        let _ = GShare::new(GShareConfig { table_entries: 1000, history_bits: 10 });
    }
}
