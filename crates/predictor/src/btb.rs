//! Branch target buffer: 2048-entry, 2-way set-associative (Table 1).

use serde::{Deserialize, Serialize};

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtbConfig {
    /// Total number of entries (sets × ways).
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
}

impl BtbConfig {
    /// Table 1: "2048 entry, 2-way set-associative".
    pub fn paper() -> Self {
        BtbConfig { entries: 2048, ways: 2 }
    }
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig::paper()
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative branch target buffer.
///
/// In an SMT machine the BTB is a shared structure; entries are tagged with
/// the full PC (the workload generators give each thread a disjoint address
/// space, so no explicit thread id is needed — exactly like real SMT
/// hardware relying on distinct virtual addresses).
#[derive(Debug, Clone)]
pub struct Btb {
    cfg: BtbConfig,
    sets: usize,
    entries: Vec<BtbEntry>,
    tick: u64,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Build an empty BTB.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(
            cfg.ways >= 1 && cfg.entries.is_multiple_of(cfg.ways),
            "entries must divide into ways"
        );
        let sets = (cfg.entries / cfg.ways) as usize;
        assert!(sets.is_power_of_two(), "BTB set count must be a power of two");
        Btb {
            cfg,
            sets,
            entries: vec![
                BtbEntry { tag: 0, target: 0, valid: false, lru: 0 };
                cfg.entries as usize
            ],
            tick: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// The configuration this BTB was built with.
    pub fn config(&self) -> BtbConfig {
        self.cfg
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Look up the predicted target for the branch at `pc`, updating LRU.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        self.lookups += 1;
        let tick = self.tick;
        let set = self.set_of(pc);
        let ways = self.cfg.ways as usize;
        for e in &mut self.entries[set * ways..(set + 1) * ways] {
            if e.valid && e.tag == pc {
                e.lru = tick;
                self.hits += 1;
                return Some(e.target);
            }
        }
        None
    }

    /// Install or update the target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(pc);
        let ways = self.cfg.ways as usize;
        let slice = &mut self.entries[set * ways..(set + 1) * ways];
        if let Some(e) = slice.iter_mut().find(|e| e.valid && e.tag == pc) {
            e.target = target;
            e.lru = tick;
            return;
        }
        if let Some(e) = slice.iter_mut().find(|e| !e.valid) {
            *e = BtbEntry { tag: pc, target, valid: true, lru: tick };
            return;
        }
        let victim = slice.iter_mut().min_by_key(|e| e.lru).expect("ways >= 1");
        *victim = BtbEntry { tag: pc, target, valid: true, lru: tick };
    }

    /// Invalidate every entry while keeping hit/lookup statistics — a cold
    /// restart, as a context switch or an injected fault would cause.
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// Hit rate over all lookups so far; 1.0 when none were made.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl Default for Btb {
    fn default() -> Self {
        Btb::new(BtbConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut b = Btb::default();
        assert_eq!(b.lookup(0x400), None);
        b.update(0x400, 0x800);
        assert_eq!(b.lookup(0x400), Some(0x800));
    }

    #[test]
    fn update_overwrites_target() {
        let mut b = Btb::default();
        b.update(0x400, 0x800);
        b.update(0x400, 0xC00);
        assert_eq!(b.lookup(0x400), Some(0xC00));
    }

    #[test]
    fn conflicting_pcs_evict_lru() {
        // 2 entries, 2 ways => 1 set: every PC conflicts.
        let mut b = Btb::new(BtbConfig { entries: 2, ways: 2 });
        b.update(0x100, 0x1);
        b.update(0x200, 0x2);
        let _ = b.lookup(0x100); // refresh 0x100
        b.update(0x300, 0x3); // evicts 0x200
        assert_eq!(b.lookup(0x100), Some(0x1));
        assert_eq!(b.lookup(0x200), None);
        assert_eq!(b.lookup(0x300), Some(0x3));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut b = Btb::default();
        // 1024 sets x 2 ways; these PCs map to different sets.
        for i in 0..1024u64 {
            b.update(i * 4, i);
        }
        for i in 0..1024u64 {
            assert_eq!(b.lookup(i * 4), Some(i));
        }
        assert!(b.hit_rate() > 0.49); // first half of lookups were the updates
    }

    #[test]
    fn flush_invalidates_all_entries() {
        let mut b = Btb::default();
        b.update(0x400, 0x800);
        b.update(0x500, 0x900);
        b.flush();
        assert_eq!(b.lookup(0x400), None);
        assert_eq!(b.lookup(0x500), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = Btb::new(BtbConfig { entries: 6, ways: 2 });
    }
}
